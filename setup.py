"""Setup shim so ``pip install -e . --no-use-pep517`` works offline.

The PEP 660 editable path needs the ``wheel`` package at build time; this
legacy path only needs setuptools.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
