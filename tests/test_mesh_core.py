"""Unit and property tests for the mesh substrate (repro.mesh.core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    UnstructuredMesh,
    box_mesh,
    closure_residual,
    delaunay_cloud_mesh,
    extract_edges,
    tet_volumes,
    validate_mesh,
    wing_mesh,
)
from repro.mesh.core import TET_EDGES_EVEN


def reference_tet_mesh():
    """A single positively oriented unit tet."""
    coords = np.array(
        [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
    )
    tets = np.array([[0, 1, 2, 3]])
    bfaces = np.array([[1, 2, 3], [0, 3, 2], [0, 1, 3], [0, 2, 1]])
    btags = np.zeros(4, dtype=np.int64)
    return UnstructuredMesh(coords, tets, bfaces, btags, name="unit-tet")


class TestTetVolumes:
    def test_unit_tet(self):
        m = reference_tet_mesh()
        assert tet_volumes(m.coords, m.tets) == pytest.approx([1.0 / 6.0])

    def test_negative_for_swapped(self):
        m = reference_tet_mesh()
        swapped = m.tets[:, [1, 0, 2, 3]]
        assert tet_volumes(m.coords, swapped)[0] == pytest.approx(-1.0 / 6.0)

    def test_translation_invariant(self):
        m = reference_tet_mesh()
        v0 = tet_volumes(m.coords, m.tets)
        v1 = tet_volumes(m.coords + np.array([3.0, -2.0, 11.0]), m.tets)
        np.testing.assert_allclose(v0, v1)


class TestEdgeExtraction:
    def test_single_tet_has_six_edges(self):
        m = reference_tet_mesh()
        edges = extract_edges(m.tets, 4)
        assert edges.shape == (6, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_edges_sorted_lexicographically(self):
        m = box_mesh((4, 4, 4))
        e = m.edges
        keys = e[:, 0] * m.n_vertices + e[:, 1]
        assert np.all(np.diff(keys) > 0)

    def test_edge_count_matches_adjacency(self):
        m = box_mesh((4, 3, 5))
        rowptr, cols = m.adjacency
        assert rowptr[-1] == 2 * m.n_edges
        assert cols.shape[0] == 2 * m.n_edges

    def test_adjacency_symmetric(self):
        m = delaunay_cloud_mesh(120, seed=3)
        rowptr, cols = m.adjacency
        nbr = {
            (i, int(j))
            for i in range(m.n_vertices)
            for j in cols[rowptr[i] : rowptr[i + 1]]
        }
        assert all((j, i) in nbr for (i, j) in nbr)

    def test_even_permutation_table(self):
        # Each (i, j, k, l) row must be an even permutation of (0, 1, 2, 3);
        # the dual-face orientation convention depends on it.
        for row in TET_EDGES_EVEN:
            perm = list(row)
            inversions = sum(
                perm[a] > perm[b]
                for a in range(4)
                for b in range(a + 1, 4)
            )
            assert inversions % 2 == 0


class TestDualMetrics:
    def test_volumes_are_quarter_tets(self):
        m = reference_tet_mesh()
        np.testing.assert_allclose(m.volumes, np.full(4, 1.0 / 24.0))

    def test_dual_volume_sums_to_primal(self):
        m = box_mesh((5, 4, 3), jitter=0.1, seed=2)
        assert m.volumes.sum() == pytest.approx(m.total_volume())

    def test_edge_normal_orientation(self):
        # The directed dual face must lean from lo toward hi vertex.
        m = reference_tet_mesh()
        dx = m.coords[m.edges[:, 1]] - m.coords[m.edges[:, 0]]
        dots = np.einsum("ij,ij->i", m.edge_normals, dx)
        assert np.all(dots > 0)

    def test_closure_unit_tet(self):
        m = reference_tet_mesh()
        res = closure_residual(m)
        np.testing.assert_allclose(res, 0.0, atol=1e-15)

    def test_closure_box(self):
        m = box_mesh((6, 5, 4), jitter=0.15, seed=4)
        res = closure_residual(m)
        scale = np.abs(m.edge_normals).max()
        assert np.abs(res).max() < 1e-12 * scale * 1e2

    def test_green_gauss_exact_for_linear_interior(self):
        # Vertex-centered median-dual Green-Gauss gradients (midpoint rule
        # on edges) reproduce linear fields exactly at interior vertices —
        # the classical property that validates the dual-face metrics.
        # (At boundary vertices the midpoint-rule piece errors do not close
        # around a loop; the CFD gradient kernel therefore uses
        # least-squares, which is linear-exact everywhere.)
        m = box_mesh((5, 5, 5), jitter=0.1, seed=9)
        g = np.array([1.3, -0.7, 2.1])
        phi = m.coords @ g + 0.5
        acc = np.zeros((m.n_vertices, 3))
        e0, e1 = m.edges[:, 0], m.edges[:, 1]
        mid = 0.5 * (phi[e0] + phi[e1])
        np.add.at(acc, e0, mid[:, None] * m.edge_normals)
        np.subtract.at(acc, e1, mid[:, None] * m.edge_normals)
        grad = acc / m.volumes[:, None]
        interior = np.ones(m.n_vertices, dtype=bool)
        interior[m.bfaces.ravel()] = False
        assert interior.sum() > 0
        np.testing.assert_allclose(
            grad[interior], np.broadcast_to(g, grad[interior].shape), atol=1e-10
        )


class TestRelabeling:
    def test_relabel_preserves_metrics(self):
        m = box_mesh((4, 4, 4), jitter=0.1, seed=5)
        rng = np.random.default_rng(0)
        perm = rng.permutation(m.n_vertices)
        r = m.relabeled(perm)
        assert validate_mesh(r).ok
        # volumes are permuted copies
        np.testing.assert_allclose(np.sort(r.volumes), np.sort(m.volumes))
        assert r.n_edges == m.n_edges

    def test_relabel_identity(self):
        m = box_mesh((3, 3, 3))
        r = m.relabeled(np.arange(m.n_vertices))
        np.testing.assert_array_equal(r.tets, m.tets)
        np.testing.assert_allclose(r.coords, m.coords)

    def test_relabel_rejects_bad_perm(self):
        m = box_mesh((3, 3, 3))
        with pytest.raises(ValueError):
            m.relabeled(np.arange(5))


class TestValidation:
    def test_rejects_inverted_tet(self):
        m = reference_tet_mesh()
        bad = UnstructuredMesh(
            m.coords, m.tets[:, [1, 0, 2, 3]], m.bfaces, m.btags
        )
        with pytest.raises(ValueError):
            _ = bad.metrics

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            UnstructuredMesh(
                np.zeros((3, 2)),
                np.zeros((1, 4), dtype=int),
                np.zeros((0, 3), dtype=int),
                np.zeros(0, dtype=int),
            )


@settings(max_examples=20, deadline=None)
@given(
    nx=st.integers(2, 5),
    ny=st.integers(2, 5),
    nz=st.integers(2, 5),
    jitter=st.floats(0.0, 0.2),
    seed=st.integers(0, 1000),
)
def test_box_mesh_always_valid(nx, ny, nz, jitter, seed):
    """Property: every jittered box mesh satisfies all mesh invariants."""
    m = box_mesh((nx, ny, nz), jitter=jitter, seed=seed)
    assert validate_mesh(m).ok


@settings(max_examples=10, deadline=None)
@given(n=st.integers(50, 250), seed=st.integers(0, 100))
def test_delaunay_cloud_valid(n, seed):
    """Property: Delaunay cloud meshes satisfy closure and volume invariants."""
    m = delaunay_cloud_mesh(n, seed=seed)
    assert validate_mesh(m).ok


@settings(max_examples=8, deadline=None)
@given(
    na=st.integers(12, 28),
    nr=st.integers(4, 8),
    ns=st.integers(3, 6),
    seed=st.integers(0, 50),
)
def test_wing_mesh_always_valid(na, nr, ns, seed):
    """Property: wing O-grids of any resolution are valid meshes."""
    m = wing_mesh(n_around=na, n_radial=nr, n_span=ns, seed=seed)
    assert validate_mesh(m).ok
