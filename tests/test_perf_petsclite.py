"""Tests for the perf registry, report formatting and vector primitives."""

import numpy as np
import pytest

from repro.perf import PerfRegistry, format_series, format_table, get_registry, use_registry
from repro.petsclite import (
    vec_axpy,
    vec_aypx,
    vec_copy,
    vec_dot,
    vec_maxpy,
    vec_mdot,
    vec_norm,
    vec_scale,
    vec_set,
    vec_waxpy,
)


class TestPerfRegistry:
    def test_timer_accumulates(self):
        reg = PerfRegistry()
        with reg.timer("k", flops=10):
            pass
        with reg.timer("k", flops=5):
            pass
        assert reg.records["k"].calls == 2
        assert reg.records["k"].flops == 15
        assert reg.records["k"].seconds >= 0

    def test_fractions_sum_to_one(self):
        reg = PerfRegistry()
        reg.add("a", seconds=3.0)
        reg.add("b", seconds=1.0)
        fr = reg.fractions()
        assert fr["a"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_model_seconds_tracked_separately(self):
        reg = PerfRegistry()
        reg.add("a", seconds=1.0, model_seconds=5.0)
        assert reg.total_seconds() == 1.0
        assert reg.total_seconds(model=True) == 5.0

    def test_report_contains_kernels(self):
        reg = PerfRegistry()
        reg.add("flux", seconds=2.0)
        reg.add("trsv", seconds=1.0)
        rep = reg.report()
        assert "flux" in rep and "trsv" in rep and "TOTAL" in rep

    def test_use_registry_scoping(self):
        outer = get_registry()
        inner = PerfRegistry()
        with use_registry(inner):
            assert get_registry() is inner
            get_registry().add("x", seconds=1.0)
        assert get_registry() is outer
        assert "x" in inner.records

    def test_merge(self):
        a = PerfRegistry()
        b = PerfRegistry()
        a.add("k", seconds=1.0)
        b.add("k", seconds=2.0)
        a.merged_into(b)
        assert b.records["k"].seconds == 3.0
        assert b.records["k"].calls == 2

    def test_clear(self):
        reg = PerfRegistry()
        reg.add("k", seconds=1.0)
        reg.clear()
        assert not reg.records

    def test_use_registry_restores_on_exception(self):
        """Regression: the previous registry must come back after a raise."""
        outer = get_registry()
        inner = PerfRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(inner):
                assert get_registry() is inner
                raise RuntimeError("kernel blew up")
        assert get_registry() is outer

    def test_use_registry_reentrant_swaps(self):
        """Regression: nested/leaked pushes must not corrupt the stack."""
        from repro.perf import profile as perf_profile

        outer = get_registry()
        a, b, c = PerfRegistry(), PerfRegistry(), PerfRegistry()
        with use_registry(a):
            with use_registry(b):
                # a buggy consumer pushes without ever popping
                perf_profile._stack.append(c)
                assert get_registry() is c
            # exiting b truncates the leak too: a is active again
            assert get_registry() is a
        assert get_registry() is outer

    def test_use_registry_nested_exception_unwinds_cleanly(self):
        outer = get_registry()
        a, b = PerfRegistry(), PerfRegistry()
        with pytest.raises(ValueError):
            with use_registry(a):
                with use_registry(b):
                    raise ValueError
        assert get_registry() is outer


class TestVectorPrimitives:
    def setup_method(self):
        self.reg = PerfRegistry()

    def test_norm(self):
        with use_registry(self.reg):
            assert vec_norm(np.array([3.0, 4.0])) == pytest.approx(5.0)
        assert self.reg.records["VecNorm"].calls == 1

    def test_dot(self):
        with use_registry(self.reg):
            assert vec_dot(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 11.0

    def test_mdot(self):
        xs = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        y = np.array([2.0, 3.0])
        with use_registry(self.reg):
            np.testing.assert_allclose(vec_mdot(xs, y), [2.0, 3.0])
        assert self.reg.records["VecMDot"].calls == 1

    def test_mdot_empty(self):
        with use_registry(self.reg):
            assert vec_mdot([], np.ones(3)).shape == (0,)

    def test_axpy_in_place(self):
        y = np.array([1.0, 1.0])
        with use_registry(self.reg):
            out = vec_axpy(y, 2.0, np.array([1.0, 2.0]))
        assert out is y
        np.testing.assert_allclose(y, [3.0, 5.0])

    def test_aypx(self):
        y = np.array([1.0, 2.0])
        with use_registry(self.reg):
            vec_aypx(y, 3.0, np.array([1.0, 1.0]))
        np.testing.assert_allclose(y, [4.0, 7.0])

    def test_waxpy(self):
        w = np.zeros(2)
        with use_registry(self.reg):
            vec_waxpy(w, 2.0, np.array([1.0, 2.0]), np.array([10.0, 10.0]))
        np.testing.assert_allclose(w, [12.0, 14.0])

    def test_maxpy(self):
        y = np.zeros(2)
        xs = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        with use_registry(self.reg):
            vec_maxpy(y, np.array([2.0, 3.0]), xs)
        np.testing.assert_allclose(y, [2.0, 3.0])

    def test_scale_copy_set(self):
        x = np.array([1.0, 2.0])
        with use_registry(self.reg):
            vec_scale(x, 2.0)
            c = vec_copy(x)
            vec_set(x, 0.0)
        np.testing.assert_allclose(c, [2.0, 4.0])
        np.testing.assert_allclose(x, 0.0)

    def test_flop_accounting(self):
        with use_registry(self.reg):
            vec_dot(np.ones(100), np.ones(100))
        assert self.reg.records["VecDot"].flops == 200


class TestReportFormatting:
    def test_table_alignment(self):
        s = format_table(["a", "b"], [[1, 2.5], [10, 0.001]])
        lines = s.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]

    def test_table_title(self):
        s = format_table(["x"], [[1]], title="T1")
        assert s.startswith("T1")

    def test_series(self):
        s = format_series("n", [1, 2], {"time": [0.5, 0.25]})
        assert "time" in s
        assert "0.5" in s or "0.500" in s

    def test_empty_rows_returns_headers_and_rule(self):
        """Regression: an empty table must format, not raise."""
        s = format_table(["kernel", "share"], [])
        lines = s.splitlines()
        assert len(lines) == 2
        assert "kernel" in lines[0] and "share" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_empty_rows_with_title(self):
        s = format_table(["a"], [], title="T")
        assert s.splitlines() == ["T", "a", "-"]

    def test_short_rows_padded(self):
        s = format_table(["a", "b", "c"], [[1], [1, 2, 3]])
        lines = s.splitlines()
        assert len(lines) == 4
        # every data line has cells only under its own columns
        assert lines[2].rstrip().endswith("1") is False or "1" in lines[2]

    def test_empty_cell_row(self):
        # a row that is itself empty formats as a blank line of cells
        s = format_table(["a", "b"], [[]])
        assert len(s.splitlines()) == 3

    def test_format_profile_renders_tree(self):
        from repro.obs import Tracer
        from repro.perf import format_profile

        tr = Tracer(clock=iter(range(100)).__next__)
        with tr.span("solve"):
            with tr.span("flux"):
                pass
        out = format_profile(tr.roots, title="P")
        assert out.startswith("P")
        assert "solve" in out and "flux" in out and "TOTAL" in out
        # child is indented under parent
        flux_line = next(ln for ln in out.splitlines() if "flux" in ln)
        assert flux_line.startswith("  ")
