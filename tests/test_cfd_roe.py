"""Tests for the characteristic (Roe-type) matrix dissipation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd import (
    FlowConfig,
    FlowField,
    abs_flux_jacobian,
    analytic_flux_jacobian,
    characteristic_edge_flux,
    compute_residual,
    numerical_edge_flux,
    pointwise_flux,
    residual_norm,
    rusanov_edge_flux,
)
from repro.mesh import box_mesh, wing_mesh
from repro.solver import SolverOptions, solve_steady


def numerical_abs(A):
    w, V = np.linalg.eig(A)
    return (V @ np.diag(np.abs(w)) @ np.linalg.inv(V)).real


class TestAbsJacobian:
    def test_matches_eigendecomposition(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(40, 4))
        S = rng.normal(size=(40, 3))
        absA = abs_flux_jacobian(q, S, 4.0)
        A = analytic_flux_jacobian(q, S, 4.0)
        for i in range(40):
            np.testing.assert_allclose(
                absA[i], numerical_abs(A[i]), rtol=1e-9, atol=1e-10
            )

    def test_positive_semidefinite_spectrum(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(20, 4))
        S = rng.normal(size=(20, 3))
        absA = abs_flux_jacobian(q, S, 4.0)
        for i in range(20):
            w = np.linalg.eigvals(absA[i])
            assert np.all(w.real > -1e-10)

    def test_supersonic_like_reduces_to_A(self):
        # when Theta > c is impossible for AC (c > |Theta| always), but for
        # Theta >> sqrt(beta)|S| the flow-aligned eigenvalues dominate and
        # |A| ~ A for positive Theta up to the c-Theta gap; instead test the
        # exact identity |A| == A when all eigenvalues are positive can't
        # occur, so verify |A| >= dissipation of rusanov is FALSE:
        # characteristic dissipation never exceeds spectral-radius
        # dissipation in induced norm.
        rng = np.random.default_rng(2)
        q = rng.normal(size=(20, 4))
        S = rng.normal(size=(20, 3))
        absA = abs_flux_jacobian(q, S, 4.0)
        from repro.cfd import edge_spectral_radius

        lam = edge_spectral_radius(q, q, S, 4.0)
        for i in range(20):
            # spectral radius of |A| equals lambda_max of A
            r = np.abs(np.linalg.eigvals(absA[i])).max()
            assert r <= lam[i] * (1 + 1e-9)

    def test_zero_area_face(self):
        q = np.array([[1.0, 2.0, 3.0, 4.0]])
        S = np.zeros((1, 3))
        absA = abs_flux_jacobian(q, S, 4.0)
        np.testing.assert_allclose(absA, 0.0)


class TestCharacteristicFlux:
    def test_consistency(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=(25, 4))
        S = rng.normal(size=(25, 3))
        np.testing.assert_allclose(
            characteristic_edge_flux(q, q, S, 4.0),
            pointwise_flux(q, S, 4.0),
            atol=1e-12,
        )

    def test_less_dissipative_than_rusanov(self):
        rng = np.random.default_rng(4)
        ql = rng.normal(size=(30, 4))
        qr = ql + 0.1 * rng.normal(size=(30, 4))
        S = rng.normal(size=(30, 3))
        central = 0.5 * (pointwise_flux(ql, S, 4.0) + pointwise_flux(qr, S, 4.0))
        d_roe = np.linalg.norm(
            characteristic_edge_flux(ql, qr, S, 4.0) - central, axis=1
        )
        d_rus = np.linalg.norm(
            rusanov_edge_flux(ql, qr, S, 4.0) - central, axis=1
        )
        assert d_roe.sum() < d_rus.sum()

    def test_dispatch(self):
        rng = np.random.default_rng(5)
        ql = rng.normal(size=(10, 4))
        qr = rng.normal(size=(10, 4))
        S = rng.normal(size=(10, 3))
        np.testing.assert_allclose(
            numerical_edge_flux(ql, qr, S, 4.0, "roe"),
            characteristic_edge_flux(ql, qr, S, 4.0),
        )
        with pytest.raises(ValueError):
            numerical_edge_flux(ql, qr, S, 4.0, "bogus")

    def test_freestream_preservation(self):
        field = FlowField(box_mesh((4, 4, 4), jitter=0.1, seed=6))
        cfg = FlowConfig(dissipation="roe")
        q = field.initial_state(cfg)
        assert residual_norm(compute_residual(field, q, cfg)) < 1e-13

    def test_steady_solve_converges(self):
        field = FlowField(wing_mesh(n_around=16, n_radial=5, n_span=4))
        cfg = FlowConfig(dissipation="roe")
        res = solve_steady(field, cfg, SolverOptions(max_steps=50))
        assert res.converged

    def test_roe_less_spurious_drag(self):
        # characteristic dissipation should cut the numerical drag of the
        # inviscid solution relative to Rusanov
        from repro.cfd import integrate_forces

        field = FlowField(wing_mesh(n_around=20, n_radial=6, n_span=5))
        cds = {}
        for scheme in ("rusanov", "roe"):
            cfg = FlowConfig(dissipation=scheme)
            res = solve_steady(field, cfg, SolverOptions(max_steps=50))
            assert res.converged
            cds[scheme] = integrate_forces(field, res.q, cfg).cd
        assert cds["roe"] < cds["rusanov"]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100), beta=st.floats(0.5, 20.0))
def test_abs_jacobian_property(seed, beta):
    """Property: the matrix-polynomial |A| matches the eigen-decomposition
    for arbitrary states, normals and beta."""
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(10, 4))
    S = rng.normal(size=(10, 3)) + 0.1
    absA = abs_flux_jacobian(q, S, beta)
    A = analytic_flux_jacobian(q, S, beta)
    for i in range(10):
        np.testing.assert_allclose(
            absA[i], numerical_abs(A[i]), rtol=1e-8, atol=1e-9
        )
