"""Tests for uniform tet refinement and the host STREAM measurement."""

import numpy as np
import pytest

from repro.cfd import FlowField, lsq_gradients
from repro.mesh import (
    TAG_WALL,
    box_mesh,
    refine_mesh,
    validate_mesh,
    wing_mesh,
)
from repro.perf import measure_stream_triad


class TestRefine:
    @pytest.fixture(scope="class")
    def pair(self):
        m = wing_mesh(n_around=14, n_radial=5, n_span=4)
        return m, refine_mesh(m)

    def test_counts(self, pair):
        m, r = pair
        assert r.n_tets == 8 * m.n_tets
        assert r.n_bfaces == 4 * m.n_bfaces
        assert r.n_vertices == m.n_vertices + m.n_edges

    def test_valid(self, pair):
        _, r = pair
        assert validate_mesh(r).ok

    def test_volume_preserved(self, pair):
        m, r = pair
        assert r.total_volume() == pytest.approx(m.total_volume(), rel=1e-12)

    def test_tags_inherited(self, pair):
        m, r = pair
        for tag in np.unique(m.btags):
            assert (r.btags == tag).sum() == 4 * (m.btags == tag).sum()

    def test_wall_surface_area_preserved(self, pair):
        m, r = pair
        a0 = np.linalg.norm(
            m.bface_normals[m.btags == TAG_WALL], axis=1
        ).sum()
        a1 = np.linalg.norm(
            r.bface_normals[r.btags == TAG_WALL], axis=1
        ).sum()
        assert a1 == pytest.approx(a0, rel=1e-12)

    def test_original_vertices_unmoved(self, pair):
        m, r = pair
        np.testing.assert_allclose(r.coords[: m.n_vertices], m.coords)

    def test_twice_refinable(self):
        m = box_mesh((3, 3, 3))
        r2 = refine_mesh(refine_mesh(m))
        assert r2.n_tets == 64 * m.n_tets
        assert validate_mesh(r2).ok

    def test_gradient_error_shrinks_under_refinement(self):
        # LSQ gradient error of a quadratic field converges at O(h) on
        # irregular stencils.  The unrefined structured box's stencils are
        # point-symmetric (coincidentally exact), so the convergence test
        # compares refinement levels 2 and 3, where the octahedron-split
        # vertices have genuinely irregular neighborhoods.
        m = refine_mesh(refine_mesh(box_mesh((4, 4, 4))))
        r = refine_mesh(m)
        errs = []
        for mesh in (m, r):
            fld = FlowField(mesh)
            x = mesh.coords
            phi = x[:, 0] ** 2 + x[:, 1] * x[:, 2]
            exact = np.stack(
                [2 * x[:, 0], x[:, 2], x[:, 1]], axis=1
            )
            q = np.tile(phi[:, None], (1, 4))
            g = lsq_gradients(fld, q)[:, 0, :]
            # interior vertices only (boundary LSQ stencils are one-sided)
            interior = np.ones(mesh.n_vertices, dtype=bool)
            interior[mesh.bfaces.ravel()] = False
            errs.append(np.abs(g[interior] - exact[interior]).max())
        assert errs[1] < 0.6 * errs[0]


class TestStream:
    def test_positive_bandwidth(self):
        bw = measure_stream_triad(n_doubles=500_000, repeats=2)
        assert bw > 1e8  # any machine sustains >0.1 GB/s

    def test_repeatable_order_of_magnitude(self):
        a = measure_stream_triad(n_doubles=500_000, repeats=2)
        b = measure_stream_triad(n_doubles=500_000, repeats=2)
        assert 0.2 < a / b < 5.0
