"""Tests for mesh generators, boundary tagging and persistence."""

import numpy as np
import pytest

from repro.mesh import (
    TAG_FARFIELD,
    TAG_SYMMETRY,
    TAG_WALL,
    box_mesh,
    load_mesh,
    mesh_c_prime,
    mesh_d_prime,
    save_mesh,
    validate_mesh,
    wing_mesh,
)
from repro.mesh.generator import boundary_faces_from_tets, structured_to_tets


class TestStructuredToTets:
    def test_single_hex_six_tets(self):
        tets = structured_to_tets((2, 2, 2))
        assert tets.shape == (6, 4)

    def test_kuhn_volumes_fill_cube(self):
        from repro.mesh.core import tet_volumes

        xs = np.array([0.0, 1.0])
        gx, gy, gz = np.meshgrid(xs, xs, xs, indexing="ij")
        coords = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        tets = structured_to_tets((2, 2, 2))
        vols = np.abs(tet_volumes(coords, tets))
        assert vols.sum() == pytest.approx(1.0)
        # Kuhn simplices of the unit cube all have volume 1/6.
        np.testing.assert_allclose(vols, 1.0 / 6.0)

    def test_periodic_wraps(self):
        tets = structured_to_tets((4, 2, 2), periodic_i=True)
        # 4 cells in i when periodic (vs 3 when not)
        assert tets.shape[0] == 4 * 1 * 1 * 6
        assert tets.max() < 4 * 2 * 2

    def test_conforming_faces(self):
        # Every interior face must be shared by exactly two tets — the Kuhn
        # split must agree on the diagonals of shared hex faces.
        tets = structured_to_tets((3, 3, 3))
        faces = boundary_faces_from_tets(tets, 27)
        # A 2x2x2-cell cube has 2 cells x 6 sides x ... = 48 boundary tris
        assert faces.shape[0] == 6 * 4 * 2


class TestBoxMesh:
    def test_counts(self):
        m = box_mesh((3, 3, 3))
        assert m.n_vertices == 27
        assert m.n_tets == 8 * 6

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            box_mesh((1, 3, 3))

    def test_jitter_deterministic(self):
        a = box_mesh((4, 4, 4), jitter=0.1, seed=42)
        b = box_mesh((4, 4, 4), jitter=0.1, seed=42)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_jitter_moves_only_interior(self):
        a = box_mesh((4, 4, 4), jitter=0.0)
        b = box_mesh((4, 4, 4), jitter=0.1, seed=1)
        on_boundary = np.zeros(a.n_vertices, dtype=bool)
        on_boundary[a.bfaces.ravel()] = True
        np.testing.assert_array_equal(a.coords[on_boundary], b.coords[on_boundary])
        assert not np.allclose(a.coords[~on_boundary], b.coords[~on_boundary])


class TestWingMesh:
    def test_boundary_tags_cover(self):
        m = wing_mesh(n_around=20, n_radial=6, n_span=4)
        tags = set(np.unique(m.btags))
        assert tags == {TAG_WALL, TAG_FARFIELD, TAG_SYMMETRY}

    def test_wall_faces_near_surface(self):
        m = wing_mesh(n_around=24, n_radial=8, n_span=5, farfield_radius=6.0)
        wall = m.bfaces[m.btags == TAG_WALL]
        far = m.bfaces[m.btags == TAG_FARFIELD]
        r_wall = np.linalg.norm(m.coords[wall.ravel()][:, :2], axis=1).max()
        r_far = np.linalg.norm(m.coords[far.ravel()][:, :2], axis=1).min()
        assert r_wall < r_far

    def test_wall_normals_point_out_of_fluid(self):
        # Outward from the fluid = into the wing: for the elliptic section
        # the wall normal at a surface point should oppose the radial
        # direction from the local section center.
        m = wing_mesh(n_around=24, n_radial=8, n_span=5, jitter=0.0)
        wall_idx = np.where(m.btags == TAG_WALL)[0]
        n = m.bface_normals[wall_idx]
        centroid = m.coords[m.bfaces[wall_idx]].mean(axis=1)
        # section center at this z: x = sweep*z + 0.5*c(z); use y-component
        # sign as the robust check (upper surface -> normal points down into
        # the wing, i.e. n_y < 0 where y > 0).
        upper = centroid[:, 1] > 1e-3
        lower = centroid[:, 1] < -1e-3
        assert np.all(n[upper, 1] < 0)
        assert np.all(n[lower, 1] > 0)

    def test_resolution_guard(self):
        with pytest.raises(ValueError):
            wing_mesh(n_around=4)


class TestDatasets:
    def test_mesh_c_prime_shape(self):
        m = mesh_c_prime(scale=0.1)
        r = validate_mesh(m)
        assert r.ok
        # edge/vertex ratio like the paper's meshes (~6.7)
        assert 5.0 < m.n_edges / m.n_vertices < 8.0

    def test_mesh_d_prime_larger(self):
        c = mesh_c_prime(scale=0.1)
        d = mesh_d_prime(scale=0.1)
        assert d.n_vertices > c.n_vertices

    def test_scale_monotone(self):
        small = mesh_c_prime(scale=0.05)
        big = mesh_c_prime(scale=0.2)
        assert big.n_vertices > small.n_vertices


class TestIO:
    def test_roundtrip(self, tmp_path):
        m = wing_mesh(n_around=16, n_radial=5, n_span=4)
        p = tmp_path / "wing.npz"
        save_mesh(m, p)
        r = load_mesh(p)
        np.testing.assert_array_equal(r.tets, m.tets)
        np.testing.assert_allclose(r.coords, m.coords)
        np.testing.assert_array_equal(r.btags, m.btags)
        assert r.name == m.name

    def test_version_check(self, tmp_path):
        m = box_mesh((3, 3, 3))
        p = tmp_path / "m.npz"
        save_mesh(m, p)
        data = dict(np.load(p, allow_pickle=False))
        data["version"] = np.int64(99)
        np.savez(p, **data)
        with pytest.raises(ValueError):
            load_mesh(p)
