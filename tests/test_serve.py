"""Tests for the ``repro serve`` daemon (repro.serve).

Covers the wire protocol (length-prefixed JSON framing, truncated and
malformed frames, spec validation), the admission-controlled queue (503 on
depth, 408 on expired deadlines, shutdown draining), the warm family cache
(hit/miss/LRU, fleet-reuse counters), daemon lifecycle over a real Unix
socket (restart on the same path, stale-socket recovery, client
disconnect mid-solve, leak-free shutdown), and the numerics contract: a
batched k-case solve equals k independent one-shot solves element-wise.
"""

import os
import socket
import struct
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    AdmissionQueue,
    CaseSpec,
    ExecutionConfig,
    FamilySpec,
    Job,
    ProtocolError,
    QueueClosed,
    QueueFull,
    ServeClient,
    ServeDaemon,
    ServeError,
    WarmCache,
    WarmFamily,
    read_frame,
    solve_cases,
    sweep_grid,
    wait_for_socket,
    write_frame,
)
from repro.serve.protocol import MAX_FRAME_BYTES

FAMILY = {"dataset": "wing", "scale": 0.02, "ilu": 0}
CASE = {"aoa": 2.0, "max_steps": 3, "rtol": 1e-3}


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------

def test_frame_roundtrip():
    a, b = socket.socketpair()
    try:
        msg = {"op": "solve", "family": {"scale": 0.5}, "nested": [1, 2.5]}
        write_frame(a, msg)
        assert read_frame(b) == msg
        a.close()
        assert read_frame(b) is None  # clean EOF between frames
    finally:
        b.close()


def test_truncated_frame_is_protocol_error():
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack("!I", 100) + b'{"op": "pi')  # header lies
        a.close()
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(b)
    finally:
        b.close()


def test_invalid_length_and_bad_json():
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack("!I", 0))
        with pytest.raises(ProtocolError, match="length"):
            read_frame(b)
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="length"):
            read_frame(b)
        payload = b"not json at all"
        a.sendall(struct.pack("!I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="JSON"):
            read_frame(b)
        payload = b"[1, 2, 3]"  # valid JSON, wrong shape
        a.sendall(struct.pack("!I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="object"):
            read_frame(b)
    finally:
        a.close()
        b.close()


def test_spec_validation():
    spec = FamilySpec.from_dict({"dataset": "wing", "scale": 0.5})
    assert spec.key == FamilySpec.from_dict(
        {"scale": 0.5, "dataset": "wing"}
    ).key
    with pytest.raises(ProtocolError, match="unknown family field"):
        FamilySpec.from_dict({"datset": "wing"})
    with pytest.raises(ProtocolError, match="dataset"):
        FamilySpec.from_dict({"dataset": "cube"})
    with pytest.raises(ProtocolError, match="must be float"):
        FamilySpec.from_dict({"scale": "big"})
    with pytest.raises(ProtocolError, match="unknown case field"):
        CaseSpec.from_dict({"mach": 0.8})
    with pytest.raises(ProtocolError, match="dissipation"):
        CaseSpec.from_dict({"dissipation": "jameson"})


def test_sweep_grid():
    cases = sweep_grid(
        {"max_steps": 5}, {"aoa": [0.0, 2.0], "beta": [2.0, 4.0]}
    )
    assert len(cases) == 4
    assert all(c.max_steps == 5 for c in cases)
    assert {c.tag for c in cases} == {
        "aoa=0,beta=2", "aoa=0,beta=4", "aoa=2,beta=2", "aoa=2,beta=4",
    }
    with pytest.raises(ProtocolError, match="cannot sweep"):
        sweep_grid({}, {"dataset": ["wing"]})
    with pytest.raises(ProtocolError, match="empty sweep"):
        sweep_grid({}, {"aoa": []})


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------

def _job(**kw):
    return Job(op="solve", family=FamilySpec(), cases=[CaseSpec()], **kw)


def test_queue_depth_rejection():
    q = AdmissionQueue(max_depth=2)
    q.submit(_job())
    q.submit(_job())
    with pytest.raises(QueueFull):
        q.submit(_job())
    assert q.rejected_full == 1
    assert q.get(timeout=0.01) is not None
    q.submit(_job())  # space freed


def test_queue_close_drains_and_rejects():
    q = AdmissionQueue(max_depth=4)
    jobs = [q.submit(_job()) for _ in range(3)]
    drained = q.close()
    assert drained == jobs
    assert q.depth == 0
    with pytest.raises(QueueClosed):
        q.submit(_job())


def test_job_deadline_expiry():
    job = _job(deadline=time.monotonic() - 1.0)
    assert job.expired()
    assert not _job(deadline=time.monotonic() + 60.0).expired()
    assert not _job().expired()  # no deadline


# ---------------------------------------------------------------------------
# warm cache
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def warm_family():
    fam = WarmFamily(
        FamilySpec(dataset="wing", scale=0.02, ilu=0), ExecutionConfig()
    )
    yield fam
    fam.close()


def test_warm_cache_hit_and_lru_eviction():
    cache = WarmCache(max_families=1)
    try:
        a = FamilySpec(dataset="wing", scale=0.02, ilu=0)
        b = FamilySpec(dataset="wing", scale=0.02, ilu=0, seed=8)
        fam_a, hit = cache.get(a)
        assert not hit
        fam_a2, hit = cache.get(a)
        assert hit and fam_a2 is fam_a
        fam_b, hit = cache.get(b)  # evicts a (capacity 1)
        assert not hit
        assert cache.evictions == 1
        assert fam_a.session._closed  # evicted families are torn down
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["resident"] == 1
    finally:
        cache.close()
    with pytest.raises(RuntimeError, match="closed"):
        cache.get(FamilySpec())


def test_batch_runs_in_order_and_tags(warm_family):
    cases = sweep_grid(
        dict(CASE), {"aoa": [0.0, 2.0]}
    )
    results = solve_cases(warm_family, cases)
    assert [r.case["tag"] for r in results] == ["aoa=0", "aoa=2"]
    assert all(len(r.residual_history) >= 1 for r in results)
    assert results[0].cl != results[1].cl  # different cases, different flow


def test_session_rejects_structural_overrides(warm_family):
    with pytest.raises(ValueError, match="structural"):
        warm_family.session.solve(
            CaseSpec(**CASE).flow_config(), ilu_fill=2
        )


# ---------------------------------------------------------------------------
# batched == independent (the amortization-never-approximation contract)
# ---------------------------------------------------------------------------

@settings(max_examples=5, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.sampled_from([0.0, 1.5, 3.0]),   # aoa
            st.sampled_from([2.0, 4.0]),        # beta
            st.integers(1, 2),                  # max_steps
        ),
        min_size=1, max_size=3,
    )
)
def test_batched_equals_independent_solves(warm_family, data):
    from repro.cfd import FlowField
    from repro.solver import SolverOptions, solve_steady

    cases = [
        CaseSpec(aoa=a, beta=b, max_steps=ms, rtol=1e-3)
        for a, b, ms in data
    ]
    batched = solve_cases(warm_family, cases)
    for case, got in zip(cases, batched):
        fld = FlowField(warm_family.mesh)
        ref = solve_steady(
            fld,
            case.flow_config(),
            SolverOptions(
                ilu_fill=0, max_steps=case.max_steps, steady_rtol=case.rtol
            ),
        )
        assert got.steps == ref.steps
        assert got.krylov_iterations == ref.linear_iterations
        np.testing.assert_array_equal(
            np.asarray(got.residual_history),
            np.asarray(ref.residual_history),
        )
        assert got.final_residual == ref.final_residual


# ---------------------------------------------------------------------------
# daemon over a real socket
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "repro.sock")
    d = ServeDaemon(path, max_queue=4, telemetry=False)
    d.start()
    wait_for_socket(path, timeout=30.0)
    yield d
    d.request_stop()
    d.shutdown()


def test_daemon_ping_and_unknown_op(daemon):
    with ServeClient(daemon.socket_path) as c:
        assert c.ping()["pid"] == os.getpid()
        with pytest.raises(ServeError) as ei:
            c.request({"op": "frobnicate"})
        assert ei.value.code == 404


def test_daemon_solve_warm_hit_and_batch_consistency(daemon):
    with ServeClient(daemon.socket_path) as c:
        r1 = c.solve(family=FAMILY, case=CASE)
        r2 = c.solve(family=FAMILY, case=CASE)
        assert r2["cache"] == "hit"
        assert r2["result"]["forces"] == r1["result"]["forces"]
        rb = c.batch(family=FAMILY, cases=[dict(CASE), dict(CASE, aoa=0.0)])
        assert len(rb["results"]) == 2
        assert rb["results"][0]["forces"] == r1["result"]["forces"]
        assert {"queue_seconds", "setup_seconds", "solve_seconds",
                "total_seconds"} <= set(rb["span"])
        stats = c.stats()
        assert stats["cache"]["hits"] >= 2
        assert stats["completed"] >= 3


def test_evaluate_cases_bitwise_per_case(warm_family):
    """One fused batched sweep == each case's own compute_residual."""
    from repro.cfd import compute_residual
    from repro.serve import evaluate_cases

    cases = [
        CaseSpec(aoa=0.0, beta=4.0),
        CaseSpec(aoa=3.0, beta=2.0, tag="pitched"),
        CaseSpec(aoa=-2.0, dissipation="roe"),
    ]
    results = evaluate_cases(warm_family, cases)
    assert [r.case.get("tag") for r in results][1] == "pitched"
    field = warm_family.field
    for case, r in zip(cases, results):
        cfg = case.flow_config()
        ref = compute_residual(field, field.initial_state(cfg), cfg)
        assert r.residual_norm == float(np.linalg.norm(ref))
        assert r.residual_max == float(np.abs(ref).max())
        d = r.to_dict()
        assert {"case", "residual_norm", "residual_max", "forces"} <= set(d)
        assert d["forces"]["cl"] == r.cl and d["forces"]["cd"] == r.cd


def test_daemon_evaluate_roundtrip_and_dist_rejection(daemon):
    with ServeClient(daemon.socket_path) as c:
        resp = c.evaluate(
            family=FAMILY, cases=[dict(aoa=0.0), dict(aoa=2.0)]
        )
        assert resp["ok"] and len(resp["results"]) == 2
        r0, r1 = resp["results"]
        assert r0["residual_norm"] > 0.0 and r1["residual_norm"] > 0.0
        assert r0["residual_norm"] != r1["residual_norm"]
        # evaluation never runs the solver: no converged/steps keys
        assert "converged" not in r0 and "steps" not in r0
        # distributed families have no single shared-memory state batch
        with pytest.raises(ServeError) as ei:
            c.evaluate(family=dict(FAMILY, dist_ranks=2), cases=[{}])
        assert ei.value.code == 400
        assert "distributed" in ei.value.message


def test_daemon_malformed_payload_is_400_connection_survives(daemon):
    with ServeClient(daemon.socket_path) as c:
        with pytest.raises(ServeError) as ei:
            c.solve(family={"dataset": "cube"}, case=CASE)
        assert ei.value.code == 400
        with pytest.raises(ServeError) as ei:
            c.request({"op": "batch", "family": FAMILY, "cases": []})
        assert ei.value.code == 400
        assert c.ping()["ok"]  # framing intact -> connection kept


def test_daemon_malformed_frame_is_400_then_close(daemon):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(daemon.socket_path)
    try:
        s.settimeout(10.0)
        payload = b"}{ not json"
        s.sendall(struct.pack("!I", len(payload)) + payload)
        resp = read_frame(s)
        assert resp["ok"] is False and resp["error"]["code"] == 400
        assert read_frame(s) is None  # daemon closed after the 400
    finally:
        s.close()


def test_daemon_deadline_expired_is_408(daemon):
    with ServeClient(daemon.socket_path) as c:
        with pytest.raises(ServeError) as ei:
            c.solve(family=FAMILY, case=CASE, deadline_s=0.0)
        assert ei.value.code == 408


def test_daemon_over_depth_rejection_is_503():
    # dedicated daemon: depth 1, and a long-running case to hold the solver
    import tempfile

    path = os.path.join(tempfile.mkdtemp(), "depth.sock")
    d = ServeDaemon(path, max_queue=1, telemetry=False)
    d.start()
    try:
        wait_for_socket(path)
        slow = dict(CASE, max_steps=200, rtol=1e-14)

        def fire_and_forget(case):
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect(path)
            write_frame(s, {"op": "solve", "family": FAMILY, "case": case})
            return s

        s1 = fire_and_forget(slow)  # occupies the solver thread
        with ServeClient(path) as probe:
            for _ in range(400):
                if probe.stats()["in_flight"] == 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("solver never picked up the long job")
        s2 = fire_and_forget(slow)  # sits in the queue (depth 1/1)
        with ServeClient(path, timeout=10.0) as c:
            with pytest.raises(ServeError) as ei:
                c.solve(family=FAMILY, case=CASE)
            assert ei.value.code == 503
            assert "queue full" in ei.value.message
        s1.close()
        s2.close()
    finally:
        d.request_stop()
        d.shutdown()


def test_daemon_client_disconnect_mid_solve(daemon):
    before = daemon.completed
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(daemon.socket_path)
    write_frame(
        s, {"op": "solve", "family": FAMILY,
            "case": dict(CASE, max_steps=30, rtol=1e-14)},
    )
    s.close()  # walk away before the answer
    deadline = time.monotonic() + 60.0
    while daemon.completed == before:
        assert time.monotonic() < deadline, "abandoned job never finished"
        time.sleep(0.02)
    with ServeClient(daemon.socket_path) as c:  # daemon unharmed
        assert c.ping()["ok"]
        assert c.solve(family=FAMILY, case=CASE)["ok"]


def test_daemon_restart_reattaches_same_socket(tmp_path):
    path = str(tmp_path / "restart.sock")
    d1 = ServeDaemon(path, telemetry=False)
    d1.start()
    wait_for_socket(path)
    with ServeClient(path) as c:
        pid_row = c.solve(family=FAMILY, case=CASE)
        assert pid_row["ok"]
    d1.request_stop()
    d1.shutdown()
    assert not os.path.exists(path)

    d2 = ServeDaemon(path, telemetry=False)
    d2.start()
    try:
        wait_for_socket(path)
        with ServeClient(path) as c:
            r = c.solve(family=FAMILY, case=CASE)
            assert r["cache"] == "miss"  # fresh process-state, same socket
    finally:
        d2.request_stop()
        d2.shutdown()


def test_daemon_recovers_stale_socket_file(tmp_path):
    path = str(tmp_path / "stale.sock")
    dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    dead.bind(path)  # file exists, nobody listening (crashed daemon)
    dead.close()
    d = ServeDaemon(path, telemetry=False)
    d.start()
    try:
        wait_for_socket(path)
    finally:
        d.request_stop()
        d.shutdown()


def test_second_daemon_on_live_socket_refuses(daemon):
    d2 = ServeDaemon(daemon.socket_path, telemetry=False)
    with pytest.raises(RuntimeError, match="already listening"):
        d2.start()


def test_daemon_shutdown_rejects_queued_jobs():
    import tempfile

    path = os.path.join(tempfile.mkdtemp(), "drain.sock")
    d = ServeDaemon(path, max_queue=4, telemetry=False)
    d.start()
    wait_for_socket(path)
    slow = dict(CASE, max_steps=200, rtol=1e-14)
    s1 = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s1.connect(path)
    write_frame(s1, {"op": "solve", "family": FAMILY, "case": slow})
    with ServeClient(path) as probe:
        for _ in range(400):
            if probe.stats()["in_flight"] == 1:
                break
            time.sleep(0.01)
    s2 = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s2.connect(path)
    s2.settimeout(120.0)
    write_frame(s2, {"op": "solve", "family": FAMILY, "case": slow})
    with ServeClient(path) as probe:
        while probe.stats()["queue"]["depth"] != 1:
            time.sleep(0.01)

    done = threading.Event()
    threading.Thread(target=lambda: (d.shutdown(), done.set()),
                     daemon=True).start()
    resp = read_frame(s2)  # queued-but-unstarted -> 503 at shutdown
    assert resp["ok"] is False and resp["error"]["code"] == 503
    resp1 = read_frame(s1)  # in-flight job still finishes
    assert resp1["ok"] is True
    assert done.wait(timeout=120.0)
    s1.close()
    s2.close()
    assert not os.path.exists(path)


# ---------------------------------------------------------------------------
# warm fleets: reuse across requests, leak-free teardown
# ---------------------------------------------------------------------------

def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux
        return set()


def test_daemon_sparse_fleet_reused_across_requests_no_shm_leak(tmp_path):
    before = _shm_entries()
    path = str(tmp_path / "fleet.sock")
    d = ServeDaemon(
        path,
        execution=ExecutionConfig(sparse_backend="process", sparse_workers=2),
        telemetry=False,
    )
    d.start()
    try:
        wait_for_socket(path)
        with ServeClient(path, timeout=300.0) as c:
            c.solve(family=FAMILY, case=CASE)
            first = c.stats()["cache"]["families"][0]["fleets"]["sparse"]
            c.solve(family=FAMILY, case=CASE)
            second = c.stats()["cache"]["families"][0]["fleets"]["sparse"]
        assert first["trsv_solves"] > 0
        assert second["trsv_solves"] > first["trsv_solves"]
        assert second["factorizations"] > first["factorizations"]
        assert not second["closed"]  # same fleet, never reforked
    finally:
        d.request_stop()
        d.shutdown()
    leaked = _shm_entries() - before
    assert not leaked, f"leaked /dev/shm segments: {leaked}"
