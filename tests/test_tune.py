"""Tests for the host-calibrated cost model and auto-tuner (repro.tune).

Covers the calibration-file contract (fit -> write -> load roundtrips to an
identical model; wrong-schema / wrong-host / missing files fall back to the
analytic paper model), tuner determinism and its never-slower-by-default
margin logic, history cross-checking keyed on the stable host fingerprint,
the tuned-vs-default bench document and its gates, and the serve-tier
integration (ExecutionConfig tune fields, batcher chunking that never
changes per-case numerics).
"""

import json
import os

import numpy as np
import pytest

from repro.mesh import dataset_mesh
from repro.obs.live.fingerprint import host_fingerprint, same_host, stable_host_key
from repro.smp.machine import XEON_E5_2690_V2, MachineModel
from repro.tune import (
    CALIBRATION_SCHEMA,
    Calibration,
    TunedConfig,
    active_model,
    calibrated_fabric,
    load_calibration,
    rolling_tune_gate_failures,
    run_calibration,
    run_tune_bench,
    save_calibration,
    tune_gate_failures,
    tune_solve,
)


@pytest.fixture(scope="module")
def fast_calibration():
    """One fast host calibration shared by the module (sub-second)."""
    return run_calibration(fast=True, max_threads=2)


@pytest.fixture(scope="module")
def small_mesh():
    return dataset_mesh("mesh-c", scale=0.04, seed=7, ordering="rcm")


# ---------------------------------------------------------------------------
# calibration file contract
# ---------------------------------------------------------------------------
class TestCalibrationRoundtrip:
    def test_fit_write_load_identical_model(self, fast_calibration, tmp_path):
        path = str(tmp_path / "cal.json")
        save_calibration(fast_calibration, path)
        loaded = load_calibration(path)
        assert loaded is not None
        assert loaded.model == fast_calibration.model
        assert loaded.allreduce_stage_cost == pytest.approx(
            fast_calibration.allreduce_stage_cost
        )
        assert loaded.host == fast_calibration.host
        assert loaded.fast is True

    def test_schema_stamped(self, fast_calibration, tmp_path):
        path = str(tmp_path / "cal.json")
        save_calibration(fast_calibration, path)
        doc = json.load(open(path))
        assert doc["schema"] == CALIBRATION_SCHEMA
        assert doc["host"]["cpu_count"] == os.cpu_count()

    def test_fitted_constants_sane(self, fast_calibration):
        m = fast_calibration.model
        assert m.n_cores == os.cpu_count()
        assert 1e7 <= m.freq_hz <= 1e11
        assert m.core_bw > 0 and m.stream_bw >= m.core_bw
        assert 0.05 <= m.stall_per_load <= 500
        assert 1.0 <= m.unordered_latency_factor <= 4.0
        # assumed (not fitted) constants keep the analytic defaults
        assert m.prefetch_stall_factor == XEON_E5_2690_V2.prefetch_stall_factor
        assert m.simd_gather_factor == XEON_E5_2690_V2.simd_gather_factor

    def test_matches_current_host(self, fast_calibration):
        assert fast_calibration.matches_host()
        assert same_host(fast_calibration.host, host_fingerprint())


class TestActiveModelFallback:
    def test_missing_file_falls_back_to_paper_model(self, tmp_path):
        machine, cal = active_model(str(tmp_path / "nope.json"))
        assert cal is None
        assert machine == XEON_E5_2690_V2

    def test_invalid_json_falls_back(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        machine, cal = active_model(str(path))
        assert cal is None and machine == XEON_E5_2690_V2
        assert load_calibration(str(path)) is None

    def test_wrong_schema_falls_back(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps({"schema": "other/v9", "model": {}}))
        assert load_calibration(str(path)) is None

    def test_other_host_calibration_rejected(
        self, fast_calibration, tmp_path
    ):
        other = dict(fast_calibration.to_dict())
        other["host"] = dict(other["host"])
        other["host"]["cpu_count"] = (os.cpu_count() or 1) + 99
        path = tmp_path / "other.json"
        path.write_text(json.dumps(other))
        machine, cal = active_model(str(path))
        assert cal is None
        assert machine == XEON_E5_2690_V2
        # but an explicit non-strict load still returns it
        machine, cal = active_model(str(path), require_host_match=False)
        assert cal is not None

    def test_valid_calibration_is_used(self, fast_calibration, tmp_path):
        path = str(tmp_path / "cal.json")
        save_calibration(fast_calibration, path)
        machine, cal = active_model(path)
        assert cal is not None
        assert machine == fast_calibration.model


class TestStableHostKey:
    def test_excludes_churning_fields(self):
        key = stable_host_key()
        assert set(key) == {"cpu_count", "machine", "python", "numpy"}

    def test_same_host_ignores_git_rev_and_platform(self):
        a = host_fingerprint()
        b = dict(a, git_rev="deadbeef", platform="other-kernel")
        assert same_host(a, b)

    def test_missing_fingerprint_never_matches(self):
        assert not same_host(None)
        assert not same_host({})


# ---------------------------------------------------------------------------
# tuner
# ---------------------------------------------------------------------------
class TestTuner:
    def test_deterministic(self, small_mesh):
        kw = dict(dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0)
        a = tune_solve(small_mesh, XEON_E5_2690_V2, **kw)
        b = tune_solve(small_mesh, XEON_E5_2690_V2, **kw)
        assert a == b

    def test_default_always_priced(self, small_mesh):
        cfg = tune_solve(small_mesh, XEON_E5_2690_V2,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0)
        labels = [c["label"] for c in cfg.to_dict()["candidates"]]
        assert labels[0] == "default"
        assert cfg.default_step_seconds > 0
        assert cfg.predicted_step_seconds <= cfg.default_step_seconds

    def test_never_oversubscribes_the_real_host(self, small_mesh):
        # the paper model has 10 cores; the tuner must still cap worker
        # candidates at the box it actually runs on
        cfg = tune_solve(small_mesh, XEON_E5_2690_V2,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0,
                         allow_dist=False)
        assert cfg.workers <= (os.cpu_count() or 1)
        assert cfg.sparse_workers <= (os.cpu_count() or 1)

    def test_wide_margin_keeps_default(self, small_mesh):
        cfg = tune_solve(small_mesh, XEON_E5_2690_V2,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0,
                         margin=1e-9, allow_dist=False)
        assert cfg.edge_backend == "serial"
        assert cfg.sparse_backend == "serial"
        assert cfg.dist_ranks == 0

    def test_fallback_without_calibration(self, small_mesh, tmp_path):
        machine, cal = active_model(str(tmp_path / "absent.json"))
        cfg = tune_solve(small_mesh, machine, cal,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0)
        assert cfg.machine == XEON_E5_2690_V2.name
        assert cfg.source == "model"
        assert cfg.predicted_step_seconds > 0

    def test_history_overrides_model(self, small_mesh, monkeypatch):
        # a measured flux record from THIS host claiming a 100x win for
        # locked@2 must flip the tuner to that cell.  The tuner caps
        # candidates at the real cpu count, so pretend this box has 2
        # (the cached host fingerprint is unaffected).
        host_fingerprint()  # prime the cache before patching cpu_count
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        history = [{
            "kind": "flux", "dataset": "mesh-c", "scale": 0.04, "seed": 7,
            "host": host_fingerprint(),
            "serial_wall_seconds": 1.0,
            "walls": {"locked@2": 0.01},
        }]
        cfg = tune_solve(small_mesh, XEON_E5_2690_V2, None, history,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0,
                         max_workers=2, allow_dist=False)
        assert cfg.source == "model+history"
        assert cfg.edge_backend == "process"
        assert cfg.edge_strategy == "locked"
        assert cfg.workers == 2

    def test_other_host_history_ignored(self, small_mesh, monkeypatch):
        host_fingerprint()
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        other = dict(host_fingerprint(), cpu_count=9999)
        history = [{
            "kind": "flux", "dataset": "mesh-c", "scale": 0.04, "seed": 7,
            "host": other,
            "serial_wall_seconds": 1.0,
            "walls": {"locked@2": 0.01},
        }]
        cfg = tune_solve(small_mesh, XEON_E5_2690_V2, None, history,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0,
                         max_workers=2, allow_dist=False)
        assert cfg.source == "model"

    def test_batch_width_bounds(self, small_mesh):
        cfg = tune_solve(small_mesh, XEON_E5_2690_V2,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0,
                         serve_cases=3)
        assert 1 <= cfg.batch_width <= 3

    def test_summary_and_speedup(self, small_mesh):
        cfg = tune_solve(small_mesh, XEON_E5_2690_V2,
                         dataset="mesh-c", scale=0.04, seed=7, ilu_fill=0)
        assert cfg.predicted_speedup >= 1.0
        assert "ms/step" in cfg.summary()
        d = cfg.to_dict()
        assert d["predicted_speedup"] == cfg.predicted_speedup


class TestCalibratedFabric:
    def test_fallback_without_calibration(self):
        fabric = calibrated_fabric(None, XEON_E5_2690_V2)
        assert fabric.allreduce_time(64.0, 4) > 0
        assert fabric.link_bw == XEON_E5_2690_V2.stream_bw

    def test_uses_fitted_stage_cost(self, fast_calibration):
        fabric = calibrated_fabric(fast_calibration, fast_calibration.model)
        assert fabric.allreduce_time(64.0, 2) > 0


# ---------------------------------------------------------------------------
# tuned-vs-default bench + gates
# ---------------------------------------------------------------------------
def _tune_doc(default_wall=1.0, tuned_wall=0.8, dev=0.0, err=0.1):
    rows = [
        {"strategy": "default", "workers": 1, "wall_seconds": default_wall,
         "steps": 3, "model_seconds": 0.9, "model_rel_error": err,
         "max_abs_dev": dev},
        {"strategy": "tuned", "workers": 2, "wall_seconds": tuned_wall,
         "steps": 3, "model_seconds": 0.7, "model_rel_error": err,
         "max_abs_dev": dev},
    ]
    return {
        "schema": "repro.bench.tune/v1", "kind": "tune",
        "dataset": "mesh-c", "scale": 0.04, "seed": 7, "fill_level": 0,
        "host": host_fingerprint(), "machine": "test", "calibrated": False,
        "tuned": TunedConfig().to_dict(),
        "serial": {"wall_seconds": default_wall},
        "results": rows,
    }


class TestTuneGates:
    def test_clean_doc_passes(self):
        assert tune_gate_failures(_tune_doc()) == []

    def test_tuned_slower_fails(self):
        failures = tune_gate_failures(_tune_doc(tuned_wall=2.0))
        assert any("slower" in f for f in failures)

    def test_force_mismatch_fails(self):
        failures = tune_gate_failures(_tune_doc(dev=1e-3))
        assert any("deviate" in f for f in failures)

    def test_missing_rel_error_fails(self):
        doc = _tune_doc()
        doc["results"][1]["model_rel_error"] = float("nan")
        failures = tune_gate_failures(doc)
        assert any("model_rel_error" in f for f in failures)

    def test_rolling_gate_flags_regression(self):
        doc = _tune_doc(tuned_wall=0.9)
        prior = {
            "kind": "tune", "dataset": "mesh-c", "scale": 0.04, "seed": 7,
            "fill_level": 0, "host": host_fingerprint(),
            "walls": {"default@1": 0.5, "tuned@2": 0.1},
        }
        failures = rolling_tune_gate_failures(doc, [prior] * 5)
        assert any("rolling median" in f for f in failures)

    def test_rolling_gate_ignores_other_hosts(self):
        doc = _tune_doc(tuned_wall=0.9)
        prior = {
            "kind": "tune", "dataset": "mesh-c", "scale": 0.04, "seed": 7,
            "fill_level": 0,
            "host": dict(host_fingerprint(), cpu_count=9999),
            "walls": {"tuned@2": 0.1},
        }
        assert rolling_tune_gate_failures(doc, [prior] * 5) == []

    def test_rolling_gate_without_history_is_fixed_gate(self):
        assert rolling_tune_gate_failures(_tune_doc(), []) == []


class TestRunTuneBench:
    def test_doc_shape_and_gate(self, fast_calibration):
        doc = run_tune_bench(
            dataset="mesh-c", scale=0.03, seed=7, ilu=0, max_steps=2,
            machine=fast_calibration.model, cal=fast_calibration,
        )
        assert doc["schema"] == "repro.bench.tune/v1"
        assert doc["kind"] == "tune"
        assert doc["calibrated"] is True
        strategies = [r["strategy"] for r in doc["results"]]
        assert strategies == ["default", "tuned"]
        for r in doc["results"]:
            assert np.isfinite(r["model_rel_error"])
            assert r["model_seconds"] > 0
        # same solve numerics under both configurations
        assert doc["results"][1]["max_abs_dev"] <= 1e-8
        assert same_host(doc["host"])

    def test_history_append_roundtrip(self, fast_calibration, tmp_path):
        from repro.smp.bench import append_history, load_history

        doc = run_tune_bench(
            dataset="mesh-c", scale=0.03, seed=7, ilu=0, max_steps=2,
            machine=fast_calibration.model, cal=fast_calibration,
        )
        path = str(tmp_path / "hist.jsonl")
        append_history(doc, path)
        records = load_history(path)
        assert len(records) == 1
        rec = records[0]
        assert rec["kind"] == "tune"
        assert any(k.startswith("default@") for k in rec["walls"])
        assert any(k.startswith("tuned@") for k in rec["walls"])
        # the appended record feeds the rolling gate without failures
        assert rolling_tune_gate_failures(doc, records, max_regression=10.0) == []


# ---------------------------------------------------------------------------
# serve integration
# ---------------------------------------------------------------------------
class TestServeTuning:
    def test_execution_config_tune_fields(self):
        from repro.serve import ExecutionConfig

        ex = ExecutionConfig()
        assert ex.tune == "off" and ex.calibration == ""

    def test_tuned_family_records_plan(self, fast_calibration, tmp_path):
        from repro.serve.cache import ExecutionConfig, WarmCache
        from repro.serve.protocol import FamilySpec

        path = str(tmp_path / "cal.json")
        save_calibration(fast_calibration, path)
        cache = WarmCache(ExecutionConfig(tune="on", calibration=path))
        try:
            fam, hit = cache.get(FamilySpec(scale=0.03, ilu=0))
            assert not hit
            assert fam.tuned is not None
            assert fam.tuned_batch_width >= 1
            stats = cache.stats()
            assert stats["families"][0]["tuned"]["machine"] == \
                fast_calibration.model.name
        finally:
            cache.close()

    def test_untuned_family_has_no_plan(self):
        from repro.serve.cache import ExecutionConfig, WarmFamily
        from repro.serve.protocol import FamilySpec

        fam = WarmFamily(FamilySpec(scale=0.03, ilu=0), ExecutionConfig())
        try:
            assert fam.tuned is None
            assert fam.tuned_batch_width == 0
        finally:
            fam.close()

    def test_batcher_chunking_preserves_numerics(self):
        from repro.serve.batcher import evaluate_cases
        from repro.serve.cache import ExecutionConfig, WarmFamily
        from repro.serve.protocol import CaseSpec, FamilySpec

        spec = FamilySpec(scale=0.03, ilu=0)
        fam = WarmFamily(spec, ExecutionConfig())
        try:
            cases = [
                CaseSpec.from_dict({"aoa": float(a)}) for a in range(5)
            ]
            full = evaluate_cases(fam, cases)
            fam.tuned_batch_width = 2  # force chunked stacking
            chunked = evaluate_cases(fam, cases)
            for a, b in zip(full, chunked):
                assert a.residual_norm == b.residual_norm
                assert a.residual_max == b.residual_max
                assert a.cl == b.cl and a.cd == b.cd
        finally:
            fam.close()
