"""Tests for the command-line interface."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help_and_exits_2(self, capsys):
        rc = main([])
        captured = capsys.readouterr()
        assert rc == 2
        assert "usage: repro" in captured.err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # a dotted version number follows the program name
        assert out.split()[1][0].isdigit()

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.dataset == "mesh-c"
        assert args.ilu == 1
        assert args.dissipation == "rusanov"

    def test_scaling_nodes_list(self):
        args = build_parser().parse_args(["scaling", "--nodes", "1", "8"])
        assert args.nodes == [1, 8]

    def test_backend_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.backend == "serial"
        assert args.workers == 2
        assert args.edge_strategy == "owner"
        assert args.partitioner == "metis"

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.workers == 4
        assert args.repeats == 5
        assert not args.quick and not args.gate
        assert args.out == "BENCH_flux_scaling.json"

    def test_fuse_defaults_off(self):
        assert build_parser().parse_args(["solve"]).fuse == "off"
        serve = build_parser().parse_args(["serve", "--socket", "/tmp/x"])
        assert serve.fuse == "off"
        args = build_parser().parse_args(["profile", "--fuse", "on"])
        assert args.fuse == "on"


class TestCommands:
    def test_mesh_info(self, capsys):
        rc = main(["mesh-info", "--scale", "0.04"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MeshReport[OK]" in out

    def test_mesh_info_wing(self, capsys):
        rc = main(["mesh-info", "--dataset", "wing", "--scale", "0.05"])
        assert rc == 0

    def test_solve(self, capsys):
        rc = main(["solve", "--scale", "0.02", "--max-steps", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged=True" in out
        assert "CL=" in out

    def test_solve_roe(self, capsys):
        rc = main([
            "solve", "--scale", "0.02", "--dissipation", "roe",
            "--max-steps", "60",
        ])
        assert rc == 0

    def test_speedup(self, capsys):
        rc = main(["speedup", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "paper-scale" in out

    def test_scaling(self, capsys):
        rc = main(["scaling", "--nodes", "1", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strong scaling" in out

    def test_scaling_pipelined(self, capsys):
        rc = main(["scaling", "--nodes", "64", "--pipelined"])
        assert rc == 0

    def test_partition(self, capsys):
        rc = main(["partition", "--scale", "0.04", "--parts", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "multilevel" in out


class TestProcessBackend:
    def test_solve_process_backend_matches_serial(self, capsys):
        rc = main(["solve", "--scale", "0.02", "--max-steps", "60"])
        serial_out = capsys.readouterr().out
        rc2 = main([
            "solve", "--scale", "0.02", "--max-steps", "60",
            "--backend", "process", "--workers", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0 and rc2 == 0
        assert "edge backend: process x2 (owner-metis" in out
        # identical converged forces, line for line
        serial_forces = [ln for ln in serial_out.splitlines() if "CL=" in ln]
        forces = [ln for ln in out.splitlines() if "CL=" in ln]
        assert forces == serial_forces

    def test_solve_fused_matches_serial(self, capsys):
        rc = main(["solve", "--scale", "0.02", "--max-steps", "60"])
        serial_out = capsys.readouterr().out
        rc2 = main([
            "solve", "--scale", "0.02", "--max-steps", "60", "--fuse", "on",
        ])
        out = capsys.readouterr().out
        assert rc == 0 and rc2 == 0
        assert "fused kernel-graph pipeline: 6 stages -> 5" in out
        serial_forces = [ln for ln in serial_out.splitlines() if "CL=" in ln]
        forces = [ln for ln in out.splitlines() if "CL=" in ln]
        assert forces == serial_forces

    def test_bench_fusion_writes_valid_document(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_fusion.json"
        rc = main([
            "bench", "--kernel", "fusion", "--quick", "--scale", "0.02",
            "--repeats", "1", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fused kernel-graph residual" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.bench.fusion/v1"
        assert all(r["max_abs_dev"] == 0.0 for r in doc["results"])

    def test_profile_process_backend_has_worker_spans(self, capsys):
        rc = main([
            "profile", "--scale", "0.02", "--max-steps", "60",
            "--backend", "process", "--workers", "2",
            "--edge-strategy", "locked",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flux.w0" in out and "flux.w1" in out
        assert "grad.w0" in out and "grad.w1" in out

    def test_bench_writes_valid_document(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_flux_scaling.json"
        rc = main([
            "bench", "--quick", "--workers", "2", "--scale", "0.02",
            "--repeats", "1", "--out", str(out_path),
            "--gate", "--gate-slowdown", "1e9",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GATE OK" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.bench.flux_scaling/v1"
        assert doc["serial"]["wall_seconds"] > 0
        labels = {(r["strategy"], r["workers"]) for r in doc["results"]}
        assert labels == {
            ("locked", 2), ("replicate", 2),
            ("owner-natural", 2), ("owner-metis", 2),
        }
        for r in doc["results"]:
            assert r["max_abs_dev"] <= 1e-12

    def test_bench_gate_failure_sets_exit_code(self, tmp_path, capsys):
        out_path = tmp_path / "b.json"
        rc = main([
            "bench", "--quick", "--workers", "2", "--scale", "0.02",
            "--repeats", "1", "--strategies", "locked",
            "--out", str(out_path), "--gate", "--gate-slowdown", "1e9",
        ])
        out = capsys.readouterr().out
        assert rc == 1  # gate strategy owner-metis was not measured
        assert "GATE FAIL" in out
        assert out_path.exists()  # the artifact is written before gating


class TestObservability:
    def test_profile_command(self, capsys):
        rc = main(["profile", "--scale", "0.02", "--max-steps", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "span-tree profile" in out
        assert "newton-step" in out and "gmres" in out
        assert "reconciliation" in out

    def test_solve_trace_out_is_valid_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        rc = main([
            "solve", "--scale", "0.02", "--max-steps", "60",
            "--trace-out", str(trace),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        evs = doc["traceEvents"]
        assert evs, "trace must contain events"
        names = {e["name"] for e in evs}
        assert {"solve", "newton-step", "gmres", "flux", "trsv"} <= names
        for e in evs:
            assert e["ph"] in ("X", "i")
            assert "ts" in e and "pid" in e and "tid" in e
            if e["ph"] == "X":
                assert "dur" in e

    def test_solve_trace_reconciles_with_registry(self, tmp_path, capsys):
        """Acceptance: root-span kernel totals match PerfRegistry within 1%."""
        trace = tmp_path / "t.json"
        rc = main([
            "solve", "--scale", "0.02", "--max-steps", "60",
            "--trace-out", str(trace),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        by_kernel = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_kernel[e["name"]] = by_kernel.get(e["name"], 0.0) + e["dur"]
        # re-run the same solve to get registry-side totals of similar size
        # is wasteful; instead check internal consistency of the tree: the
        # root span covers its kernels
        root = by_kernel["solve"]
        kernels = sum(
            by_kernel.get(k, 0.0)
            for k in ("flux", "grad", "jacobian", "ilu", "trsv")
        )
        assert 0 < kernels <= root * (1 + 1e-9)

    def test_profile_metrics_out_jsonl(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        rc = main([
            "profile", "--scale", "0.02", "--max-steps", "60",
            "--metrics-out", str(metrics),
        ])
        assert rc == 0
        recs = [json.loads(ln) for ln in metrics.read_text().splitlines()]
        kinds = {r["type"] for r in recs}
        assert {"span", "event", "counter", "gauge", "histogram"} <= kinds
        counters = {r["name"]: r["value"] for r in recs if r["type"] == "counter"}
        assert counters["gmres.iterations"] > 0
        assert counters["gmres.allreduces"] > counters["gmres.iterations"]

    def test_scaling_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "sc.json"
        rc = main([
            "scaling", "--nodes", "1", "16", "--trace-out", str(trace),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert any(n.endswith("16-nodes") for n in names)
        assert "allreduce" in names and "compute" in names


class TestInterruptFlush:
    def test_sigterm_mid_solve_flushes_partial_exports(self, tmp_path):
        """Regression: killing a solve mid-run must still write the partial
        Prometheus snapshot and OTLP trace and exit 130, and the live
        /metrics endpoint must serve solver series while the solve runs."""
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        prom = tmp_path / "partial.prom"
        otlp = tmp_path / "partial-trace.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "solve",
                "--scale", "0.06", "--max-steps", "500",
                "--metrics-serve", "0",
                "--metrics-prom", str(prom),
                "--trace-otlp", str(otlp),
            ],
            cwd=repo_root, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # the banner proves _ObsSession is up (handlers installed)
            url = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if line.startswith("live metrics:"):
                    url = line.split()[-1]
                    break
            assert url, "solve never announced its /metrics endpoint"
            from repro.obs.live.top import fetch_metrics

            samples = fetch_metrics(url, timeout=10.0)
            label = (("proc", "solver"),)
            assert samples[("repro_live_up", label)] == 1.0
            time.sleep(1.0)  # let a few Newton steps land in the trace
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "interrupted — partial telemetry exports flushed" in err
        # both exports exist and are valid despite the early death
        text = prom.read_text()
        assert 'repro_live_residual{proc="solver"}' in text
        doc = json.loads(otlp.read_text())
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert any(s["name"] == "solve" for s in spans)
