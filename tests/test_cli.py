"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.dataset == "mesh-c"
        assert args.ilu == 1
        assert args.dissipation == "rusanov"

    def test_scaling_nodes_list(self):
        args = build_parser().parse_args(["scaling", "--nodes", "1", "8"])
        assert args.nodes == [1, 8]


class TestCommands:
    def test_mesh_info(self, capsys):
        rc = main(["mesh-info", "--scale", "0.04"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MeshReport[OK]" in out

    def test_mesh_info_wing(self, capsys):
        rc = main(["mesh-info", "--dataset", "wing", "--scale", "0.05"])
        assert rc == 0

    def test_solve(self, capsys):
        rc = main(["solve", "--scale", "0.02", "--max-steps", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged=True" in out
        assert "CL=" in out

    def test_solve_roe(self, capsys):
        rc = main([
            "solve", "--scale", "0.02", "--dissipation", "roe",
            "--max-steps", "60",
        ])
        assert rc == 0

    def test_speedup(self, capsys):
        rc = main(["speedup", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "paper-scale" in out

    def test_scaling(self, capsys):
        rc = main(["scaling", "--nodes", "1", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strong scaling" in out

    def test_scaling_pipelined(self, capsys):
        rc = main(["scaling", "--nodes", "64", "--pipelined"])
        assert rc == 0

    def test_partition(self, capsys):
        rc = main(["partition", "--scale", "0.04", "--parts", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "multilevel" in out
