"""Tests for GMRES, JFNK, additive Schwarz and the steady Newton driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd import FlowConfig, FlowField, compute_residual
from repro.mesh import box_mesh, wing_mesh
from repro.solver import (
    AdditiveSchwarzILU,
    SolverOptions,
    fd_jacobian_operator,
    gmres,
    solve_steady,
)
from repro.sparse import BCSRMatrix


def random_system(n=40, seed=0, cond=10.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n)) + cond * np.eye(n)
    x = rng.normal(size=n)
    return A, x, A @ x


class TestGMRES:
    def test_solves_dense_system(self):
        A, x_true, b = random_system()
        res = gmres(lambda v: A @ v, b, rtol=1e-12, restart=40, maxiter=200)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-8, atol=1e-8)

    def test_identity_one_iteration(self):
        b = np.arange(1.0, 6.0)
        res = gmres(lambda v: v, b, rtol=1e-12)
        assert res.iterations <= 2
        np.testing.assert_allclose(res.x, b, rtol=1e-12)

    def test_zero_rhs(self):
        res = gmres(lambda v: 2 * v, np.zeros(5))
        assert res.converged
        np.testing.assert_allclose(res.x, 0.0)

    def test_restart_still_converges(self):
        A, x_true, b = random_system(n=60, seed=1)
        res = gmres(lambda v: A @ v, b, rtol=1e-10, restart=10, maxiter=600)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-7)

    def test_preconditioner_cuts_iterations(self):
        A, _, b = random_system(n=80, seed=2, cond=4.0)
        Minv = np.linalg.inv(np.diag(np.diag(A)))
        plain = gmres(lambda v: A @ v, b, rtol=1e-8, restart=80, maxiter=400)
        pc = gmres(
            lambda v: A @ v,
            b,
            precond=lambda v: Minv @ v,
            rtol=1e-8,
            restart=80,
            maxiter=400,
        )
        assert pc.iterations <= plain.iterations

    def test_exact_preconditioner_one_iteration(self):
        A, x_true, b = random_system(n=30, seed=3)
        Ainv = np.linalg.inv(A)
        res = gmres(lambda v: A @ v, b, precond=lambda v: Ainv @ v, rtol=1e-10)
        assert res.iterations <= 2
        np.testing.assert_allclose(res.x, x_true, rtol=1e-8)

    def test_x0_initial_guess(self):
        A, x_true, b = random_system(n=25, seed=4)
        res = gmres(lambda v: A @ v, b, x0=x_true.copy(), rtol=1e-10)
        assert res.iterations == 0
        assert res.converged

    def test_residual_history_monotone(self):
        A, _, b = random_system(n=50, seed=5)
        res = gmres(lambda v: A @ v, b, rtol=1e-10, restart=50)
        hist = np.array(res.residual_norms)
        assert np.all(np.diff(hist) <= 1e-9)


class TestJFNK:
    def test_matches_analytic_on_linear_function(self):
        A, _, _ = random_system(n=20, seed=6)
        rng = np.random.default_rng(7)
        u = rng.normal(size=20)
        op = fd_jacobian_operator(lambda x: A @ x, u)
        v = rng.normal(size=20)
        np.testing.assert_allclose(op(v), A @ v, rtol=1e-6, atol=1e-6)

    def test_diag_added_exactly(self):
        A, _, _ = random_system(n=15, seed=8)
        rng = np.random.default_rng(9)
        u = rng.normal(size=15)
        d = rng.uniform(1.0, 2.0, 15)
        op = fd_jacobian_operator(lambda x: A @ x, u, diag=d)
        v = rng.normal(size=15)
        np.testing.assert_allclose(op(v), A @ v + d * v, rtol=1e-6, atol=1e-6)

    def test_zero_vector(self):
        op = fd_jacobian_operator(lambda x: x**2, np.ones(5))
        np.testing.assert_allclose(op(np.zeros(5)), 0.0)

    def test_nonlinear_function(self):
        # F(u) = u^3 -> J = diag(3u^2)
        rng = np.random.default_rng(10)
        u = rng.uniform(0.5, 1.5, 10)
        op = fd_jacobian_operator(lambda x: x**3, u)
        v = rng.normal(size=10)
        np.testing.assert_allclose(op(v), 3 * u**2 * v, rtol=1e-5, atol=1e-5)


def _diag_dominant_bcsr(mesh, b=4, seed=0, shift=8.0):
    A = BCSRMatrix.from_mesh_edges(mesh.edges, mesh.n_vertices, b=b)
    rng = np.random.default_rng(seed)
    A.vals[:] = rng.normal(size=A.vals.shape) * 0.1
    A.add_to_diagonal(shift)
    return A


class TestAdditiveSchwarz:
    def test_single_domain_is_global_ilu(self):
        m = box_mesh((4, 4, 3), jitter=0.1, seed=11)
        A = _diag_dominant_bcsr(m, seed=11)
        pc = AdditiveSchwarzILU(A)
        pc.update(A)
        rng = np.random.default_rng(12)
        r = rng.normal(size=A.shape[0])
        z = pc.apply(r)
        # strong diagonal dominance: ILU(0) is an excellent preconditioner
        assert np.linalg.norm(r - A.matvec(z)) < 0.1 * np.linalg.norm(r)

    def test_multi_domain_apply_covers_all_rows(self):
        m = box_mesh((4, 4, 4))
        A = _diag_dominant_bcsr(m, seed=13)
        from repro.partition import natural_partition

        labels = natural_partition(m.n_vertices, 4)
        pc = AdditiveSchwarzILU(A, labels=labels)
        pc.update(A)
        r = np.ones(A.shape[0])
        z = pc.apply(r)
        assert np.all(np.isfinite(z))
        assert np.abs(z).min() > 0  # every row received a solve

    def test_overlap_improves_preconditioner(self):
        m = box_mesh((5, 5, 4), jitter=0.05, seed=14)
        A = _diag_dominant_bcsr(m, seed=14, shift=4.0)
        from repro.partition import natural_partition

        labels = natural_partition(m.n_vertices, 4)
        rng = np.random.default_rng(15)
        r = rng.normal(size=A.shape[0])

        def quality(overlap):
            pc = AdditiveSchwarzILU(A, labels=labels, overlap=overlap)
            pc.update(A)
            z = pc.apply(r)
            return np.linalg.norm(r - A.matvec(z))

        assert quality(1) < quality(0)

    def test_apply_before_update_raises(self):
        m = box_mesh((3, 3, 3))
        A = _diag_dominant_bcsr(m)
        pc = AdditiveSchwarzILU(A)
        with pytest.raises(RuntimeError):
            pc.apply(np.ones(A.shape[0]))

    def test_more_subdomains_weaker_preconditioner(self):
        # reduced coupling degrades the preconditioner (the paper's MPI-only
        # convergence degradation mechanism)
        m = box_mesh((5, 5, 5), jitter=0.05, seed=16)
        A = _diag_dominant_bcsr(m, seed=16, shift=3.0)
        from repro.partition import natural_partition

        rng = np.random.default_rng(17)
        r = rng.normal(size=A.shape[0])

        def quality(k):
            labels = natural_partition(m.n_vertices, k)
            pc = AdditiveSchwarzILU(A, labels=labels)
            pc.update(A)
            z = pc.apply(r)
            return np.linalg.norm(r - A.matvec(z))

        assert quality(1) < quality(8)


class TestSteadySolve:
    @pytest.fixture(scope="class")
    def wing_solution(self):
        mesh = wing_mesh(n_around=20, n_radial=6, n_span=5)
        fld = FlowField(mesh)
        cfg = FlowConfig()
        res = solve_steady(
            fld, cfg, SolverOptions(max_steps=40, steady_rtol=1e-6)
        )
        return fld, cfg, res

    def test_converges(self, wing_solution):
        _, _, res = wing_solution
        assert res.converged
        assert res.final_residual < 1e-6 * res.initial_residual

    def test_velocity_divergence_small(self, wing_solution):
        # at steady state the artificial-compressibility continuity residual
        # (beta * net mass flux per CV) vanishes
        fld, cfg, res = wing_solution
        r = compute_residual(fld, res.q, cfg)
        mass = np.abs(r[:, 0]) / fld.volumes
        assert mass.max() < 1e-3

    def test_stagnation_pressure_rise(self, wing_solution):
        # flow decelerates at the leading edge: max pressure > freestream
        _, _, res = wing_solution
        assert res.q[:, 0].max() > 1e-3

    def test_linear_iteration_count_reasonable(self, wing_solution):
        _, _, res = wing_solution
        assert 10 < res.linear_iterations < 2000

    def test_ilu1_fewer_linear_iterations(self):
        # Table II: fill-in speeds convergence (fewer Krylov iterations)
        mesh = wing_mesh(n_around=16, n_radial=5, n_span=4)
        fld = FlowField(mesh)
        cfg = FlowConfig()
        r0 = solve_steady(
            fld, cfg, SolverOptions(max_steps=40, ilu_fill=0, gmres_rtol=1e-3)
        )
        r1 = solve_steady(
            fld, cfg, SolverOptions(max_steps=40, ilu_fill=1, gmres_rtol=1e-3)
        )
        assert r0.converged and r1.converged
        assert r1.linear_iterations < r0.linear_iterations

    def test_subdomain_solve_converges(self):
        mesh = wing_mesh(n_around=16, n_radial=5, n_span=4)
        fld = FlowField(mesh)
        cfg = FlowConfig()
        res = solve_steady(
            fld, cfg, SolverOptions(max_steps=50, n_subdomains=4)
        )
        assert res.converged


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 40), cond=st.floats(5.0, 40.0))
def test_gmres_property(seed, cond):
    """Property: GMRES solves random diagonally dominant systems."""
    rng = np.random.default_rng(seed)
    n = 30
    A = rng.normal(size=(n, n)) + cond * np.eye(n)
    x = rng.normal(size=n)
    res = gmres(lambda v: A @ v, A @ x, rtol=1e-11, restart=30, maxiter=300)
    assert res.converged
    np.testing.assert_allclose(res.x, x, rtol=1e-6, atol=1e-7)


class TestDefectCorrection:
    def test_matrix_based_solve_converges_first_order(self):
        # with a first-order residual the assembled operator is (nearly)
        # the true Jacobian, so matrix-based Newton converges fast
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        fld = FlowField(mesh)
        res = solve_steady(
            fld, FlowConfig(second_order=False),
            SolverOptions(max_steps=60, matrix_free=False),
        )
        assert res.converged

    def test_same_steady_state_as_jfnk(self):
        # both operators drive the same (first-order) nonlinear residual to
        # zero, so the steady states agree to solver tolerance
        mesh = wing_mesh(n_around=12, n_radial=4, n_span=3)
        fld = FlowField(mesh)
        cfg = FlowConfig(second_order=False)
        r_mf = solve_steady(fld, cfg, SolverOptions(max_steps=80))
        r_dc = solve_steady(
            fld, cfg, SolverOptions(max_steps=80, matrix_free=False)
        )
        assert r_mf.converged and r_dc.converged
        assert np.abs(r_mf.q - r_dc.q).max() < 1e-3

    def test_defect_correction_slower_on_second_order(self):
        # against the second-order residual the first-order operator is a
        # defect-correction iteration: it reduces the residual but cannot
        # match JFNK's Newton convergence
        mesh = wing_mesh(n_around=12, n_radial=4, n_span=3)
        fld = FlowField(mesh)
        cfg = FlowConfig()
        steps = 25
        r_mf = solve_steady(
            fld, cfg, SolverOptions(max_steps=steps, steady_rtol=0.0)
        )
        r_dc = solve_steady(
            fld, cfg,
            SolverOptions(max_steps=steps, steady_rtol=0.0, matrix_free=False),
        )
        assert r_dc.final_residual < r_dc.initial_residual  # still progresses
        assert r_mf.final_residual < r_dc.final_residual  # JFNK wins
