"""Tests for executable threading strategies: numerics must not change."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd import FlowConfig, FlowField, rusanov_edge_flux, scatter_edge_flux
from repro.mesh import delaunay_cloud_mesh, wing_mesh
from repro.smp import (
    EdgeLoopExecutor,
    make_edge_loop_options,
    metis_thread_labels,
    natural_thread_labels,
)


def flux_compute(field, q, beta):
    def compute(eidx):
        return rusanov_edge_flux(
            q[field.e0[eidx]], q[field.e1[eidx]], field.enormals[eidx], beta
        )

    return compute


@pytest.fixture(scope="module")
def wing_setup():
    mesh = wing_mesh(n_around=20, n_radial=6, n_span=5)
    field = FlowField(mesh)
    rng = np.random.default_rng(0)
    q = field.initial_state(FlowConfig()) + 0.05 * rng.normal(
        size=(field.n_vertices, 4)
    )
    return mesh, field, q


def sequential_reference(field, q, beta=4.0):
    flux = rusanov_edge_flux(q[field.e0], q[field.e1], field.enormals, beta)
    return scatter_edge_flux(flux, field.e0, field.e1, field.n_vertices)


class TestExecutorStructure:
    def test_sequential_single_list(self, wing_setup):
        mesh, _, _ = wing_setup
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 1, "sequential")
        assert len(ex._thread_edges) == 1
        assert ex.edges_per_thread()[0] == mesh.n_edges

    def test_atomic_partitions_edges(self, wing_setup):
        mesh, _, _ = wing_setup
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "atomic")
        assert ex.edges_per_thread().sum() == mesh.n_edges

    def test_replicate_covers_all_edges(self, wing_setup):
        mesh, _, _ = wing_setup
        labels = natural_thread_labels(mesh.n_vertices, 4)
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "replicate", labels)
        covered = np.zeros(mesh.n_edges, dtype=int)
        for eidx in ex._thread_edges:
            covered[eidx] += 1
        assert covered.min() >= 1  # every edge processed at least once
        # cut edges processed exactly twice
        l0 = labels[mesh.edges[:, 0]]
        l1 = labels[mesh.edges[:, 1]]
        np.testing.assert_array_equal(covered, 1 + (l0 != l1))

    def test_replication_fraction_matches_metric(self, wing_setup):
        mesh, _, _ = wing_setup
        labels = natural_thread_labels(mesh.n_vertices, 8)
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 8, "replicate", labels)
        extra = ex.edges_per_thread().sum() - mesh.n_edges
        assert extra / mesh.n_edges == pytest.approx(ex.replication())

    def test_metis_less_replication_than_natural(self, wing_setup):
        mesh, _, _ = wing_setup
        nat = EdgeLoopExecutor(
            mesh.edges, mesh.n_vertices, 8, "replicate",
            natural_thread_labels(mesh.n_vertices, 8))
        met = EdgeLoopExecutor(
            mesh.edges, mesh.n_vertices, 8, "replicate",
            metis_thread_labels(mesh.edges, mesh.n_vertices, 8, seed=2))
        assert met.replication() < nat.replication()

    def test_replicate_requires_labels(self, wing_setup):
        mesh, _, _ = wing_setup
        with pytest.raises(ValueError):
            EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "replicate")

    def test_unknown_strategy(self, wing_setup):
        mesh, _, _ = wing_setup
        with pytest.raises(ValueError):
            EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "bogus")


class TestNumericalEquivalence:
    """The paper's ground rule: every strategy reproduces the sequential
    result (up to floating-point summation order)."""

    def test_atomic_matches_sequential(self, wing_setup):
        _, field, q = wing_setup
        ref = sequential_reference(field, q)
        ex = EdgeLoopExecutor(field.mesh.edges, field.n_vertices, 7, "atomic")
        res = ex.execute(flux_compute(field, q, 4.0))
        np.testing.assert_allclose(res, ref, rtol=1e-12, atol=1e-12)

    def test_natural_replication_matches(self, wing_setup):
        _, field, q = wing_setup
        ref = sequential_reference(field, q)
        labels = natural_thread_labels(field.n_vertices, 6)
        ex = EdgeLoopExecutor(
            field.mesh.edges, field.n_vertices, 6, "replicate", labels)
        res = ex.execute(flux_compute(field, q, 4.0))
        np.testing.assert_allclose(res, ref, rtol=1e-12, atol=1e-12)

    def test_metis_replication_matches(self, wing_setup):
        _, field, q = wing_setup
        ref = sequential_reference(field, q)
        labels = metis_thread_labels(field.mesh.edges, field.n_vertices, 6, seed=3)
        ex = EdgeLoopExecutor(
            field.mesh.edges, field.n_vertices, 6, "replicate", labels)
        res = ex.execute(flux_compute(field, q, 4.0))
        np.testing.assert_allclose(res, ref, rtol=1e-12, atol=1e-12)


class TestOptionsBuilder:
    def test_options_carry_structure(self, wing_setup):
        mesh, _, _ = wing_setup
        labels = natural_thread_labels(mesh.n_vertices, 4)
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "replicate", labels)
        opts = make_edge_loop_options(ex, layout="aos", simd=True)
        assert opts.n_threads == 4
        assert opts.strategy == "replicate"
        np.testing.assert_array_equal(opts.edges_per_thread, ex.edges_per_thread())

    def test_sequential_options_no_counts(self, wing_setup):
        mesh, _, _ = wing_setup
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 1, "sequential")
        opts = make_edge_loop_options(ex)
        assert opts.edges_per_thread is None


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(50, 120),
    seed=st.integers(0, 30),
    t=st.sampled_from([2, 3, 5, 8]),
    strategy=st.sampled_from(["atomic", "replicate"]),
)
def test_strategy_equivalence_property(n, seed, t, strategy):
    """Property: all strategies reproduce the sequential edge-loop result on
    arbitrary meshes, thread counts and states."""
    mesh = delaunay_cloud_mesh(n, seed=seed)
    field = FlowField(mesh)
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(field.n_vertices, 4))
    ref = sequential_reference(field, q)
    labels = (
        natural_thread_labels(field.n_vertices, t)
        if strategy == "replicate"
        else None
    )
    ex = EdgeLoopExecutor(mesh.edges, field.n_vertices, t, strategy, labels)
    res = ex.execute(flux_compute(field, q, 4.0))
    np.testing.assert_allclose(res, ref, rtol=1e-11, atol=1e-11)


class TestColoringStrategy:
    def test_coloring_matches_sequential(self, wing_setup):
        _, field, q = wing_setup
        ref = sequential_reference(field, q)
        ex = EdgeLoopExecutor(field.mesh.edges, field.n_vertices, 6, "coloring")
        res = ex.execute(flux_compute(field, q, 4.0))
        np.testing.assert_allclose(res, ref, rtol=1e-12, atol=1e-12)

    def test_coloring_covers_all_edges_once(self, wing_setup):
        mesh, _, _ = wing_setup
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "coloring")
        covered = np.zeros(mesh.n_edges, dtype=int)
        for eidx in ex._thread_edges:
            covered[eidx] += 1
        assert np.all(covered == 1)

    def test_coloring_counts_colors(self, wing_setup):
        mesh, _, _ = wing_setup
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "coloring")
        assert ex.n_colors >= 14  # >= max vertex degree of a tet mesh

    def test_coloring_options_carry_colors(self, wing_setup):
        mesh, _, _ = wing_setup
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 4, "coloring")
        opts = make_edge_loop_options(ex)
        assert opts.n_colors == ex.n_colors

    def test_coloring_modeled_slower_than_metis(self, wing_setup):
        from repro.smp import XEON_E5_2690_V2, edge_loop_time, flux_kernel_work

        mesh, _, _ = wing_setup
        work = flux_kernel_work(mesh.n_edges)
        ex_c = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 8, "coloring")
        ex_m = EdgeLoopExecutor(
            mesh.edges, mesh.n_vertices, 8, "replicate",
            metis_thread_labels(mesh.edges, mesh.n_vertices, 8, seed=0))
        tc = edge_loop_time(XEON_E5_2690_V2, work, make_edge_loop_options(ex_c))
        tm = edge_loop_time(XEON_E5_2690_V2, work, make_edge_loop_options(ex_m))
        assert tm < tc
