"""Tests for aerodynamic force integration."""

import pytest

from repro.cfd import FlowConfig, FlowField, integrate_forces
from repro.mesh import box_mesh, wing_mesh
from repro.solver import SolverOptions, solve_steady


@pytest.fixture(scope="module")
def wing_field():
    return FlowField(wing_mesh(n_around=20, n_radial=6, n_span=5))


class TestIntegrateForces:
    def test_uniform_pressure_zero_force(self, wing_field):
        # constant pressure over a closed-ish surface: the wing surface is
        # closed in x-y (O-grid), so the pressure integral's x and y
        # components vanish
        cfg = FlowConfig()
        q = wing_field.initial_state(cfg)
        q[:, 0] = 7.0
        f = integrate_forces(wing_field, q, cfg)
        # wall normals of a closed section sum to ~0 in the section plane
        assert abs(f.force[0]) < 1e-8 * 7.0 * wing_field.n_vertices
        assert abs(f.force[1]) < 1e-8 * 7.0 * wing_field.n_vertices

    def test_positive_lift_at_incidence(self, wing_field):
        cfg = FlowConfig(aoa_deg=3.0)
        res = solve_steady(wing_field, cfg, SolverOptions(max_steps=40))
        assert res.converged
        f = integrate_forces(wing_field, res.q, cfg)
        assert f.cl > 0.02

    def test_symmetric_section_no_lift_at_zero_aoa(self, wing_field):
        cfg = FlowConfig(aoa_deg=0.0)
        res = solve_steady(wing_field, cfg, SolverOptions(max_steps=40))
        assert res.converged
        f = integrate_forces(wing_field, res.q, cfg)
        assert abs(f.cl) < 0.02

    def test_lift_grows_with_aoa(self, wing_field):
        cls = []
        for aoa in (1.0, 4.0):
            cfg = FlowConfig(aoa_deg=aoa)
            res = solve_steady(wing_field, cfg, SolverOptions(max_steps=40))
            assert res.converged
            cls.append(integrate_forces(wing_field, res.q, cfg).cl)
        assert cls[1] > cls[0]

    def test_no_wall_raises(self):
        field = FlowField(box_mesh((3, 3, 3)))
        cfg = FlowConfig()
        with pytest.raises(ValueError):
            integrate_forces(field, field.initial_state(cfg), cfg)

    def test_reference_area_positive(self, wing_field):
        cfg = FlowConfig()
        f = integrate_forces(wing_field, wing_field.initial_state(cfg), cfg)
        assert f.reference_area > 0
