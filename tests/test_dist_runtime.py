"""Tests for the process-rank distributed runtime.

Covers the communicator's correctness contracts (cross-process halo ghosts
identical to direct global indexing, deterministic collectives), the
solver-level equivalence the runtime promises (an N-rank NKS solve matches
the serial one to the outer tolerance; plain and pipelined modes are
bitwise identical), the observability story (per-rank halo / interior /
allreduce spans folded into the trace, with real overlap in pipelined
mode), and failure containment (a SIGKILLed rank surfaces as an error and
no ``/dev/shm`` segment survives).
"""

import os
import signal
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd import FlowConfig, FlowField
from repro.dist import DomainDecomposition
from repro.dist.runtime import (
    Communicator,
    DistRuntime,
    ShmTransport,
    distributed_solve,
)
from repro.mesh import delaunay_cloud_mesh, wing_mesh
from repro.obs import Tracer, use_tracer
from repro.partition import partition_graph
from repro.smp import SharedArrayPool
from repro.solver import SolverOptions
from repro.solver.newton import solve_steady


def _assert_unlinked(names):
    """Every OS-level segment name must be gone (attach must fail)."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _decomp(n=60, seed=0, ranks=2):
    mesh = delaunay_cloud_mesh(n, seed=seed)
    labels = partition_graph(mesh.edges, mesh.n_vertices, ranks, seed=seed)
    return mesh, DomainDecomposition(mesh.edges, labels)


class TestSharedArrayPoolAttach:
    def test_attach_shares_memory_without_ownership(self):
        with SharedArrayPool() as owner:
            a = owner.zeros("a", (4, 3))
            a[1, 2] = 7.0
            attached = SharedArrayPool.attach(owner.export_spec())
            try:
                view = attached.array("a")
                assert view[1, 2] == 7.0
                view[0, 0] = -1.0
                assert a[0, 0] == -1.0  # same physical pages
                with pytest.raises(RuntimeError):
                    attached.zeros("b", (2,))  # attached pools don't allocate
            finally:
                attached.close()
            # the attached close must NOT have unlinked the owner's segment
            name = owner.segment_names()["a"]
            shared_memory.SharedMemory(name=name).close()

    def test_attached_close_is_idempotent(self):
        """Regression: closing an attached pool twice (or after the owner)
        must be a silent no-op, never a double-unlink."""
        owner = SharedArrayPool()
        owner.zeros("x", (8,))
        names = list(owner.segment_names().values())
        attached = SharedArrayPool.attach(owner.export_spec())
        attached.close()
        attached.close()
        assert attached.closed
        owner.close()
        attached.close()  # after the owner unlinked: still a no-op
        _assert_unlinked(names)

    def test_attach_unknown_segment_raises_cleanly(self):
        with pytest.raises(FileNotFoundError):
            SharedArrayPool.attach(
                {"ghost": ("psm_no_such_segment", (4,), "<f8")}
            )


class TestCommunicatorLocal:
    """Single-rank communicator semantics (no fork needed)."""

    @pytest.fixture()
    def comm(self):
        import multiprocessing as mp

        mesh, decomp = _decomp(ranks=1)
        transport = ShmTransport(decomp, mp.get_context("fork"))
        comm = Communicator(transport, 0, attach=False)
        yield comm
        transport.close()

    def test_single_rank_allreduce_is_identity(self, comm):
        assert comm.allreduce(3.5) == 3.5
        v = np.array([1.0, -2.0, 4.0])
        np.testing.assert_array_equal(comm.allreduce(v), v)
        assert comm.n_allreduces == 2
        assert comm.allreduce_seconds >= 0.0

    def test_reduction_wider_than_scratch_rejected(self, comm):
        with pytest.raises(ValueError, match="width"):
            comm.allreduce(np.zeros(1000))

    def test_unknown_op_and_algo_rejected(self, comm):
        with pytest.raises(ValueError, match="op"):
            comm.allreduce(1.0, op="prod")
        with pytest.raises(ValueError, match="algorithm"):
            Communicator(comm._t, 0, algo="butterfly", attach=False)


@settings(max_examples=5, deadline=None)
@given(
    n=st.integers(40, 80),
    seed=st.integers(0, 12),
    ranks=st.integers(2, 4),
)
def test_cross_process_halo_matches_global_indexing(n, seed, ranks):
    """Property: after a real pack -> shm -> unpack exchange, every rank's
    ghost slots hold exactly what direct global indexing would give."""
    mesh, decomp = _decomp(n=n, seed=seed, ranks=ranks)
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(mesh.n_vertices, 4))

    def program(comm):
        dom = decomp.domains[comm.rank]
        local = np.zeros((dom.n_local, 4))
        local[: dom.n_owned] = q[dom.owned]
        comm.halo_exchange([local])
        flat = np.zeros(dom.n_local)  # 1-d payloads pack too
        flat[: dom.n_owned] = q[dom.owned, 0]
        comm.halo_exchange([flat])
        return local, flat

    with DistRuntime(decomp, timeout=60) as rt:
        results = rt.run(program)
    for rr in results:
        dom = decomp.domains[rr.rank]
        gids = np.concatenate([dom.owned, dom.ghosts])
        local, flat = rr.value
        np.testing.assert_array_equal(local, q[gids])
        np.testing.assert_array_equal(flat, q[gids, 0])


class TestAllreduce:
    @pytest.mark.parametrize("algo", ["flat", "tree"])
    def test_deterministic_and_identical_across_ranks(self, algo):
        ranks = 4
        mesh, decomp = _decomp(n=70, seed=3, ranks=ranks)
        rng = np.random.default_rng(11)
        contrib = rng.normal(size=(ranks, 8))

        def program(comm):
            vec = comm.allreduce(contrib[comm.rank])
            scal = comm.allreduce(float(contrib[comm.rank, 0]))
            mx = comm.allreduce(float(comm.rank) * 1.5, op="max")
            mn = comm.allreduce(contrib[comm.rank], op="min")
            return vec, scal, mx, mn

        def run_once():
            with DistRuntime(decomp, allreduce_algo=algo, timeout=60) as rt:
                return [rr.value for rr in rt.run(program)]

        first, second = run_once(), run_once()
        vec0, scal0, mx0, mn0 = first[0]
        for vec, scal, mx, mn in first[1:]:
            # every rank sees the identical bits within a run
            np.testing.assert_array_equal(vec, vec0)
            assert scal == scal0
            assert mx == mx0
            np.testing.assert_array_equal(mn, mn0)
        for (va, sa, xa, na), (vb, sb, xb, nb) in zip(first, second):
            # and re-running reproduces them exactly (determinism)
            np.testing.assert_array_equal(va, vb)
            assert sa == sb and xa == xb
            np.testing.assert_array_equal(na, nb)
        assert mx0 == 4.5
        np.testing.assert_array_equal(mn0, contrib.min(axis=0))
        np.testing.assert_allclose(vec0, contrib.sum(axis=0), rtol=1e-13)

    def test_flat_sum_is_exact_rank_order_accumulation(self):
        ranks = 3
        mesh, decomp = _decomp(n=60, seed=5, ranks=ranks)
        rng = np.random.default_rng(2)
        contrib = rng.normal(size=(ranks, 6)) * 10.0 ** rng.integers(
            -8, 8, size=(ranks, 1)
        )

        def program(comm):
            return comm.allreduce(contrib[comm.rank])

        with DistRuntime(decomp, timeout=60) as rt:
            results = rt.run(program)
        ref = contrib[0].copy()
        for r in range(1, ranks):
            ref += contrib[r]
        for rr in results:
            np.testing.assert_array_equal(rr.value, ref)

    def test_tree_sum_follows_binomial_order(self):
        ranks = 4
        mesh, decomp = _decomp(n=60, seed=6, ranks=ranks)
        rng = np.random.default_rng(4)
        contrib = rng.normal(size=(ranks, 5))

        def tree_ref(r):
            acc = contrib[r].copy()
            for c in (2 * r + 1, 2 * r + 2):
                if c < ranks:
                    acc += tree_ref(c)
            return acc

        def program(comm):
            return comm.allreduce(contrib[comm.rank])

        with DistRuntime(decomp, allreduce_algo="tree", timeout=60) as rt:
            results = rt.run(program)
        for rr in results:
            np.testing.assert_array_equal(rr.value, tree_ref(0))


@pytest.fixture(scope="module")
def wing_solve():
    """Serial reference plus 4-rank plain/pipelined solves, solved once."""
    mesh = wing_mesh(n_around=16, n_radial=5, n_span=4)
    field = FlowField(mesh)
    config = FlowConfig()
    opts = SolverOptions(max_steps=40, steady_rtol=1e-11, steady_atol=1e-13)
    serial = solve_steady(field, config, opts)
    out = {"serial": serial, "mesh": mesh}
    for pipelined in (False, True):
        out["pipelined" if pipelined else "plain"] = distributed_solve(
            field, config, opts, n_ranks=4, pipelined=pipelined, seed=0
        )
    return out


class TestDistributedSolve:
    @pytest.mark.parametrize("mode", ["plain", "pipelined"])
    def test_four_ranks_match_serial(self, wing_solve, mode):
        serial, dres = wing_solve["serial"], wing_solve[mode]
        assert serial.converged and dres.result.converged
        assert dres.result.steps == serial.steps
        assert np.max(np.abs(dres.result.q - serial.q)) <= 1e-10

    def test_plain_and_pipelined_bitwise_identical(self, wing_solve):
        """Overlap reorders time, never arithmetic: both modes run the
        identical interior-then-cut accumulation order."""
        qa = wing_solve["plain"].result.q
        qb = wing_solve["pipelined"].result.q
        assert np.array_equal(qa, qb)

    def test_measured_breakdown_is_populated(self, wing_solve):
        for mode in ("plain", "pipelined"):
            bd = wing_solve[mode].comm_breakdown()
            assert 0.0 < bd["halo_seconds"] < bd["elapsed_seconds"]
            assert 0.0 < bd["allreduce_seconds"] < bd["elapsed_seconds"]
            assert 0.0 < bd["comm_fraction"] < 1.0
            stats = wing_solve[mode].rank_stats
            assert len(stats) == 4
            assert all(s["exchanges"] > 0 for s in stats)
            assert all(s["allreduces"] > 0 for s in stats)
            # replicated control flow: every rank runs the same reductions
            assert len({s["allreduces"] for s in stats}) == 1

    def test_tree_allreduce_matches_serial_too(self, wing_solve):
        mesh, serial = wing_solve["mesh"], wing_solve["serial"]
        opts = SolverOptions(
            max_steps=40, steady_rtol=1e-11, steady_atol=1e-13
        )
        dres = distributed_solve(
            FlowField(mesh), FlowConfig(), opts, n_ranks=3,
            pipelined=True, seed=0, allreduce_algo="tree",
        )
        assert np.max(np.abs(dres.result.q - serial.q)) <= 1e-10

    def test_no_shm_segments_leak(self, wing_solve):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        leaked = [n for n in os.listdir("/dev/shm") if n.startswith("psm_")]
        assert leaked == []

    def test_fused_rank_program_bitwise_matches_unfused(self, wing_solve):
        """The kgir-style fused rank program (shared recon/minmax pass,
        precompiled limiter scatter) is an execution detail, never a
        numerics change."""
        mesh = wing_solve["mesh"]
        opts = SolverOptions(max_steps=6, steady_rtol=1e-11)
        runs = {
            fuse: distributed_solve(
                FlowField(mesh), FlowConfig(), opts, n_ranks=2,
                pipelined=False, seed=0, fuse=fuse,
            )
            for fuse in (False, True)
        }
        assert np.array_equal(runs[True].result.q, runs[False].result.q)

    def test_red_width_follows_gmres_restart(self):
        """Regression: deep GMRES restarts used to hit the fixed 64-slot
        reduction-scratch ceiling mid-solve."""
        from repro.dist.runtime.driver import _red_width_for

        assert _red_width_for(SolverOptions()) == 64
        assert _red_width_for(SolverOptions(gmres_restart=40)) == 64
        assert _red_width_for(SolverOptions(gmres_restart=96)) == 98
        assert _red_width_for(SolverOptions(gmres_restart=200)) == 202

    def test_restart_96_solve_no_red_slot_ceiling(self, wing_solve):
        """End-to-end: restart 96 forces reductions wider than the old
        fixed scratch; the widened allreduce ring must absorb them."""
        mesh, serial = wing_solve["mesh"], wing_solve["serial"]
        opts = SolverOptions(
            max_steps=40, steady_rtol=1e-11, steady_atol=1e-13,
            gmres_restart=96,
        )
        ref = solve_steady(FlowField(mesh), FlowConfig(), opts)
        dres = distributed_solve(
            FlowField(mesh), FlowConfig(), opts, n_ranks=2, seed=0,
        )
        assert dres.result.converged
        assert np.max(np.abs(dres.result.q - ref.q)) <= 1e-10


class TestSpans:
    def _solve_spans(self, pipelined):
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        tracer = Tracer()
        opts = SolverOptions(max_steps=3, steady_rtol=1e-14)
        with use_tracer(tracer):
            distributed_solve(
                FlowField(mesh), FlowConfig(), opts, n_ranks=2,
                pipelined=pipelined, seed=0,
            )
        spans = {}
        for s in tracer.walk():
            spans.setdefault(s.name, []).append(s)
        return spans

    def test_rank_spans_fold_into_trace(self):
        spans = self._solve_spans(pipelined=True)
        assert "dist-solve" in spans
        for r in range(2):
            assert f"rank{r}" in spans
            for kind in ("halo", "interior", "allreduce"):
                assert spans[f"rank{r}.{kind}"], f"missing rank{r}.{kind}"
        for lst in spans.values():
            for s in lst:
                assert s.t1 >= s.t0

    def test_pipelined_interior_overlaps_halo_window(self):
        """The acceptance criterion: with overlap on, some interior span
        starts before its rank's enclosing halo span ends."""
        spans = self._solve_spans(pipelined=True)
        overlapped = 0
        for r in range(2):
            for h in spans[f"rank{r}.halo"]:
                for i in spans[f"rank{r}.interior"]:
                    if h.t0 <= i.t0 and i.t0 < h.t1:
                        overlapped += 1
        assert overlapped > 0

    def test_plain_interior_disjoint_from_halo(self):
        spans = self._solve_spans(pipelined=False)
        for r in range(2):
            for h in spans[f"rank{r}.halo"]:
                for i in spans[f"rank{r}.interior"]:
                    assert i.t1 <= h.t0 or i.t0 >= h.t1, (
                        "plain mode must not overlap compute with exchange"
                    )


class TestFailureContainment:
    def test_killed_rank_surfaces_and_no_shm_leak(self):
        """Regression: SIGKILL one rank mid-program; the parent must turn
        the death into a RuntimeError and still unlink every segment."""
        mesh, decomp = _decomp(n=60, seed=1, ranks=2)
        rt = DistRuntime(decomp, timeout=30)
        names = list(rt.transport.pool.segment_names().values())

        def program(comm):
            comm.barrier()
            time.sleep(30.0)  # the parent kills us long before this ends
            return None

        def killer():
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if rt._procs:
                    os.kill(rt._procs[0].pid, signal.SIGKILL)
                    return
                time.sleep(0.02)

        t = threading.Thread(target=killer)
        t.start()
        try:
            with pytest.raises(RuntimeError, match="died|pipe"):
                rt.run(program)
        finally:
            t.join()
            rt.close()
        _assert_unlinked(names)

    def test_rank_exception_propagates_with_traceback(self):
        mesh, decomp = _decomp(n=50, seed=2, ranks=2)

        def program(comm):
            if comm.rank == 1:
                raise ValueError("deliberate rank failure")
            return comm.allreduce(1.0)  # rank 0 blocks, then times out

        with DistRuntime(decomp, timeout=10) as rt:
            with pytest.raises(RuntimeError, match="deliberate|CommTimeout"):
                rt.run(program)

    def test_payload_wider_than_mailbox_rejected(self):
        mesh, decomp = _decomp(n=50, seed=3, ranks=2)

        def program(comm):
            dom = decomp.domains[comm.rank]
            big = np.zeros((dom.n_local, 17))  # mailbox width is 16
            comm.halo_exchange([big])

        with DistRuntime(decomp, timeout=15) as rt:
            with pytest.raises(RuntimeError, match="exceeds mailbox"):
                rt.run(program)

    def test_runtime_close_is_idempotent(self):
        mesh, decomp = _decomp(n=50, seed=4, ranks=2)
        rt = DistRuntime(decomp)
        names = list(rt.transport.pool.segment_names().values())
        rt.close()
        rt.close()
        _assert_unlinked(names)
        with pytest.raises(RuntimeError, match="closed"):
            rt.run(lambda comm: None)
