"""Tests for the process-parallel ILU/TRSV backend and its plumbing.

Covers the numerics contract (both synchronization strategies bitwise
identical to the serial kernels for any worker count), the dispatch
registry, the per-worker execution plans, failure containment (crashed
workers must not leak ``/dev/shm`` segments), the TRSV bench/gate
machinery the CI job runs, and the CLI surface.
"""

import os
import signal
import threading
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser
from repro.mesh import delaunay_cloud_mesh, wing_mesh
from repro.obs import Tracer, use_tracer
from repro.smp.bench import (
    _trsv_matrix,
    append_history,
    load_history,
    rolling_trsv_gate_failures,
    run_trsv_scaling,
    trsv_gate_failures,
)
from repro.smp.sparse_parallel import SPARSE_STRATEGIES, SparseProcessBackend
from repro.sparse import (
    TrsvWorkspace,
    get_sparse_backend,
    use_sparse_backend,
)
from repro.sparse.ilu import build_ilu_plan, ilu_factorize
from repro.sparse.trsv import trsv_solve, trsv_solve_sequential


def _assert_unlinked(names):
    """Every OS-level segment name must be gone (attach must fail)."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _problem(mesh, seed=3, fill=0):
    """(matrix, plan, rhs) on the mesh's Jacobian pattern."""
    matrix = _trsv_matrix(mesh, seed)
    plan = build_ilu_plan(
        matrix.rowptr, matrix.cols, b=matrix.b, fill_level=fill
    )
    rng = np.random.default_rng(seed + 1)
    return matrix, plan, rng.normal(size=(plan.n, plan.b))


@pytest.fixture(scope="module")
def wing_problem():
    mesh = wing_mesh(n_around=16, n_radial=6, n_span=5)
    return _problem(mesh)


class TestSerialEquivalence:
    @pytest.mark.parametrize("strategy", SPARSE_STRATEGIES)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_factor_and_solve_bitwise_match_serial(
        self, wing_problem, strategy, workers
    ):
        matrix, plan, rhs = wing_problem
        ref_factor = ilu_factorize(matrix, plan)
        ref_x = trsv_solve(ref_factor, rhs)
        with SparseProcessBackend(workers, strategy=strategy) as be:
            factor = be.factorize(matrix, plan)
            # the parallel factorization is *bitwise* the serial one:
            # chunks are contiguous slices of each wavefront and every
            # batched operation preserves the serial accumulation order
            np.testing.assert_array_equal(factor.vals, ref_factor.vals)
            np.testing.assert_array_equal(
                factor.diag_inv, ref_factor.diag_inv
            )
            np.testing.assert_array_equal(be.solve(factor, rhs), ref_x)

    def test_solutions_identical_across_strategies_and_workers(
        self, wing_problem
    ):
        matrix, plan, rhs = wing_problem
        xs = []
        for strategy in SPARSE_STRATEGIES:
            for workers in (1, 2, 4):
                with SparseProcessBackend(workers, strategy=strategy) as be:
                    xs.append(be.solve(be.factorize(matrix, plan), rhs))
        for x in xs[1:]:
            np.testing.assert_array_equal(x, xs[0])

    def test_repeat_factorize_solve_reuses_fleet(self, wing_problem):
        matrix, plan, rhs = wing_problem
        with SparseProcessBackend(2) as be:
            f1 = be.factorize(matrix, plan)
            x1 = be.solve(f1, rhs).copy()
            f2 = be.factorize(matrix, plan)  # warm workers, same segments
            assert f2.vals is f1.vals
            np.testing.assert_array_equal(be.solve(f2, rhs), x1)

    def test_solve_out_and_flat_rhs(self, wing_problem):
        matrix, plan, rhs = wing_problem
        with SparseProcessBackend(2) as be:
            factor = be.factorize(matrix, plan)
            x = be.solve(factor, rhs)
            out = np.empty_like(rhs)
            assert be.solve(factor, rhs, out=out) is out
            np.testing.assert_array_equal(out, x)
            flat = be.solve(factor, rhs.reshape(-1))
            assert flat.shape == (plan.n * plan.b,)
            np.testing.assert_array_equal(flat.reshape(plan.n, plan.b), x)

    def test_solve_result_is_not_a_shared_view(self, wing_problem):
        """Krylov callers keep each preconditioned vector: a later solve
        must never mutate an earlier result."""
        matrix, plan, rhs = wing_problem
        with SparseProcessBackend(2) as be:
            factor = be.factorize(matrix, plan)
            x1 = be.solve(factor, rhs)
            snap = x1.copy()
            be.solve(factor, 2.0 * rhs)
            np.testing.assert_array_equal(x1, snap)


@settings(max_examples=4, deadline=None)
@given(
    n=st.integers(40, 80),
    seed=st.integers(0, 20),
    fill=st.integers(0, 1),
    workers=st.integers(1, 4),
    strategy=st.sampled_from(SPARSE_STRATEGIES),
)
def test_sparse_backend_equivalence_property(n, seed, fill, workers, strategy):
    """Property (paper Section V.B): both synchronization strategies
    reproduce serial ILU + sequential substitution within 1e-12 on
    arbitrary small meshes, fill levels 0/1 and worker counts 1-4."""
    mesh = delaunay_cloud_mesh(n, seed=seed)
    matrix, plan, rhs = _problem(mesh, seed=seed, fill=fill)
    ref = trsv_solve_sequential(ilu_factorize(matrix, plan), rhs)
    with SparseProcessBackend(workers, strategy=strategy) as be:
        x = be.solve(be.factorize(matrix, plan), rhs)
    np.testing.assert_allclose(x, ref, rtol=1e-12, atol=1e-12)


class TestDispatch:
    def test_kernels_route_through_installed_backend(self, wing_problem):
        matrix, plan, rhs = wing_problem
        ref_x = trsv_solve(ilu_factorize(matrix, plan), rhs)
        with SparseProcessBackend(2) as be, use_sparse_backend(be):
            assert get_sparse_backend() is be
            factor = ilu_factorize(matrix, plan)
            assert factor.vals is be._fleets[id(plan)].vals  # routed
            np.testing.assert_array_equal(trsv_solve(factor, rhs), ref_x)
        assert get_sparse_backend() is None

    def test_serial_factor_still_solves_under_backend(self, wing_problem):
        """A factor produced before the backend was installed must keep
        using the sequential path (handles_factor declines it)."""
        matrix, plan, rhs = wing_problem
        factor = ilu_factorize(matrix, plan)
        ref_x = trsv_solve(factor, rhs)
        with SparseProcessBackend(2) as be, use_sparse_backend(be):
            assert not be.handles_factor(factor)
            np.testing.assert_array_equal(trsv_solve(factor, rhs), ref_x)

    def test_handles_plan_respects_capacity(self, wing_problem):
        matrix, plan, rhs = wing_problem
        mesh2 = delaunay_cloud_mesh(50, seed=5)
        _, plan2, _ = _problem(mesh2)
        with SparseProcessBackend(1, max_plans=1) as be:
            assert be.handles_plan(plan)
            be.factorize(matrix, plan)
            assert be.handles_plan(plan)  # known plan stays accepted
            assert not be.handles_plan(plan2)  # capacity reached

    def test_nested_backends_innermost_wins(self, wing_problem):
        matrix, plan, rhs = wing_problem
        with SparseProcessBackend(1) as outer, use_sparse_backend(outer):
            with SparseProcessBackend(2) as inner, use_sparse_backend(inner):
                assert get_sparse_backend() is inner
            assert get_sparse_backend() is outer
        assert get_sparse_backend() is None

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SparseProcessBackend(2, strategy="bogus")
        with pytest.raises(ValueError):
            SparseProcessBackend(0)


class TestWorkspace:
    def test_workspace_and_out_paths_match_plain_solve(self, wing_problem):
        matrix, plan, rhs = wing_problem
        factor = ilu_factorize(matrix, plan)
        ref = trsv_solve(factor, rhs)
        work = TrsvWorkspace.for_plan(plan)
        assert work.fits(plan)
        out = np.empty_like(rhs)
        res = trsv_solve(factor, rhs, out=out, work=work)
        assert res is out
        np.testing.assert_array_equal(out, ref)
        # the workspace is scratch only: reusing it must not change results
        np.testing.assert_array_equal(
            trsv_solve(factor, 3.0 * rhs, work=work),
            trsv_solve(factor, 3.0 * rhs),
        )

    def test_schedule_width_stats(self, wing_problem):
        _, plan, _ = wing_problem
        for sched in (plan.schedule, plan.schedule_back):
            widths = sched.widths()
            assert sched.max_level_width == widths.max()
            hist = sched.width_histogram()
            assert sum(cnt for _, _, cnt in hist) == len(sched.levels)
            for lo, hi, cnt in hist:
                assert cnt == int(((widths >= lo) & (widths <= hi)).sum())


class TestExecPlans:
    def test_worker_plans_cover_every_level_exactly(self, wing_problem):
        _, plan, _ = wing_problem
        ep = plan.worker_plans(3)
        assert ep.n_workers == 3
        for lvl, rows in enumerate(plan.schedule.levels):
            got = np.concatenate([w.fwd[lvl].rows for w in ep.workers])
            np.testing.assert_array_equal(np.sort(got), np.sort(rows))
        assert plan.worker_plans(3) is ep  # cached

    def test_p2p_sparsification_reduces_sync(self, wing_problem):
        from repro.sparse.p2p import (
            build_dependency_graph,
            cross_thread_syncs,
            sparsify_transitive,
        )

        _, plan, _ = wing_problem
        ep = plan.worker_plans(4)
        assert ep.cross_deps() == ep.cross_deps_fwd + ep.cross_deps_bwd
        assert ep.cross_deps() > 0
        assert ep.n_levels_fwd == len(plan.schedule.levels)
        # the retained forward waits must be fewer than the unsparsified
        # cross-worker dependency count — that reduction is the whole point
        full = build_dependency_graph(plan.rowptr, plan.cols)
        owner = np.empty(plan.n, dtype=np.int64)
        for w in ep.workers:
            for ch in w.fwd:
                owner[ch.rows] = w.wid
        assert ep.cross_deps_fwd < cross_thread_syncs(full, owner)
        assert ep.cross_deps_fwd == cross_thread_syncs(
            sparsify_transitive(full), owner
        )


class TestSpansAndFailure:
    def test_worker_spans_reach_the_tracer(self, wing_problem):
        matrix, plan, rhs = wing_problem
        tracer = Tracer()
        with SparseProcessBackend(2) as be, use_tracer(tracer):
            with tracer.span("root"):
                factor = be.factorize(matrix, plan)
                be.solve(factor, rhs)
        names = {s.name for s in tracer.walk()}
        assert {"ilu.w0", "ilu.w1", "trsv.w0", "trsv.w1"} <= names
        for s in tracer.walk():
            if s.name.startswith(("ilu.w", "trsv.w")):
                assert s.attrs["strategy"] == "p2p"
                assert s.attrs["workers"] == 2

    def test_span_sink_override(self, wing_problem):
        matrix, plan, rhs = wing_problem
        seen = []
        sink = lambda name, t0, t1, **at: seen.append((name, at))  # noqa: E731
        with SparseProcessBackend(2, span_sink=sink) as be:
            be.solve(be.factorize(matrix, plan), rhs)
        assert {n for n, _ in seen} == {
            "ilu.w0", "ilu.w1", "trsv.w0", "trsv.w1"
        }

    def test_killed_worker_does_not_leak_segments(self, wing_problem):
        """Regression: SIGKILL a worker mid-task; the parent must detect
        the death, refuse further work, and still unlink every /dev/shm
        segment on close."""
        matrix, plan, rhs = wing_problem
        be = SparseProcessBackend(2)
        be.factorize(matrix, plan)
        names = list(be.segment_names().values())
        assert names
        victim = be._fleets[id(plan)].workers[0].pid
        timer = threading.Timer(0.2, os.kill, args=(victim, signal.SIGKILL))
        timer.start()
        try:
            with pytest.raises(RuntimeError, match="died|pipe"):
                be._debug_sleep(plan, 3.0)
            assert not be.handles_plan(plan)
            with pytest.raises(RuntimeError):
                be.solve(be._fleets[id(plan)].factor, rhs)
        finally:
            timer.cancel()
            be.close()
        _assert_unlinked(names)

    def test_close_is_idempotent_and_final(self, wing_problem):
        matrix, plan, rhs = wing_problem
        be = SparseProcessBackend(2)
        be.factorize(matrix, plan)
        names = list(be.segment_names().values())
        be.close()
        be.close()
        assert be.closed
        assert not be.handles_plan(plan)
        with pytest.raises(RuntimeError):
            be.factorize(matrix, plan)
        _assert_unlinked(names)


class TestSolverIntegration:
    def test_newton_solve_matches_serial(self):
        from repro.cfd import FlowConfig, FlowField
        from repro.solver import SolverOptions, solve_steady

        mesh = wing_mesh(n_around=12, n_radial=5, n_span=4)
        field = FlowField(mesh)
        config = FlowConfig()
        base = dict(max_steps=4, steady_rtol=1e-10)
        ref = solve_steady(field, config, SolverOptions(**base))
        for strategy in SPARSE_STRATEGIES:
            res = solve_steady(
                field, config,
                SolverOptions(
                    sparse_backend="process", sparse_strategy=strategy,
                    sparse_workers=2, **base,
                ),
            )
            np.testing.assert_array_equal(res.q, ref.q)

    def test_unknown_backend_rejected(self):
        from repro.cfd import FlowConfig, FlowField
        from repro.solver import SolverOptions, solve_steady

        field = FlowField(wing_mesh(n_around=12, n_radial=5, n_span=4))
        with pytest.raises(ValueError, match="sparse backend"):
            solve_steady(
                field, FlowConfig(),
                SolverOptions(max_steps=1, sparse_backend="bogus"),
            )


class TestTrsvBenchAndGate:
    @pytest.fixture(scope="class")
    def trsv_doc(self):
        mesh = delaunay_cloud_mesh(120, seed=2)
        return run_trsv_scaling(
            mesh, workers=(1, 2), repeats=1, dataset="cloud", scale=1.0,
        )

    def test_document_schema(self, trsv_doc):
        doc = trsv_doc
        assert doc["schema"] == "repro.bench.trsv_scaling/v1"
        assert doc["serial"]["trsv_wall_seconds"] > 0
        assert doc["serial"]["ilu_wall_seconds"] > 0
        assert doc["max_level_width"] >= 1
        assert len(doc["results"]) == 4  # 2 workers x 2 strategies
        for r in doc["results"]:
            assert r["strategy"] in SPARSE_STRATEGIES
            assert r["trsv_wall_seconds"] > 0 and r["ilu_wall_seconds"] > 0
            assert r["wall_seconds"] == r["trsv_wall_seconds"]
            assert r["trsv_model_seconds"] > 0
            assert r["ilu_model_seconds"] > 0
            assert r["max_abs_dev"] <= 1e-12
            if r["workers"] > 1:
                assert r["cross_deps"] > 0

    def test_gate_passes_and_flags(self, trsv_doc):
        import copy

        assert trsv_gate_failures(trsv_doc, max_slowdown=1e9) == []
        doc = copy.deepcopy(trsv_doc)
        doc["results"][0]["max_abs_dev"] = 1e-6
        for r in doc["results"]:
            if r["strategy"] == "p2p":
                r["wall_seconds"] = 1e9
        failures = trsv_gate_failures(doc, tol=1e-12, max_slowdown=1.25)
        assert any("deviates" in f for f in failures)
        assert any("serial wall time" in f for f in failures)

    def test_history_keeps_trsv_and_flux_apart(self, trsv_doc, tmp_path):
        """A shared history file must never compare the TRSV sweep against
        flux-loop records for the same dataset/scale/seed."""
        path = str(tmp_path / "hist.jsonl")
        flux_doc = {
            "schema": "repro.bench.flux_scaling/v1",
            "dataset": "cloud", "scale": 1.0, "seed": 7,
            "serial": {"wall_seconds": 1e-9},
            "results": [{
                "strategy": "p2p", "workers": 2, "wall_seconds": 1e-9,
                "max_abs_dev": 0.0,
            }],
        }
        append_history(flux_doc, path)  # absurdly fast foreign record
        history = load_history(path)
        assert history[0]["kind"] == "flux"
        # no comparable trsv history -> fixed gate applies and passes
        assert rolling_trsv_gate_failures(
            trsv_doc, history, max_regression=1e9
        ) == []
        rec = append_history(trsv_doc, path)
        assert rec["kind"] == "trsv"
        assert rec["fill_level"] == trsv_doc["fill_level"]
        history = load_history(path)
        # now a comparable record exists: the rolling median is this run's
        # own wall, so an identical re-run passes ...
        assert rolling_trsv_gate_failures(trsv_doc, history) == []
        # ... and a big regression is caught against trsv history only
        import copy

        slow = copy.deepcopy(trsv_doc)
        for r in slow["results"]:
            r["wall_seconds"] = 100.0 * r["wall_seconds"]
        assert any(
            "rolling median" in f
            for f in rolling_trsv_gate_failures(slow, history)
        )


class TestCliSurface:
    def test_solve_sparse_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.sparse_backend == "serial"
        assert args.sparse_strategy == "p2p"
        assert args.sparse_workers == 0

    def test_bench_sparse_flags(self):
        args = build_parser().parse_args(["bench"])
        assert args.sparse_backend == "flux"
        assert args.out == "BENCH_flux_scaling.json"
        args = build_parser().parse_args(
            ["bench", "--sparse-backend", "process", "--ilu", "1"]
        )
        assert args.sparse_backend == "process" and args.ilu == 1

    def test_profile_accepts_sparse_backend(self):
        args = build_parser().parse_args(
            ["profile", "--sparse-backend", "process",
             "--sparse-strategy", "levels", "--sparse-workers", "3"]
        )
        assert args.sparse_backend == "process"
        assert args.sparse_strategy == "levels"
        assert args.sparse_workers == 3
