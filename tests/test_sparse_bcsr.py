"""Tests for BCSR storage and SpMV."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh, delaunay_cloud_mesh
from repro.sparse import BCSRMatrix, bcsr_pattern_from_edges


def random_bcsr(mesh, b=4, seed=0, diag_shift=8.0):
    A = BCSRMatrix.from_mesh_edges(mesh.edges, mesh.n_vertices, b=b)
    rng = np.random.default_rng(seed)
    A.vals[:] = rng.normal(size=A.vals.shape) * 0.1
    A.add_to_diagonal(diag_shift)
    return A


class TestPattern:
    def test_includes_diagonal(self):
        m = box_mesh((3, 3, 3))
        rowptr, cols = bcsr_pattern_from_edges(m.edges, m.n_vertices)
        for i in range(m.n_vertices):
            assert i in cols[rowptr[i] : rowptr[i + 1]]

    def test_sorted_rows(self):
        m = box_mesh((4, 3, 3))
        rowptr, cols = bcsr_pattern_from_edges(m.edges, m.n_vertices)
        for i in range(m.n_vertices):
            row = cols[rowptr[i] : rowptr[i + 1]]
            assert np.all(np.diff(row) > 0)

    def test_nnz_count(self):
        m = box_mesh((3, 3, 3))
        rowptr, cols = bcsr_pattern_from_edges(m.edges, m.n_vertices)
        assert cols.shape[0] == 2 * m.n_edges + m.n_vertices

    def test_symmetric_pattern(self):
        m = delaunay_cloud_mesh(80, seed=5)
        rowptr, cols = bcsr_pattern_from_edges(m.edges, m.n_vertices)
        entries = {
            (i, int(j))
            for i in range(m.n_vertices)
            for j in cols[rowptr[i] : rowptr[i + 1]]
        }
        assert all((j, i) in entries for (i, j) in entries)


class TestBCSRMatrix:
    def test_matvec_matches_scipy(self):
        m = box_mesh((4, 4, 3), jitter=0.1, seed=1)
        A = random_bcsr(m)
        rng = np.random.default_rng(1)
        x = rng.normal(size=A.shape[1])
        np.testing.assert_allclose(
            A.matvec(x), A.to_scipy() @ x, rtol=1e-13, atol=1e-13
        )

    def test_matvec_block_shape(self):
        m = box_mesh((3, 3, 3))
        A = random_bcsr(m)
        rng = np.random.default_rng(2)
        xb = rng.normal(size=(A.n_brows, A.b))
        y = A.matvec(xb)
        assert y.shape == xb.shape
        np.testing.assert_allclose(y.reshape(-1), A.matvec(xb.reshape(-1)))

    def test_diag_idx(self):
        m = box_mesh((3, 3, 3))
        A = random_bcsr(m)
        assert np.all(A.cols[A.diag_idx] == np.arange(A.n_brows))

    def test_block_index(self):
        m = box_mesh((3, 3, 3))
        A = random_bcsr(m)
        e = m.edges[0]
        idx = A.block_index(int(e[0]), int(e[1]))
        assert A.cols[idx] == e[1]
        with pytest.raises(KeyError):
            # find a missing pair
            far = m.n_vertices - 1
            row0 = A.cols[A.rowptr[0] : A.rowptr[1]]
            if far in row0:
                pytest.skip("vertex 0 adjacent to last vertex")
            A.block_index(0, far)

    def test_add_to_diagonal_scalar(self):
        m = box_mesh((3, 3, 3))
        A = BCSRMatrix.from_mesh_edges(m.edges, m.n_vertices, b=4)
        A.add_to_diagonal(2.5)
        d = A.vals[A.diag_idx]
        np.testing.assert_allclose(d, 2.5 * np.eye(4)[None, :, :].repeat(A.n_brows, 0))

    def test_add_to_diagonal_blocks(self):
        m = box_mesh((3, 3, 3))
        A = BCSRMatrix.from_mesh_edges(m.edges, m.n_vertices, b=2)
        blocks = np.arange(A.n_brows * 4, dtype=float).reshape(A.n_brows, 2, 2)
        A.add_to_diagonal(blocks)
        np.testing.assert_allclose(A.vals[A.diag_idx], blocks)

    def test_to_dense_roundtrip(self):
        m = box_mesh((2, 2, 3))
        A = random_bcsr(m, b=3)
        dense = A.to_dense()
        np.testing.assert_allclose(dense, A.to_scipy().toarray())

    def test_copy_independent(self):
        m = box_mesh((3, 3, 3))
        A = random_bcsr(m)
        B = A.copy()
        B.vals[:] = 0
        assert np.abs(A.vals).max() > 0

    def test_lower_counts(self):
        m = box_mesh((3, 3, 3))
        A = random_bcsr(m)
        counts = A.lower_counts()
        # row 0 has nothing below it
        assert counts[0] == 0
        # total lower entries = n_edges (one direction per edge)
        assert counts.sum() == m.n_edges

    def test_missing_diagonal_raises(self):
        rowptr = np.array([0, 1])
        cols = np.array([1])  # 1x1 block matrix without (0,0) — invalid col
        A = BCSRMatrix(rowptr=rowptr, cols=cols, vals=np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            _ = A.diag_idx


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 100),
    b=st.sampled_from([1, 2, 4]),
    shift=st.floats(2.0, 50.0),
)
def test_matvec_property(seed, b, shift):
    """Property: block SpMV equals SciPy BSR for any block size/values."""
    m = delaunay_cloud_mesh(60, seed=seed % 7)
    A = random_bcsr(m, b=b, seed=seed, diag_shift=shift)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=A.shape[1])
    np.testing.assert_allclose(A.matvec(x), A.to_scipy() @ x, rtol=1e-12, atol=1e-12)
