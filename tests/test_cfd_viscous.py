"""Tests for the viscous (Navier-Stokes) flux path."""

import numpy as np
import pytest

from repro.cfd import FlowConfig, FlowField, JacobianAssembler, compute_residual
from repro.cfd.viscous import (
    viscous_edge_coefficients,
    viscous_jacobian_blocks,
    viscous_residual,
)
from repro.mesh import box_mesh, wing_mesh
from repro.solver import SolverOptions, solve_steady


@pytest.fixture(scope="module")
def box_field():
    return FlowField(box_mesh((5, 5, 5), jitter=0.05, seed=1))


class TestViscousOperator:
    def test_coefficients_positive(self, box_field):
        c = viscous_edge_coefficients(box_field)
        assert np.all(c > 0)

    def test_constant_field_no_flux(self, box_field):
        q = np.tile([1.0, 2.0, -1.0, 0.5], (box_field.n_vertices, 1))
        r = viscous_residual(box_field, q, mu=0.1)
        np.testing.assert_allclose(r, 0.0, atol=1e-14)

    def test_pressure_untouched(self, box_field):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(box_field.n_vertices, 4))
        r = viscous_residual(box_field, q, mu=0.3)
        np.testing.assert_allclose(r[:, 0], 0.0)

    def test_operator_symmetric_negative(self, box_field):
        # the viscous residual is a graph Laplacian on each velocity
        # component: u . R_visc(u) >= 0 (dissipative with our sign)
        rng = np.random.default_rng(1)
        q = rng.normal(size=(box_field.n_vertices, 4))
        r = viscous_residual(box_field, q, mu=1.0)
        energy = np.sum(q[:, 1:4] * r[:, 1:4])
        assert energy >= -1e-12

    def test_conservation(self, box_field):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(box_field.n_vertices, 4))
        r = viscous_residual(box_field, q, mu=0.7)
        np.testing.assert_allclose(r.sum(axis=0), 0.0, atol=1e-11)

    def test_jacobian_matches_fd(self, box_field):
        cfg = FlowConfig(mu=0.25, second_order=False)
        q = box_field.initial_state(cfg)
        jac = JacobianAssembler(box_field)
        A = jac.assemble(q, cfg)
        rng = np.random.default_rng(3)
        v = rng.normal(size=q.shape)
        eps = 1e-7
        r0 = compute_residual(box_field, q, cfg, first_order=True)
        r1 = compute_residual(box_field, q + eps * v, cfg, first_order=True)
        fd = ((r1 - r0) / eps).reshape(-1)
        an = A.matvec(v.reshape(-1))
        np.testing.assert_allclose(an, fd, rtol=1e-5, atol=1e-6)

    def test_blocks_momentum_only(self, box_field):
        d_diag, d_off = viscous_jacobian_blocks(box_field, mu=0.5)
        assert np.all(d_diag[:, 0, :] == 0)
        assert np.all(d_off[:, :, 0] == 0)
        assert np.all(d_diag[:, 1, 1] > 0)
        np.testing.assert_allclose(d_off[:, 2, 2], -d_diag[:, 2, 2])


class TestViscousSolve:
    def test_navier_stokes_converges(self):
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        fld = FlowField(mesh)
        cfg = FlowConfig(mu=0.01)
        res = solve_steady(fld, cfg, SolverOptions(max_steps=60))
        assert res.converged

    def test_viscosity_damps_velocity_extremes(self):
        # with viscosity, the converged velocity field has smaller peaks
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        fld = FlowField(mesh)
        peaks = {}
        for mu in (0.0, 0.05):
            cfg = FlowConfig(mu=mu)
            res = solve_steady(fld, cfg, SolverOptions(max_steps=60))
            assert res.converged
            speed = np.linalg.norm(res.q[:, 1:4], axis=1)
            peaks[mu] = speed.max()
        assert peaks[0.05] < peaks[0.0] + 1e-9
