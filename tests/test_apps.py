"""Tests for the full application driver and optimization configs."""

import pytest

from repro.apps import Fun3dApp, OptimizationConfig
from repro.mesh import wing_mesh
from repro.solver import SolverOptions


@pytest.fixture(scope="module")
def app_and_result():
    mesh = wing_mesh(n_around=16, n_radial=6, n_span=4)
    app = Fun3dApp(mesh, solver=SolverOptions(max_steps=50))
    res = app.run(OptimizationConfig.baseline(ilu_fill=0))
    return app, res


class TestOptimizationConfig:
    def test_baseline_sequential(self):
        c = OptimizationConfig.baseline()
        assert c.n_threads == 1
        assert not c.simd and not c.prefetch and not c.rcm

    def test_optimized_all_on(self):
        c = OptimizationConfig.optimized()
        assert c.n_threads == 20
        assert c.simd and c.prefetch and c.rcm
        assert c.edge_strategy == "replicate"
        assert c.tri_strategy == "p2p"

    def test_with_updates(self):
        c = OptimizationConfig.optimized().with_(simd=False)
        assert not c.simd
        assert c.prefetch  # others unchanged

    def test_labels_distinct(self):
        a = OptimizationConfig.baseline().label()
        b = OptimizationConfig.optimized().label()
        assert a != b


class TestFun3dApp:
    def test_solve_converges(self, app_and_result):
        _, res = app_and_result
        assert res.solve.converged

    def test_counts_consistent(self, app_and_result):
        _, res = app_and_result
        c = res.counts
        assert c["trsv_applies"] == c["linear_iterations"]
        # one residual eval per Krylov iteration (JFNK) + one per step
        assert c["residual_evals"] >= c["linear_iterations"]
        assert c["ilu_factorizations"] == c["jacobian_assemblies"]
        assert c["vec_bytes"] > 0

    def test_profile_covers_kernels(self, app_and_result):
        _, res = app_and_result
        assert set(res.profile) == {
            "flux", "grad", "jacobian", "ilu", "trsv", "vecops"
        }
        assert all(v >= 0 for v in res.profile.values())
        assert res.modeled_total > 0

    def test_fractions_sum_to_one(self, app_and_result):
        _, res = app_and_result
        assert sum(res.fractions().values()) == pytest.approx(1.0)

    def test_flux_dominates_baseline(self, app_and_result):
        # Fig. 5: the flux kernel is the baseline hotspot
        _, res = app_and_result
        fr = res.fractions()
        assert fr["flux"] == max(fr.values())

    def test_optimized_speedup_in_paper_range(self, app_and_result):
        # Fig. 8a: 6.9x full-application speedup at 10 cores.  On this tiny
        # test mesh the recurrence parallelism is far below paper scale so
        # the modeled speedup is depressed; the band widens accordingly
        # (the benches run at larger scale and land near the paper value).
        app, res = app_and_result
        sp = app.speedup_paper_scale(
            res.counts, OptimizationConfig.optimized(ilu_fill=0)
        )
        assert 4.0 < sp < 10.0
        # at this tiny mesh's own (7x) parallelism the speedup collapses —
        # the recurrences cannot feed 20 threads
        assert app.speedup(res.counts, OptimizationConfig.optimized(ilu_fill=0)) > 1.0

    def test_trsv_becomes_hotspot_after_optimization(self, app_and_result):
        # paper: "the sparse triangular solver (TRSV) becomes the primary
        # hot-spot post-optimization" (among the five main kernels)
        app, res = app_and_result
        prof = app.modeled_profile(res.counts, OptimizationConfig.optimized(ilu_fill=0))
        kernels = {k: v for k, v in prof.items() if k != "vecops"}
        assert max(kernels, key=kernels.get) == "trsv"

    def test_other_grows_after_optimization(self, app_and_result):
        # paper: the 'other' (vector primitive) share grows post-optimization
        app, res = app_and_result
        base = app.modeled_profile(res.counts, OptimizationConfig.baseline(ilu_fill=0))
        opt = app.modeled_profile(
            res.counts,
            OptimizationConfig.optimized(ilu_fill=0).with_(vec_threaded=False),
        )
        f_base = base["vecops"] / sum(base.values())
        f_opt = opt["vecops"] / sum(opt.values())
        assert f_opt > f_base

    def test_rcm_mesh_variant(self):
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        app = Fun3dApp(mesh, apply_rcm=True, solver=SolverOptions(max_steps=40))
        res = app.run(OptimizationConfig.baseline(ilu_fill=0))
        assert res.solve.converged

    def test_plan_cached(self, app_and_result):
        app, _ = app_and_result
        assert app.ilu_plan(0) is app.ilu_plan(0)

    def test_ilu1_reduces_iterations_but_parallelism(self, app_and_result):
        # Table II in miniature
        from repro.sparse import available_parallelism

        app, res0 = app_and_result
        res1 = app.run(OptimizationConfig.baseline(ilu_fill=1))
        assert res1.solve.linear_iterations < res0.solve.linear_iterations
        p0 = app.ilu_plan(0)
        p1 = app.ilu_plan(1)
        par0 = available_parallelism(p0.rowptr, p0.cols)
        par1 = available_parallelism(p1.rowptr, p1.cols)
        assert par1 < par0
