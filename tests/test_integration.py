"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro import (
    Fun3dApp,
    OptimizationConfig,
    SolverOptions,
    load_mesh,
    save_mesh,
    wing_mesh,
)
from repro.cfd import FlowConfig, FlowField, compute_residual
from repro.perf import PerfRegistry, use_registry
from repro.petsclite import KSP, PC, Mat, OptionsDB, Vec
from repro.solver import solve_steady


class TestMeshPersistencePipeline:
    def test_save_load_solve_identical(self, tmp_path):
        # a solve on a saved+reloaded mesh must be bit-identical
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        p = tmp_path / "wing.npz"
        save_mesh(mesh, p)
        reloaded = load_mesh(p)
        cfg = FlowConfig()
        opts = SolverOptions(max_steps=30)
        r1 = solve_steady(FlowField(mesh), cfg, opts)
        r2 = solve_steady(FlowField(reloaded), cfg, opts)
        assert r1.steps == r2.steps
        assert r1.linear_iterations == r2.linear_iterations
        np.testing.assert_array_equal(r1.q, r2.q)


class TestKspDrivesNewtonStep:
    def test_petsclite_ksp_solves_a_pseudo_step(self):
        # assemble one pseudo-time step's system through the petsclite
        # objects and verify the correction reduces the residual
        from repro.cfd import JacobianAssembler, local_timestep
        from repro.solver.jfnk import fd_jacobian_operator

        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        field = FlowField(mesh)
        cfg = FlowConfig()
        q = field.initial_state(cfg)
        res = compute_residual(field, q, cfg)

        dt = local_timestep(field, q, cfg, cfl=20.0)
        assembler = JacobianAssembler(field)
        A = assembler.assemble(q, cfg)
        assembler.add_pseudo_time(A, dt)

        diag = np.repeat(field.volumes / dt, 4)
        op = fd_jacobian_operator(
            lambda u: compute_residual(
                field, u.reshape(-1, 4), cfg
            ).reshape(-1),
            q.reshape(-1),
            r0=res.reshape(-1),
            diag=diag,
        )
        amat = Mat.shell(A.shape[0], op)
        ksp = KSP(pc=PC(type="ilu"))
        ksp.set_from_options(OptionsDB("-ksp_rtol 1e-3 -ksp_gmres_restart 30"))
        ksp.set_operators(amat, Mat.from_bcsr(A))
        ksp.setup()
        du, result = ksp.solve(Vec(-res.reshape(-1)))
        assert result.converged
        q_new = q + 0.5 * du.array.reshape(-1, 4)
        res_new = compute_residual(field, q_new, cfg)
        assert np.linalg.norm(res_new) < np.linalg.norm(res)


class TestAppConsistency:
    @pytest.fixture(scope="class")
    def app(self):
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        return Fun3dApp(mesh, solver=SolverOptions(max_steps=40))

    def test_rerun_deterministic(self, app):
        r1 = app.run(OptimizationConfig.baseline(ilu_fill=0))
        r2 = app.run(OptimizationConfig.baseline(ilu_fill=0))
        assert r1.solve.linear_iterations == r2.solve.linear_iterations
        np.testing.assert_array_equal(r1.solve.q, r2.solve.q)

    def test_config_changes_only_pricing(self, app):
        # different optimization configs must not change the numerics
        ra = app.run(OptimizationConfig.baseline(ilu_fill=0))
        profile_opt = app.modeled_profile(
            ra.counts, OptimizationConfig.optimized(ilu_fill=0)
        )
        profile_base = app.modeled_profile(
            ra.counts, OptimizationConfig.baseline(ilu_fill=0)
        )
        assert sum(profile_opt.values()) < sum(profile_base.values())

    def test_registry_isolated_between_runs(self, app):
        outer = PerfRegistry()
        with use_registry(outer):
            res = app.run(OptimizationConfig.baseline(ilu_fill=0))
        # the app ran in its own registry; outer only sees what leaked (none)
        assert res.registry is not outer
        assert res.registry.records  # populated
        assert "flux" in res.registry.records


class TestSolverRobustness:
    def test_max_steps_respected(self):
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        res = solve_steady(
            FlowField(mesh), FlowConfig(),
            SolverOptions(max_steps=3, steady_rtol=1e-14),
        )
        assert res.steps == 3
        assert not res.converged

    def test_callback_invoked(self):
        mesh = wing_mesh(n_around=12, n_radial=4, n_span=3)
        seen = []
        solve_steady(
            FlowField(mesh), FlowConfig(),
            SolverOptions(max_steps=5, steady_rtol=1e-14),
            callback=lambda s, r, c: seen.append((s, r, c)),
        )
        assert len(seen) == 5
        assert seen[0][0] == 1

    def test_warm_start(self):
        # restarting from the converged state should converge immediately
        mesh = wing_mesh(n_around=12, n_radial=4, n_span=3)
        field = FlowField(mesh)
        cfg = FlowConfig()
        r1 = solve_steady(field, cfg, SolverOptions(max_steps=40))
        assert r1.converged
        # convergence is relative to the run's own first residual, so a
        # warm start needs the absolute tolerance to stop immediately
        r2 = solve_steady(
            field, cfg,
            SolverOptions(max_steps=40, steady_atol=10 * r1.final_residual),
            q0=r1.q,
        )
        assert r2.converged
        assert r2.steps <= 2

    def test_first_order_config_converges(self):
        mesh = wing_mesh(n_around=12, n_radial=4, n_span=3)
        res = solve_steady(
            FlowField(mesh), FlowConfig(second_order=False),
            SolverOptions(max_steps=40),
        )
        assert res.converged
