"""Tests for RCM, edge coloring and ordering metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    box_mesh,
    build_vertex_adjacency,
    delaunay_cloud_mesh,
    validate_mesh,
    wing_mesh,
)
from repro.ordering import (
    bandwidth,
    color_groups,
    cuthill_mckee,
    edge_span,
    greedy_edge_coloring,
    ordering_report,
    pseudo_peripheral_vertex,
    rcm_relabel,
    reverse_cuthill_mckee,
    verify_edge_coloring,
)
from repro.ordering.coloring import _greedy_edge_coloring_reference


def path_graph(n):
    edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    return build_vertex_adjacency(edges, n), edges


class TestRCM:
    def test_is_permutation(self):
        m = box_mesh((4, 4, 4))
        rowptr, cols = m.adjacency
        order = reverse_cuthill_mckee(rowptr, cols)
        assert np.array_equal(np.sort(order), np.arange(m.n_vertices))

    def test_path_graph_bandwidth_one(self):
        (rowptr, cols), edges = path_graph(10)
        order = reverse_cuthill_mckee(rowptr, cols)
        perm = np.empty_like(order)
        perm[order] = np.arange(10)
        new_edges = perm[edges]
        assert bandwidth(new_edges) == 1

    def test_reduces_bandwidth_on_scrambled_mesh(self):
        m = box_mesh((6, 6, 6))
        rng = np.random.default_rng(3)
        scrambled = m.relabeled(rng.permutation(m.n_vertices))
        b_before = bandwidth(scrambled.edges)
        r = rcm_relabel(scrambled)
        b_after = bandwidth(r.edges)
        assert b_after < b_before / 3

    def test_rcm_reverses_cm(self):
        m = box_mesh((3, 3, 3))
        rowptr, cols = m.adjacency
        cm = cuthill_mckee(rowptr, cols)
        rcm = reverse_cuthill_mckee(rowptr, cols)
        np.testing.assert_array_equal(rcm, cm[::-1])

    def test_disconnected_graph(self):
        # two disjoint path components
        edges = np.array([[0, 1], [1, 2], [3, 4], [4, 5]])
        rowptr, cols = build_vertex_adjacency(edges, 6)
        order = reverse_cuthill_mckee(rowptr, cols)
        assert np.array_equal(np.sort(order), np.arange(6))

    def test_pseudo_peripheral_on_path(self):
        (rowptr, cols), _ = path_graph(15)
        v = pseudo_peripheral_vertex(rowptr, cols, start=7)
        assert v in (0, 14)

    def test_rcm_relabel_preserves_mesh(self):
        m = wing_mesh(n_around=16, n_radial=5, n_span=4)
        r = rcm_relabel(m)
        assert validate_mesh(r).ok
        assert r.n_edges == m.n_edges


class TestColoring:
    def test_valid_on_meshes(self):
        m = box_mesh((4, 4, 4))
        colors = greedy_edge_coloring(m.edges, m.n_vertices)
        assert verify_edge_coloring(m.edges, colors, m.n_vertices)

    def test_color_count_bounded(self):
        m = delaunay_cloud_mesh(150, seed=1)
        rowptr, _ = m.adjacency
        max_deg = int((rowptr[1:] - rowptr[:-1]).max())
        colors = greedy_edge_coloring(m.edges, m.n_vertices)
        assert colors.max() + 1 <= 2 * max_deg - 1

    def test_groups_partition_edges(self):
        m = box_mesh((4, 3, 3))
        colors = greedy_edge_coloring(m.edges, m.n_vertices)
        groups = color_groups(colors)
        allidx = np.concatenate(groups)
        assert np.array_equal(np.sort(allidx), np.arange(m.n_edges))

    def test_verify_detects_conflict(self):
        edges = np.array([[0, 1], [1, 2]])
        colors = np.array([0, 0])
        assert not verify_edge_coloring(edges, colors, 3)

    def test_matches_sequential_reference_on_mesh(self):
        m = box_mesh((5, 4, 4))
        got = greedy_edge_coloring(m.edges, m.n_vertices)
        want = _greedy_edge_coloring_reference(m.edges, m.n_vertices)
        assert np.array_equal(got, want)

    def test_empty_edge_list(self):
        colors = greedy_edge_coloring(np.zeros((0, 2), dtype=np.int64), 5)
        assert colors.shape == (0,)

    def test_many_colors_grows_table(self):
        # a star graph forces one color per edge, well past the initial
        # 8-column occupancy table
        n = 40
        edges = np.stack(
            [np.zeros(n - 1, dtype=np.int64), np.arange(1, n)], axis=1
        )
        got = greedy_edge_coloring(edges, n)
        want = _greedy_edge_coloring_reference(edges, n)
        assert np.array_equal(got, want)
        assert np.array_equal(got, np.arange(n - 1))


class TestMetrics:
    def test_bandwidth_empty(self):
        assert bandwidth(np.zeros((0, 2), dtype=np.int64)) == 0

    def test_edge_span_path(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert edge_span(edges) == 1.0

    def test_report_keys(self):
        m = box_mesh((3, 3, 3))
        rep = ordering_report(m.edges, m.n_vertices)
        assert set(rep) == {"bandwidth", "edge_span", "relative_bandwidth"}


@settings(max_examples=15, deadline=None)
@given(n=st.integers(60, 200), seed=st.integers(0, 50))
def test_rcm_never_increases_bandwidth_much(n, seed):
    """Property: RCM on a random-cloud mesh yields a valid permutation and a
    bandwidth no worse than the scrambled ordering."""
    m = delaunay_cloud_mesh(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    scrambled = m.relabeled(rng.permutation(m.n_vertices))
    r = rcm_relabel(scrambled)
    assert bandwidth(r.edges) <= bandwidth(scrambled.edges)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(40, 150), seed=st.integers(0, 50))
def test_coloring_property(n, seed):
    """Property: greedy edge coloring is always conflict-free and equal to
    the sequential greedy scan it vectorizes."""
    m = delaunay_cloud_mesh(n, seed=seed)
    colors = greedy_edge_coloring(m.edges, m.n_vertices)
    assert verify_edge_coloring(m.edges, colors, m.n_vertices)
    assert np.array_equal(
        colors, _greedy_edge_coloring_reference(m.edges, m.n_vertices)
    )
