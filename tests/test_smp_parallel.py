"""Tests for the process-parallel shared-memory edge-kernel backend.

Covers the paper's ground rule (numerics identical to sequential for every
strategy, now across real worker processes), the SharedArrayPool cleanup
contract (context manager, atexit, crashed workers must not leak
``/dev/shm`` segments), and the bench/gate machinery the CI job runs.
"""

import os
import signal
import subprocess
import sys
import threading
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cfd import FlowConfig, FlowField
from repro.cfd.flux import interior_flux_residual
from repro.cfd.gradient import lsq_gradients, venkat_limiter
from repro.mesh import delaunay_cloud_mesh, wing_mesh
from repro.obs import Tracer, use_tracer
from repro.smp import ProcessEdgeBackend, SharedArrayPool, use_edge_backend
from repro.smp.bench import (
    HISTORY_SCHEMA,
    append_history,
    gate_failures,
    load_history,
    rolling_gate_failures,
    run_dist_breakdown,
    run_flux_scaling,
)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _assert_unlinked(names):
    """Every OS-level segment name must be gone (attach must fail)."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@pytest.fixture(scope="module")
def wing_setup():
    mesh = wing_mesh(n_around=18, n_radial=6, n_span=5)
    field = FlowField(mesh)
    rng = np.random.default_rng(3)
    q = field.initial_state(FlowConfig()) + 0.05 * rng.normal(
        size=(field.n_vertices, 4)
    )
    return field, q


class TestSharedArrayPool:
    def test_zeros_and_from_array_roundtrip(self):
        with SharedArrayPool() as pool:
            z = pool.zeros("z", (5, 3))
            assert z.shape == (5, 3) and np.all(z == 0.0)
            src = np.arange(12.0).reshape(4, 3)
            cp = pool.from_array("cp", src)
            np.testing.assert_array_equal(cp, src)
            assert pool.array("cp") is cp
            assert pool.nbytes >= src.nbytes

    def test_duplicate_key_rejected(self):
        with SharedArrayPool() as pool:
            pool.zeros("x", (2,))
            with pytest.raises(ValueError):
                pool.zeros("x", (2,))

    def test_context_manager_unlinks_segments(self):
        pool = SharedArrayPool()
        pool.zeros("a", (16,))
        names = list(pool.segment_names().values())
        with pool:
            pass
        assert pool.closed
        _assert_unlinked(names)

    def test_close_idempotent_and_allocation_after_close_fails(self):
        pool = SharedArrayPool()
        pool.zeros("a", (4,))
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.zeros("b", (4,))

    def test_atexit_cleans_up_without_explicit_close(self):
        """A run that never reaches close() must still unlink at exit."""
        script = (
            "from repro.smp import SharedArrayPool\n"
            "pool = SharedArrayPool()\n"
            "pool.zeros('leaky', (1024,))\n"
            "print(pool.segment_names()['leaky'])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        name = out.stdout.strip()
        assert name
        _assert_unlinked([name])


def serial_flux(field, q, beta=4.0):
    return interior_flux_residual(field, q, beta)


class TestBackendEquivalence:
    @pytest.mark.parametrize(
        "strategy,partitioner",
        [("locked", "metis"), ("replicate", "metis"),
         ("owner", "natural"), ("owner", "metis")],
    )
    def test_flux_and_gradients_match_serial(
        self, wing_setup, strategy, partitioner
    ):
        field, q = wing_setup
        ref = serial_flux(field, q)
        gref = lsq_gradients(field, q)
        with ProcessEdgeBackend(
            field, 3, strategy=strategy, partitioner=partitioner
        ) as be:
            np.testing.assert_allclose(
                be.flux_residual(q, 4.0), ref, rtol=1e-12, atol=1e-12
            )
            np.testing.assert_allclose(
                be.gradients(q), gref, rtol=1e-12, atol=1e-12
            )

    def test_second_order_and_roe_paths(self, wing_setup):
        field, q = wing_setup
        grad = lsq_gradients(field, q)
        lim = venkat_limiter(field, q, grad)
        ref2 = interior_flux_residual(field, q, 4.0, grad, lim)
        ref_roe = interior_flux_residual(field, q, 4.0, scheme="roe")
        with ProcessEdgeBackend(field, 2) as be:
            np.testing.assert_allclose(
                be.flux_residual(q, 4.0, grad=grad, limiter=lim),
                ref2, rtol=1e-12, atol=1e-12,
            )
            np.testing.assert_allclose(
                be.flux_residual(q, 4.0, scheme="roe"),
                ref_roe, rtol=1e-12, atol=1e-12,
            )

    def test_kernel_dispatch_through_use_edge_backend(self, wing_setup):
        field, q = wing_setup
        ref = serial_flux(field, q)
        gref = lsq_gradients(field, q)
        with ProcessEdgeBackend(field, 2) as be, use_edge_backend(be):
            np.testing.assert_allclose(
                interior_flux_residual(field, q, 4.0), ref,
                rtol=1e-12, atol=1e-12,
            )
            np.testing.assert_allclose(
                lsq_gradients(field, q), gref, rtol=1e-12, atol=1e-12
            )
        # outside the block the serial path is back and the backend is gone
        from repro.smp import get_edge_backend

        assert get_edge_backend() is None

    def test_other_field_falls_back_to_serial(self, wing_setup):
        field, q = wing_setup
        other = FlowField(delaunay_cloud_mesh(60, seed=1))
        with ProcessEdgeBackend(field, 2) as be, use_edge_backend(be):
            assert not be.handles(other)
            rng = np.random.default_rng(0)
            qo = rng.normal(size=(other.n_vertices, 4))
            res = interior_flux_residual(other, qo, 4.0)  # must not hang
            assert res.shape == (other.n_vertices, 4)


class TestBackendStructure:
    def test_owner_covers_all_edges_with_replication(self, wing_setup):
        field, _ = wing_setup
        with ProcessEdgeBackend(field, 4, strategy="owner") as be:
            per = be.edges_per_worker()
            assert per.sum() >= field.n_edges
            assert be.redundant_edge_fraction == pytest.approx(
                (per.sum() - field.n_edges) / field.n_edges
            )
            assert be.redundant_edge_fraction > 0.0
            assert be.strategy_label == "owner-metis"

    def test_edge_split_strategies_have_no_redundancy(self, wing_setup):
        field, _ = wing_setup
        for strategy in ("locked", "replicate"):
            with ProcessEdgeBackend(field, 4, strategy=strategy) as be:
                assert be.edges_per_worker().sum() == field.n_edges
                assert be.redundant_edge_fraction == 0.0

    def test_rejects_bad_arguments(self, wing_setup):
        field, _ = wing_setup
        with pytest.raises(ValueError):
            ProcessEdgeBackend(field, 2, strategy="bogus")
        with pytest.raises(ValueError):
            ProcessEdgeBackend(field, 2, partitioner="bogus")
        with pytest.raises(ValueError):
            ProcessEdgeBackend(field, 0)

    def test_worker_spans_reach_the_tracer(self, wing_setup):
        field, q = wing_setup
        tracer = Tracer()
        with ProcessEdgeBackend(field, 2) as be, use_tracer(tracer):
            be.flux_residual(q, 4.0)
            be.gradients(q)
        names = {s.name for s in tracer.walk()}
        assert {"flux.w0", "flux.w1", "grad.w0", "grad.w1"} <= names
        for s in tracer.walk():
            assert s.seconds > 0.0
            assert s.attrs["strategy"] == "owner-metis"


class TestFailureContainment:
    def test_worker_exception_surfaces_and_marks_broken(self, wing_setup):
        field, q = wing_setup
        be = ProcessEdgeBackend(field, 2)
        names = list(be.segment_names().values())
        try:
            with pytest.raises(RuntimeError, match="worker .* failed"):
                be.flux_residual(q, 4.0, scheme="no-such-scheme")
            assert not be.handles(field)
            with pytest.raises(RuntimeError):
                be.flux_residual(q, 4.0)
        finally:
            be.close()
        _assert_unlinked(names)

    def test_killed_worker_mid_loop_does_not_leak_segments(self, wing_setup):
        """Regression: SIGKILL a worker while it is inside the edge loop;
        the parent must detect the death, and teardown must still unlink
        every /dev/shm segment."""
        field, _ = wing_setup
        be = ProcessEdgeBackend(field, 2)
        names = list(be.segment_names().values())
        victim = be._workers[0].pid
        timer = threading.Timer(0.2, os.kill, args=(victim, signal.SIGKILL))
        timer.start()
        try:
            with pytest.raises(RuntimeError, match="died|pipe"):
                be._debug_sleep(3.0)
            assert not be.handles(field)
        finally:
            timer.cancel()
            be.close()
        _assert_unlinked(names)

    def test_close_is_idempotent_and_final(self, wing_setup):
        field, q = wing_setup
        be = ProcessEdgeBackend(field, 2)
        be.flux_residual(q, 4.0)
        be.close()
        be.close()
        assert be.closed and not be.handles(field)
        with pytest.raises(RuntimeError):
            be.flux_residual(q, 4.0)


@settings(max_examples=4, deadline=None)
@given(
    n=st.integers(50, 90),
    seed=st.integers(0, 20),
    workers=st.integers(1, 4),
    strategy=st.sampled_from(["locked", "replicate", "owner"]),
)
def test_process_strategy_equivalence_property(n, seed, workers, strategy):
    """Property (paper Section V.A): every process-parallel strategy
    reproduces the sequential flux residual within 1e-12 on arbitrary
    small meshes and worker counts 1-4."""
    mesh = delaunay_cloud_mesh(n, seed=seed)
    field = FlowField(mesh)
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(field.n_vertices, 4))
    ref = interior_flux_residual(field, q, 4.0)
    with ProcessEdgeBackend(field, workers, strategy=strategy) as be:
        res = be.flux_residual(q, 4.0)
    np.testing.assert_allclose(res, ref, rtol=1e-12, atol=1e-12)


class TestBenchAndGate:
    @pytest.fixture(scope="class")
    def bench_doc(self):
        mesh = delaunay_cloud_mesh(150, seed=2)
        return run_flux_scaling(
            mesh, workers=(1, 2), strategies=("locked", "owner-metis"),
            repeats=1, dataset="cloud", scale=1.0,
        )

    def test_document_schema(self, bench_doc):
        doc = bench_doc
        assert doc["schema"] == "repro.bench.flux_scaling/v1"
        assert doc["serial"]["wall_seconds"] > 0
        assert len(doc["results"]) == 4
        for r in doc["results"]:
            assert set(r) == {
                "strategy", "workers", "wall_seconds", "speedup",
                "redundant_edge_fraction", "max_abs_dev", "model_seconds",
                "model_rel_error",
            }
            if r["model_seconds"] is not None:
                assert r["model_rel_error"] >= 0.0
            assert r["wall_seconds"] > 0
            assert r["speedup"] == pytest.approx(
                doc["serial"]["wall_seconds"] / r["wall_seconds"]
            )
            assert r["max_abs_dev"] <= 1e-12

    def test_gate_passes_on_equivalent_results(self, bench_doc):
        assert gate_failures(bench_doc, max_slowdown=1e9) == []

    def test_gate_flags_divergence_and_regression(self, bench_doc):
        import copy

        doc = copy.deepcopy(bench_doc)
        doc["results"][0]["max_abs_dev"] = 1e-6
        for r in doc["results"]:
            if r["strategy"] == "owner-metis":
                r["wall_seconds"] = 100.0 * doc["serial"]["wall_seconds"]
        failures = gate_failures(doc, tol=1e-12, max_slowdown=1.25)
        assert len(failures) == 2
        assert any("deviates" in f for f in failures)
        assert any("serial wall time" in f for f in failures)

    def test_gate_requires_the_gated_strategy(self, bench_doc):
        import copy

        doc = copy.deepcopy(bench_doc)
        doc["results"] = [
            r for r in doc["results"] if r["strategy"] != "owner-metis"
        ]
        assert any(
            "not measured" in f for f in gate_failures(doc, max_slowdown=1e9)
        )


def _trend_doc(wall, dataset="cloud", scale=1.0, seed=7, dev=0.0):
    """Minimal bench document for exercising the trend gate."""
    return {
        "schema": "repro.bench.flux_scaling/v1",
        "dataset": dataset, "scale": scale, "seed": seed,
        "serial": {"wall_seconds": 0.010},
        "results": [{
            "strategy": "owner-metis", "workers": 4, "wall_seconds": wall,
            "speedup": 0.010 / wall, "redundant_edge_fraction": 0.05,
            "max_abs_dev": dev, "model_seconds": None,
        }],
    }


class TestBenchHistory:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        assert load_history(path) == []  # missing file is empty history
        for w in (0.010, 0.011):
            append_history(_trend_doc(w), path)
        recs = load_history(path)
        assert len(recs) == 2
        assert all(r["schema"] == HISTORY_SCHEMA for r in recs)
        assert recs[0]["walls"]["owner-metis@4"] == 0.010
        # junk lines and foreign schemas are skipped, not fatal
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write('{"schema": "something-else/v1"}\n')
        assert len(load_history(path)) == 2

    def test_rolling_gate_uses_median_of_history(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        # one 5x outlier among steady runs: the median shrugs it off where
        # a compare-to-last-run gate would whipsaw
        for w in (0.010, 0.010, 0.011, 0.010, 0.050):
            append_history(_trend_doc(w), path)
        history = load_history(path)
        assert rolling_gate_failures(_trend_doc(0.012), history) == []
        assert any(
            "rolling median" in f
            for f in rolling_gate_failures(_trend_doc(0.100), history)
        )

    def test_rolling_gate_falls_back_without_comparable_history(
        self, tmp_path
    ):
        path = str(tmp_path / "hist.jsonl")
        append_history(_trend_doc(0.001, dataset="other"), path)
        history = load_history(path)
        # the foreign-dataset record must not be compared against: the
        # fixed serial-relative gate applies (1.0x serial passes; 0.001s
        # history would have failed a 0.010s run)
        assert rolling_gate_failures(_trend_doc(0.010), history) == []
        assert any(
            "serial wall time" in f
            for f in rolling_gate_failures(_trend_doc(0.100), history)
        )

    def test_rolling_gate_always_checks_residuals(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_trend_doc(0.010), path)
        bad = _trend_doc(0.010, dev=1e-3)
        assert any(
            "deviates" in f
            for f in rolling_gate_failures(bad, load_history(path))
        )

    def test_run_dist_breakdown_smoke(self):
        mesh = wing_mesh(n_around=14, n_radial=5, n_span=4)
        d = run_dist_breakdown(mesh, n_ranks=2, pipelined=True, max_steps=2)
        assert d["n_ranks"] == 2 and d["pipelined"] and d["steps"] == 2
        assert 0.0 < d["comm_fraction"] < 1.0
        assert d["halo_seconds"] > 0.0 and d["allreduce_seconds"] > 0.0
