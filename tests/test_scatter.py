"""Property tests for the precompiled gather-scatter plans.

The contract under test: for every engine, every block shape, duplicate and
absent targets, and both from-zero and accumulate-into applications, a
:class:`~repro.perf.scatter.ScatterPlan` is **bitwise identical** to
replaying the reference ``np.add.at`` / ``np.subtract.at`` statement
sequence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.generator import delaunay_cloud_mesh
from repro.perf.scatter import (
    ENGINES,
    ScatterTerm,
    build_scatter_plan,
    default_engine,
    edge_difference_plan,
    edge_sum_plan,
    jacobian_edge_plan,
    scatter_add,
    scatter_plan,
    scatter_stats,
)

BLOCKS = [(), (3,), (2, 2)]


def reference(terms, n_targets, x, base=None):
    """Literal np.add.at / np.subtract.at statement replay."""
    out = (
        np.zeros((n_targets, *x.shape[1:]))
        if base is None
        else base.copy()
    )
    for t in terms:
        rows = x[t.src_start : t.src_start + t.targets.shape[0]]
        if t.sign > 0:
            np.add.at(out, t.targets, rows)
        else:
            np.subtract.at(out, t.targets, rows)
    return out


def random_terms(rng, n_targets, n_sources):
    terms = []
    start = 0
    for _ in range(int(rng.integers(1, 4))):
        m = int(rng.integers(0, n_sources - start + 1)) if n_sources > start else 0
        terms.append(
            ScatterTerm(
                rng.integers(0, n_targets, size=m),
                start,
                float(rng.choice([1.0, -1.0])),
            )
        )
        start += m
    return terms


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    blk=st.sampled_from(BLOCKS),
    engine=st.sampled_from(ENGINES),
)
def test_plan_bitwise_matches_reference(seed, blk, engine):
    """Random multi-term plans reproduce the add.at replay bit-for-bit."""
    rng = np.random.default_rng(seed)
    n_targets = int(rng.integers(1, 40))
    n_sources = int(rng.integers(0, 120))
    terms = random_terms(rng, n_targets, n_sources)
    plan = build_scatter_plan(
        terms, n_targets, n_sources=n_sources, engine=engine
    )
    x = rng.standard_normal((n_sources, *blk))
    want = reference(terms, n_targets, x)

    # fresh output
    assert np.array_equal(plan.apply(x), want)
    # supplied zeroed buffer
    out = plan.out_like(x)
    out.fill(7.0)  # apply() must reset it
    assert np.array_equal(plan.apply(x, out=out), want)
    # accumulate onto nonzero contents
    base = rng.standard_normal((n_targets, *blk))
    got = plan.apply(x, out=base.copy(), accumulate=True)
    assert np.array_equal(got, reference(terms, n_targets, x, base=base))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(30, 120),
    seed=st.integers(0, 50),
    engine=st.sampled_from(ENGINES),
)
def test_edge_plans_on_random_meshes(n, seed, engine):
    """Edge difference/sum plans on real mesh edge structures."""
    m = delaunay_cloud_mesh(n, seed=seed)
    e0, e1 = m.edges[:, 0], m.edges[:, 1]
    rng = np.random.default_rng(seed)
    flux = rng.standard_normal((m.n_edges, 4))

    want = np.zeros((m.n_vertices, 4))
    np.add.at(want, e0, flux)
    np.subtract.at(want, e1, flux)
    diff = edge_difference_plan(e0, e1, m.n_vertices, engine=engine)
    assert np.array_equal(diff.apply(flux), want)

    want = np.zeros((m.n_vertices, 4))
    np.add.at(want, e0, flux)
    np.add.at(want, e1, flux)
    ssum = edge_sum_plan(e0, e1, m.n_vertices, engine=engine)
    assert np.array_equal(ssum.apply(flux), want)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), engine=st.sampled_from(ENGINES))
def test_jacobian_edge_plan_matches_four_statements(seed, engine):
    """The 4-term Jacobian plan equals the four assembly statements."""
    rng = np.random.default_rng(seed)
    nnzb = int(rng.integers(4, 60))
    ne = int(rng.integers(0, 40))
    d0 = rng.integers(0, nnzb, size=ne)
    ij = rng.integers(0, nnzb, size=ne)
    d1 = rng.integers(0, nnzb, size=ne)
    ji = rng.integers(0, nnzb, size=ne)
    dFdqi = rng.standard_normal((ne, 4, 4))
    dFdqj = rng.standard_normal((ne, 4, 4))

    want = rng.standard_normal((nnzb, 4, 4))
    got = want.copy()
    np.add.at(want, d0, dFdqi)
    np.add.at(want, ij, dFdqj)
    np.subtract.at(want, d1, dFdqj)
    np.subtract.at(want, ji, dFdqi)

    plan = jacobian_edge_plan(d0, ij, d1, ji, nnzb, engine=engine)
    plan.apply(np.concatenate([dFdqi, dFdqj]), out=got, accumulate=True)
    assert np.array_equal(got, want)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), blk=st.sampled_from(BLOCKS))
def test_scatter_add_one_shot(seed, blk):
    rng = np.random.default_rng(seed)
    n_targets = int(rng.integers(1, 30))
    m = int(rng.integers(0, 80))
    idx = rng.integers(0, n_targets, size=m)
    v = rng.standard_normal((m, *blk))
    want = np.zeros((n_targets, *blk))
    np.add.at(want, idx, v)
    assert np.array_equal(scatter_add(idx, v, n_targets), want)


def test_empty_plan_and_empty_segments():
    plan = build_scatter_plan(
        [ScatterTerm(np.zeros(0, dtype=np.int64))], 5, n_sources=0
    )
    out = plan.apply(np.zeros((0, 3)))
    assert out.shape == (5, 3)
    assert np.all(out == 0.0)
    # targets that receive nothing stay exactly 0.0 alongside hot ones
    idx = np.array([2, 2, 2, 0])
    plan = scatter_plan(idx, 6)
    x = np.array([1.0, 2.0, 3.0, 4.0])
    got = plan.apply(x)
    assert np.array_equal(got, reference([ScatterTerm(idx)], 6, x))
    assert got[1] == 0.0 and got[5] == 0.0


def test_non_float64_falls_back_to_reference():
    idx = np.array([0, 1, 0, 2])
    plan = scatter_plan(idx, 3)
    x32 = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
    want = np.zeros(3, dtype=np.float64)
    np.add.at(want, idx, x32)
    assert np.array_equal(plan.apply(x32), want)


def test_sign_validation():
    with pytest.raises(ValueError):
        ScatterTerm(np.array([0]), 0, 0.5)
    with pytest.raises(ValueError):
        build_scatter_plan([ScatterTerm(np.array([7]))], 3)  # out of range
    with pytest.raises(ValueError):
        build_scatter_plan([], 3, engine="nope")


def test_stats_accounting():
    name = "test.stats.plan"
    plan = scatter_plan(np.array([0, 1]), 2, name=name)
    plan.apply(np.ones(2))
    s = scatter_stats()[name]
    assert s["engine"] == default_engine()
    assert s["builds"] >= 1 and s["applies"] >= 1
    assert s["entries"] == 2 and s["targets"] == 2
