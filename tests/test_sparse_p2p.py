"""Tests for dependency-graph extraction and P2P sparsification."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh, delaunay_cloud_mesh
from repro.partition import natural_partition
from repro.sparse import (
    BCSRMatrix,
    build_dependency_graph,
    cross_thread_syncs,
    sparsify_transitive,
)


def pattern_of(mesh):
    A = BCSRMatrix.from_mesh_edges(mesh.edges, mesh.n_vertices, b=1)
    return A.rowptr, A.cols


def reachable(graph, src, dst):
    """BFS over retained dependency edges (k -> i means i in succ(k))."""
    succ = {}
    for i in range(graph.n_rows):
        for k in graph.retained_preds(i):
            succ.setdefault(int(k), []).append(i)
    stack = [src]
    seen = {src}
    while stack:
        v = stack.pop()
        if v == dst:
            return True
        for u in succ.get(v, ()):
            if u not in seen and u <= dst:
                seen.add(u)
                stack.append(u)
    return False


class TestDependencyGraph:
    def test_counts(self):
        m = box_mesh((3, 3, 3))
        rowptr, cols = pattern_of(m)
        g = build_dependency_graph(rowptr, cols)
        assert g.n_rows == m.n_vertices
        assert g.n_deps == m.n_edges  # one lower entry per edge
        assert g.n_retained == g.n_deps

    def test_preds_strictly_lower(self):
        m = box_mesh((4, 3, 3))
        rowptr, cols = pattern_of(m)
        g = build_dependency_graph(rowptr, cols)
        for i in range(g.n_rows):
            preds = g.preds[g.pred_ptr[i] : g.pred_ptr[i + 1]]
            assert np.all(preds < i)


class TestSparsification:
    def test_removes_some_dependencies(self):
        m = box_mesh((5, 5, 5))
        rowptr, cols = pattern_of(m)
        g = sparsify_transitive(build_dependency_graph(rowptr, cols))
        assert g.n_retained < g.n_deps

    def test_never_adds(self):
        m = box_mesh((3, 3, 4))
        rowptr, cols = pattern_of(m)
        g0 = build_dependency_graph(rowptr, cols)
        g1 = sparsify_transitive(g0)
        np.testing.assert_array_equal(g0.preds, g1.preds)
        assert g1.n_retained <= g0.n_deps

    def test_reachability_preserved(self):
        # Every removed dependency k -> i must still be enforced through a
        # retained path, or the parallel solve would race.
        m = box_mesh((3, 3, 3))
        rowptr, cols = pattern_of(m)
        g0 = build_dependency_graph(rowptr, cols)
        g1 = sparsify_transitive(g0)
        removed = np.where(~g1.retained)[0]
        rows = np.repeat(np.arange(g0.n_rows), np.diff(g0.pred_ptr))
        for idx in removed:
            k, i = int(g0.preds[idx]), int(rows[idx])
            assert reachable(g1, k, i), f"lost ordering {k}->{i}"

    def test_chain_fully_retained(self):
        # a pure chain has no redundant edges
        n = 6
        rowptr = np.zeros(n + 1, dtype=int)
        cols = []
        for i in range(n):
            row = ([i - 1] if i else []) + [i]
            cols.extend(row)
            rowptr[i + 1] = rowptr[i] + len(row)
        g = sparsify_transitive(build_dependency_graph(rowptr, np.array(cols)))
        assert g.n_retained == n - 1

    def test_triangle_redundancy_removed(self):
        # rows: 1 depends on 0; 2 depends on 0 and 1 -> dep 0->2 redundant
        rowptr = np.array([0, 1, 3, 6])
        cols = np.array([0, 0, 1, 0, 1, 2])
        g = sparsify_transitive(build_dependency_graph(rowptr, cols))
        assert g.n_retained == 2
        np.testing.assert_array_equal(g.retained_preds(2), [1])


class TestCrossThreadSyncs:
    def test_single_thread_no_syncs(self):
        m = box_mesh((3, 3, 3))
        rowptr, cols = pattern_of(m)
        g = build_dependency_graph(rowptr, cols)
        owner = np.zeros(g.n_rows, dtype=int)
        assert cross_thread_syncs(g, owner) == 0

    def test_sparsification_reduces_syncs(self):
        m = box_mesh((5, 5, 5))
        rowptr, cols = pattern_of(m)
        g0 = build_dependency_graph(rowptr, cols)
        g1 = sparsify_transitive(g0)
        owner = natural_partition(g0.n_rows, 4)
        assert cross_thread_syncs(g1, owner) <= cross_thread_syncs(g0, owner)


@settings(max_examples=8, deadline=None)
@given(n=st.integers(40, 90), seed=st.integers(0, 30))
def test_sparsify_reachability_property(n, seed):
    """Property: on arbitrary Delaunay patterns, 2-hop transitive reduction
    preserves the ordering of every removed dependency."""
    m = delaunay_cloud_mesh(n, seed=seed)
    rowptr, cols = pattern_of(m)
    g0 = build_dependency_graph(rowptr, cols)
    g1 = sparsify_transitive(g0)
    removed = np.where(~g1.retained)[0]
    rows = np.repeat(np.arange(g0.n_rows), np.diff(g0.pred_ptr))
    # sample at most 30 removed deps to keep the property test fast
    rng = np.random.default_rng(seed)
    if removed.shape[0] > 30:
        removed = rng.choice(removed, 30, replace=False)
    for idx in removed:
        k, i = int(g0.preds[idx]), int(rows[idx])
        assert reachable(g1, k, i)
