"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    aggregate_spans,
    chrome_trace,
    get_metrics,
    get_tracer,
    jsonl_records,
    kernel_span,
    read_jsonl,
    synthetic_span,
    use_metrics,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from repro.perf import PerfRegistry, use_registry


class FakeClock:
    """Deterministic clock: each call advances by ``tick``."""

    def __init__(self, tick=1.0):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        t = self.t
        self.t += self.tick
        return t


class TestSpans:
    def test_nesting_and_ordering(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("solve"):
            with tr.span("step", step=1):
                with tr.span("flux"):
                    pass
                with tr.span("gmres"):
                    pass
            with tr.span("step", step=2):
                pass
        assert [s.name for s in tr.roots] == ["solve"]
        solve = tr.roots[0]
        assert [c.name for c in solve.children] == ["step", "step"]
        assert [c.attrs["step"] for c in solve.children] == [1, 2]
        assert [g.name for g in solve.children[0].children] == ["flux", "gmres"]
        # pre-order walk
        assert [s.name for s in tr.walk()] == [
            "solve", "step", "flux", "gmres", "step",
        ]

    def test_span_times_nest(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        outer, inner = tr.roots[0], tr.roots[0].children[0]
        assert outer.t0 <= inner.t0 <= inner.t1 <= outer.t1
        assert outer.seconds > inner.seconds > 0
        assert outer.self_seconds == outer.seconds - inner.seconds

    def test_kernel_totals_and_counts(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("a"):
            with tr.span("k"):
                pass
            with tr.span("k"):
                pass
        assert tr.kernel_counts() == {"a": 1, "k": 2}
        assert tr.kernel_totals()["k"] == sum(
            c.seconds for c in tr.roots[0].children
        )

    def test_exception_closes_span(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError
        assert tr.roots[0].t1 is not None
        # a later span is a sibling, not a child of the failed one
        with tr.span("next"):
            pass
        assert [s.name for s in tr.roots] == ["boom", "next"]

    def test_use_tracer_scoping(self):
        assert isinstance(get_tracer(), NullTracer)
        tr = Tracer()
        with use_tracer(tr):
            assert get_tracer() is tr
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_restores_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with use_tracer(tr):
                raise ValueError
        assert isinstance(get_tracer(), NullTracer)

    def test_null_tracer_is_noop(self):
        nt = NullTracer()
        with nt.span("x") as s:
            assert s is None
        nt.event("e")
        assert nt.kernel_totals() == {}
        assert list(nt.find("x")) == []

    def test_kernel_span_reports_to_registry_and_tracer(self):
        reg = PerfRegistry()
        tr = Tracer()
        with use_registry(reg), use_tracer(tr):
            with kernel_span("flux", flops=10.0, nbytes=20.0):
                pass
            with kernel_span("flux"):
                pass
        assert reg.records["flux"].calls == 2
        assert reg.records["flux"].flops == 10.0
        assert tr.kernel_counts()["flux"] == 2
        # one clock pair feeds both: totals agree exactly
        assert tr.kernel_totals()["flux"] == reg.records["flux"].seconds
        assert next(tr.find("flux")).flops == 10.0

    def test_kernel_span_without_tracer_still_feeds_registry(self):
        reg = PerfRegistry()
        with use_registry(reg):
            with kernel_span("trsv"):
                pass
        assert reg.records["trsv"].calls == 1

    def test_aggregate_spans(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("solve"):
            for _ in range(3):
                with tr.span("flux"):
                    pass
        agg = aggregate_spans(tr.roots)
        assert [s.name for s in agg] == ["solve"]
        (flux,) = agg[0].children
        assert flux.attrs["count"] == 3
        assert flux.seconds == pytest.approx(tr.kernel_totals()["flux"])

    def test_synthetic_span_layout(self):
        s = synthetic_span(
            "root", 6.0,
            children=[synthetic_span("a", 2.0), synthetic_span("b", 3.0)],
        )
        a, b = s.children
        assert (a.t0, a.t1) == (0.0, 2.0)
        assert (b.t0, b.t1) == (2.0, 5.0)  # laid back-to-back
        assert s.seconds == 6.0
        assert s.model_seconds == 6.0


class TestMetrics:
    def test_counter_and_gauge(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(4)
        m.gauge("g").set(2.5)
        assert m.counter("c").value == 5
        assert m.gauge("g").value == 2.5
        with pytest.raises(ValueError):
            m.counter("c").inc(-1)

    def test_histogram_bucket_edges(self):
        h = Histogram("h", [1, 10, 100])
        # upper-edge semantics: v lands in first bucket with v <= edge
        h.observe(0.5)   # (-inf, 1]
        h.observe(1)     # (-inf, 1]  (edge belongs to its bucket)
        h.observe(1.001) # (1, 10]
        h.observe(10)    # (1, 10]
        h.observe(99)    # (10, 100]
        h.observe(1000)  # overflow
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5 and h.max == 1000
        assert h.mean == pytest.approx((0.5 + 1 + 1.001 + 10 + 99 + 1000) / 6)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", [10, 1])
        with pytest.raises(ValueError):
            Histogram("h", [1, 1])

    def test_use_metrics_scoping(self):
        inner = MetricsRegistry()
        outer = get_metrics()
        with use_metrics(inner):
            assert get_metrics() is inner
            get_metrics().counter("x").inc()
        assert get_metrics() is outer
        assert "x" not in outer.counters
        assert inner.counter("x").value == 1

    def test_report_renders(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        m.gauge("g").set(1.5)
        m.histogram("h", [1, 2]).observe(1)
        rep = m.report()
        assert "c" in rep and "g" in rep and "h" in rep
        assert MetricsRegistry().report() == "(no metrics)"


class TestChromeTrace:
    def _trace(self):
        tr = Tracer(clock=FakeClock(0.5))
        with tr.span("solve", ilu_fill=1):
            with tr.span("flux", flops=8.0):
                pass
            tr.event("residual", step=1, rnorm=0.5)
        return tr

    def test_schema(self):
        doc = chrome_trace(self._trace())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        evs = doc["traceEvents"]
        spans = [e for e in evs if e["ph"] == "X"]
        insts = [e for e in evs if e["ph"] == "i"]
        assert [e["name"] for e in spans] == ["solve", "flux"]
        assert len(insts) == 1
        for e in spans:
            assert {"name", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)
            assert e["ts"] >= 0 and e["dur"] > 0
        # timestamps rebased to zero; microsecond units
        assert spans[0]["ts"] == 0.0
        solve, flux = spans
        assert flux["ts"] >= solve["ts"]
        assert flux["ts"] + flux["dur"] <= solve["ts"] + solve["dur"]
        assert flux["args"]["flops"] == 8.0
        assert solve["args"]["ilu_fill"] == 1
        assert insts[0]["args"] == {"step": 1, "rnorm": 0.5}

    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._trace(), str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_numpy_attrs_serialize(self):
        import numpy as np

        tr = Tracer(clock=FakeClock())
        with tr.span("s", n=np.int64(3), x=np.float64(1.5)):
            pass
        doc = chrome_trace(tr)
        json.dumps(doc)  # must not raise
        assert doc["traceEvents"][0]["args"] == {"n": 3, "x": 1.5}


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tr = Tracer(clock=FakeClock())
        with tr.span("solve"):
            with tr.span("step", step=1):
                with tr.span("flux"):
                    pass
            tr.event("residual", step=1, rnorm=0.25)
        m = MetricsRegistry()
        m.counter("gmres.iterations").inc(7)
        m.histogram("h", [1, 2]).observe(1.5)

        path = tmp_path / "log.jsonl"
        write_jsonl(str(path), tr, m)

        roots, events, metrics = read_jsonl(str(path))
        assert [s.name for s in roots] == ["solve"]
        assert [s.name for s in roots[0].walk()] == ["solve", "step", "flux"]
        step = roots[0].children[0]
        assert step.attrs == {"step": 1}
        orig = next(tr.find("step"))
        assert (step.t0, step.t1) == (orig.t0, orig.t1)
        assert len(events) == 1
        assert events[0].name == "residual"
        assert events[0].attrs["rnorm"] == 0.25
        by_name = {r["name"]: r for r in metrics}
        assert by_name["gmres.iterations"]["value"] == 7
        assert by_name["h"]["counts"] == [0, 1, 0]
        assert by_name["h"]["edges"] == [1, 2]

    def test_each_line_is_json(self, tmp_path):
        tr = Tracer(clock=FakeClock())
        with tr.span("a"):
            pass
        path = tmp_path / "log.jsonl"
        write_jsonl(str(path), tr, MetricsRegistry())
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_records_without_trace(self):
        m = MetricsRegistry()
        m.gauge("g").set(1.0)
        recs = jsonl_records(None, m)
        assert recs == [m.gauge("g").snapshot()]


class TestSolverIntegration:
    """A real (tiny) solve produces a coherent trace + metrics."""

    @pytest.fixture(scope="class")
    def run(self):
        from repro.apps import Fun3dApp, OptimizationConfig
        from repro.mesh import mesh_c_prime
        from repro.solver import SolverOptions

        app = Fun3dApp(
            mesh_c_prime(scale=0.02), solver=SolverOptions(max_steps=60)
        )
        return app, app.run(OptimizationConfig.baseline(ilu_fill=1))

    def test_trace_structure(self, run):
        _, res = run
        tr = res.trace
        assert [s.name for s in tr.roots] == ["solve"]
        steps = list(tr.find("newton-step"))
        assert len(steps) == res.solve.steps
        # every converging step ran GMRES; kernel spans nest below
        assert len(list(tr.find("gmres"))) == res.solve.steps - 1
        assert set(tr.kernel_counts()) >= {"flux", "grad", "jacobian", "ilu",
                                           "trsv"}

    def test_trace_reconciles_with_registry(self, run):
        _, res = run
        totals = res.trace.kernel_totals()
        for name, rec in res.registry.records.items():
            if rec.seconds > 0:
                assert totals[name] == pytest.approx(rec.seconds, rel=0.01)

    def test_counts_from_trace_match(self, run):
        app, res = run
        assert app.counts_from_trace(res.trace, res.registry) == res.counts

    def test_convergence_telemetry(self, run):
        _, res = run
        events = [e for e in res.trace.events if e.name == "residual"]
        assert len(events) == res.solve.steps
        assert [e.attrs["rnorm"] for e in events] == res.solve.residual_history
        m = res.metrics
        assert m.counter("gmres.iterations").value == res.solve.linear_iterations
        assert (
            m.histogram("newton.krylov_per_step").count == res.solve.steps - 1
        )
        assert m.counter("gmres.allreduces").value > 2 * res.solve.linear_iterations
        assert m.gauge("newton.final_residual").value == res.solve.final_residual

    def test_halo_metrics(self):
        import numpy as np

        from repro.dist import DomainDecomposition

        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        labels = np.array([0, 0, 1, 1])
        m = MetricsRegistry()
        with use_metrics(m):
            dd = DomainDecomposition(edges, labels)
            locals_ = dd.scatter(np.arange(4.0))
            dd.halo_exchange(locals_)
        assert m.counter("halo.exchanges").value == 1
        assert m.counter("halo.bytes").value > 0
        assert m.gauge("halo.redundant_edge_fraction").value > 0

    def test_multinode_trace_breakdown(self):
        from repro.dist import MESH_D_PAPER, MultiNodeModel

        mm = MultiNodeModel(MESH_D_PAPER)
        m = MetricsRegistry()
        with use_metrics(m):
            span = mm.trace_breakdown(64)
            bd = mm.step_breakdown(64)
        assert span.seconds == pytest.approx(bd["total"])
        parts = {c.name: c.seconds for c in span.children}
        assert parts["allreduce"] == pytest.approx(bd["allreduce"])
        assert parts["halo"] == pytest.approx(bd["halo"])
        assert m.counter("model.allreduce_count").value > 0
