"""Tests for halo exchange, network model and the multi-node scaling model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    MESH_C_PAPER,
    MESH_D_PAPER,
    DomainDecomposition,
    MultiNodeModel,
    NodeConfig,
    STAMPEDE_FDR,
)
from repro.mesh import delaunay_cloud_mesh, wing_mesh
from repro.partition import natural_partition, partition_graph


@pytest.fixture(scope="module")
def decomp():
    mesh = wing_mesh(n_around=20, n_radial=6, n_span=5)
    labels = partition_graph(mesh.edges, mesh.n_vertices, 4, seed=0)
    return mesh, labels, DomainDecomposition(mesh.edges, labels)


class TestDomainDecomposition:
    def test_owned_partition_complete(self, decomp):
        mesh, labels, dd = decomp
        counts = sum(d.n_owned for d in dd.domains)
        assert counts == mesh.n_vertices

    def test_ghosts_are_off_rank(self, decomp):
        mesh, labels, dd = decomp
        for d in dd.domains:
            assert np.all(labels[d.ghosts] != d.rank)

    def test_halo_exchange_correct(self, decomp):
        # after an exchange, every ghost holds its owner's current value
        mesh, labels, dd = decomp
        rng = np.random.default_rng(0)
        g = rng.normal(size=(mesh.n_vertices, 4))
        locals_ = dd.scatter(g)
        dd.halo_exchange(locals_)
        for d in dd.domains:
            np.testing.assert_allclose(locals_[d.rank][d.n_owned :], g[d.ghosts])

    def test_scatter_gather_roundtrip(self, decomp):
        mesh, labels, dd = decomp
        rng = np.random.default_rng(1)
        g = rng.normal(size=(mesh.n_vertices, 4))
        back = dd.gather(dd.scatter(g), mesh.n_vertices)
        np.testing.assert_allclose(back, g)

    def test_local_edges_cover_incident(self, decomp):
        mesh, labels, dd = decomp
        # total local edges = n_edges + cut (cut edges replicated)
        total = sum(d.local_edges.shape[0] for d in dd.domains)
        cut = (labels[mesh.edges[:, 0]] != labels[mesh.edges[:, 1]]).sum()
        assert total == mesh.n_edges + cut

    def test_send_recv_symmetry(self, decomp):
        _, _, dd = decomp
        for d in dd.domains:
            for nb in d.recv_lists:
                assert d.rank in dd.domains[nb].send_lists
                assert (
                    dd.domains[nb].send_lists[d.rank].shape[0]
                    == d.recv_lists[nb].shape[0]
                )

    def test_comm_stats_keys(self, decomp):
        _, _, dd = decomp
        stats = dd.comm_stats()
        assert stats["max_neighbors"] >= 1
        assert stats["total_send_bytes"] > 0

    def test_distributed_residual_matches_global(self, decomp):
        # the point of the ghost layer: each rank can evaluate the flux
        # residual of its owned vertices locally after one halo exchange
        from repro.cfd import FlowField, rusanov_edge_flux, scatter_edge_flux

        mesh, labels, dd = decomp
        field = FlowField(mesh)
        rng = np.random.default_rng(2)
        q = rng.normal(size=(mesh.n_vertices, 4))
        flux = rusanov_edge_flux(q[field.e0], q[field.e1], field.enormals, 4.0)
        ref = scatter_edge_flux(flux, field.e0, field.e1, mesh.n_vertices)

        locals_q = dd.scatter(q)
        dd.halo_exchange(locals_q)
        out = np.zeros_like(ref)
        # per-rank local normals: map each rank's local edges back to the
        # global edge to reuse the metric
        gkeys = mesh.edges[:, 0] * mesh.n_vertices + mesh.edges[:, 1]
        order = np.argsort(gkeys)
        for d in dd.domains:
            lids = np.concatenate([d.owned, d.ghosts])
            ge = lids[d.local_edges]
            lo = np.minimum(ge[:, 0], ge[:, 1])
            hi = np.maximum(ge[:, 0], ge[:, 1])
            idx = order[np.searchsorted(gkeys[order], lo * mesh.n_vertices + hi)]
            sign = np.where(ge[:, 0] == mesh.edges[idx, 0], 1.0, -1.0)
            normals = field.enormals[idx] * sign[:, None]
            ql = locals_q[d.rank][d.local_edges[:, 0]]
            qr = locals_q[d.rank][d.local_edges[:, 1]]
            f = rusanov_edge_flux(ql, qr, normals, 4.0)
            local_res = np.zeros((lids.shape[0], 4))
            np.add.at(local_res, d.local_edges[:, 0], f)
            np.subtract.at(local_res, d.local_edges[:, 1], f)
            out[d.owned] = local_res[: d.n_owned]
        np.testing.assert_allclose(out, ref, rtol=1e-11, atol=1e-11)


class TestNetwork:
    def test_ptp_monotone_in_bytes(self):
        n = STAMPEDE_FDR
        assert n.ptp_time(1e6) > n.ptp_time(1e3)

    def test_allreduce_log_scaling(self):
        n = STAMPEDE_FDR
        t64 = n.allreduce_time(64, 64)
        t4096 = n.allreduce_time(64, 4096)
        assert t4096 == pytest.approx(t64 * 2.0, rel=0.01)  # 12 vs 6 stages

    def test_allreduce_single_rank_free(self):
        assert STAMPEDE_FDR.allreduce_time(64, 1) == 0.0

    def test_hops(self):
        n = STAMPEDE_FDR
        assert n.hops(0, 0) == 0
        assert n.hops(0, 1) == 1  # same leaf
        assert n.hops(0, n.nodes_per_leaf) == 3  # cross leaf

    def test_neighbor_exchange_empty(self):
        assert STAMPEDE_FDR.neighbor_exchange_time(np.zeros(0)) == 0.0


class TestMultiNodeModel:
    def test_strong_scaling_monotone_until_limit(self):
        mm = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
        times = [mm.total_time(n) for n in (1, 2, 4, 8, 16, 64)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_comm_fraction_grows(self):
        # Fig. 10: communication dominates at scale
        mm = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
        f16 = mm.step_breakdown(16)["comm_fraction"]
        f256 = mm.step_breakdown(256)["comm_fraction"]
        assert f256 > f16
        assert f256 > 0.5  # paper: ~70%

    def test_allreduce_dominates_comm(self):
        # Fig. 10: >90% of the communication is MPI_Allreduce
        mm = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
        b = mm.step_breakdown(256)
        assert b["allreduce"] / b["comm"] > 0.9

    def test_optimized_faster_at_all_scales(self):
        # Fig. 9: 16-28% gains at every node count
        base = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
        opt = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=True))
        for n in (1, 4, 16, 64, 256):
            gain = base.total_time(n) / opt.total_time(n) - 1
            assert 0.05 < gain < 0.40

    def test_hybrid_beats_baseline(self):
        # Fig. 11: hybrid 10-23% over baseline
        base = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
        hyb = MultiNodeModel(
            MESH_D_PAPER,
            config=NodeConfig(
                optimized=True,
                ranks_per_node=2,
                threads_per_rank=8,
                threaded_kernels=True,
            ),
        )
        for n in (16, 64, 256):
            assert hyb.total_time(n) < base.total_time(n)

    def test_iteration_growth(self):
        # ~30% more Krylov iterations at 4096 subdomains
        mm = MultiNodeModel(MESH_D_PAPER)
        its1 = mm.iterations(1)
        its4096 = mm.iterations(4096)
        assert its4096 / its1 == pytest.approx(1.30, rel=0.01)

    def test_hybrid_fewer_subdomains_fewer_iterations(self):
        hyb = MultiNodeModel(
            MESH_D_PAPER,
            config=NodeConfig(ranks_per_node=2, threads_per_rank=8,
                              threaded_kernels=True, optimized=True),
        )
        mpi = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=True))
        n = 256
        assert hyb.iterations(hyb.n_ranks(n)) < mpi.iterations(mpi.n_ranks(n))

    def test_mesh_c_smaller_than_mesh_d(self):
        c = MultiNodeModel(MESH_C_PAPER).total_time(16)
        d = MultiNodeModel(MESH_D_PAPER).total_time(16)
        assert c < d

    def test_cut_fraction_power_law(self):
        mm = MultiNodeModel(MESH_D_PAPER)
        assert mm.cut_fraction(1) == 0.0
        assert mm.cut_fraction(64) == pytest.approx(mm.cut_coeff * 4.0)

    def test_cut_coeff_matches_real_partitions(self):
        # the default surface-to-volume coefficient should be within 2x of
        # what the real multilevel partitioner produces on Mesh-D'-like
        # meshes (cut fraction ~ coeff * P^(1/3))
        from repro.partition import edge_cut

        mesh = wing_mesh(n_around=32, n_radial=12, n_span=8)
        mm = MultiNodeModel(MESH_D_PAPER)
        for P in (8, 16):
            labels = partition_graph(mesh.edges, mesh.n_vertices, P, seed=0)
            frac = edge_cut(mesh.edges, labels) / mesh.n_edges
            model = mm.cut_fraction(P)
            # our meshes are ~30x smaller than Mesh-D, so their surface-to-
            # volume ratio is ~3x higher at equal P
            assert model < frac < 10 * model


@settings(max_examples=8, deadline=None)
@given(n=st.integers(50, 120), seed=st.integers(0, 20), k=st.sampled_from([2, 3, 5]))
def test_halo_exchange_property(n, seed, k):
    """Property: on arbitrary meshes/partitions, after one exchange every
    ghost equals its owner's value and gather(scatter(x)) == x."""
    mesh = delaunay_cloud_mesh(n, seed=seed)
    labels = natural_partition(mesh.n_vertices, k)
    dd = DomainDecomposition(mesh.edges, labels)
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(mesh.n_vertices, 3))
    locals_ = dd.scatter(g)
    dd.halo_exchange(locals_)
    for d in dd.domains:
        np.testing.assert_allclose(locals_[d.rank][d.n_owned :], g[d.ghosts])
    np.testing.assert_allclose(dd.gather(locals_, mesh.n_vertices), g)
