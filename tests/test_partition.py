"""Tests for the multilevel partitioner and partition metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh, delaunay_cloud_mesh, wing_mesh
from repro.partition import (
    Graph,
    contract,
    coordinate_partition,
    edge_cut,
    edges_per_part,
    heavy_edge_matching,
    load_imbalance,
    natural_partition,
    partition_graph,
    partition_report,
    replication_overhead,
    spectral_partition,
)


class TestGraph:
    def test_from_edges_symmetric(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        g = Graph.from_edges(edges, 3)
        assert g.n_vertices == 3
        assert g.n_adj == 6
        np.testing.assert_array_equal(g.degree(), [2, 2, 2])

    def test_edge_weights_duplicated(self):
        edges = np.array([[0, 1]])
        g = Graph.from_edges(edges, 2, ewgt=np.array([5]))
        assert g.ewgt.sum() == 10

    def test_matching_is_valid(self):
        m = box_mesh((4, 4, 4))
        g = Graph.from_edges(m.edges, m.n_vertices)
        rng = np.random.default_rng(0)
        match = heavy_edge_matching(g, rng)
        # involution: match[match[v]] == v
        np.testing.assert_array_equal(match[match], np.arange(g.n_vertices))

    def test_matching_pairs_are_edges(self):
        m = box_mesh((3, 3, 3))
        g = Graph.from_edges(m.edges, m.n_vertices)
        match = heavy_edge_matching(g, np.random.default_rng(1))
        eset = {(int(a), int(b)) for a, b in m.edges}
        eset |= {(b, a) for a, b in eset}
        for v, u in enumerate(match):
            if u != v:
                assert (v, int(u)) in eset

    def test_contract_preserves_total_weight(self):
        m = box_mesh((4, 3, 3))
        g = Graph.from_edges(m.edges, m.n_vertices)
        match = heavy_edge_matching(g, np.random.default_rng(2))
        coarse, cmap = contract(g, match)
        assert coarse.vwgt.sum() == g.vwgt.sum()
        assert coarse.n_vertices < g.n_vertices
        assert cmap.shape == (g.n_vertices,)
        assert cmap.max() == coarse.n_vertices - 1

    def test_contract_cut_invariant(self):
        # Weighted cut of any bisection must be identical computed on the
        # fine graph or the contracted graph (self-loops dropped correctly).
        m = box_mesh((4, 4, 3))
        g = Graph.from_edges(m.edges, m.n_vertices)
        rng = np.random.default_rng(3)
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        side_c = rng.integers(0, 2, coarse.n_vertices)
        side_f = side_c[cmap]
        cut_f = (side_f[m.edges[:, 0]] != side_f[m.edges[:, 1]]).sum()
        src = np.repeat(np.arange(coarse.n_vertices), coarse.degree())
        cut_c = coarse.ewgt[side_c[src] != side_c[coarse.cols]].sum() // 2
        assert cut_f == cut_c


class TestNatural:
    def test_balanced(self):
        lab = natural_partition(100, 7)
        counts = np.bincount(lab)
        assert counts.max() - counts.min() <= 1

    def test_contiguous(self):
        lab = natural_partition(50, 5)
        assert np.all(np.diff(lab) >= 0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            natural_partition(10, 0)

    def test_empty(self):
        assert natural_partition(0, 3).shape == (0,)


class TestMultilevel:
    def test_labels_in_range(self):
        m = box_mesh((5, 5, 5))
        lab = partition_graph(m.edges, m.n_vertices, 6, seed=0)
        assert lab.min() >= 0 and lab.max() == 5

    def test_all_parts_nonempty(self):
        m = wing_mesh(n_around=20, n_radial=6, n_span=5)
        lab = partition_graph(m.edges, m.n_vertices, 8, seed=1)
        assert np.bincount(lab, minlength=8).min() > 0

    def test_k1_trivial(self):
        m = box_mesh((3, 3, 3))
        lab = partition_graph(m.edges, m.n_vertices, 1)
        assert np.all(lab == 0)

    def test_balance_bound(self):
        m = wing_mesh(n_around=24, n_radial=8, n_span=6)
        for k in (2, 4, 8):
            lab = partition_graph(m.edges, m.n_vertices, k, seed=2)
            assert load_imbalance(lab, k) < 1.25

    def test_beats_natural_on_scrambled(self):
        m = wing_mesh(n_around=24, n_radial=8, n_span=6)
        k = 8
        lab = partition_graph(m.edges, m.n_vertices, k, seed=3)
        nat = natural_partition(m.n_vertices, k)
        assert edge_cut(m.edges, lab) < 0.6 * edge_cut(m.edges, nat)

    def test_deterministic_given_seed(self):
        m = box_mesh((4, 4, 4))
        a = partition_graph(m.edges, m.n_vertices, 4, seed=9)
        b = partition_graph(m.edges, m.n_vertices, 4, seed=9)
        np.testing.assert_array_equal(a, b)


class TestGeometric:
    def test_rcb_balanced(self):
        m = box_mesh((6, 6, 6))
        lab = coordinate_partition(m.coords, 8)
        assert load_imbalance(lab, 8) < 1.02

    def test_rcb_compact_beats_natural_scrambled(self):
        m = wing_mesh(n_around=20, n_radial=6, n_span=5, ordering="random")
        lab = coordinate_partition(m.coords, 8)
        nat = natural_partition(m.n_vertices, 8)
        assert edge_cut(m.edges, lab) < edge_cut(m.edges, nat)

    def test_spectral_small(self):
        m = box_mesh((4, 4, 4))
        lab = spectral_partition(m.edges, m.n_vertices, 2)
        counts = np.bincount(lab, minlength=2)
        assert counts.min() > 0
        assert load_imbalance(lab, 2) < 1.1


class TestMetrics:
    def test_edge_cut_zero_single_part(self):
        m = box_mesh((3, 3, 3))
        assert edge_cut(m.edges, np.zeros(m.n_vertices, dtype=int)) == 0

    def test_replication_matches_cut(self):
        m = box_mesh((4, 4, 4))
        lab = natural_partition(m.n_vertices, 4)
        assert replication_overhead(m.edges, lab) == pytest.approx(
            edge_cut(m.edges, lab) / m.n_edges
        )

    def test_edges_per_part_counts_cut_twice(self):
        m = box_mesh((4, 4, 4))
        lab = natural_partition(m.n_vertices, 4)
        per = edges_per_part(m.edges, lab, 4)
        assert per.sum() == m.n_edges + edge_cut(m.edges, lab)

    def test_report_str(self):
        m = box_mesh((3, 3, 3))
        rep = partition_report(m.edges, natural_partition(m.n_vertices, 2), 2)
        assert "PartitionReport" in str(rep)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(60, 160),
    seed=st.integers(0, 30),
    k=st.sampled_from([2, 3, 4, 6]),
)
def test_partition_properties(n, seed, k):
    """Property: multilevel partitions are complete, in-range, and balanced
    within tolerance on arbitrary Delaunay meshes."""
    m = delaunay_cloud_mesh(n, seed=seed)
    lab = partition_graph(m.edges, m.n_vertices, k, seed=seed)
    assert lab.shape == (m.n_vertices,)
    assert lab.min() >= 0 and lab.max() < k
    assert load_imbalance(lab, k) < 1.6  # small graphs: coarse granularity
