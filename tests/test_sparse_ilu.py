"""Tests for ILU(k) symbolic/numeric factorization and triangular solves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh, delaunay_cloud_mesh
from repro.sparse import (
    BCSRMatrix,
    available_parallelism,
    build_ilu_plan,
    build_levels,
    ilu_factorize,
    ilu_symbolic,
    trsv_solve,
    trsv_solve_sequential,
)


def random_spd_bcsr(mesh, b=4, seed=0, shift=8.0):
    A = BCSRMatrix.from_mesh_edges(mesh.edges, mesh.n_vertices, b=b)
    rng = np.random.default_rng(seed)
    A.vals[:] = rng.normal(size=A.vals.shape) * 0.1
    A.add_to_diagonal(shift)
    return A


def block_tridiagonal(n, b=3, seed=0):
    """Block tridiagonal matrix — its exact LU has no fill."""
    edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    A = BCSRMatrix.from_mesh_edges(edges, n, b=b)
    rng = np.random.default_rng(seed)
    A.vals[:] = rng.normal(size=A.vals.shape) * 0.2
    A.add_to_diagonal(5.0)
    return A


class TestSymbolic:
    def test_level0_is_identity(self):
        m = box_mesh((3, 3, 3))
        A = random_spd_bcsr(m)
        rp, c = ilu_symbolic(A.rowptr, A.cols, 0)
        np.testing.assert_array_equal(rp, A.rowptr)
        np.testing.assert_array_equal(c, A.cols)

    def test_fill_is_superset(self):
        m = box_mesh((4, 3, 3))
        A = random_spd_bcsr(m)
        rp1, c1 = ilu_symbolic(A.rowptr, A.cols, 1)
        assert c1.shape[0] >= A.cols.shape[0]
        s0 = {
            (i, int(j))
            for i in range(A.n_brows)
            for j in A.cols[A.rowptr[i] : A.rowptr[i + 1]]
        }
        s1 = {
            (i, int(j))
            for i in range(A.n_brows)
            for j in c1[rp1[i] : rp1[i + 1]]
        }
        assert s0 <= s1

    def test_fill_monotone_in_level(self):
        m = box_mesh((3, 3, 4))
        A = random_spd_bcsr(m)
        sizes = [
            ilu_symbolic(A.rowptr, A.cols, k)[1].shape[0] for k in range(3)
        ]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_tridiagonal_no_fill(self):
        A = block_tridiagonal(10)
        rp, c = ilu_symbolic(A.rowptr, A.cols, 3)
        assert c.shape[0] == A.cols.shape[0]

    def test_rows_stay_sorted(self):
        m = delaunay_cloud_mesh(60, seed=2)
        A = random_spd_bcsr(m)
        rp, c = ilu_symbolic(A.rowptr, A.cols, 2)
        for i in range(A.n_brows):
            assert np.all(np.diff(c[rp[i] : rp[i + 1]]) > 0)

    def test_negative_level_rejected(self):
        A = block_tridiagonal(4)
        with pytest.raises(ValueError):
            ilu_symbolic(A.rowptr, A.cols, -1)


class TestNumericILU:
    def test_ilu0_exact_on_tridiagonal(self):
        # exact LU of a block tridiagonal has no fill, so ILU(0) is exact
        A = block_tridiagonal(12, b=3, seed=1)
        plan = build_ilu_plan(A.rowptr, A.cols, b=3, fill_level=0)
        F = ilu_factorize(A, plan)
        rng = np.random.default_rng(2)
        b = rng.normal(size=A.shape[0])
        x = trsv_solve(F, b)
        np.testing.assert_allclose(A.matvec(x), b, rtol=1e-10, atol=1e-10)

    def test_lu_product_matches_on_pattern(self):
        # ILU(0) defect property: (L@U)[i,j] == A[i,j] wherever (i,j) is in
        # the pattern.
        m = box_mesh((3, 3, 3), jitter=0.1, seed=3)
        A = random_spd_bcsr(m, b=2, seed=3)
        plan = build_ilu_plan(A.rowptr, A.cols, b=2, fill_level=0)
        F = ilu_factorize(A, plan)
        n, b = plan.n, plan.b
        L = np.zeros((n * b, n * b))
        U = np.zeros((n * b, n * b))
        for i in range(n):
            for p in range(plan.rowptr[i], plan.rowptr[i + 1]):
                j = plan.cols[p]
                blk = F.vals[p]
                if j < i:
                    L[i * b : (i + 1) * b, j * b : (j + 1) * b] = blk
                else:
                    U[i * b : (i + 1) * b, j * b : (j + 1) * b] = blk
        L += np.eye(n * b)
        prod = L @ U
        dense = A.to_dense()
        for i in range(n):
            for p in range(A.rowptr[i], A.rowptr[i + 1]):
                j = A.cols[p]
                np.testing.assert_allclose(
                    prod[i * b : (i + 1) * b, j * b : (j + 1) * b],
                    dense[i * b : (i + 1) * b, j * b : (j + 1) * b],
                    rtol=1e-9,
                    atol=1e-9,
                )

    def test_high_fill_converges_to_exact(self):
        # With enough fill, ILU(k) approaches the exact factorization and
        # the preconditioner solves the system outright.
        m = box_mesh((3, 3, 2), jitter=0.05, seed=4)
        A = random_spd_bcsr(m, b=2, seed=4, shift=6.0)
        plan = build_ilu_plan(A.rowptr, A.cols, b=2, fill_level=10)
        F = ilu_factorize(A, plan)
        rng = np.random.default_rng(5)
        b = rng.normal(size=A.shape[0])
        x = trsv_solve(F, b)
        np.testing.assert_allclose(A.matvec(x), b, rtol=1e-8, atol=1e-8)

    def test_ilu1_better_preconditioner_than_ilu0(self):
        m = box_mesh((4, 4, 4), jitter=0.1, seed=6)
        A = random_spd_bcsr(m, b=2, seed=6, shift=3.0)
        rng = np.random.default_rng(7)
        b = rng.normal(size=A.shape[0])

        def precond_residual(fill):
            plan = build_ilu_plan(A.rowptr, A.cols, b=2, fill_level=fill)
            F = ilu_factorize(A, plan)
            x = trsv_solve(F, b)
            return np.linalg.norm(b - A.matvec(x))

        assert precond_residual(1) < precond_residual(0)

    def test_block_size_mismatch_raises(self):
        A = block_tridiagonal(5, b=3)
        plan = build_ilu_plan(A.rowptr, A.cols, b=2, fill_level=0)
        with pytest.raises(ValueError):
            ilu_factorize(A, plan)


class TestTRSV:
    def test_vectorized_equals_sequential(self):
        m = box_mesh((4, 4, 3), jitter=0.1, seed=8)
        A = random_spd_bcsr(m, seed=8)
        plan = build_ilu_plan(A.rowptr, A.cols, b=4, fill_level=0)
        F = ilu_factorize(A, plan)
        rng = np.random.default_rng(9)
        b = rng.normal(size=A.shape[0])
        np.testing.assert_allclose(
            trsv_solve(F, b), trsv_solve_sequential(F, b), rtol=1e-12, atol=1e-12
        )

    def test_block_shaped_rhs(self):
        A = block_tridiagonal(8, b=2, seed=10)
        plan = build_ilu_plan(A.rowptr, A.cols, b=2, fill_level=0)
        F = ilu_factorize(A, plan)
        rng = np.random.default_rng(11)
        bb = rng.normal(size=(8, 2))
        x = trsv_solve(F, bb)
        assert x.shape == (8, 2)
        np.testing.assert_allclose(x.reshape(-1), trsv_solve(F, bb.reshape(-1)))

    def test_identity_factor(self):
        # A = I => solve returns rhs
        n, b = 6, 3
        edges = np.zeros((0, 2), dtype=np.int64)
        A = BCSRMatrix.from_mesh_edges(edges, n, b=b)
        A.add_to_diagonal(1.0)
        plan = build_ilu_plan(A.rowptr, A.cols, b=b, fill_level=0)
        F = ilu_factorize(A, plan)
        rhs = np.arange(n * b, dtype=float)
        np.testing.assert_allclose(trsv_solve(F, rhs), rhs)


class TestLevels:
    def test_diagonal_single_level(self):
        rowptr = np.arange(6)
        cols = np.arange(5)
        sched = build_levels(rowptr, cols)
        assert sched.n_levels == 1
        assert sched.levels[0].shape[0] == 5

    def test_dense_lower_n_levels(self):
        # fully sequential chain: row i depends on i-1
        n = 7
        rowptr = np.zeros(n + 1, dtype=int)
        cols = []
        for i in range(n):
            row = list(range(max(0, i - 1), i + 1))
            cols.extend(row)
            rowptr[i + 1] = rowptr[i] + len(row)
        sched = build_levels(rowptr, np.array(cols))
        assert sched.n_levels == n

    def test_levels_respect_dependencies(self):
        m = box_mesh((4, 4, 4))
        A = random_spd_bcsr(m)
        sched = build_levels(A.rowptr, A.cols)
        for i in range(A.n_brows):
            row = A.cols[A.rowptr[i] : A.rowptr[i + 1]]
            lower = row[row < i]
            if lower.shape[0]:
                assert sched.level_of[lower].max() < sched.level_of[i]

    def test_widths_sum_to_n(self):
        m = delaunay_cloud_mesh(100, seed=12)
        A = random_spd_bcsr(m)
        sched = build_levels(A.rowptr, A.cols)
        assert sched.widths().sum() == A.n_brows

    def test_available_parallelism_bounds(self):
        m = box_mesh((5, 5, 5))
        A = random_spd_bcsr(m)
        par = available_parallelism(A.rowptr, A.cols)
        assert 1.0 <= par <= A.n_brows

    def test_fill_reduces_parallelism(self):
        # Table II: ILU-1's pattern has less available parallelism than
        # ILU-0's on the same mesh.
        m = box_mesh((6, 6, 6))
        A = random_spd_bcsr(m)
        rp1, c1 = ilu_symbolic(A.rowptr, A.cols, 1)
        par0 = available_parallelism(A.rowptr, A.cols)
        par1 = available_parallelism(rp1, c1)
        assert par1 < par0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50), fill=st.sampled_from([0, 1]))
def test_trsv_property(seed, fill):
    """Property: vectorized level-scheduled TRSV is numerically identical to
    the sequential reference for any mesh pattern, values and fill level."""
    m = delaunay_cloud_mesh(50, seed=seed % 5)
    A = random_spd_bcsr(m, b=2, seed=seed)
    plan = build_ilu_plan(A.rowptr, A.cols, b=2, fill_level=fill)
    F = ilu_factorize(A, plan)
    rng = np.random.default_rng(seed)
    b = rng.normal(size=A.shape[0])
    np.testing.assert_allclose(
        trsv_solve(F, b), trsv_solve_sequential(F, b), rtol=1e-11, atol=1e-11
    )
