"""Tests for the machine model and kernel cost models."""

import numpy as np
import pytest

from repro.mesh import mesh_c_prime, wing_mesh
from repro.smp import (
    STAMPEDE_E5_2680,
    XEON_E5_2690_V2,
    EdgeLoopOptions,
    TriSolveOptions,
    edge_loop_time,
    flux_kernel_work,
    ilu_time,
    trsv_time,
    vector_op_time,
    vertex_loop_time,
)
from repro.sparse import BCSRMatrix, build_ilu_plan


@pytest.fixture(scope="module")
def small_plan():
    m = wing_mesh(n_around=24, n_radial=8, n_span=6)
    A = BCSRMatrix.from_mesh_edges(m.edges, m.n_vertices, b=4)
    return build_ilu_plan(A.rowptr, A.cols, 4, 0)


class TestMachineModel:
    def test_bandwidth_saturates(self):
        mach = XEON_E5_2690_V2
        assert mach.bandwidth(1) == mach.core_bw
        assert mach.bandwidth(10) == mach.stream_bw
        assert mach.bandwidth(20) == mach.stream_bw

    def test_bandwidth_saturation_point(self):
        # the paper: TRSV bandwidth saturates beyond 4 cores
        mach = XEON_E5_2690_V2
        assert mach.bandwidth(3) < mach.stream_bw
        assert mach.bandwidth(4) >= 0.95 * mach.stream_bw

    def test_flop_rate_peak(self):
        mach = XEON_E5_2690_V2
        # 10 cores x 3 GHz x 8 flops = 240 Gflop/s (the paper's peak)
        assert mach.flop_rate(10, simd=True) == pytest.approx(240e9)

    def test_smt_sublinear(self):
        mach = XEON_E5_2690_V2
        assert mach.threads_to_cores(20) < 20
        assert mach.threads_to_cores(20) > 10

    def test_barrier_grows_with_threads(self):
        mach = XEON_E5_2690_V2
        assert mach.barrier_seconds(1) == 0.0
        assert mach.barrier_seconds(16) > mach.barrier_seconds(4) > 0


class TestEdgeLoopModel:
    def setup_method(self):
        self.mach = XEON_E5_2690_V2
        self.work = flux_kernel_work(100_000)

    def _time(self, **kw):
        return edge_loop_time(self.mach, self.work, EdgeLoopOptions(**kw))

    def test_threads_speed_up(self):
        seq = self._time(n_threads=1)
        par = self._time(n_threads=10, strategy="replicate",
                         edges_per_thread=np.full(10, 10_000))
        assert par < seq / 5

    def test_aos_beats_soa(self):
        kw = dict(n_threads=10, strategy="replicate",
                  edges_per_thread=np.full(10, 10_000), rcm=True)
        assert self._time(layout="aos", **kw) < self._time(layout="soa", **kw)

    def test_simd_beats_scalar(self):
        kw = dict(n_threads=10, strategy="replicate", layout="aos",
                  edges_per_thread=np.full(10, 10_000), rcm=True)
        assert self._time(simd=True, **kw) < self._time(simd=False, **kw)

    def test_prefetch_helps(self):
        kw = dict(n_threads=10, strategy="replicate", layout="aos",
                  simd=True, edges_per_thread=np.full(10, 10_000), rcm=True)
        assert self._time(prefetch=True, **kw) < self._time(prefetch=False, **kw)

    def test_rcm_helps(self):
        kw = dict(n_threads=1)
        assert self._time(rcm=True, **kw) < self._time(rcm=False, **kw)

    def test_atomics_slower_than_clean_partition(self):
        kw = dict(n_threads=10, layout="aos", simd=True, prefetch=True, rcm=True)
        atomic = self._time(strategy="atomic", **kw)
        clean = self._time(strategy="replicate",
                           edges_per_thread=np.full(10, 10_000), **kw)
        assert atomic > clean

    def test_replication_costs_time(self):
        kw = dict(n_threads=10, layout="aos", simd=True, prefetch=True, rcm=True,
                  strategy="replicate")
        balanced = self._time(edges_per_thread=np.full(10, 10_000), **kw)
        replicated = self._time(edges_per_thread=np.full(10, 15_000), **kw)
        assert replicated > balanced

    def test_imbalance_costs_time(self):
        kw = dict(n_threads=10, layout="aos", simd=True, prefetch=True, rcm=True,
                  strategy="replicate")
        balanced = self._time(edges_per_thread=np.full(10, 10_000), **kw)
        skewed_counts = np.full(10, 8_000)
        skewed_counts[0] = 28_000  # same total
        skewed = self._time(edges_per_thread=skewed_counts, **kw)
        assert skewed > balanced


class TestPaperCalibration:
    """The headline single-node numbers the model is calibrated to."""

    @pytest.fixture(scope="class")
    def meshc(self):
        return mesh_c_prime(scale=0.4)

    def test_flux_cumulative_ratios(self, meshc):
        from repro.smp import EdgeLoopExecutor, metis_thread_labels

        mach = XEON_E5_2690_V2
        work = flux_kernel_work(meshc.n_edges)
        base = edge_loop_time(mach, work, EdgeLoopOptions(n_threads=1))
        labels = metis_thread_labels(meshc.edges, meshc.n_vertices, 20, seed=1)
        ex = EdgeLoopExecutor(meshc.edges, meshc.n_vertices, 20, "replicate", labels)
        ept = ex.edges_per_thread()

        def t(layout, simd, pf):
            return edge_loop_time(mach, work, EdgeLoopOptions(
                n_threads=20, strategy="replicate", layout=layout,
                simd=simd, prefetch=pf, rcm=True, edges_per_thread=ept))

        thr = t("soa", False, False)
        aos = t("aos", False, False)
        simd = t("aos", True, False)
        pf = t("aos", True, True)
        assert thr / aos == pytest.approx(1.4, rel=0.1)   # paper: +40%
        assert aos / simd == pytest.approx(1.4, rel=0.1)  # paper: +40%
        assert simd / pf == pytest.approx(1.15, rel=0.1)  # paper: +15%
        assert 15.0 < base / pf < 30.0                    # paper: 20.6x

    def test_trsv_speedup_and_bandwidth(self, meshc):
        # Calibrated at PAPER scale: Mesh-C's ILU-0 pattern has 248x
        # available parallelism (Table II), far above the 5*threads
        # threshold, so the solve reaches its bandwidth bound.  Our test
        # mesh is ~15x smaller, so we pin the paper's parallelism here;
        # the benches report the measured small-mesh values.
        from repro.smp import tri_solve_options_from_plan

        mach = XEON_E5_2690_V2
        A = BCSRMatrix.from_mesh_edges(meshc.edges, meshc.n_vertices, b=4)
        plan = build_ilu_plan(A.rowptr, A.cols, 4, 0)
        t1 = trsv_time(mach, plan.factor_nnzb, plan.n, 4,
                       TriSolveOptions(n_threads=1))
        opts = tri_solve_options_from_plan(plan, "p2p", 20)
        opts.available_parallelism = 248.0
        t20 = trsv_time(mach, plan.factor_nnzb, plan.n, 4, opts)
        assert t1 / t20 == pytest.approx(3.2, rel=0.15)  # paper: 3.2x
        nbytes = plan.factor_nnzb * 136.0 + plan.n * (3 * 32 + 128)
        achieved = nbytes / t20
        assert achieved > 0.85 * mach.stream_bw  # paper: 94% of STREAM

    def test_ilu_speedup(self, meshc):
        from repro.smp import tri_solve_options_from_plan

        mach = XEON_E5_2690_V2
        A = BCSRMatrix.from_mesh_edges(meshc.edges, meshc.n_vertices, b=4)
        plan = build_ilu_plan(A.rowptr, A.cols, 4, 0)
        bo = plan.factor_block_ops()
        i1 = ilu_time(mach, bo, plan.factor_nnzb, plan.n, 4,
                      TriSolveOptions(n_threads=1))
        opts = tri_solve_options_from_plan(plan, "p2p", 20)
        opts.available_parallelism = 248.0  # paper-scale (see above)
        i20 = ilu_time(mach, bo, plan.factor_nnzb, plan.n, 4, opts)
        assert i1 / i20 == pytest.approx(9.4, rel=0.2)  # paper: 9.4x

    def test_limited_parallelism_throttles(self, meshc):
        # Table II's mechanism: ILU-1's 60x parallelism cannot feed 20
        # threads; the same pattern with ample parallelism runs faster.
        from repro.smp import tri_solve_options_from_plan

        mach = XEON_E5_2690_V2
        A = BCSRMatrix.from_mesh_edges(meshc.edges, meshc.n_vertices, b=4)
        plan = build_ilu_plan(A.rowptr, A.cols, 4, 0)
        rich = tri_solve_options_from_plan(plan, "p2p", 20)
        rich.available_parallelism = 248.0
        poor = tri_solve_options_from_plan(plan, "p2p", 20)
        poor.available_parallelism = 60.0
        t_rich = trsv_time(mach, plan.factor_nnzb, plan.n, 4, rich)
        t_poor = trsv_time(mach, plan.factor_nnzb, plan.n, 4, poor)
        assert t_poor > 1.3 * t_rich


class TestTriSolveModel:
    def test_p2p_beats_level(self, small_plan):
        from repro.smp import tri_solve_options_from_plan

        mach = XEON_E5_2690_V2
        for t in (4, 10, 20):
            tp = trsv_time(mach, small_plan.factor_nnzb, small_plan.n, 4,
                           tri_solve_options_from_plan(small_plan, "p2p", t))
            tl = trsv_time(mach, small_plan.factor_nnzb, small_plan.n, 4,
                           tri_solve_options_from_plan(small_plan, "level", t))
            assert tp < tl

    def test_level_needs_widths(self, small_plan):
        with pytest.raises(ValueError):
            trsv_time(XEON_E5_2690_V2, 100, 10, 4,
                      TriSolveOptions(n_threads=4, strategy="level"))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            trsv_time(XEON_E5_2690_V2, 100, 10, 4,
                      TriSolveOptions(n_threads=4, strategy="bogus"))

    def test_ilu_uncompressed_buffer_worse_with_threads(self, small_plan):
        from repro.smp import tri_solve_options_from_plan

        mach = XEON_E5_2690_V2
        opts = tri_solve_options_from_plan(small_plan, "p2p", 20)
        bo = small_plan.factor_block_ops()
        good = ilu_time(mach, bo, small_plan.factor_nnzb, small_plan.n, 4,
                        opts, compressed_buffer=True)
        bad = ilu_time(mach, bo, small_plan.factor_nnzb, small_plan.n, 4,
                       opts, compressed_buffer=False)
        assert bad > good


class TestStreamingModels:
    def test_vertex_loop_bandwidth_bound(self):
        mach = XEON_E5_2690_V2
        t1 = vertex_loop_time(mach, 1_000_000, 64.0, 4.0, 1)
        t10 = vertex_loop_time(mach, 1_000_000, 64.0, 4.0, 10)
        assert t1 / t10 == pytest.approx(mach.stream_bw / mach.core_bw, rel=0.1)

    def test_vector_op_scales_to_bw_limit(self):
        mach = STAMPEDE_E5_2680
        t1 = vector_op_time(mach, 8e6, 2e6, 1)
        t8 = vector_op_time(mach, 8e6, 2e6, 8)
        assert t8 < t1


class TestManyCoreModel:
    def test_phi_has_240_threads(self):
        from repro.smp import XEON_PHI_KNC

        assert XEON_PHI_KNC.n_threads_max == 240

    def test_phi_smt_essential(self):
        # in-order cores: SMT threads contribute much more than on Xeon
        from repro.smp import XEON_E5_2690_V2, XEON_PHI_KNC

        xeon_gain = XEON_E5_2690_V2.threads_to_cores(20) / 10
        phi_gain = XEON_PHI_KNC.threads_to_cores(240) / 60
        assert phi_gain > xeon_gain

    def test_phi_bandwidth_exceeds_xeon(self):
        from repro.smp import XEON_E5_2690_V2, XEON_PHI_KNC

        assert XEON_PHI_KNC.bandwidth(240) > XEON_E5_2690_V2.bandwidth(20)


class TestPipelinedGmresModel:
    def test_pipelining_helps_at_scale(self):
        from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig

        std = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=True))
        pip = MultiNodeModel(
            MESH_D_PAPER,
            config=NodeConfig(optimized=True, pipelined_gmres=True),
        )
        assert pip.total_time(256) < std.total_time(256)

    def test_pipelining_noop_single_node_compute_bound(self):
        from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig

        std = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=True))
        pip = MultiNodeModel(
            MESH_D_PAPER,
            config=NodeConfig(optimized=True, pipelined_gmres=True),
        )
        # at 1 node the reductions are fully hidden either way
        import math

        assert math.isclose(
            pip.total_time(1), std.total_time(1), rel_tol=0.02
        )
