"""Property tests for the kernel-graph IR (repro.kgir).

The contract under test: the fused single-pass programs are **bitwise
identical** to the unfused gradient/limiter/flux oracle — across meshes,
vertex orderings, serial and process execution, and trailing-axis batch
widths — and the rewrite pass refuses every merge it cannot prove exact
(mismatched index sets, scatter->gather hazards, write-write overlap).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd import FlowConfig, FlowField, compute_residual
from repro.cfd.flux import interior_flux_residual
from repro.cfd.gradient import lsq_gradients, venkat_limiter
from repro.kgir import (
    EdgeIndexSet,
    EdgeStage,
    FusedEdgeBackend,
    FusionError,
    Graph,
    PointStage,
    ScatterSpec,
    batched_residual,
    fuse_graph,
    fuse_stages,
    fusion_report,
    residual_program,
)
from repro.mesh import dataset_mesh, wing_mesh
from repro.perf.scatter import segment_reduce_plan
from repro.smp import ProcessEdgeBackend, use_edge_backend
from repro.smp.bench import (
    FUSION_SCHEMA,
    append_history,
    fusion_gate_failures,
    load_history,
    rolling_fusion_gate_failures,
    run_fusion,
)

_FIELDS: dict = {}


def _field(kind: str, ordering: str) -> FlowField:
    """Small meshes cached across examples (hypothesis re-enters often)."""
    key = (kind, ordering)
    if key not in _FIELDS:
        scale = 0.02 if kind == "wing" else 0.04
        _FIELDS[key] = FlowField(
            dataset_mesh(kind, scale=scale, seed=5, ordering=ordering)
        )
    return _FIELDS[key]


def _state(field: FlowField, cfg: FlowConfig, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return field.initial_state(cfg) + 0.05 * rng.normal(
        size=(field.n_vertices, 4)
    )


def _oracle(field: FlowField, q: np.ndarray, cfg: FlowConfig):
    """The unfused three-kernel reference sequence."""
    grad = lsq_gradients(field, q)
    phi = venkat_limiter(field, q, grad, k=cfg.limiter_k)
    res = interior_flux_residual(
        field, q, cfg.beta, grad, phi, scheme=cfg.dissipation
    )
    return res, grad, phi


# ---------------------------------------------------------------------------
# fused == unfused, bitwise (the acceptance property)
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(["wing", "mesh-c"]),
    ordering=st.sampled_from(["natural", "rcm"]),
    seed=st.integers(0, 50),
    aoa=st.sampled_from([0.0, 2.0]),
    scheme=st.sampled_from(["rusanov", "roe"]),
)
def test_program_bitwise_equals_oracle(kind, ordering, seed, aoa, scheme):
    field = _field(kind, ordering)
    cfg = FlowConfig(aoa_deg=aoa, dissipation=scheme)
    q = _state(field, cfg, seed)
    res0, grad0, phi0 = _oracle(field, q, cfg)
    for fuse in (False, True):
        res, grad, phi = residual_program(field, fuse=fuse).run(q, cfg)
        assert np.array_equal(res, res0), f"res differs (fuse={fuse})"
        assert np.array_equal(grad, grad0), f"grad differs (fuse={fuse})"
        assert np.array_equal(phi, phi0), f"phi differs (fuse={fuse})"


@settings(max_examples=8, deadline=None)
@given(
    ordering=st.sampled_from(["natural", "rcm"]),
    width=st.integers(1, 4),
    seed=st.integers(0, 20),
)
def test_batched_residual_bitwise_per_case(ordering, width, seed):
    """One trailing-axis batched sweep == each case's full residual."""
    field = _field("wing", ordering)
    configs = [
        FlowConfig(
            aoa_deg=float(b), beta=2.0 + b % 2,
            dissipation="roe" if b % 2 else "rusanov",
        )
        for b in range(width)
    ]
    q_batch = np.stack(
        [_state(field, cfg, seed + b) for b, cfg in enumerate(configs)],
        axis=-1,
    )
    res, grad, phi = batched_residual(field, q_batch, configs)
    assert res.shape == (field.n_vertices, 4, width)
    for b, cfg in enumerate(configs):
        qb = np.ascontiguousarray(q_batch[..., b])
        ref = compute_residual(field, qb, cfg)
        assert np.array_equal(np.ascontiguousarray(res[..., b]), ref)


def test_batched_residual_rejects_first_order():
    field = _field("wing", "natural")
    cfg = FlowConfig(second_order=False)
    q = field.initial_state(cfg)[..., None]
    with pytest.raises(ValueError, match="second-order"):
        batched_residual(field, q, [cfg])


# ---------------------------------------------------------------------------
# backend hook: serial and process execution
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def wing_setup():
    mesh = wing_mesh(n_around=16, n_radial=5, n_span=4)
    field = FlowField(mesh)
    cfg = FlowConfig(aoa_deg=2.0)
    q = _state(field, cfg, 3)
    return field, q, cfg


def test_fused_backend_serial_bitwise(wing_setup):
    field, q, cfg = wing_setup
    ref = compute_residual(field, q, cfg)
    backend = FusedEdgeBackend(field)
    with use_edge_backend(backend):
        got = compute_residual(field, q, cfg)
    assert np.array_equal(got, ref)
    assert backend.fleet_stats()["fused"] is True


def test_fused_backend_process_owner_bitwise(wing_setup):
    """Owner-writes keeps the reference accumulation order per vertex, so
    the fused pipeline over worker processes stays bitwise-exact."""
    field, q, cfg = wing_setup
    ref = compute_residual(field, q, cfg)
    with ProcessEdgeBackend(field, n_workers=2, strategy="owner") as inner:
        fused = FusedEdgeBackend(field, inner=inner)
        with use_edge_backend(fused):
            got = compute_residual(field, q, cfg)
    assert np.array_equal(got, ref)


@pytest.mark.parametrize("strategy", ["replicate", "locked"])
def test_fused_backend_process_tolerance_strategies(wing_setup, strategy):
    """Replicated/locked accumulation reorders the additive folds, so the
    fused pipeline promises the same tolerance as the unfused one there."""
    field, q, cfg = wing_setup
    ref = compute_residual(field, q, cfg)
    with ProcessEdgeBackend(field, n_workers=2, strategy=strategy) as inner:
        fused = FusedEdgeBackend(field, inner=inner)
        with use_edge_backend(fused):
            got = compute_residual(field, q, cfg)
    assert np.max(np.abs(got - ref)) < 1e-10


def test_first_order_bypasses_fused_pipeline(wing_setup):
    """The preconditioner-side first-order residual never routes through
    the program (it has no gradients/limiter to fuse)."""
    field, q, cfg = wing_setup
    ref = compute_residual(field, q, cfg, first_order=True)
    with use_edge_backend(FusedEdgeBackend(field)):
        got = compute_residual(field, q, cfg, first_order=True)
    assert np.array_equal(got, ref)


# ---------------------------------------------------------------------------
# rewrite pass: legality
# ---------------------------------------------------------------------------


def _idx(name="interior", n=8, seed=0):
    rng = np.random.default_rng(seed)
    return EdgeIndexSet(
        name=name, e0=rng.integers(0, 5, n), e1=rng.integers(0, 5, n)
    )


def _edge(name, idx, reads=("q",), writes=("res",), edge_reads=(),
          carries=()):
    return EdgeStage(
        name=name,
        index_set=idx,
        reads=tuple(reads),
        scatters=tuple(
            ScatterSpec(src=f"{w}_src", target=w, op="add", plan=None)
            for w in writes
        ),
        compute=lambda cfg, g: {},
        edge_reads=tuple(edge_reads),
        carries=tuple(carries),
    )


class TestFusionLegality:
    def test_mismatched_index_sets_refused(self):
        a = _edge("a", _idx("interior"))
        b = _edge("b", _idx("boundary", seed=1), writes=("other",))
        with pytest.raises(FusionError, match="index sets differ"):
            fuse_stages([a, b])

    def test_scatter_gather_hazard_refused(self):
        idx = _idx()
        a = _edge("a", idx, writes=("phi",))
        b = _edge("b", idx, reads=("q", "phi"), writes=("res",))
        with pytest.raises(FusionError, match="scatter->gather hazard"):
            fuse_stages([a, b])

    def test_write_write_overlap_refused(self):
        idx = _idx()
        with pytest.raises(FusionError, match="write-write overlap"):
            fuse_stages([_edge("a", idx), _edge("b", idx)])

    def test_point_stage_refused(self):
        point = PointStage(
            name="p", reads=(), writes=("x",), compute=lambda c, e: {}
        )
        with pytest.raises(FusionError, match="not an edge stage"):
            fuse_stages([_edge("a", _idx()), point])

    def test_legal_fusion_dedups_reads_and_merges_writes(self):
        idx = _idx()
        a = _edge("a", idx, reads=("q",), writes=("rhs",), carries=("d",))
        b = _edge("b", idx, reads=("q", "w"), writes=("res",),
                  edge_reads=("d", "ext"))
        fused = fuse_stages([a, b])
        assert fused.name == "a+b"
        assert fused.reads == ("q", "w")  # shared gather, deduped
        assert fused.writes == ("rhs", "res")
        assert fused.carries == ("d",)
        # 'd' resolves inside the shared sweep; only 'ext' is external
        assert fused.edge_reads == ("ext",)

    def test_graph_rewrite_splits_at_point_barriers(self):
        idx = _idx()
        point = PointStage(
            name="solve", reads=("rhs",), writes=("grad",),
            compute=lambda c, e: {},
        )
        g = Graph([
            _edge("a", idx, writes=("rhs",)),
            point,
            _edge("b", idx, reads=("grad",), writes=("res",)),
        ])
        fused, report = fuse_graph(g)
        # nothing adjacent to fuse across the barrier: structure unchanged
        assert [s.name for s in fused.stages] == ["a", "solve", "b"]
        assert report.stages_before == report.stages_after == 3
        assert report.groups == ()


def test_residual_graph_fuses_recon_with_minmax():
    field = _field("wing", "natural")
    rep = fusion_report(field)
    assert rep.stages_before == 6 and rep.stages_after == 5
    assert ("grad.rhs", "limit.minmax") in rep.groups
    assert rep.bytes_saved > 0
    text = rep.text()
    assert "grad.rhs + limit.minmax" in text and "MB" in text


# ---------------------------------------------------------------------------
# segment reduce plans (the min/max scatter engine under the limiter)
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 200),
    n_targets=st.integers(1, 30),
    n_values=st.integers(0, 200),
    width=st.sampled_from([1, 4]),
)
def test_segment_reduce_plan_matches_ufunc_at(seed, n_targets, n_values,
                                              width):
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, n_targets, size=n_values)
    values = rng.normal(size=(n_values, width) if width > 1 else (n_values,))
    plan = segment_reduce_plan(targets, n_targets)
    for op, ufunc, init in (
        ("min", np.minimum, np.inf),
        ("max", np.maximum, -np.inf),
    ):
        shape = (n_targets, width) if width > 1 else (n_targets,)
        ref = np.full(shape, init)
        ufunc.at(ref, targets, values)
        out = np.full(shape, init)
        plan.apply(values, out, op)
        assert np.array_equal(out, ref)


# ---------------------------------------------------------------------------
# bench doc + gates (what CI's fusion step runs)
# ---------------------------------------------------------------------------


def test_run_fusion_doc_and_gates(tmp_path):
    meshes = [
        dataset_mesh("wing", scale=s, seed=5) for s in (0.015, 0.02)
    ]
    doc = run_fusion(meshes, repeats=1, seed=3, dataset="wing", scale=0.02)
    assert doc["schema"] == FUSION_SCHEMA
    assert len(doc["results"]) == 2
    for row in doc["results"]:
        assert row["strategy"] == "fused"
        assert row["max_abs_dev"] == 0.0  # bitwise, not approximately
        assert row["stages_before"] == 6 and row["stages_after"] == 5
        assert row["bytes_saved"] > 0
        assert row["gather_bytes_fused"] < row["gather_bytes_unfused"]
    # speedup gate: trivially passable and trivially failable bounds
    assert fusion_gate_failures(doc, min_speedup=0.0) == []
    failures = fusion_gate_failures(doc, min_speedup=1e9)
    assert failures and "fused pipeline" in failures[0]
    # rolling gate: no history falls back to the absolute checks ...
    assert rolling_fusion_gate_failures(doc, [], min_speedup=0.0) == []
    # ... and with history the comparable fused cells bound the trend
    hist_path = tmp_path / "hist.jsonl"
    append_history(doc, str(hist_path))
    history = load_history(str(hist_path))
    assert rolling_fusion_gate_failures(
        doc, history, max_regression=10.0, min_speedup=0.0
    ) == []
    assert rolling_fusion_gate_failures(
        doc, history, max_regression=0.0, min_speedup=0.0
    )  # its own wall can't beat a 0x regression bound
