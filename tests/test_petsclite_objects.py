"""Tests for the PETSc-style object layer (Vec, Mat, PC, KSP, OptionsDB)."""

import numpy as np
import pytest

from repro.mesh import box_mesh
from repro.partition import natural_partition
from repro.perf import PerfRegistry, use_registry
from repro.petsclite import KSP, PC, Mat, OptionsDB, Vec
from repro.sparse import BCSRMatrix


def dd_matrix(mesh, b=4, seed=0, shift=8.0):
    A = BCSRMatrix.from_mesh_edges(mesh.edges, mesh.n_vertices, b=b)
    rng = np.random.default_rng(seed)
    A.vals[:] = rng.normal(size=A.vals.shape) * 0.1
    A.add_to_diagonal(shift)
    return A


class TestVec:
    def test_create_and_size(self):
        v = Vec.create(7)
        assert v.size == 7
        np.testing.assert_allclose(v.array, 0.0)

    def test_norm_dot(self):
        v = Vec(np.array([3.0, 4.0]))
        assert v.norm() == pytest.approx(5.0)
        assert v.dot(Vec(np.array([1.0, 1.0]))) == pytest.approx(7.0)

    def test_axpy_chain(self):
        v = Vec(np.ones(3))
        v.axpy(2.0, Vec(np.ones(3))).scale(0.5)
        np.testing.assert_allclose(v.array, 1.5)

    def test_copy_independent(self):
        v = Vec(np.ones(3))
        c = v.copy()
        v.set(0.0)
        np.testing.assert_allclose(c.array, 1.0)

    def test_operations_instrumented(self):
        reg = PerfRegistry()
        with use_registry(reg):
            v = Vec(np.ones(10))
            v.norm()
            v.dot(v)
        assert reg.records["VecNorm"].calls == 1
        assert reg.records["VecDot"].calls == 1


class TestMat:
    def test_from_bcsr_mult(self):
        m = box_mesh((3, 3, 3))
        A = dd_matrix(m)
        mat = Mat.from_bcsr(A)
        x = Vec(np.ones(A.shape[0]))
        y = mat.mult(x)
        np.testing.assert_allclose(y.array, A.matvec(x.array))
        assert not mat.is_shell

    def test_shell(self):
        mat = Mat.shell(4, lambda v: 2.0 * v)
        y = mat.mult(Vec(np.arange(4.0)))
        np.testing.assert_allclose(y.array, 2.0 * np.arange(4.0))
        assert mat.is_shell

    def test_mult_into_existing(self):
        mat = Mat.shell(3, lambda v: v + 1)
        y = Vec.create(3)
        mat.mult(Vec(np.zeros(3)), y)
        np.testing.assert_allclose(y.array, 1.0)


class TestPC:
    def test_none_is_identity(self):
        pc = PC(type="none")
        pc.setup(Mat.shell(3, lambda v: v))
        x = np.arange(3.0)
        np.testing.assert_allclose(pc.apply(x), x)

    def test_ilu_preconditioner(self):
        m = box_mesh((3, 3, 4))
        A = dd_matrix(m)
        pc = PC(type="ilu")
        pc.setup(Mat.from_bcsr(A))
        rng = np.random.default_rng(1)
        r = rng.normal(size=A.shape[0])
        z = pc.apply(r)
        assert np.linalg.norm(r - A.matvec(z)) < 0.1 * np.linalg.norm(r)

    def test_asm_with_labels(self):
        m = box_mesh((4, 4, 4))
        A = dd_matrix(m, seed=2)
        pc = PC(type="asm", overlap=1, labels=natural_partition(m.n_vertices, 4))
        pc.setup(Mat.from_bcsr(A))
        z = pc.apply(np.ones(A.shape[0]))
        assert np.all(np.isfinite(z))

    def test_shell_matrix_rejected(self):
        pc = PC(type="ilu")
        with pytest.raises(ValueError):
            pc.setup(Mat.shell(4, lambda v: v))

    def test_unknown_type(self):
        m = box_mesh((3, 3, 3))
        pc = PC(type="magic")
        with pytest.raises(ValueError):
            pc.setup(Mat.from_bcsr(dd_matrix(m)))


class TestKSP:
    def test_solve_bcsr_system(self):
        m = box_mesh((3, 3, 4))
        A = dd_matrix(m, seed=3)
        ksp = KSP(rtol=1e-10, pc=PC(type="ilu"))
        ksp.set_operators(Mat.from_bcsr(A))
        ksp.setup()
        rng = np.random.default_rng(4)
        x_true = rng.normal(size=A.shape[0])
        b = Vec(A.matvec(x_true))
        x, result = ksp.solve(b)
        assert result.converged
        np.testing.assert_allclose(x.array, x_true, rtol=1e-6, atol=1e-7)

    def test_shell_operator_with_assembled_pmat(self):
        # the paper's configuration: matrix-free A, assembled first-order P
        m = box_mesh((3, 3, 3))
        A = dd_matrix(m, seed=5)
        amat = Mat.shell(A.shape[0], A.matvec)
        ksp = KSP(rtol=1e-9, pc=PC(type="ilu"))
        ksp.set_operators(amat, Mat.from_bcsr(A))
        ksp.setup()
        b = Vec(np.ones(A.shape[0]))
        x, result = ksp.solve(b)
        assert result.converged

    def test_solve_before_setup_raises(self):
        ksp = KSP()
        with pytest.raises(RuntimeError):
            ksp.solve(Vec.create(3))

    def test_ilu_cuts_iterations(self):
        m = box_mesh((4, 4, 4))
        A = dd_matrix(m, seed=6, shift=3.0)
        b = Vec(np.ones(A.shape[0]))

        def run(pc_type):
            ksp = KSP(rtol=1e-8, max_it=500, pc=PC(type=pc_type))
            ksp.set_operators(Mat.from_bcsr(A))
            ksp.setup()
            _, res = ksp.solve(b)
            assert res.converged
            return res.iterations

        assert run("ilu") < run("none")


class TestOptionsDB:
    def test_parse_values_and_flags(self):
        db = OptionsDB("-ksp_rtol 1e-6 -pc_type asm -snes_monitor")
        assert db.get_float("ksp_rtol") == pytest.approx(1e-6)
        assert db.get_str("pc_type") == "asm"
        assert db.get_bool("snes_monitor")
        assert not db.get_bool("missing")
        assert "pc_type" in db

    def test_kwargs(self):
        db = OptionsDB(pc_asm_overlap=2)
        assert db.get_int("pc_asm_overlap") == 2

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            OptionsDB("ksp_rtol 1e-6")

    def test_ksp_set_from_options(self):
        ksp = KSP()
        ksp.set_from_options(
            OptionsDB(
                "-ksp_rtol 1e-7 -ksp_gmres_restart 50 -pc_type asm "
                "-pc_asm_overlap 2 -pc_factor_levels 1"
            )
        )
        assert ksp.rtol == pytest.approx(1e-7)
        assert ksp.restart == 50
        assert ksp.pc.type == "asm"
        assert ksp.pc.overlap == 2
        assert ksp.pc.fill_level == 1
