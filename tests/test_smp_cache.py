"""Tests for the trace-driven cache simulator."""

import numpy as np
import pytest

from repro.mesh import wing_mesh
from repro.ordering import rcm_relabel
from repro.smp.cache import (
    CacheSim,
    edge_loop_trace,
    simulate_edge_loop,
)


class TestCacheSim:
    def test_cold_misses(self):
        sim = CacheSim(1024, line_bytes=64, assoc=2)
        sim.access_lines(np.arange(8))
        st = sim.stats()
        assert st.misses == 8
        assert st.accesses == 8

    def test_rereference_hits(self):
        sim = CacheSim(4096, line_bytes=64, assoc=8)
        sim.access_lines(np.array([1, 2, 3, 1, 2, 3]))
        assert sim.stats().misses == 3

    def test_capacity_eviction(self):
        # direct-mapped-ish tiny cache: 2 sets x 1 way
        sim = CacheSim(128, line_bytes=64, assoc=1)
        # lines 0 and 2 map to set 0 and evict each other
        sim.access_lines(np.array([0, 2, 0, 2]))
        assert sim.stats().misses == 4

    def test_lru_order(self):
        # 1 set, 2 ways: accessing 0,1,0,2 should evict 1 (LRU), not 0
        sim = CacheSim(128, line_bytes=64, assoc=2)
        sim.access_lines(np.array([0, 2, 0, 4]))  # all map to set 0
        sim.access_lines(np.array([0]))  # must still hit
        assert sim.stats().misses == 3

    def test_size_validation(self):
        with pytest.raises(ValueError):
            CacheSim(1000, line_bytes=64, assoc=8)


class TestEdgeLoopTrace:
    def test_layouts_differ_in_access_count(self):
        m = wing_mesh(n_around=12, n_radial=4, n_span=3)
        t_aos = edge_loop_trace(m.edges, m.n_vertices, "aos")
        t_soa = edge_loop_trace(m.edges, m.n_vertices, "soa")
        # SoA touches one line per field per endpoint: many more accesses
        assert t_soa.shape[0] > 2 * t_aos.shape[0]

    def test_unknown_layout(self):
        m = wing_mesh(n_around=12, n_radial=4, n_span=3)
        with pytest.raises(ValueError):
            edge_loop_trace(m.edges, m.n_vertices, "bogus")

    def test_trace_length_scales_with_edges(self):
        m = wing_mesh(n_around=12, n_radial=4, n_span=3)
        t = edge_loop_trace(m.edges, m.n_vertices, "aos")
        assert t.shape[0] % m.n_edges == 0


class TestLayoutReuse:
    """The paper's cache-analysis claims, measured on real traces."""

    @pytest.fixture(scope="class")
    def mesh(self):
        return wing_mesh(n_around=28, n_radial=10, n_span=7)

    def test_aos_fewer_misses_per_edge(self, mesh):
        # AoS packs a vertex's fields into 3 lines; SoA scatters them over
        # 19 arrays => far more miss traffic per edge at any cache level
        # where the vertex data does not fit (L1 here)
        l1 = 32 * 1024
        soa = simulate_edge_loop(mesh.edges, mesh.n_vertices, "soa", l1)
        aos = simulate_edge_loop(mesh.edges, mesh.n_vertices, "aos", l1)
        assert aos.misses / mesh.n_edges < soa.misses / mesh.n_edges

    def test_rcm_improves_reuse(self, mesh):
        l1 = 32 * 1024
        nat = simulate_edge_loop(mesh.edges, mesh.n_vertices, "aos", l1)
        r = rcm_relabel(mesh)
        rcm = simulate_edge_loop(r.edges, r.n_vertices, "aos", l1)
        assert rcm.misses < nat.misses

    def test_bigger_cache_fewer_misses(self, mesh):
        small = simulate_edge_loop(mesh.edges, mesh.n_vertices, "aos", 32 * 1024)
        big = simulate_edge_loop(mesh.edges, mesh.n_vertices, "aos", 512 * 1024)
        assert big.misses <= small.misses
