"""Tests for the compressible Euler path (5x5 blocks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd import FlowField
from repro.cfd.compressible import (
    GAMMA,
    NVARS_C,
    CompressibleConfig,
    CompressibleJacobian,
    compressible_freestream,
    compressible_local_timestep,
    compressible_residual,
    euler_flux,
    euler_flux_jacobian,
    euler_spectral_radius,
    rusanov_euler_flux,
    solve_compressible_steady,
)
from repro.mesh import box_mesh, wing_mesh


def perturbed_states(n, seed=0, amp=0.02):
    rng = np.random.default_rng(seed)
    q_inf = compressible_freestream(CompressibleConfig())
    return np.tile(q_inf, (n, 1)) + amp * rng.normal(size=(n, NVARS_C))


class TestFreestream:
    def test_unit_sound_speed(self):
        cfg = CompressibleConfig(mach=0.5)
        q = compressible_freestream(cfg)
        rho, p = q[0], (GAMMA - 1) * (q[4] - 0.5 * (q[1:4] @ q[1:4]) / q[0])
        c = np.sqrt(GAMMA * p / rho)
        assert c == pytest.approx(1.0)
        assert np.linalg.norm(q[1:4] / q[0]) == pytest.approx(0.5)

    def test_aoa_direction(self):
        q = compressible_freestream(CompressibleConfig(mach=0.5, aoa_deg=10))
        assert q[2] > 0  # positive y-velocity at positive incidence
        assert q[3] == 0


class TestEulerFlux:
    def test_mass_flux(self):
        q = perturbed_states(10, seed=1)
        S = np.random.default_rng(1).normal(size=(10, 3))
        f = euler_flux(q, S)
        theta = np.einsum("ni,ni->n", S, q[:, 1:4] / q[:, 0:1])
        np.testing.assert_allclose(f[:, 0], q[:, 0] * theta)

    def test_jacobian_matches_fd(self):
        rng = np.random.default_rng(2)
        q = perturbed_states(25, seed=2)
        S = rng.normal(size=(25, 3))
        A = euler_flux_jacobian(q, S)
        v = rng.normal(size=(25, NVARS_C))
        eps = 1e-7
        fd = (euler_flux(q + eps * v, S) - euler_flux(q, S)) / eps
        an = np.einsum("nij,nj->ni", A, v)
        np.testing.assert_allclose(an, fd, rtol=1e-5, atol=1e-5)

    def test_jacobian_eigenvalues(self):
        # spectrum of dF/dq is {Theta(x3), Theta +- c|S|}
        q = perturbed_states(5, seed=3)
        S = np.random.default_rng(3).normal(size=(5, 3))
        A = euler_flux_jacobian(q, S)
        lam_max = euler_spectral_radius(q, q, S)
        for i in range(5):
            w = np.sort(np.linalg.eigvals(A[i]).real)
            assert np.abs(w).max() == pytest.approx(lam_max[i], rel=1e-8)

    def test_rusanov_consistency(self):
        q = perturbed_states(10, seed=4)
        S = np.random.default_rng(4).normal(size=(10, 3))
        np.testing.assert_allclose(
            rusanov_euler_flux(q, q, S), euler_flux(q, S), atol=1e-13
        )

    def test_rusanov_antisymmetry(self):
        rng = np.random.default_rng(5)
        ql = perturbed_states(10, seed=5)
        qr = perturbed_states(10, seed=6)
        S = rng.normal(size=(10, 3))
        np.testing.assert_allclose(
            rusanov_euler_flux(ql, qr, S),
            -rusanov_euler_flux(qr, ql, -S),
            atol=1e-12,
        )


class TestResidual:
    def test_freestream_preserved_farfield_box(self):
        fld = FlowField(box_mesh((4, 4, 4), jitter=0.1, seed=7))
        cfg = CompressibleConfig()
        q = np.tile(compressible_freestream(cfg), (fld.n_vertices, 1))
        r = compressible_residual(fld, q, cfg)
        assert np.abs(r).max() < 1e-13

    def test_first_order_flag(self):
        fld = FlowField(wing_mesh(n_around=12, n_radial=4, n_span=3))
        cfg = CompressibleConfig()
        q = perturbed_states(fld.n_vertices, seed=8, amp=0.01)
        r1 = compressible_residual(fld, q, cfg, first_order=True)
        r2 = compressible_residual(fld, q, cfg, first_order=False)
        assert not np.allclose(r1, r2)

    def test_timestep_positive(self):
        fld = FlowField(wing_mesh(n_around=12, n_radial=4, n_span=3))
        cfg = CompressibleConfig()
        q = np.tile(compressible_freestream(cfg), (fld.n_vertices, 1))
        dt = compressible_local_timestep(fld, q, cfg, cfl=10.0)
        assert np.all(dt > 0)


class TestJacobianAssembly:
    def test_matches_fd_at_uniform_state(self):
        fld = FlowField(box_mesh((4, 3, 3), jitter=0.05, seed=9))
        cfg = CompressibleConfig()
        q = np.tile(compressible_freestream(cfg), (fld.n_vertices, 1))
        jac = CompressibleJacobian(fld)
        A = jac.assemble(q, cfg)
        rng = np.random.default_rng(10)
        v = rng.normal(size=q.shape)
        eps = 1e-7
        r0 = compressible_residual(fld, q, cfg, first_order=True)
        r1 = compressible_residual(fld, q + eps * v, cfg, first_order=True)
        fd = ((r1 - r0) / eps).reshape(-1)
        an = A.matvec(v.reshape(-1))
        np.testing.assert_allclose(an, fd, rtol=1e-5, atol=1e-5)

    def test_block_size_is_five(self):
        fld = FlowField(box_mesh((3, 3, 3)))
        A = CompressibleJacobian(fld).new_matrix()
        assert A.b == NVARS_C


class TestSteadySolve:
    @pytest.fixture(scope="class")
    def solution(self):
        fld = FlowField(wing_mesh(n_around=16, n_radial=5, n_span=4))
        cfg = CompressibleConfig(mach=0.5, aoa_deg=3.0)
        res = solve_compressible_steady(fld, cfg, max_steps=60)
        return fld, cfg, res

    def test_converges(self, solution):
        _, _, res = solution
        assert res.converged
        assert res.residual_history[-1] < 1e-6 * res.residual_history[0]

    def test_state_physical(self, solution):
        _, cfg, res = solution
        q = res.q
        assert q[:, 0].min() > 0  # density positive
        p = (GAMMA - 1) * (
            q[:, 4] - 0.5 * np.einsum("ni,ni->n", q[:, 1:4], q[:, 1:4]) / q[:, 0]
        )
        assert p.min() > 0

    def test_stagnation_compression(self, solution):
        # the leading edge compresses the gas: max density > freestream
        _, cfg, res = solution
        assert res.q[:, 0].max() > 1.001

    def test_higher_mach_more_compression(self):
        fld = FlowField(wing_mesh(n_around=12, n_radial=4, n_span=3))
        rho_max = []
        for mach in (0.3, 0.6):
            res = solve_compressible_steady(
                fld, CompressibleConfig(mach=mach), max_steps=60
            )
            assert res.converged
            rho_max.append(res.q[:, 0].max())
        assert rho_max[1] > rho_max[0]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100), mach=st.floats(0.1, 0.8))
def test_flux_jacobian_property(seed, mach):
    """Property: the 5x5 Jacobian matches FD for any subsonic-ish state."""
    rng = np.random.default_rng(seed)
    cfg = CompressibleConfig(mach=mach)
    q = np.tile(compressible_freestream(cfg), (8, 1)) + 0.01 * rng.normal(
        size=(8, NVARS_C)
    )
    S = rng.normal(size=(8, 3))
    A = euler_flux_jacobian(q, S)
    v = rng.normal(size=(8, NVARS_C))
    eps = 1e-7
    fd = (euler_flux(q + eps * v, S) - euler_flux(q, S)) / eps
    an = np.einsum("nij,nj->ni", A, v)
    np.testing.assert_allclose(an, fd, rtol=1e-4, atol=1e-5)
