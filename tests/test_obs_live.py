"""Tests for the live telemetry plane (repro.obs.live).

Covers the seqlock ring protocol (untorn snapshots under a hammering
writer thread, property-checked against a model), the bounded event ring's
overrun accounting, cross-process visibility through a forked writer, the
aggregator/health/flight-recorder pipeline (including the SIGKILLed-worker
regression: a dead sparse worker must leave a schema-valid JSONL bundle
naming the victim), and the Prometheus / OTLP / ``repro top`` export
surfaces.
"""

import json
import multiprocessing as mp
import os
import signal
import threading
import time
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Tracer, use_tracer
from repro.obs.live import (
    STATE_BUSY,
    STATE_SPIN,
    FlightRecorder,
    HealthMonitor,
    MetricsServer,
    TelemetryAggregator,
    TelemetryPlane,
    get_live_writer,
    host_fingerprint,
    install_flight_recorder,
    live_planes,
    otlp_trace,
    prometheus_text,
    use_live_writer,
)
from repro.obs.live import recorder as recorder_mod
from repro.obs.live.recorder import FLIGHTREC_SCHEMA, crash_dump
from repro.obs.live.ring import CTL_VER, ProcSnapshot
from repro.obs.live.top import fetch_metrics, parse_prometheus, render_table
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def local_plane():
    """In-process plane with one three-slot row (no /dev/shm)."""
    with TelemetryPlane(
        {"solver": ("a", "b", "residual")}, capacity=8, shared=False
    ) as plane:
        yield plane


@pytest.fixture
def tmp_recorder(tmp_path):
    """Install a flight recorder into a tmpdir; restore the prior one."""
    prev = recorder_mod._installed
    rec = install_flight_recorder(FlightRecorder(out_dir=str(tmp_path)))
    yield rec
    recorder_mod._installed = prev


class TestSeqlockRing:
    def test_update_add_snapshot(self, local_plane):
        w = local_plane.writer("solver")
        w.hello()
        w.update(a=1.5, residual=1e-3)
        w.add(a=0.5, b=2.0)
        s = local_plane.reader("solver").snapshot()
        assert s.ok
        assert s.pid == os.getpid()
        assert s.slots == {"a": 2.0, "b": 2.0, "residual": 1e-3}
        assert s.hb >= 3  # hello + one per mutation

    def test_unknown_slots_are_ignored(self, local_plane):
        w = local_plane.writer("solver")
        w.update(bogus=1.0, a=3.0)
        w.add(nope=5.0)
        s = local_plane.reader("solver").snapshot()
        assert s.ok and s.slots["a"] == 3.0

    def test_snapshot_reports_wedged_writer(self, local_plane):
        """An odd version that never settles must come back ok=False."""
        w = local_plane.writer("solver")
        w.update(a=7.0)
        w._ctl[CTL_VER] += 1  # simulate a writer dying mid-update
        s = local_plane.reader("solver").snapshot(retries=4)
        assert not s.ok
        w._ctl[CTL_VER] += 1  # settle; reads recover
        assert local_plane.reader("solver").snapshot().ok

    def test_hammering_writer_never_tears_a_snapshot(self, local_plane):
        """Seqlock invariant: every ok snapshot sees b == 2a even while a
        writer thread updates both slots as fast as it can."""
        w = local_plane.writer("solver")
        w.hello()
        stop = threading.Event()

        def hammer():
            k = 0.0
            while not stop.is_set():
                k += 1.0
                w.update(a=k, b=2.0 * k)

        t = threading.Thread(target=hammer, daemon=True)
        t.start()
        try:
            reader = local_plane.reader("solver")
            checked = 0
            for _ in range(3000):
                s = reader.snapshot()
                if s.ok:
                    checked += 1
                    assert s.slots["b"] == 2.0 * s.slots["a"]
        finally:
            stop.set()
            t.join(timeout=5.0)
        assert checked > 100  # retries must not starve the reader

    def test_forked_writer_is_visible_to_parent(self):
        """The cross-process path: a forked child writes through inherited
        views into the shared pool; the parent snapshots and drains it."""
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork")
        with TelemetryPlane({"w0": ("tasks",)}, capacity=8) as plane:
            w = plane.writer("w0")

            def child():
                w.hello(STATE_BUSY)
                w.add(tasks=3.0)
                w.push_event("task_done", 3.0, 0.5)

            p = mp.get_context("fork").Process(target=child)
            p.start()
            p.join(timeout=30)
            assert p.exitcode == 0
            s = plane.reader("w0").snapshot()
            assert s.ok and s.pid == p.pid and s.pid != os.getpid()
            assert s.slots["tasks"] == 3.0
            assert s.state == STATE_BUSY
            (ev,) = plane.drain_all()
            assert (ev.proc, ev.name, ev.a, ev.b) == ("w0", "task_done", 3.0, 0.5)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["update", "add"]),
            st.dictionaries(
                st.sampled_from(["a", "b", "residual", "junk"]),
                st.floats(-1e6, 1e6, allow_nan=False),
                max_size=4,
            ),
        ),
        max_size=20,
    )
)
def test_slot_ops_match_model_property(ops):
    """Property: any interleaving of update/add calls leaves the slots
    exactly where a dict model says, and every quiescent snapshot is ok."""
    slots = ("a", "b", "residual")
    with TelemetryPlane({"p": slots}, shared=False, register=False) as plane:
        w = plane.writer("p")
        model = dict.fromkeys(slots, 0.0)
        for kind, values in ops:
            getattr(w, kind)(**values)
            for k, v in values.items():
                if k in model:
                    model[k] = v if kind == "update" else model[k] + v
            s = plane.reader("p").snapshot()
            assert s.ok and s.slots == model


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(2, 16),
    bursts=st.lists(st.integers(0, 40), max_size=6),
)
def test_event_ring_overrun_accounting_property(capacity, bursts):
    """Property: across arbitrary push bursts, each drain returns exactly
    the newest min(burst, capacity) records in order and the reader's
    ``dropped`` counter accounts for every overwritten one."""
    with TelemetryPlane(
        {"p": ("x",)}, capacity=capacity, shared=False, register=False
    ) as plane:
        w = plane.writer("p")
        reader = plane.reader("p")
        pushed = 0
        expected_dropped = 0
        for burst in bursts:
            for _ in range(burst):
                w.push_event("note", float(pushed))
                pushed += 1
            got = reader.drain_events()
            expected_dropped += max(0, burst - capacity)
            keep = min(burst, capacity)
            assert [ev.a for ev in got] == [
                float(v) for v in range(pushed - keep, pushed)
            ]
            assert reader.dropped == expected_dropped
        assert reader.drain_events() == []


class TestPlaneAndAggregator:
    def test_registry_lifecycle(self):
        plane = TelemetryPlane({"p": ("a",)}, shared=False)
        try:
            assert plane in live_planes()
        finally:
            plane.close()
        assert plane not in live_planes()
        assert plane.snapshot_all() == {}  # closed planes read empty

    def test_ambient_writer_stack(self, local_plane):
        assert get_live_writer() is None
        w = local_plane.writer("solver")
        with use_live_writer(w):
            assert get_live_writer() is w
        assert get_live_writer() is None

    def test_aggregator_polls_into_metrics(self, local_plane):
        w = local_plane.writer("solver")
        w.hello()
        w.update(residual=1e-4)
        w.push_event("note", 1.0)
        metrics = MetricsRegistry()
        rec = FlightRecorder()
        agg = TelemetryAggregator(metrics, recorder=rec)
        snaps, events, health = agg.poll_once(planes=[local_plane])
        assert snaps["solver"].slots["residual"] == 1e-4
        assert metrics.gauge("live.solver.residual").value == 1e-4
        assert metrics.gauge("live.solver.heartbeat_age").value >= 0.0
        assert [e.name for e in events] == ["note"]
        assert [r["type"] for r in rec.records()] == ["plane_event"]

    def test_aggregator_skips_silent_rows(self, local_plane):
        """A row whose process never said hello must not pollute metrics."""
        metrics = MetricsRegistry()
        TelemetryAggregator(metrics).poll_once(planes=[local_plane])
        assert "live.solver.residual" not in metrics.gauges


def _snap(name, **kw):
    base = dict(
        name=name, pid=1234, hb=5, hb_time=100.0, start_time=0.0,
        state=STATE_BUSY, slots={}, ev_head=0, ok=True,
    )
    base.update(kw)
    return ProcSnapshot(**base)


class TestHealthMonitor:
    def test_stall_is_edge_triggered(self):
        hm = HealthMonitor(stall_after=5.0)
        stale = {"w0": _snap("w0", state=STATE_SPIN)}
        assert [e.kind for e in hm.check(stale, now=110.0)] == ["stalled"]
        assert hm.check(stale, now=111.0) == []  # still bad: no re-fire
        fresh = {"w0": _snap("w0", hb_time=112.0)}
        assert hm.check(fresh, now=112.5) == []  # recovered
        assert [e.kind for e in hm.check(stale, now=120.0)] == ["stalled"]

    def test_divergence_on_growth_and_nan(self):
        hm = HealthMonitor(divergence_factor=1e3)
        ok = {"s": _snap("s", hb_time=99.9, slots={"residual": 1.0})}
        assert hm.check(ok, now=100.0) == []
        blown = {"s": _snap("s", hb_time=99.9, slots={"residual": 2e3})}
        evs = hm.check(blown, now=100.0)
        assert [e.kind for e in evs] == ["divergence"]
        assert evs[0].detail["best"] == 1.0
        nan = {"s": _snap("s", hb_time=99.9, slots={"residual": float("nan")})}
        hm2 = HealthMonitor()
        assert [e.kind for e in hm2.check(nan, now=100.0)] == ["divergence"]

    def test_excessive_spin(self):
        hm = HealthMonitor(spin_fraction_max=0.8, min_busy_seconds=0.25)
        spinny = {
            "w0": _snap(
                "w0", hb_time=99.9,
                slots={"busy_seconds": 1.0, "spin_seconds": 0.9},
            )
        }
        evs = hm.check(spinny, now=100.0)
        assert [e.kind for e in evs] == ["excessive_spin"]
        assert evs[0].detail["spin_fraction"] == pytest.approx(0.9)
        tiny = {
            "w0": _snap(
                "w0", hb_time=99.9,
                slots={"busy_seconds": 0.1, "spin_seconds": 0.09},
            )
        }
        assert HealthMonitor().check(tiny, now=100.0) == []  # under min busy


class TestFlightRecorder:
    def test_crash_dump_is_noop_without_recorder(self):
        prev = recorder_mod._installed
        recorder_mod._installed = None
        try:
            assert crash_dump("nothing-installed") is None
        finally:
            recorder_mod._installed = prev

    def test_dump_bundle_schema(self, tmp_path, tmp_recorder, local_plane):
        w = local_plane.writer("solver")
        w.hello()
        w.update(residual=3e-5)
        tmp_recorder.record("milestone", step=4)
        path = tmp_recorder.dump("unit-test", dead=("w9",))
        assert os.path.dirname(path) == str(tmp_path)
        lines = [json.loads(ln) for ln in open(path, encoding="utf-8")]
        header = lines[0]
        assert header["type"] == "flightrec_header"
        assert header["schema"] == FLIGHTREC_SCHEMA
        assert header["reason"] == "unit-test"
        assert header["dead"] == ["w9"]
        assert header["host"]["cpu_count"] == os.cpu_count()
        by_type = {}
        for rec in lines:
            by_type.setdefault(rec["type"], []).append(rec)
        procs = {r["proc"]: r for r in by_type["proc"]}
        assert procs["solver"]["slots"]["residual"] == 3e-5
        assert any(r.get("step") == 4 for r in by_type["milestone"])

    def test_sigkilled_sparse_worker_leaves_bundle(
        self, tmp_path, tmp_recorder
    ):
        """Regression (acceptance): SIGKILL a sparse worker mid-task; the
        parent must dump a schema-valid JSONL bundle naming the dead worker
        before raising."""
        from repro.mesh import wing_mesh
        from repro.smp.bench import _trsv_matrix
        from repro.smp.sparse_parallel import SparseProcessBackend
        from repro.sparse.ilu import build_ilu_plan

        mesh = wing_mesh(n_around=16, n_radial=6, n_span=5)
        matrix = _trsv_matrix(mesh, 3)
        plan = build_ilu_plan(matrix.rowptr, matrix.cols, b=matrix.b)
        be = SparseProcessBackend(2)
        be.factorize(matrix, plan)
        victim = be._fleets[id(plan)].workers[0]
        timer = threading.Timer(
            0.2, os.kill, args=(victim.pid, signal.SIGKILL)
        )
        timer.start()
        try:
            with pytest.raises(RuntimeError, match="died|pipe"):
                be._debug_sleep(plan, 3.0)
        finally:
            timer.cancel()
            be.close()
        bundles = sorted(tmp_path.glob("flightrec-*.jsonl"))
        assert len(bundles) == 1
        lines = [json.loads(ln) for ln in open(bundles[0], encoding="utf-8")]
        header = lines[0]
        assert header["schema"] == FLIGHTREC_SCHEMA
        assert header["reason"].startswith("sparse-worker-death")
        assert victim.name in header["dead"]  # repro-sparse-w0
        # the bundle carries the fleet's last plane snapshots
        procs = {r["proc"] for r in lines if r["type"] == "proc"}
        assert {"sparse.w0", "sparse.w1"} <= procs


class TestExporters:
    def test_prometheus_text_round_trips_through_top_parser(self, local_plane):
        w = local_plane.writer("solver")
        w.hello()
        w.update(residual=2.5e-4, a=1.0)
        metrics = MetricsRegistry()
        metrics.counter("gmres.iterations").inc(7)
        text = prometheus_text(metrics, planes=[local_plane])
        samples = parse_prometheus(text)
        assert samples[("repro_gmres_iterations_total", ())] == 7.0
        label = (("proc", "solver"),)
        assert samples[("repro_live_residual", label)] == 2.5e-4
        assert samples[("repro_live_up", label)] == 1.0
        assert samples[("repro_live_heartbeat_age_seconds", label)] >= 0.0
        assert ("repro_shm_bytes", ()) in samples

    def test_prometheus_omits_slots_of_silent_rows(self, local_plane):
        text = prometheus_text(planes=[local_plane])
        samples = parse_prometheus(text)
        label = (("proc", "solver"),)
        assert samples[("repro_live_up", label)] == 0.0
        assert ("repro_live_residual", label) not in samples

    def test_metrics_server_serves_scrapes(self, local_plane):
        w = local_plane.writer("solver")
        w.hello()
        w.update(residual=1e-2)
        server = MetricsServer(
            lambda: prometheus_text(planes=[local_plane]), port=0
        ).start()
        try:
            samples = fetch_metrics(server.url)
            assert samples[
                ("repro_live_residual", (("proc", "solver"),))
            ] == 1e-2
            with urllib.request.urlopen(
                server.url.replace("/metrics", "/healthz"), timeout=5
            ) as resp:
                assert resp.status == 200
        finally:
            server.stop()

    def test_otlp_trace_preserves_hierarchy_and_times(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("solve", n=3):
                with tracer.span("newton-step", step=1):
                    time.sleep(0.002)
        doc = otlp_trace(tracer, service_name="repro-test")
        resource = doc["resourceSpans"][0]
        assert resource["resource"]["attributes"][0]["value"] == {
            "stringValue": "repro-test"
        }
        spans = resource["scopeSpans"][0]["spans"]
        by_name = {s["name"]: s for s in spans}
        root, child = by_name["solve"], by_name["newton-step"]
        assert "parentSpanId" not in root
        assert child["parentSpanId"] == root["spanId"]
        assert child["traceId"] == root["traceId"]
        t0, t1 = int(child["startTimeUnixNano"]), int(child["endTimeUnixNano"])
        assert t1 - t0 >= int(1e6)  # the 2ms sleep survives the rebase
        attrs = {a["key"]: a["value"] for a in root["attributes"]}
        assert attrs["n"] == {"intValue": "3"}

    def test_render_table_derives_rates(self):
        label = (("proc", "w0"),)
        prev = {
            ("repro_live_tasks", label): 10.0,
            ("repro_live_state", label): 2.0,
        }
        now = {
            ("repro_live_tasks", label): 30.0,
            ("repro_live_state", label): 2.0,
            ("repro_live_heartbeat_age_seconds", label): 0.1,
            ("repro_shm_bytes", ()): 4.2e6,
        }
        frame = render_table(now, prev, dt=2.0, now_wall=0.0)
        row = next(ln for ln in frame.splitlines() if ln.startswith("w0"))
        assert "busy" in row and "10.0" in row  # (30-10)/2 tasks/s
        assert "shm: 4.2 MB" in frame


class TestFingerprint:
    def test_keys_and_caching(self):
        fp = host_fingerprint()
        assert fp["cpu_count"] == os.cpu_count()
        assert fp["python"] and fp["numpy"]
        assert "platform" in fp and "git_rev" in fp
        again = host_fingerprint()
        assert again == fp
        again["cpu_count"] = -1  # caller copies must not poison the cache
        assert host_fingerprint()["cpu_count"] == os.cpu_count()
