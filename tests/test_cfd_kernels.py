"""Tests for the CFD kernels: flux, gradients, boundary, Jacobian, timestep."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd import (
    FlowConfig,
    FlowField,
    JacobianAssembler,
    analytic_flux_jacobian,
    compute_residual,
    edge_spectral_radius,
    local_timestep,
    lsq_gradients,
    pointwise_flux,
    residual_norm,
    rusanov_edge_flux,
    scatter_edge_flux,
    ser_cfl,
    venkat_limiter,
    wall_flux,
)
from repro.mesh import box_mesh, wing_mesh


@pytest.fixture(scope="module")
def box_field():
    return FlowField(box_mesh((5, 5, 5), jitter=0.1, seed=1))


@pytest.fixture(scope="module")
def wing_field():
    return FlowField(wing_mesh(n_around=20, n_radial=6, n_span=5))


class TestPointwiseFlux:
    def test_zero_velocity_pressure_only(self):
        q = np.array([[2.0, 0.0, 0.0, 0.0]])
        S = np.array([[1.0, 2.0, 3.0]])
        f = pointwise_flux(q, S, beta=4.0)
        np.testing.assert_allclose(f, [[0.0, 2.0, 4.0, 6.0]])

    def test_mass_flux_is_beta_theta(self):
        q = np.array([[0.0, 1.0, 2.0, 3.0]])
        S = np.array([[1.0, 0.0, 0.0]])
        f = pointwise_flux(q, S, beta=5.0)
        assert f[0, 0] == pytest.approx(5.0 * 1.0)

    def test_linearity_in_normal(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(10, 4))
        S = rng.normal(size=(10, 3))
        f1 = pointwise_flux(q, S, beta=3.0)
        f2 = pointwise_flux(q, 2.0 * S, beta=3.0)
        np.testing.assert_allclose(f2, 2.0 * f1)


class TestRusanovFlux:
    def test_consistency(self):
        # F(q, q) == analytic flux
        rng = np.random.default_rng(1)
        q = rng.normal(size=(20, 4))
        S = rng.normal(size=(20, 3))
        np.testing.assert_allclose(
            rusanov_edge_flux(q, q, S, 4.0), pointwise_flux(q, S, 4.0)
        )

    def test_upwind_dissipation_positive(self):
        # for ql != qr the dissipation reduces the flux jump contribution
        ql = np.array([[0.0, 1.0, 0.0, 0.0]])
        qr = np.array([[1.0, 1.0, 0.0, 0.0]])
        S = np.array([[1.0, 0.0, 0.0]])
        lam = edge_spectral_radius(ql, qr, S, 4.0)
        assert lam[0] > 0

    def test_spectral_radius_exceeds_theta(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(30, 4))
        S = rng.normal(size=(30, 3))
        lam = edge_spectral_radius(q, q, S, 4.0)
        theta = np.abs(np.einsum("ni,ni->n", S, q[:, 1:4]))
        assert np.all(lam >= theta - 1e-12)

    def test_conservation_antisymmetry(self):
        # flux from i to j with normal S equals minus flux j to i with -S
        rng = np.random.default_rng(3)
        ql = rng.normal(size=(15, 4))
        qr = rng.normal(size=(15, 4))
        S = rng.normal(size=(15, 3))
        f_ij = rusanov_edge_flux(ql, qr, S, 4.0)
        f_ji = rusanov_edge_flux(qr, ql, -S, 4.0)
        np.testing.assert_allclose(f_ij, -f_ji, atol=1e-12)


class TestScatter:
    def test_telescoping_sum(self):
        # sum over vertices of scattered fluxes is zero (conservation)
        rng = np.random.default_rng(4)
        ne, nv = 50, 20
        e0 = rng.integers(0, nv, ne)
        e1 = (e0 + 1 + rng.integers(0, nv - 1, ne)) % nv
        flux = rng.normal(size=(ne, 4))
        res = scatter_edge_flux(flux, e0, e1, nv)
        np.testing.assert_allclose(res.sum(axis=0), 0.0, atol=1e-12)


class TestFreestreamPreservation:
    def test_box_farfield_only(self, box_field):
        cfg = FlowConfig()
        q = box_field.initial_state(cfg)
        r = compute_residual(box_field, q, cfg)
        assert residual_norm(r) < 1e-14

    def test_first_order_also_preserves(self, box_field):
        cfg = FlowConfig(second_order=False)
        q = box_field.initial_state(cfg)
        r = compute_residual(box_field, q, cfg)
        assert residual_norm(r) < 1e-14


class TestGradients:
    def test_exact_linear(self, box_field):
        g = np.array([0.4, -1.1, 0.8])
        phi = box_field.mesh.coords @ g
        q = np.stack([phi, 2 * phi, -phi, 0 * phi], axis=1)
        grads = lsq_gradients(box_field, q)
        np.testing.assert_allclose(grads[:, 0, :], np.broadcast_to(g, (q.shape[0], 3)), atol=1e-10)
        np.testing.assert_allclose(
            grads[:, 1, :], np.broadcast_to(2 * g, (q.shape[0], 3)), atol=1e-10
        )

    def test_constant_field_zero_gradient(self, wing_field):
        q = np.full((wing_field.n_vertices, 4), 3.3)
        grads = lsq_gradients(wing_field, q)
        np.testing.assert_allclose(grads, 0.0, atol=1e-10)


class TestLimiter:
    def test_range(self, box_field):
        rng = np.random.default_rng(5)
        q = rng.normal(size=(box_field.n_vertices, 4))
        grad = lsq_gradients(box_field, q)
        phi = venkat_limiter(box_field, q, grad)
        assert np.all(phi >= 0.0) and np.all(phi <= 1.0)

    def test_smooth_field_unlimited(self, box_field):
        # on a linear field the reconstruction never overshoots neighbors,
        # so the limiter should stay near 1
        g = np.array([1.0, 0.5, -0.5])
        phi_lin = box_field.mesh.coords @ g
        q = np.tile(phi_lin[:, None], (1, 4))
        grad = lsq_gradients(box_field, q)
        phi = venkat_limiter(box_field, q, grad, k=5.0)
        assert phi.mean() > 0.8


class TestWallFlux:
    def test_only_pressure(self):
        q = np.array([[3.0, 9.9, -2.0, 1.0]])
        S = np.array([[0.0, 1.0, 0.0]])
        f = wall_flux(q, S)
        np.testing.assert_allclose(f, [[0.0, 0.0, 3.0, 0.0]])


class TestJacobian:
    def test_analytic_matches_fd_uniform_state(self, box_field):
        # At a uniform state q_j - q_i = 0, so the frozen-dissipation
        # approximation is exact and FD must match to FD accuracy.
        cfg = FlowConfig(second_order=False)
        q = box_field.initial_state(cfg)
        jac = JacobianAssembler(box_field)
        A = jac.assemble(q, cfg)
        rng = np.random.default_rng(6)
        v = rng.normal(size=q.shape)
        eps = 1e-7
        r0 = compute_residual(box_field, q, cfg, first_order=True)
        r1 = compute_residual(box_field, q + eps * v, cfg, first_order=True)
        fd = (r1 - r0) / eps
        an = A.matvec(v.reshape(-1)).reshape(q.shape)
        np.testing.assert_allclose(an, fd, rtol=1e-5, atol=1e-6)

    def test_analytic_close_on_perturbed_state(self, box_field):
        # With nonuniform q the only discrepancy is the frozen spectral
        # radius; it must stay proportional to the state jump.
        cfg = FlowConfig(second_order=False)
        rng = np.random.default_rng(7)
        q = box_field.initial_state(cfg) + 0.01 * rng.normal(size=(box_field.n_vertices, 4))
        jac = JacobianAssembler(box_field)
        A = jac.assemble(q, cfg)
        v = rng.normal(size=q.shape)
        eps = 1e-7
        r0 = compute_residual(box_field, q, cfg, first_order=True)
        r1 = compute_residual(box_field, q + eps * v, cfg, first_order=True)
        fd = ((r1 - r0) / eps).reshape(-1)
        an = A.matvec(v.reshape(-1))
        rel = np.linalg.norm(an - fd) / np.linalg.norm(fd)
        assert rel < 0.02

    def test_flux_jacobian_analytic(self):
        # directional derivative of pointwise_flux matches analytic A
        rng = np.random.default_rng(8)
        q = rng.normal(size=(5, 4))
        S = rng.normal(size=(5, 3))
        A = analytic_flux_jacobian(q, S, beta=4.0)
        v = rng.normal(size=(5, 4))
        eps = 1e-7
        fd = (
            pointwise_flux(q + eps * v, S, 4.0) - pointwise_flux(q, S, 4.0)
        ) / eps
        an = np.einsum("nij,nj->ni", A, v)
        np.testing.assert_allclose(an, fd, rtol=1e-5, atol=1e-6)

    def test_pseudo_time_diagonal(self, box_field):
        cfg = FlowConfig()
        q = box_field.initial_state(cfg)
        jac = JacobianAssembler(box_field)
        A = jac.assemble(q, cfg)
        before = A.vals[A.diag_idx].copy()
        dt = np.full(box_field.n_vertices, 0.5)
        jac.add_pseudo_time(A, dt)
        shift = (box_field.volumes / dt)[:, None, None] * np.eye(4)
        np.testing.assert_allclose(A.vals[A.diag_idx], before + shift)


class TestTimestep:
    def test_positive(self, wing_field):
        cfg = FlowConfig()
        q = wing_field.initial_state(cfg)
        dt = local_timestep(wing_field, q, cfg, cfl=10.0)
        assert np.all(dt > 0)

    def test_linear_in_cfl(self, box_field):
        cfg = FlowConfig()
        q = box_field.initial_state(cfg)
        dt1 = local_timestep(box_field, q, cfg, cfl=1.0)
        dt5 = local_timestep(box_field, q, cfg, cfl=5.0)
        np.testing.assert_allclose(dt5, 5.0 * dt1)

    def test_ser_growth(self):
        assert ser_cfl(10.0, 1.0, 0.1) == pytest.approx(100.0)
        # capped by growth factor
        assert ser_cfl(10.0, 1.0, 0.001, cfl_prev=20.0) == pytest.approx(40.0)
        # never below cfl0
        assert ser_cfl(10.0, 1.0, 5.0) == pytest.approx(10.0)
        # zero residual -> max
        assert ser_cfl(10.0, 1.0, 0.0, cfl_max=123.0) == 123.0


@settings(max_examples=10, deadline=None)
@given(beta=st.floats(0.5, 20.0), seed=st.integers(0, 100))
def test_freestream_preservation_property(beta, seed):
    """Property: any uniform state has zero residual on an all-far-field
    mesh for any beta (discrete conservation + consistency)."""
    field = FlowField(box_mesh((4, 4, 4), jitter=0.12, seed=seed))
    rng = np.random.default_rng(seed)
    qconst = rng.normal(size=4)
    q = np.tile(qconst, (field.n_vertices, 1))
    cfg = FlowConfig(beta=beta)
    # far-field BC must match the uniform state for exact preservation
    from repro.cfd import boundary, flux

    res = flux.interior_flux_residual(field, q, beta)
    res += boundary.farfield_residual(field, q, qconst, beta)
    assert residual_norm(res) < 1e-13


class TestGradientVariants:
    def test_weighted_lsq_exact_linear(self, box_field):
        from repro.cfd import weighted_lsq_gradients

        g = np.array([0.7, -0.3, 1.1])
        phi = box_field.mesh.coords @ g
        q = np.tile(phi[:, None], (1, 4))
        grads = weighted_lsq_gradients(box_field, q)
        np.testing.assert_allclose(
            grads[:, 0, :], np.broadcast_to(g, (q.shape[0], 3)), atol=1e-9
        )

    def test_green_gauss_interior_exact(self, box_field):
        from repro.cfd import green_gauss_gradients

        g = np.array([1.0, 0.4, -0.6])
        phi = box_field.mesh.coords @ g
        q = np.tile(phi[:, None], (1, 4))
        grads = green_gauss_gradients(box_field, q)
        interior = np.ones(box_field.n_vertices, dtype=bool)
        interior[box_field.mesh.bfaces.ravel()] = False
        np.testing.assert_allclose(
            grads[interior, 0, :],
            np.broadcast_to(g, (int(interior.sum()), 3)),
            atol=1e-9,
        )

    def test_variants_agree_on_smooth_fields(self, box_field):
        from repro.cfd import lsq_gradients, weighted_lsq_gradients

        rng = np.random.default_rng(11)
        # smooth field: quadratic
        x = box_field.mesh.coords
        phi = x[:, 0] ** 2 + 0.5 * x[:, 1] * x[:, 2]
        q = np.tile(phi[:, None], (1, 4))
        g1 = lsq_gradients(box_field, q)
        g2 = weighted_lsq_gradients(box_field, q)
        # same field, same order of accuracy: close but not identical
        assert np.abs(g1 - g2).max() < 0.5 * max(np.abs(g1).max(), 1.0)

    def test_green_gauss_constant_zero(self, wing_field):
        from repro.cfd import green_gauss_gradients

        q = np.full((wing_field.n_vertices, 4), 2.5)
        grads = green_gauss_gradients(wing_field, q)
        np.testing.assert_allclose(grads, 0.0, atol=1e-10)
