"""Ablation — replication overhead vs thread count, natural vs METIS.

The paper: natural-order replication costs a "staggering 41%" extra compute
at 20 threads while METIS holds it to 4%, and "even with METIS, this
overhead is expected to be significant with increased parallelism on
emerging many-core architectures — with 240 threads ... as high as 15%".
This bench sweeps the thread count through many-core territory and measures
the real replication overhead of both partitioners on our mesh.
"""

import pytest

from repro.perf import format_series
from repro.smp import EdgeLoopExecutor, metis_thread_labels, natural_thread_labels

from conftest import emit

THREADS = [2, 4, 8, 20, 60, 120, 240]


@pytest.mark.benchmark(group="ablation-replication")
def test_ablation_replication_overhead(benchmark, mesh_c, capsys):
    def compute():
        nat, met = [], []
        for t in THREADS:
            exn = EdgeLoopExecutor(
                mesh_c.edges, mesh_c.n_vertices, t, "replicate",
                natural_thread_labels(mesh_c.n_vertices, t))
            exm = EdgeLoopExecutor(
                mesh_c.edges, mesh_c.n_vertices, t, "replicate",
                metis_thread_labels(mesh_c.edges, mesh_c.n_vertices, t, seed=1))
            nat.append(exn.replication())
            met.append(exm.replication())
        return nat, met

    nat, met = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        capsys,
        format_series(
            "threads",
            THREADS,
            {
                "natural": [f"+{100 * v:.0f}%" for v in nat],
                "METIS": [f"+{100 * v:.0f}%" for v in met],
            },
            title="Ablation: redundant compute of owner-writes replication "
            "(paper: natural +41% / METIS +4% at 20 thr; METIS +15% at 240 thr)",
        ),
    )

    i20 = THREADS.index(20)
    # METIS is several times cheaper than natural at 20 threads
    assert met[i20] < nat[i20] / 2.5
    # overheads grow with thread count for both partitioners
    assert met[-1] > met[0]
    assert nat[-1] >= nat[i20] * 0.9
    # many-core: even METIS replication becomes substantial
    assert met[-1] > 0.10
