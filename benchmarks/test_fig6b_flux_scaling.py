"""Figure 6b — flux kernel scaling under the three threading strategies.

Paper: "Basic partitioning with atomics" scales near-linearly but with low
absolute performance; "Basic partitioning with replication" (natural-order
vertices, owner-only writes) is faster but burdened by redundant compute
(41% extra at 20 threads); "METIS based partitioning" is fastest and scales
almost linearly.
"""

import pytest

from repro.perf import format_series
from repro.smp import (
    XEON_E5_2690_V2,
    EdgeLoopExecutor,
    edge_loop_time,
    flux_kernel_work,
    make_edge_loop_options,
    metis_thread_labels,
    natural_thread_labels,
)

from conftest import emit

CORES = [1, 2, 4, 6, 8, 10]


def _scaling_series(mesh):
    mach = XEON_E5_2690_V2
    work = flux_kernel_work(mesh.n_edges)
    seq_ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 1, "sequential")
    base = edge_loop_time(
        mach, work, make_edge_loop_options(seq_ex, layout="soa", simd=False,
                                           prefetch=False, rcm=False)
    )

    series = {"atomics": [], "replication (natural)": [], "METIS": []}
    repl = {}
    for c in CORES:
        if c == 1:
            for k in series:
                ex = seq_ex
                t = edge_loop_time(mach, work, make_edge_loop_options(ex))
                series[k].append(base / t)
            continue
        ex_a = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, c, "atomic")
        ex_n = EdgeLoopExecutor(
            mesh.edges, mesh.n_vertices, c, "replicate",
            natural_thread_labels(mesh.n_vertices, c))
        ex_m = EdgeLoopExecutor(
            mesh.edges, mesh.n_vertices, c, "replicate",
            metis_thread_labels(mesh.edges, mesh.n_vertices, c, seed=1))
        for k, ex in (
            ("atomics", ex_a),
            ("replication (natural)", ex_n),
            ("METIS", ex_m),
        ):
            t = edge_loop_time(mach, work, make_edge_loop_options(ex))
            series[k].append(base / t)
        repl[c] = (ex_n.replication(), ex_m.replication())
    return series, repl


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_flux_strategy_scaling(benchmark, mesh_c, capsys):
    series, repl = benchmark.pedantic(
        lambda: _scaling_series(mesh_c), rounds=1, iterations=1
    )
    fmt = {k: [f"{v:.1f}x" for v in vals] for k, vals in series.items()}
    emit(
        capsys,
        format_series(
            "cores", CORES, fmt,
            title="Fig 6b: flux kernel speedup over sequential base, by "
            "threading strategy",
        ),
    )
    rn, rm = repl[max(repl)]
    emit(
        capsys,
        f"redundant compute at {max(repl)} cores: natural +{100 * rn:.0f}% "
        f"(paper 41% at 20 thr), METIS +{100 * rm:.0f}% (paper 4%)",
    )

    # shapes: METIS fastest at every core count; atomics slowest at scale;
    # all three scale with cores
    for i in range(1, len(CORES)):
        assert series["METIS"][i] >= series["replication (natural)"][i]
        assert series["METIS"][i] > series["atomics"][i]
        assert series["METIS"][i] > series["METIS"][i - 1]
        # atomics keep scaling until they hit the bandwidth roofline, then
        # flatten; allow the plateau
        assert series["atomics"][i] > 0.93 * series["atomics"][i - 1]
    # natural-order replication wastes much more work than METIS
    assert rn > 2.5 * rm
