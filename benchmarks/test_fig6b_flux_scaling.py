"""Figure 6b — flux kernel scaling under the three threading strategies.

Paper: "Basic partitioning with atomics" scales near-linearly but with low
absolute performance; "Basic partitioning with replication" (natural-order
vertices, owner-only writes) is faster but burdened by redundant compute
(41% extra at 20 threads); "METIS based partitioning" is fastest and scales
almost linearly.

Two tiers here (see DESIGN.md "Measured vs. modeled"): the model table
prices the paper's 10-core Xeon; the measured table times the real
process-parallel backend on this host and asserts the same strategy
ordering the paper found.
"""

import pytest

from repro.perf import format_series, format_table
from repro.smp import (
    XEON_E5_2690_V2,
    EdgeLoopExecutor,
    edge_loop_time,
    flux_kernel_work,
    make_edge_loop_options,
    metis_thread_labels,
    natural_thread_labels,
)
from repro.smp.bench import run_flux_scaling

from conftest import emit

CORES = [1, 2, 4, 6, 8, 10]
MEASURED_WORKERS = (1, 2, 4)


def _scaling_series(mesh):
    mach = XEON_E5_2690_V2
    work = flux_kernel_work(mesh.n_edges)
    seq_ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 1, "sequential")
    base = edge_loop_time(
        mach, work, make_edge_loop_options(seq_ex, layout="soa", simd=False,
                                           prefetch=False, rcm=False)
    )

    series = {"atomics": [], "replication (natural)": [], "METIS": []}
    repl = {}
    for c in CORES:
        if c == 1:
            for k in series:
                ex = seq_ex
                t = edge_loop_time(mach, work, make_edge_loop_options(ex))
                series[k].append(base / t)
            continue
        ex_a = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, c, "atomic")
        ex_n = EdgeLoopExecutor(
            mesh.edges, mesh.n_vertices, c, "replicate",
            natural_thread_labels(mesh.n_vertices, c))
        ex_m = EdgeLoopExecutor(
            mesh.edges, mesh.n_vertices, c, "replicate",
            metis_thread_labels(mesh.edges, mesh.n_vertices, c, seed=1))
        for k, ex in (
            ("atomics", ex_a),
            ("replication (natural)", ex_n),
            ("METIS", ex_m),
        ):
            t = edge_loop_time(mach, work, make_edge_loop_options(ex))
            series[k].append(base / t)
        repl[c] = (ex_n.replication(), ex_m.replication())
    return series, repl


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_flux_strategy_scaling(benchmark, mesh_c, capsys):
    series, repl = benchmark.pedantic(
        lambda: _scaling_series(mesh_c), rounds=1, iterations=1
    )
    fmt = {k: [f"{v:.1f}x" for v in vals] for k, vals in series.items()}
    emit(
        capsys,
        format_series(
            "cores", CORES, fmt,
            title="Fig 6b: flux kernel speedup over sequential base, by "
            "threading strategy",
        ),
    )
    rn, rm = repl[max(repl)]
    emit(
        capsys,
        f"redundant compute at {max(repl)} cores: natural +{100 * rn:.0f}% "
        f"(paper 41% at 20 thr), METIS +{100 * rm:.0f}% (paper 4%)",
    )

    # shapes: METIS fastest at every core count; atomics slowest at scale;
    # all three scale with cores
    for i in range(1, len(CORES)):
        assert series["METIS"][i] >= series["replication (natural)"][i]
        assert series["METIS"][i] > series["atomics"][i]
        assert series["METIS"][i] > series["METIS"][i - 1]
        # atomics keep scaling until they hit the bandwidth roofline, then
        # flatten; allow the plateau
        assert series["atomics"][i] > 0.93 * series["atomics"][i - 1]
    # natural-order replication wastes much more work than METIS
    assert rn > 2.5 * rm


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_flux_strategy_scaling_measured(benchmark, mesh_c, capsys):
    """Measured counterpart: the same strategies timed for real, as worker
    processes over shared memory (model curves above, wall clock here)."""
    doc = benchmark.pedantic(
        lambda: run_flux_scaling(
            mesh_c, workers=MEASURED_WORKERS, repeats=3,
            dataset=mesh_c.name, scale=1.0,
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [
            r["strategy"], str(r["workers"]),
            f"{1e3 * r['wall_seconds']:.2f}", f"{r['speedup']:.2f}x",
            f"{100 * r['redundant_edge_fraction']:.1f}%",
            "-" if r["model_seconds"] is None
            else f"{1e3 * r['model_seconds']:.2f}",
        ]
        for r in doc["results"]
    ]
    emit(
        capsys,
        format_table(
            ["strategy", "workers", "wall ms", "speedup", "redundant",
             "model ms"],
            rows,
            title="Fig 6b (measured): process-parallel flux kernel, "
            f"serial {1e3 * doc['serial']['wall_seconds']:.2f} ms",
        ),
    )

    by = {(r["strategy"], r["workers"]): r for r in doc["results"]}
    wmax = max(MEASURED_WORKERS)
    # numerics are strategy-independent — for real, across processes
    for r in doc["results"]:
        assert r["max_abs_dev"] <= 1e-12
    # the paper's headline ordering at full width: owner-only METIS writes
    # beat the lock-guarded (atomics stand-in) scatter
    assert (
        by[("owner-metis", wmax)]["wall_seconds"]
        < by[("locked", wmax)]["wall_seconds"]
    )
    # METIS partitions waste far less redundant compute than natural chunks
    assert (
        by[("owner-metis", wmax)]["redundant_edge_fraction"]
        < by[("owner-natural", wmax)]["redundant_edge_fraction"]
    )
