"""Ablation — trace-driven cache analysis of the flux kernel.

The paper's data-structure argument: "Detailed cache analysis indicate that
this [AoS node data] results in a 20% better reuse across L1 and L2
caches."  This bench replays the actual flux-kernel access trace through
set-associative LRU models of the platform's L1/L2 and reports misses per
edge (i.e. DRAM/L2 traffic) for every layout x ordering combination — the
measured counterpart of the cost model's ``dram_bytes_per_edge``.
"""

import pytest

from repro.ordering import rcm_relabel
from repro.perf import format_table
from repro.smp.cache import simulate_edge_loop

from conftest import emit

L1 = 32 * 1024
L2 = 256 * 1024


@pytest.mark.benchmark(group="ablation-cache")
def test_ablation_cache_reuse(benchmark, mesh_c, capsys):
    rcm = rcm_relabel(mesh_c)

    def compute():
        out = {}
        for order, mesh in (("natural", mesh_c), ("rcm", rcm)):
            for layout in ("soa", "aos"):
                s1 = simulate_edge_loop(mesh.edges, mesh.n_vertices, layout, L1)
                s2 = simulate_edge_loop(mesh.edges, mesh.n_vertices, layout, L2)
                out[(order, layout)] = (
                    s1.misses / mesh.n_edges,
                    s2.misses / mesh.n_edges,
                )
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [order, layout, f"{m1:.2f}", f"{m2:.2f}", f"{64 * m2:.0f} B"]
        for (order, layout), (m1, m2) in out.items()
    ]
    emit(
        capsys,
        format_table(
            ["ordering", "layout", "L1 misses/edge", "L2 misses/edge",
             "DRAM traffic/edge"],
            rows,
            title="Ablation: simulated cache behaviour of the flux kernel "
            "(paper: AoS gives ~20% better L1/L2 reuse)",
        ),
    )

    # AoS slashes the miss traffic at the first level where vertex data
    # does not fit (L1 on our laptop-scale meshes; L2 at paper scale)
    for order in ("natural", "rcm"):
        assert out[(order, "aos")][0] < 0.5 * out[(order, "soa")][0]
        assert out[(order, "aos")][1] <= out[(order, "soa")][1] + 1e-12
    # RCM reduces AoS L1 misses (SoA is fully L1-capacity-bound either way)
    assert out[("rcm", "aos")][0] <= out[("natural", "aos")][0]
    # the measured DRAM bytes/edge of the optimized configuration is in the
    # same regime as the cost model's 60 B/edge constant
    dram_opt = 64 * out[("rcm", "aos")][1]
    assert 10 < dram_opt < 200
