"""Figure 7b — achieved bandwidth of ILU/TRSV vs cores, by strategy.

Paper: with P2P-sparsified synchronization the TRSV reaches 94% of STREAM
(34.8 GB/s) at 20 threads and saturates beyond 4 cores; level scheduling
with barriers is worse at every core count and degrades with threads; ILU
scales to ~8 cores before going bandwidth-bound with lower efficiency.
"""

import pytest

from repro.perf import format_series
from repro.smp import (
    XEON_E5_2690_V2,
    TriSolveOptions,
    ilu_time,
    tri_solve_options_from_plan,
    trsv_time,
)

from conftest import emit

CORES = [1, 2, 4, 8, 10, 20]
PAPER_PARALLELISM = 248.0


def _bandwidth_series(plan):
    mach = XEON_E5_2690_V2
    nbytes_trsv = plan.factor_nnzb * 136.0 + plan.n * (3 * 32 + 128)
    nbytes_ilu = plan.factor_nnzb * 136.0 * 2.0

    series = {
        "TRSV p2p": [],
        "TRSV level": [],
        "ILU p2p": [],
        "ILU level": [],
    }
    for c in CORES:
        for strat in ("p2p", "level"):
            if c == 1:
                opts = TriSolveOptions(n_threads=1)
            else:
                opts = tri_solve_options_from_plan(plan, strat, c)
                opts.available_parallelism = PAPER_PARALLELISM
            t = trsv_time(mach, plan.factor_nnzb, plan.n, 4, opts)
            series[f"TRSV {strat}"].append(nbytes_trsv / t / 1e9)
            it = ilu_time(
                mach, plan.factor_block_ops(), plan.factor_nnzb, plan.n, 4, opts
            )
            series[f"ILU {strat}"].append(nbytes_ilu / it / 1e9)
    return series


@pytest.mark.benchmark(group="fig7b")
def test_fig7b_achieved_bandwidth(benchmark, app_c, capsys):
    plan = app_c.ilu_plan(0)
    series = benchmark.pedantic(
        lambda: _bandwidth_series(plan), rounds=1, iterations=1
    )
    stream = XEON_E5_2690_V2.stream_bw / 1e9
    fmt = {k: [f"{v:.1f}" for v in vals] for k, vals in series.items()}
    emit(
        capsys,
        format_series(
            "cores", CORES, fmt,
            title=f"Fig 7b: achieved bandwidth (GB/s; STREAM = {stream:.1f})",
        ),
    )

    trsv_p2p = series["TRSV p2p"]
    # saturation beyond 4 cores; >= 85% of STREAM at the top (paper: 94%)
    assert trsv_p2p[-1] > 0.85 * stream
    assert trsv_p2p[CORES.index(8)] / trsv_p2p[CORES.index(4)] < 1.15
    # p2p beats level scheduling for both kernels at every threaded point
    for i, c in enumerate(CORES):
        if c == 1:
            continue
        assert series["TRSV p2p"][i] >= series["TRSV level"][i]
        assert series["ILU p2p"][i] >= series["ILU level"][i]
    # ILU keeps scaling past 4 cores (compute-heavier), unlike TRSV
    ilu = series["ILU p2p"]
    assert ilu[CORES.index(8)] > 1.3 * ilu[CORES.index(4)]
