"""Figure 9 — strong scaling of FUN3D (Mesh-D) to 256 Stampede nodes.

Paper: baseline (16 MPI ranks/node) vs optimized (same + cache/SIMD
optimizations); the optimizations give 16-28% at every node count.

The model runs at the paper's Mesh-D size; the convergence-degradation side
(iteration growth with subdomains) is additionally *measured* here with real
reduced-scale additive-Schwarz solves.
"""

import pytest

from repro.cfd import FlowConfig, FlowField
from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig
from repro.perf import format_series
from repro.solver import SolverOptions, solve_steady

from conftest import emit

NODES = [1, 2, 4, 8, 16, 32, 64, 128, 256]


@pytest.mark.benchmark(group="fig9")
def test_fig9_strong_scaling(benchmark, mesh_c, capsys):
    base = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
    opt = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=True))

    def compute():
        tb = [base.total_time(n) for n in NODES]
        to = [opt.total_time(n) for n in NODES]
        return tb, to

    tb, to = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        capsys,
        format_series(
            "nodes",
            NODES,
            {
                "baseline (s)": [f"{t:.1f}" for t in tb],
                "optimized (s)": [f"{t:.1f}" for t in to],
                "gain": [f"+{100 * (b / o - 1):.0f}%" for b, o in zip(tb, to)],
            },
            title="Fig 9: Mesh-D strong scaling on Stampede "
            "(paper: optimized 16-28% faster at all scales)",
        ),
    )

    # strong scaling up to the communication wall
    assert all(a > b for a, b in zip(tb[:6], tb[1:7]))
    # optimized faster at every node count, with gains in a sane band
    for b, o in zip(tb, to):
        gain = b / o - 1
        assert 0.05 < gain < 0.40  # paper: 0.16..0.28

    # measured convergence degradation: real ASM solves at growing
    # subdomain counts need more Krylov iterations (the model's mechanism)
    fld = FlowField(mesh_c)
    cfg = FlowConfig()
    its = []
    for k in (1, 8, 32):
        res = solve_steady(
            fld, cfg,
            SolverOptions(max_steps=80, n_subdomains=k, gmres_rtol=1e-2),
        )
        assert res.converged
        its.append(res.linear_iterations)
    emit(
        capsys,
        f"measured ASM iteration growth on Mesh-C' (1/8/32 subdomains): {its}",
    )
    assert its[-1] > its[0]
