"""Figure 10 — communication overheads in the strong-scaling runs.

Paper: Mesh-D becomes communication bound at 256 nodes (communication ~70%
of total execution time); >90% of the communication overhead is
MPI_Allreduce from the Krylov solver; point-to-point messages contribute
less than 5%.
"""

import pytest

from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig
from repro.perf import format_series

from conftest import emit

NODES = [1, 4, 16, 64, 128, 256]


@pytest.mark.benchmark(group="fig10")
def test_fig10_communication_overheads(benchmark, capsys):
    mm = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))

    def compute():
        return [mm.step_breakdown(n) for n in NODES]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        capsys,
        format_series(
            "nodes",
            NODES,
            {
                "total (s)": [f"{r['total']:.1f}" for r in rows],
                "comm share": [f"{100 * r['comm_fraction']:.0f}%" for r in rows],
                "allreduce share of comm": [
                    f"{100 * r['allreduce'] / r['comm']:.0f}%" if r["comm"] else "-"
                    for r in rows
                ],
                "p2p share of comm": [
                    f"{100 * r['halo'] / r['comm']:.0f}%" if r["comm"] else "-"
                    for r in rows
                ],
            },
            title="Fig 10: communication overhead vs nodes "
            "(paper: ~70% comm at 256 nodes, >90% of it Allreduce, p2p <5%)",
        ),
    )

    last = rows[-1]
    assert last["comm_fraction"] > 0.5  # paper: ~0.7
    assert last["allreduce"] / last["comm"] > 0.9
    assert last["halo"] / last["comm"] < 0.1
    # communication fraction is monotone in node count
    fracs = [r["comm_fraction"] for r in rows]
    assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))
