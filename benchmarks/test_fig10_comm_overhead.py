"""Figure 10 — communication overheads in the strong-scaling runs.

Paper: Mesh-D becomes communication bound at 256 nodes (communication ~70%
of total execution time); >90% of the communication overhead is
MPI_Allreduce from the Krylov solver; point-to-point messages contribute
less than 5%.

The per-node-count breakdown is read from the model's span tree
(``MultiNodeModel.trace_breakdown``): each node count yields a root span
with ``compute``/``halo``/``allreduce`` children carrying the modeled
seconds, the same structure the ``repro scaling --trace-out`` export ships
to Chrome tracing.

Since the process-rank runtime exists the model no longer stands alone:
``test_fig10_measured_crosscheck`` runs a real 4-rank distributed solve
and checks the model's *ordering* of the communication components against
the measured breakdown — collectives cost at least as much as
point-to-point halos — without demanding the absolute fractions agree
(shm mailboxes on one host are not FDR InfiniBand at 256 nodes).
"""

import pytest

from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig
from repro.perf import format_series
from repro.smp.bench import run_dist_breakdown

from conftest import emit

NODES = [1, 4, 16, 64, 128, 256]


def _component(span, name):
    return next(span.find(name)).seconds


@pytest.mark.benchmark(group="fig10")
def test_fig10_communication_overheads(benchmark, capsys):
    mm = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))

    def compute():
        return [mm.trace_breakdown(n) for n in NODES]

    spans = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for s in spans:
        halo = _component(s, "halo")
        allreduce = _component(s, "allreduce")
        comm = halo + allreduce
        rows.append(
            {
                "total": s.seconds,
                "compute": _component(s, "compute"),
                "halo": halo,
                "allreduce": allreduce,
                "comm": comm,
                "comm_fraction": comm / s.seconds,
            }
        )

    emit(
        capsys,
        format_series(
            "nodes",
            NODES,
            {
                "total (s)": [f"{r['total']:.1f}" for r in rows],
                "comm share": [f"{100 * r['comm_fraction']:.0f}%" for r in rows],
                "allreduce share of comm": [
                    f"{100 * r['allreduce'] / r['comm']:.0f}%" if r["comm"] else "-"
                    for r in rows
                ],
                "p2p share of comm": [
                    f"{100 * r['halo'] / r['comm']:.0f}%" if r["comm"] else "-"
                    for r in rows
                ],
            },
            title="Fig 10: communication overhead vs nodes "
            "(paper: ~70% comm at 256 nodes, >90% of it Allreduce, p2p <5%)",
        ),
    )

    # the span tree carries the same numbers as the flat breakdown dict
    bd = mm.step_breakdown(NODES[-1])
    assert abs(rows[-1]["total"] - bd["total"]) < 1e-9 * bd["total"]
    assert abs(rows[-1]["allreduce"] - bd["allreduce"]) < 1e-9

    last = rows[-1]
    assert last["comm_fraction"] > 0.5  # paper: ~0.7
    assert last["allreduce"] / last["comm"] > 0.9
    assert last["halo"] / last["comm"] < 0.1
    # communication fraction is monotone in node count
    fracs = [r["comm_fraction"] for r in rows]
    assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))


@pytest.mark.benchmark(group="fig10")
def test_fig10_measured_crosscheck(benchmark, capsys):
    """Model vs. measurement at 4 ranks: same ordering of the comm shares.

    The model says the allreduce wall dominates the halo wall at every
    node count (>90% of comm at scale); a real 4-rank solve over shm must
    reproduce that ordering — allreduce at least on par with halo — even
    though its absolute fractions live in a different transport regime.
    """
    from repro.mesh import wing_mesh

    mm = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
    model = mm.step_breakdown(4)
    mesh = wing_mesh(n_around=16, n_radial=5, n_span=4)

    def measure():
        return run_dist_breakdown(mesh, n_ranks=4, pipelined=True,
                                  max_steps=3)

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)

    emit(
        capsys,
        format_series(
            "view",
            ["modeled @4 nodes", "measured @4 ranks"],
            {
                "comm share": [
                    f"{100 * model['comm_fraction']:.1f}%",
                    f"{100 * measured['comm_fraction']:.1f}%",
                ],
                "allreduce share of comm": [
                    f"{100 * model['allreduce'] / model['comm']:.0f}%",
                    f"{100 * measured['allreduce_seconds'] / (measured['allreduce_seconds'] + measured['halo_seconds']):.0f}%",
                ],
            },
            title="Fig 10 cross-check: cost model vs measured 4-rank "
            "distributed solve (ordering, not absolute values)",
        ),
    )

    assert measured["n_ranks"] == 4
    assert 0.0 < measured["comm_fraction"] < 1.0
    assert measured["halo_seconds"] > 0.0
    # the ordering the model predicts: collectives >= point-to-point.
    # A 0.75 slack absorbs scheduler noise in one short measured run.
    assert model["allreduce"] >= model["halo"]
    assert measured["allreduce_seconds"] >= 0.75 * measured["halo_seconds"]
