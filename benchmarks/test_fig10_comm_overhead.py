"""Figure 10 — communication overheads in the strong-scaling runs.

Paper: Mesh-D becomes communication bound at 256 nodes (communication ~70%
of total execution time); >90% of the communication overhead is
MPI_Allreduce from the Krylov solver; point-to-point messages contribute
less than 5%.

The per-node-count breakdown is read from the model's span tree
(``MultiNodeModel.trace_breakdown``): each node count yields a root span
with ``compute``/``halo``/``allreduce`` children carrying the modeled
seconds, the same structure the ``repro scaling --trace-out`` export ships
to Chrome tracing.
"""

import pytest

from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig
from repro.perf import format_series

from conftest import emit

NODES = [1, 4, 16, 64, 128, 256]


def _component(span, name):
    return next(span.find(name)).seconds


@pytest.mark.benchmark(group="fig10")
def test_fig10_communication_overheads(benchmark, capsys):
    mm = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))

    def compute():
        return [mm.trace_breakdown(n) for n in NODES]

    spans = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for s in spans:
        halo = _component(s, "halo")
        allreduce = _component(s, "allreduce")
        comm = halo + allreduce
        rows.append(
            {
                "total": s.seconds,
                "compute": _component(s, "compute"),
                "halo": halo,
                "allreduce": allreduce,
                "comm": comm,
                "comm_fraction": comm / s.seconds,
            }
        )

    emit(
        capsys,
        format_series(
            "nodes",
            NODES,
            {
                "total (s)": [f"{r['total']:.1f}" for r in rows],
                "comm share": [f"{100 * r['comm_fraction']:.0f}%" for r in rows],
                "allreduce share of comm": [
                    f"{100 * r['allreduce'] / r['comm']:.0f}%" if r["comm"] else "-"
                    for r in rows
                ],
                "p2p share of comm": [
                    f"{100 * r['halo'] / r['comm']:.0f}%" if r["comm"] else "-"
                    for r in rows
                ],
            },
            title="Fig 10: communication overhead vs nodes "
            "(paper: ~70% comm at 256 nodes, >90% of it Allreduce, p2p <5%)",
        ),
    )

    # the span tree carries the same numbers as the flat breakdown dict
    bd = mm.step_breakdown(NODES[-1])
    assert abs(rows[-1]["total"] - bd["total"]) < 1e-9 * bd["total"]
    assert abs(rows[-1]["allreduce"] - bd["allreduce"]) < 1e-9

    last = rows[-1]
    assert last["comm_fraction"] > 0.5  # paper: ~0.7
    assert last["allreduce"] / last["comm"] > 0.9
    assert last["halo"] / last["comm"] < 0.1
    # communication fraction is monotone in node count
    fracs = [r["comm_fraction"] for r in rows]
    assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))
