"""Figure 8b — kernel-wise speedups within the optimized application.

Paper: the compute-bound edge kernels (flux, gradient, Jacobian) scale
(almost) linearly with cores — flux ~20x with all optimizations — while the
bandwidth-bound TRSV (~3.2x) and ILU (~9.4x) scale only with per-core
bandwidth.
"""

import pytest

from repro.apps import OptimizationConfig
from repro.perf import format_table

from conftest import emit

PAPER = {"flux": 20.6, "grad": 14.0, "jacobian": 12.0, "ilu": 9.4, "trsv": 3.2}


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_kernel_speedups(benchmark, app_c, run_c_ilu1, capsys):
    counts = run_c_ilu1.counts
    base_cfg = OptimizationConfig.baseline(ilu_fill=1)
    opt_cfg = OptimizationConfig.optimized(ilu_fill=1)

    def compute():
        base = app_c.modeled_profile(counts, base_cfg, parallelism_override=60.0)
        opt = app_c.modeled_profile(counts, opt_cfg, parallelism_override=60.0)
        return {
            k: base[k] / opt[k] for k in base if opt[k] > 0 and base[k] > 0
        }

    speedups = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [k, f"{v:.1f}x", f"{PAPER[k]:.1f}x" if k in PAPER else "-"]
        for k, v in sorted(speedups.items(), key=lambda kv: -kv[1])
    ]
    emit(
        capsys,
        format_table(
            ["kernel", "measured speedup", "paper (approx)"],
            rows,
            title="Fig 8b: kernel-wise speedups in the optimized application",
        ),
    )

    # shape: edge kernels scale far beyond the bandwidth-bound recurrences
    assert speedups["flux"] > speedups["ilu"] > speedups["trsv"]
    assert speedups["grad"] > speedups["trsv"]
    assert speedups["flux"] > 14.0  # near-linear + SIMD/cache gains
    assert speedups["trsv"] < 5.0  # bandwidth-bound
