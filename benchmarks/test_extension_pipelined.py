"""Extension — pipelined GMRES against the allreduce scaling wall.

The paper's closing future-work direction cites Ghysels et al. [2013]
("Hiding global communication latency in the GMRES algorithm on massively
parallel machines") for the MPI_Allreduce bottleneck it measured at 256
nodes.  This bench applies that remedy in the multi-node model: reductions
overlapped with the iteration's matvec/preconditioner work.
"""

import pytest

from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig
from repro.perf import format_series

from conftest import emit

NODES = [16, 64, 128, 256]


@pytest.mark.benchmark(group="ext-pipelined")
def test_extension_pipelined_gmres(benchmark, capsys):
    std = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=True))
    pip = MultiNodeModel(
        MESH_D_PAPER, config=NodeConfig(optimized=True, pipelined_gmres=True)
    )

    def compute():
        return (
            [std.step_breakdown(n) for n in NODES],
            [pip.step_breakdown(n) for n in NODES],
        )

    bs, bp = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        capsys,
        format_series(
            "nodes",
            NODES,
            {
                "standard GMRES (s)": [f"{b['total']:.1f}" for b in bs],
                "pipelined GMRES (s)": [f"{b['total']:.1f}" for b in bp],
                "gain": [
                    f"+{100 * (a['total'] / b['total'] - 1):.0f}%"
                    for a, b in zip(bs, bp)
                ],
                "comm share (std -> pip)": [
                    f"{100 * a['comm_fraction']:.0f}% -> {100 * b['comm_fraction']:.0f}%"
                    for a, b in zip(bs, bp)
                ],
            },
            title="Extension: pipelined GMRES vs the allreduce wall "
            "(paper future work, Ghysels et al.)",
        ),
    )

    # pipelining pays more the deeper the scaling
    gains = [a["total"] / b["total"] for a, b in zip(bs, bp)]
    assert gains[-1] > gains[0]
    assert gains[-1] > 1.2
    # the exposed communication fraction drops at every node count
    for a, b in zip(bs, bp):
        assert b["comm_fraction"] <= a["comm_fraction"] + 1e-12
