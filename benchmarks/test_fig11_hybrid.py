"""Figure 11 — Baseline vs Optimized (MPI-only) vs Hybrid (MPI+OpenMP).

Paper: Hybrid = 2 ranks/node x 8 threads with all shared-memory
optimizations; it beats Baseline by 10-23% but stays below the MPI-only
Optimized version because PETSc's native vector/communication primitives
are not threaded (the hybrid Amdahl fraction); MPI-only instead pays ~30%
more Krylov iterations at 256 nodes from convergence degradation.
"""

import pytest

from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig
from repro.perf import format_series

from conftest import emit

NODES = [1, 4, 16, 64, 256]


@pytest.mark.benchmark(group="fig11")
def test_fig11_hybrid_comparison(benchmark, capsys):
    base = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=False))
    opt = MultiNodeModel(MESH_D_PAPER, config=NodeConfig(optimized=True))
    hyb = MultiNodeModel(
        MESH_D_PAPER,
        config=NodeConfig(
            optimized=True,
            ranks_per_node=2,
            threads_per_rank=8,
            threaded_kernels=True,
        ),
    )

    def compute():
        return (
            [base.total_time(n) for n in NODES],
            [opt.total_time(n) for n in NODES],
            [hyb.total_time(n) for n in NODES],
        )

    tb, to, th = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        capsys,
        format_series(
            "nodes",
            NODES,
            {
                "baseline (s)": [f"{t:.1f}" for t in tb],
                "optimized (s)": [f"{t:.1f}" for t in to],
                "hybrid (s)": [f"{t:.1f}" for t in th],
                "hybrid vs base": [
                    f"{100 * (b / h - 1):+.0f}%" for b, h in zip(tb, th)
                ],
            },
            title="Fig 11: Baseline / Optimized / Hybrid to 256 nodes "
            "(paper: hybrid +10..23% over baseline, below MPI-only optimized)",
        ),
    )

    # hybrid beats baseline from moderate scale on (paper: at all scales;
    # our model's NUMA/fork-join efficiency puts the small-node gain near 0)
    for n, b, h in zip(NODES, tb, th):
        if n >= 16:
            assert h < b
    # optimized MPI-only is the fastest approach over most of the range
    wins = sum(o <= h for o, h in zip(to, th))
    assert wins >= len(NODES) - 1
    # the MPI-only runs pay more Krylov iterations than hybrid at scale
    assert opt.iterations(opt.n_ranks(256)) > hyb.iterations(hyb.n_ranks(256))
