"""Figure 7a — ILU and TRSV optimization speedups.

Paper: at 20 threads (10 cores) the optimized ILU factorization reaches
9.4x and the blocked triangular solve 3.2x over the sequential base — both
bandwidth-bound, hence far below the flux kernel's scaling.  The second
bench cross-checks the model's levels-vs-P2P ordering against the *real*
process backend (``repro.smp.sparse_parallel``).
"""

import os

import pytest

from repro.mesh import mesh_c_prime
from repro.perf import format_table
from repro.smp import (
    XEON_E5_2690_V2,
    TriSolveOptions,
    ilu_time,
    tri_solve_options_from_plan,
    trsv_time,
)
from repro.smp.bench import run_trsv_scaling

from conftest import emit

PAPER_PARALLELISM = 248.0  # Mesh-C ILU-0 (Table II)


def _speedups(plan):
    mach = XEON_E5_2690_V2
    seq = TriSolveOptions(n_threads=1)
    t1 = trsv_time(mach, plan.factor_nnzb, plan.n, 4, seq)
    i1 = ilu_time(mach, plan.factor_block_ops(), plan.factor_nnzb, plan.n, 4, seq)

    out = {}
    for label, par in (("measured", None), ("paper-scale", PAPER_PARALLELISM)):
        opts = tri_solve_options_from_plan(plan, "p2p", 20)
        if par is not None:
            opts.available_parallelism = par
        t20 = trsv_time(mach, plan.factor_nnzb, plan.n, 4, opts)
        i20 = ilu_time(
            mach, plan.factor_block_ops(), plan.factor_nnzb, plan.n, 4, opts
        )
        out[label] = (t1 / t20, i1 / i20)
    return out


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_recurrence_speedups(benchmark, app_c, capsys):
    plan = app_c.ilu_plan(0)
    out = benchmark.pedantic(lambda: _speedups(plan), rounds=1, iterations=1)

    rows = [
        ["TRSV", f"{out['measured'][0]:.1f}x", f"{out['paper-scale'][0]:.1f}x", "3.2x"],
        ["ILU", f"{out['measured'][1]:.1f}x", f"{out['paper-scale'][1]:.1f}x", "9.4x"],
    ]
    emit(
        capsys,
        format_table(
            ["kernel", "measured (this mesh)", "paper-scale parallelism", "paper"],
            rows,
            title="Fig 7a: recurrence kernel speedups at 20 threads",
        ),
    )

    trsv_sp, ilu_sp = out["paper-scale"]
    assert trsv_sp == pytest.approx(3.2, rel=0.15)
    assert ilu_sp == pytest.approx(9.4, rel=0.20)
    # ILU scales further than TRSV (more flops per byte)
    assert ilu_sp > trsv_sp


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_sync_strategy_ordering_measured_vs_model(benchmark, capsys):
    """Levels-vs-P2P ordering: cost model cross-checked against the real
    process backend at 4 workers.

    The model must strictly prefer P2P (the sparsified flags replace
    ``n_levels x workers`` barrier hits with far fewer waits — the paper's
    Fig 7 argument).  The measured ordering is asserted with 1.2x slack and
    only when 4 cores are actually available: spin-waiting workers on an
    oversubscribed box invert the comparison for reasons the model does not
    price (it assumes one core per thread, as the paper's runs had).
    """
    mesh = mesh_c_prime(scale=0.06)
    doc = benchmark.pedantic(
        lambda: run_trsv_scaling(
            mesh, workers=(4,), repeats=3, dataset="mesh-c", scale=0.06,
        ),
        rounds=1, iterations=1,
    )
    cell = {r["strategy"]: r for r in doc["results"]}

    rows = [
        [
            s, f"{1e3 * cell[s]['trsv_wall_seconds']:.2f}",
            f"{1e3 * cell[s]['trsv_model_seconds']:.2f}",
            str(cell[s]["cross_deps"]), f"{cell[s]['max_abs_dev']:.1e}",
        ]
        for s in ("levels", "p2p")
    ]
    emit(
        capsys,
        format_table(
            ["strategy", "measured ms", "model ms", "cross deps", "max dev"],
            rows,
            title="Fig 7a: TRSV sync strategies at 4 workers "
                  "(measured process backend vs cost model)",
        ),
    )

    for r in doc["results"]:
        assert r["max_abs_dev"] <= 1e-12  # numerics never depend on sync
    assert (
        cell["p2p"]["trsv_model_seconds"]
        < cell["levels"]["trsv_model_seconds"]
    )
    if len(os.sched_getaffinity(0)) >= 4:
        assert (
            cell["p2p"]["trsv_wall_seconds"]
            <= 1.2 * cell["levels"]["trsv_wall_seconds"]
        )
