"""Figure 7a — ILU and TRSV optimization speedups.

Paper: at 20 threads (10 cores) the optimized ILU factorization reaches
9.4x and the blocked triangular solve 3.2x over the sequential base — both
bandwidth-bound, hence far below the flux kernel's scaling.
"""

import pytest

from repro.perf import format_table
from repro.smp import (
    XEON_E5_2690_V2,
    TriSolveOptions,
    ilu_time,
    tri_solve_options_from_plan,
    trsv_time,
)

from conftest import emit

PAPER_PARALLELISM = 248.0  # Mesh-C ILU-0 (Table II)


def _speedups(plan):
    mach = XEON_E5_2690_V2
    seq = TriSolveOptions(n_threads=1)
    t1 = trsv_time(mach, plan.factor_nnzb, plan.n, 4, seq)
    i1 = ilu_time(mach, plan.factor_block_ops(), plan.factor_nnzb, plan.n, 4, seq)

    out = {}
    for label, par in (("measured", None), ("paper-scale", PAPER_PARALLELISM)):
        opts = tri_solve_options_from_plan(plan, "p2p", 20)
        if par is not None:
            opts.available_parallelism = par
        t20 = trsv_time(mach, plan.factor_nnzb, plan.n, 4, opts)
        i20 = ilu_time(
            mach, plan.factor_block_ops(), plan.factor_nnzb, plan.n, 4, opts
        )
        out[label] = (t1 / t20, i1 / i20)
    return out


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_recurrence_speedups(benchmark, app_c, capsys):
    plan = app_c.ilu_plan(0)
    out = benchmark.pedantic(lambda: _speedups(plan), rounds=1, iterations=1)

    rows = [
        ["TRSV", f"{out['measured'][0]:.1f}x", f"{out['paper-scale'][0]:.1f}x", "3.2x"],
        ["ILU", f"{out['measured'][1]:.1f}x", f"{out['paper-scale'][1]:.1f}x", "9.4x"],
    ]
    emit(
        capsys,
        format_table(
            ["kernel", "measured (this mesh)", "paper-scale parallelism", "paper"],
            rows,
            title="Fig 7a: recurrence kernel speedups at 20 threads",
        ),
    )

    trsv_sp, ilu_sp = out["paper-scale"]
    assert trsv_sp == pytest.approx(3.2, rel=0.15)
    assert ilu_sp == pytest.approx(9.4, rel=0.20)
    # ILU scales further than TRSV (more flops per byte)
    assert ilu_sp > trsv_sp
