"""Figure 8a — optimized full-application time-to-solution.

Paper: 6.9x speedup for the full application on 10 cores (20 threads);
post-optimization the TRSV becomes the main kernel hotspot and the 'other'
(vector primitive) share grows to ~30%.  Per Table II the 6.9x headline is
the ILU-0 configuration (the parallel-friendly preconditioner), so this
bench prices the ILU-0 run at its paper-scale parallelism (248x).
"""

import pytest

from repro.apps import OptimizationConfig
from repro.perf import format_table

from conftest import emit

PAPER_PARALLELISM_ILU0 = 248.0


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_full_application_speedup(benchmark, app_c, run_c_ilu0, capsys):
    counts = run_c_ilu0.counts
    base_cfg = OptimizationConfig.baseline(ilu_fill=0)
    opt_cfg = OptimizationConfig.optimized(ilu_fill=0)

    def compute():
        base = app_c.modeled_profile(
            counts, base_cfg, parallelism_override=PAPER_PARALLELISM_ILU0
        )
        opt = app_c.modeled_profile(
            counts, opt_cfg, parallelism_override=PAPER_PARALLELISM_ILU0
        )
        return base, opt

    base, opt = benchmark.pedantic(compute, rounds=1, iterations=1)
    t_base, t_opt = sum(base.values()), sum(opt.values())

    rows = [
        [k, f"{base[k]:.3f}", f"{opt[k]:.3f}",
         f"{base[k] / opt[k]:.1f}x" if opt[k] > 0 else "-"]
        for k in base
    ]
    rows.append(["TOTAL", f"{t_base:.3f}", f"{t_opt:.3f}", f"{t_base / t_opt:.1f}x"])
    emit(
        capsys,
        format_table(
            ["kernel", "baseline (s)", "optimized (s)", "speedup"],
            rows,
            title="Fig 8a: full application time to solution "
            "(paper: 6.9x total with ILU-0; recurrences priced at the "
            "paper's 248x Mesh-C parallelism)",
        ),
    )

    speedup = t_base / t_opt
    assert 5.5 < speedup < 9.0  # paper: 6.9x
    # post-optimization hotspot shift: TRSV leads the main kernels
    main = {k: v for k, v in opt.items() if k != "vecops"}
    assert max(main, key=main.get) == "trsv"
    # the 'other' share grows substantially (paper: ~30% including scatters)
    assert opt["vecops"] / t_opt > base["vecops"] / t_base
