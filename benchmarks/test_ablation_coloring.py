"""Ablation — edge coloring vs domain-decomposed threading.

The paper rejects coloring for the edge loops because "coloring-based
partitioning of an unstructured mesh results in sub-optimal spatial
locality among the concurrently processed edges".  This ablation builds a
real greedy edge coloring of the mesh, executes it (numerics verified
elsewhere), and compares its modeled time against owner-writes replication:
conflict-freedom is paid for with scattered gathers and one barrier per
color.
"""

import pytest

from repro.perf import format_table
from repro.smp import (
    XEON_E5_2690_V2,
    EdgeLoopExecutor,
    edge_loop_time,
    flux_kernel_work,
    make_edge_loop_options,
    metis_thread_labels,
)

from conftest import emit


@pytest.mark.benchmark(group="ablation-coloring")
def test_ablation_coloring_vs_replication(benchmark, mesh_c, capsys):
    mach = XEON_E5_2690_V2
    work = flux_kernel_work(mesh_c.n_edges)
    t = 20

    def compute():
        ex_c = EdgeLoopExecutor(mesh_c.edges, mesh_c.n_vertices, t, "coloring")
        ex_m = EdgeLoopExecutor(
            mesh_c.edges, mesh_c.n_vertices, t, "replicate",
            metis_thread_labels(mesh_c.edges, mesh_c.n_vertices, t, seed=1))
        tc = edge_loop_time(mach, work, make_edge_loop_options(ex_c))
        tm = edge_loop_time(mach, work, make_edge_loop_options(ex_m))
        return ex_c.n_colors, tc, tm, ex_m.replication()

    n_colors, tc, tm, repl = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        capsys,
        format_table(
            ["strategy", "modeled time", "notes"],
            [
                ["coloring", f"{1e3 * tc:.3f} ms",
                 f"{n_colors} colors, conflict-free, scattered access"],
                ["replication (METIS)", f"{1e3 * tm:.3f} ms",
                 f"+{100 * repl:.0f}% redundant compute, streaming access"],
            ],
            title="Ablation: edge coloring vs METIS replication at 20 threads "
            "(paper rejects coloring for locality loss)",
        ),
    )

    # the paper's call: replication with good partitions beats coloring
    assert tm < tc
    # a tet mesh needs at least max-degree colors
    assert n_colors >= 14
