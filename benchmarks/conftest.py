"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
expensive piece — the actual steady flow solves that produce iteration and
operation counts — runs once per session here; the per-figure benches price
those counts under different optimization configurations (valid because
every optimization is numerics-preserving).

Environment knobs:

* ``REPRO_BENCH_SCALE`` (default ``0.12``): size of the Mesh-C'/Mesh-D'
  analogues relative to their defaults.  Larger values get closer to the
  paper's parallelism numbers but solve longer.
"""

from __future__ import annotations

import os

import pytest

from repro.apps import Fun3dApp, OptimizationConfig
from repro.mesh import mesh_c_prime, mesh_d_prime
from repro.solver import SolverOptions

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))


def emit(capsys, text: str) -> None:
    """Print a reproduction table to the real terminal (not the capture)."""
    with capsys.disabled():
        print()
        print(text)


@pytest.fixture(scope="session")
def mesh_c():
    return mesh_c_prime(scale=SCALE)


@pytest.fixture(scope="session")
def mesh_d():
    return mesh_d_prime(scale=SCALE * 0.5)


@pytest.fixture(scope="session")
def app_c(mesh_c):
    return Fun3dApp(mesh_c, solver=SolverOptions(max_steps=80))


@pytest.fixture(scope="session")
def run_c_ilu1(app_c):
    """Baseline solve with the original ILU(1) preconditioner."""
    res = app_c.run(OptimizationConfig.baseline(ilu_fill=1))
    assert res.solve.converged
    return res


@pytest.fixture(scope="session")
def run_c_ilu0(app_c):
    """Baseline solve with ILU(0) (Table II comparison)."""
    res = app_c.run(OptimizationConfig.baseline(ilu_fill=0))
    assert res.solve.converged
    return res
