"""Table II — ILU-0 vs ILU-1: parallelism, convergence, and the crossover.

Paper (Mesh-C):

    =====================  ======  ======
                           ILU-0   ILU-1
    Available parallelism  248x    60x
    Linear iterations      777     383
    Exec time 1 core (s)   430     282
    Exec time 10 cores     62      81
    Speed-up               6.9x    3.5x
    =====================  ======  ======

ILU-1 converges in fewer iterations (wins sequentially) but its fill-in
destroys dependency parallelism, so ILU-0 overtakes it at 10 cores (by
~1.3x in the paper).
"""

import pytest

from repro.apps import OptimizationConfig
from repro.perf import format_table
from repro.sparse import available_parallelism

from conftest import emit


@pytest.mark.benchmark(group="table2")
def test_table2_ilu_fill_comparison(
    benchmark, app_c, run_c_ilu0, run_c_ilu1, capsys
):
    def compute():
        out = {}
        for fill, res in ((0, run_c_ilu0), (1, run_c_ilu1)):
            plan = app_c.ilu_plan(fill)
            par = available_parallelism(plan.rowptr, plan.cols)
            base = sum(
                app_c.modeled_profile(
                    res.counts, OptimizationConfig.baseline(ilu_fill=fill)
                ).values()
            )
            opt = sum(
                app_c.modeled_profile(
                    res.counts, OptimizationConfig.optimized(ilu_fill=fill)
                ).values()
            )
            out[fill] = {
                "parallelism": par,
                "iterations": res.solve.linear_iterations,
                "t1": base,
                "t10": opt,
                "speedup": base / opt,
            }
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        ["available parallelism", f"{out[0]['parallelism']:.0f}x",
         f"{out[1]['parallelism']:.0f}x", "248x", "60x"],
        ["linear iterations", out[0]["iterations"], out[1]["iterations"],
         777, 383],
        ["exec time 1 core (s)", f"{out[0]['t1']:.2f}", f"{out[1]['t1']:.2f}",
         430, 282],
        ["exec time 10 cores (s)", f"{out[0]['t10']:.3f}",
         f"{out[1]['t10']:.3f}", 62, 81],
        ["speed-up", f"{out[0]['speedup']:.1f}x", f"{out[1]['speedup']:.1f}x",
         "6.9x", "3.5x"],
    ]
    emit(
        capsys,
        format_table(
            ["metric", "ILU-0", "ILU-1", "paper ILU-0", "paper ILU-1"],
            rows,
            title="Table II: ILU-0 vs ILU-1 (measured analogue vs paper)",
        ),
    )

    # shape assertions mirroring the paper's conclusions
    assert out[0]["parallelism"] > 2.0 * out[1]["parallelism"]
    assert out[1]["iterations"] < out[0]["iterations"]  # fill-in converges faster
    assert out[1]["t1"] < out[0]["t1"]  # ILU-1 wins sequentially
    assert out[0]["t10"] < out[1]["t10"]  # ILU-0 wins at 10 cores
    ratio = out[1]["t10"] / out[0]["t10"]
    assert ratio > 1.1  # paper: ~1.3x
