"""Extension — many-core (Xeon Phi) projection of the optimization study.

The paper's future work: "most of our shared-memory optimizations are
expected to extend to modern many-core architectures such as Intel Xeon
Phi", and its initial many-core experiments saw METIS replication overhead
grow to 15% at 240 threads.  This bench projects the flux kernel and the
recurrences onto the KNC machine model and measures the 240-thread
replication overhead on our mesh.
"""

import pytest

from repro.perf import format_table
from repro.smp import (
    XEON_E5_2690_V2,
    XEON_PHI_KNC,
    EdgeLoopExecutor,
    EdgeLoopOptions,
    edge_loop_time,
    flux_kernel_work,
    metis_thread_labels,
)

from conftest import emit


@pytest.mark.benchmark(group="ext-manycore")
def test_extension_manycore_projection(benchmark, mesh_c, capsys):
    work = flux_kernel_work(mesh_c.n_edges)

    def compute():
        out = {}
        for mach, t in ((XEON_E5_2690_V2, 20), (XEON_PHI_KNC, 240)):
            labels = metis_thread_labels(
                mesh_c.edges, mesh_c.n_vertices, t, seed=1
            )
            ex = EdgeLoopExecutor(
                mesh_c.edges, mesh_c.n_vertices, t, "replicate", labels
            )
            seq = edge_loop_time(mach, work, EdgeLoopOptions(n_threads=1))
            opt = edge_loop_time(
                mach,
                work,
                EdgeLoopOptions(
                    n_threads=t,
                    strategy="replicate",
                    layout="aos",
                    simd=True,
                    prefetch=True,
                    rcm=True,
                    edges_per_thread=ex.edges_per_thread(),
                ),
            )
            out[mach.name] = (t, seq / opt, ex.replication())
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [name, t, f"{sp:.1f}x", f"+{100 * repl:.0f}%"]
        for name, (t, sp, repl) in out.items()
    ]
    emit(
        capsys,
        format_table(
            ["machine", "threads", "flux speedup vs own seq", "replication"],
            rows,
            title="Extension: many-core projection (paper: METIS replication "
            "~15% at 240 threads)",
        ),
    )

    xeon = out[XEON_E5_2690_V2.name]
    phi = out[XEON_PHI_KNC.name]
    # the many-core part gets a (much) larger threading speedup over its own
    # sequential core, and pays more replication overhead
    assert phi[1] > xeon[1]
    assert phi[2] > xeon[2]
    assert phi[2] > 0.10  # paper: ~15% at 240 threads (ours: smaller mesh)
