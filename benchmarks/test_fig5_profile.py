"""Figure 5 — performance profile of the baseline application.

Paper: flux 42%, TRSV/MatSolve 17%, ILU 16%, gradient 13%, Jacobian
construction 7% — together ~95% of execution time.
"""

import pytest

from repro.apps import OptimizationConfig
from repro.perf import format_table

from conftest import emit

PAPER = {"flux": 0.42, "trsv": 0.17, "ilu": 0.16, "grad": 0.13, "jacobian": 0.07}


@pytest.mark.benchmark(group="fig5")
def test_fig5_baseline_profile(benchmark, app_c, run_c_ilu1, capsys):
    profile = benchmark.pedantic(
        lambda: app_c.modeled_profile(
            run_c_ilu1.counts, OptimizationConfig.baseline(ilu_fill=1)
        ),
        rounds=1,
        iterations=1,
    )
    total = sum(profile.values())
    frac = {k: v / total for k, v in profile.items()}

    rows = [
        [k, f"{100 * frac.get(k, 0):.1f}%", f"{100 * PAPER.get(k, 0):.0f}%"]
        for k in ("flux", "trsv", "ilu", "grad", "jacobian", "vecops")
    ]
    emit(
        capsys,
        format_table(
            ["kernel", "measured share", "paper share"],
            rows,
            title="Fig 5: baseline application profile",
        ),
    )

    # shape: flux dominates; the five main kernels are ~95% of the total
    assert frac["flux"] == max(frac.values())
    main = sum(frac[k] for k in ("flux", "trsv", "ilu", "grad", "jacobian"))
    assert main > 0.85
    # ordering: flux > trsv, ilu > jacobian, grad > jacobian
    assert frac["flux"] > frac["trsv"]
    assert frac["ilu"] > frac["jacobian"]
    assert frac["grad"] > frac["jacobian"]
