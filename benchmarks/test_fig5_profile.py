"""Figure 5 — performance profile of the baseline application.

Paper: flux 42%, TRSV/MatSolve 17%, ILU 16%, gradient 13%, Jacobian
construction 7% — together ~95% of execution time.

The kernel-share table is derived from the run's hierarchical span tree
(``repro.obs``): invocation counts come from the ``flux``/``jacobian``/
``ilu``/``trsv`` kernel spans and the ``gmres`` iteration attributes, and
the span totals are first reconciled against the flat ``PerfRegistry``
before the counts are priced under the machine model.
"""

import pytest

from repro.apps import OptimizationConfig
from repro.perf import format_table

from conftest import emit

PAPER = {"flux": 0.42, "trsv": 0.17, "ilu": 0.16, "grad": 0.13, "jacobian": 0.07}


@pytest.mark.benchmark(group="fig5")
def test_fig5_baseline_profile(benchmark, app_c, run_c_ilu1, capsys):
    trace = run_c_ilu1.trace
    assert trace is not None and trace.roots, "run should carry a span tree"

    # span tree <-> registry reconciliation: per-kernel totals within 1%
    span_totals = trace.kernel_totals()
    for name, rec in run_c_ilu1.registry.records.items():
        if rec.seconds > 0:
            assert name in span_totals
            assert abs(span_totals[name] - rec.seconds) <= 0.01 * rec.seconds

    # operation counts from the span tree, priced under the machine model
    counts = app_c.counts_from_trace(trace, run_c_ilu1.registry)
    assert counts == run_c_ilu1.counts  # trace-derived == registry-derived

    profile = benchmark.pedantic(
        lambda: app_c.modeled_profile(
            counts, OptimizationConfig.baseline(ilu_fill=1)
        ),
        rounds=1,
        iterations=1,
    )
    total = sum(profile.values())
    frac = {k: v / total for k, v in profile.items()}

    rows = [
        [k, f"{100 * frac.get(k, 0):.1f}%", f"{100 * PAPER.get(k, 0):.0f}%"]
        for k in ("flux", "trsv", "ilu", "grad", "jacobian", "vecops")
    ]
    emit(
        capsys,
        format_table(
            ["kernel", "measured share", "paper share"],
            rows,
            title="Fig 5: baseline application profile (from span tree)",
        ),
    )

    # shape: flux dominates; the five main kernels are ~95% of the total
    assert frac["flux"] == max(frac.values())
    main = sum(frac[k] for k in ("flux", "trsv", "ilu", "grad", "jacobian"))
    assert main > 0.85
    # ordering: flux > trsv, ilu > jacobian, grad > jacobian
    assert frac["flux"] > frac["trsv"]
    assert frac["ilu"] > frac["jacobian"]
    assert frac["grad"] > frac["jacobian"]
