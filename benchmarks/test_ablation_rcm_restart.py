"""Ablations — RCM reordering and GMRES restart length.

RCM: the paper reorders vertices with RCM "to improve locality"; this bench
quantifies both the locality metrics (bandwidth, mean gather span) and the
modeled flux-kernel effect on the real mesh.

GMRES restart: a solver-side design knob the paper inherits from
PETSc-FUN3D; the sweep shows the compute/memory trade-off around the
default restart of 30.
"""

import pytest

from repro.cfd import FlowConfig, FlowField
from repro.ordering import bandwidth, edge_span, rcm_relabel
from repro.perf import format_table
from repro.smp import XEON_E5_2690_V2, EdgeLoopOptions, edge_loop_time, flux_kernel_work
from repro.solver import SolverOptions, solve_steady

from conftest import emit


@pytest.mark.benchmark(group="ablation-rcm")
def test_ablation_rcm_locality(benchmark, mesh_c, capsys):
    def compute():
        r = rcm_relabel(mesh_c)
        return {
            "natural": (bandwidth(mesh_c.edges), edge_span(mesh_c.edges)),
            "rcm": (bandwidth(r.edges), edge_span(r.edges)),
        }

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    mach = XEON_E5_2690_V2
    work = flux_kernel_work(mesh_c.n_edges)
    t_nat = edge_loop_time(mach, work, EdgeLoopOptions(rcm=False))
    t_rcm = edge_loop_time(mach, work, EdgeLoopOptions(rcm=True))

    rows = [
        ["natural", out["natural"][0], f"{out['natural'][1]:.0f}", f"{t_nat * 1e3:.2f} ms"],
        ["RCM", out["rcm"][0], f"{out['rcm'][1]:.0f}", f"{t_rcm * 1e3:.2f} ms"],
    ]
    emit(
        capsys,
        format_table(
            ["ordering", "matrix bandwidth", "mean gather span", "modeled flux time"],
            rows,
            title="Ablation: RCM reordering (locality + modeled effect)",
        ),
    )
    assert out["rcm"][0] < out["natural"][0]
    assert out["rcm"][1] < out["natural"][1]
    assert t_rcm < t_nat


@pytest.mark.benchmark(group="ablation-restart")
def test_ablation_gmres_restart(benchmark, capsys):
    from repro.mesh import wing_mesh

    mesh = wing_mesh(n_around=16, n_radial=6, n_span=4)
    fld = FlowField(mesh)
    cfg = FlowConfig()

    def compute():
        out = {}
        for restart in (5, 10, 30):
            res = solve_steady(
                fld, cfg,
                SolverOptions(max_steps=60, gmres_restart=restart),
            )
            out[restart] = (res.converged, res.linear_iterations, res.steps)
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [r, "yes" if c else "no", its, steps]
        for r, (c, its, steps) in sorted(out.items())
    ]
    emit(
        capsys,
        format_table(
            ["restart", "converged", "linear iterations", "steps"],
            rows,
            title="Ablation: GMRES restart length on the steady solve",
        ),
    )
    assert all(c for c, _, _ in out.values())
    # tighter restarts cannot beat the longest one on iteration count
    assert out[30][1] <= out[5][1] * 1.5
