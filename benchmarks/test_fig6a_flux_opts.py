"""Figure 6a — flux kernel: speed-ups from the cumulative optimizations.

Paper: threading (RCM + METIS owner-writes, 20 threads) then, cumulatively,
AoS node data (+40%), SIMD across edges with scalar write-out (+40%), and
software prefetch (+15%), reaching 20.6x over the sequential base.
"""

import pytest

from repro.perf import format_table
from repro.smp import (
    XEON_E5_2690_V2,
    EdgeLoopExecutor,
    EdgeLoopOptions,
    edge_loop_time,
    flux_kernel_work,
    metis_thread_labels,
)

from conftest import emit

N_THREADS = 20


def _cumulative_times(mesh):
    mach = XEON_E5_2690_V2
    work = flux_kernel_work(mesh.n_edges)
    base = edge_loop_time(mach, work, EdgeLoopOptions(n_threads=1))
    labels = metis_thread_labels(mesh.edges, mesh.n_vertices, N_THREADS, seed=1)
    ex = EdgeLoopExecutor(
        mesh.edges, mesh.n_vertices, N_THREADS, "replicate", labels
    )
    ept = ex.edges_per_thread()

    def t(layout, simd, pf):
        return edge_loop_time(
            mach,
            work,
            EdgeLoopOptions(
                n_threads=N_THREADS,
                strategy="replicate",
                layout=layout,
                simd=simd,
                prefetch=pf,
                rcm=True,
                edges_per_thread=ept,
            ),
        )

    return {
        "base (sequential)": base,
        "+threading (RCM+METIS)": t("soa", False, False),
        "+data structures (AoS)": t("aos", False, False),
        "+SIMD": t("aos", True, False),
        "+prefetch": t("aos", True, True),
    }


@pytest.mark.benchmark(group="fig6a")
def test_fig6a_flux_cumulative_optimizations(benchmark, mesh_c, capsys):
    times = benchmark.pedantic(
        lambda: _cumulative_times(mesh_c), rounds=1, iterations=1
    )
    names = list(times)
    base = times[names[0]]
    rows = []
    prev = base
    for name in names:
        cur = times[name]
        rows.append(
            [name, f"{1e3 * cur:.3f} ms", f"{base / cur:.1f}x", f"{prev / cur:.2f}x"]
        )
        prev = cur
    emit(
        capsys,
        format_table(
            ["configuration", "modeled time", "vs base", "step gain"],
            rows,
            title="Fig 6a: flux kernel cumulative optimizations "
            "(paper: AoS +40%, SIMD +40%, prefetch +15%, total 20.6x)",
        ),
    )

    t_thr = times["+threading (RCM+METIS)"]
    t_aos = times["+data structures (AoS)"]
    t_simd = times["+SIMD"]
    t_pf = times["+prefetch"]
    assert t_thr / t_aos == pytest.approx(1.4, rel=0.15)
    assert t_aos / t_simd == pytest.approx(1.4, rel=0.15)
    assert t_simd / t_pf == pytest.approx(1.15, rel=0.10)
    assert 15.0 < base / t_pf < 30.0  # paper: 20.6x
