"""Ablation — full layout x SIMD x prefetch grid for the flux kernel.

The paper reports only the cumulative path (Fig 6a); this ablation prices
every combination, confirming the interactions the paper describes in
prose: SIMD pays off much more with AoS (vector loads + register permutes)
than with SoA (4 sequential loads per field), and prefetch only matters
once the layout stops thrashing.
"""

import itertools

import pytest

from repro.perf import format_table
from repro.smp import (
    XEON_E5_2690_V2,
    EdgeLoopExecutor,
    EdgeLoopOptions,
    edge_loop_time,
    flux_kernel_work,
    metis_thread_labels,
)

from conftest import emit


@pytest.mark.benchmark(group="ablation-layout")
def test_ablation_layout_simd_prefetch_grid(benchmark, mesh_c, capsys):
    mach = XEON_E5_2690_V2
    work = flux_kernel_work(mesh_c.n_edges)
    labels = metis_thread_labels(mesh_c.edges, mesh_c.n_vertices, 20, seed=1)
    ex = EdgeLoopExecutor(mesh_c.edges, mesh_c.n_vertices, 20, "replicate", labels)
    ept = ex.edges_per_thread()

    def compute():
        out = {}
        for layout, simd, pf in itertools.product(
            ("soa", "aos"), (False, True), (False, True)
        ):
            out[(layout, simd, pf)] = edge_loop_time(
                mach,
                work,
                EdgeLoopOptions(
                    n_threads=20,
                    strategy="replicate",
                    layout=layout,
                    simd=simd,
                    prefetch=pf,
                    rcm=True,
                    edges_per_thread=ept,
                ),
            )
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    best = min(out.values())
    rows = [
        [layout, "on" if simd else "off", "on" if pf else "off",
         f"{1e3 * t:.3f} ms", f"{t / best:.2f}x"]
        for (layout, simd, pf), t in sorted(out.items(), key=lambda kv: kv[1])
    ]
    emit(
        capsys,
        format_table(
            ["layout", "simd", "prefetch", "modeled time", "vs best"],
            rows,
            title="Ablation: flux kernel layout x SIMD x prefetch at 20 threads",
        ),
    )

    # AoS+SIMD+prefetch is the global optimum
    assert min(out, key=out.get) == ("aos", True, True)
    # SIMD gain is larger with AoS than with SoA
    gain_aos = out[("aos", False, False)] / out[("aos", True, False)]
    gain_soa = out[("soa", False, False)] / out[("soa", True, False)]
    assert gain_aos > gain_soa
