"""Table I — baseline performance of the two datasets.

Paper values (ONERA M6, out-of-the-box sequential PETSc-FUN3D):

    =============  =======  =======
                   Mesh-C   Mesh-D
    Vertices       3.58e5   2.76e6
    Edges          2.40e6   1.89e7
    Time steps     13       29
    Linear iters   383      1709
    Exec time (s)  2.82e2   1.02e4
    =============  =======  =======

Our analogues are laptop-scale; the bench reports their measured steps /
iterations / wall time plus the modeled sequential execution time on the
paper's Xeon E5-2690v2, and checks the shape: Mesh-D' needs more steps and
iterations than Mesh-C'.
"""

import pytest

from repro.apps import Fun3dApp, OptimizationConfig
from repro.perf import format_table
from repro.solver import SolverOptions

from conftest import emit


def _solve(mesh):
    app = Fun3dApp(mesh, solver=SolverOptions(max_steps=120))
    res = app.run(OptimizationConfig.baseline(ilu_fill=1))
    return app, res


@pytest.mark.benchmark(group="table1")
def test_table1_baseline(benchmark, mesh_c, mesh_d, capsys):
    results = benchmark.pedantic(
        lambda: (_solve(mesh_c), _solve(mesh_d)), rounds=1, iterations=1
    )
    (app_c, res_c), (app_d, res_d) = results

    rows = []
    paper = {
        "Mesh-C": (3.58e5, 2.40e6, 13, 383, 2.82e2),
        "Mesh-D": (2.76e6, 1.89e7, 29, 1709, 1.02e4),
    }
    for name, mesh, app, res in (
        ("Mesh-C'", mesh_c, app_c, res_c),
        ("Mesh-D'", mesh_d, app_d, res_d),
    ):
        modeled = sum(
            app.modeled_profile(
                res.counts, OptimizationConfig.baseline(ilu_fill=1)
            ).values()
        )
        rows.append(
            [
                name,
                mesh.n_vertices,
                mesh.n_edges,
                res.solve.steps,
                res.solve.linear_iterations,
                round(modeled, 3),
            ]
        )
    for name, (nv, ne, steps, its, t) in paper.items():
        rows.append([f"{name} (paper)", int(nv), int(ne), steps, its, t])

    emit(
        capsys,
        format_table(
            ["dataset", "vertices", "edges", "steps", "lin.iters", "exec time (s)"],
            rows,
            title="Table I: baseline performance (measured analogues vs paper)",
        ),
    )

    assert res_c.solve.converged and res_d.solve.converged
    # shape: the larger dataset needs at least as many steps and more
    # Krylov iterations
    assert res_d.solve.steps >= res_c.solve.steps
    assert res_d.solve.linear_iterations > res_c.solve.linear_iterations
