"""Weighted graph container and contraction for the multilevel partitioner.

This is the substrate beneath our METIS substitute: vertex- and edge-weighted
CSR graphs, heavy-edge matching, and graph contraction, each implemented from
scratch with NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Graph", "heavy_edge_matching", "contract"]


@dataclass
class Graph:
    """Undirected vertex/edge-weighted graph in CSR form.

    ``cols[rowptr[v]:rowptr[v+1]]`` are the neighbors of ``v``; ``ewgt``
    aligns with ``cols``; ``vwgt`` has one entry per vertex.  The structure
    is symmetric: (u, v) present implies (v, u) present with equal weight.
    """

    rowptr: np.ndarray
    cols: np.ndarray
    vwgt: np.ndarray
    ewgt: np.ndarray

    @classmethod
    def from_edges(
        cls,
        edges: np.ndarray,
        n_vertices: int,
        vwgt: np.ndarray | None = None,
        ewgt: np.ndarray | None = None,
    ) -> "Graph":
        """Build from an undirected edge list (each edge listed once)."""
        if ewgt is None:
            ewgt = np.ones(edges.shape[0], dtype=np.int64)
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        w = np.concatenate([ewgt, ewgt])
        order = np.lexsort((dst, src))
        src, dst, w = src[order], dst[order], w[order]
        rowptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.add.at(rowptr, src + 1, 1)
        np.cumsum(rowptr, out=rowptr)
        if vwgt is None:
            vwgt = np.ones(n_vertices, dtype=np.int64)
        return cls(rowptr=rowptr, cols=dst, vwgt=np.asarray(vwgt), ewgt=w)

    @property
    def n_vertices(self) -> int:
        return self.rowptr.shape[0] - 1

    @property
    def n_adj(self) -> int:
        return self.cols.shape[0]

    def total_vwgt(self) -> int:
        return int(self.vwgt.sum())

    def degree(self) -> np.ndarray:
        return self.rowptr[1:] - self.rowptr[:-1]


def heavy_edge_matching(graph: Graph, rng: np.random.Generator) -> np.ndarray:
    """Randomized heavy-edge matching.

    Visits vertices in random order; each unmatched vertex is matched with
    its heaviest unmatched neighbor (the METIS HEM rule, which pushes heavy
    edges into the coarse graph's interiors).  Returns ``match`` with
    ``match[v]`` = partner of ``v`` (or ``v`` itself if unmatched).
    """
    n = graph.n_vertices
    match = np.full(n, -1, dtype=np.int64)
    rowptr, cols, ewgt = graph.rowptr, graph.cols, graph.ewgt
    for v in rng.permutation(n):
        if match[v] >= 0:
            continue
        lo, hi = rowptr[v], rowptr[v + 1]
        nbrs = cols[lo:hi]
        free = match[nbrs] < 0
        if np.any(free):
            w = ewgt[lo:hi][free]
            u = int(nbrs[free][np.argmax(w)])
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match


def contract(graph: Graph, match: np.ndarray) -> tuple[Graph, np.ndarray]:
    """Contract matched pairs into coarse vertices.

    Returns ``(coarse_graph, cmap)`` where ``cmap[v]`` is the coarse vertex
    holding fine vertex ``v``.  Vertex weights add; parallel edges merge with
    weights added; self-loops (intra-pair edges) are dropped.
    """
    n = graph.n_vertices
    rep = np.minimum(np.arange(n), match)  # pair representative
    uniq, cmap = np.unique(rep, return_inverse=True)
    nc = uniq.shape[0]

    cvwgt = np.zeros(nc, dtype=graph.vwgt.dtype)
    np.add.at(cvwgt, cmap, graph.vwgt)

    # Map each directed adjacency entry, drop self-loops, merge duplicates.
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degree())
    cu, cv = cmap[src], cmap[graph.cols]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], graph.ewgt[keep]
    keys = cu * np.int64(nc) + cv
    order = np.argsort(keys, kind="stable")
    keys, cu, cv, w = keys[order], cu[order], cv[order], w[order]
    is_start = np.empty(keys.shape[0], dtype=bool)
    if keys.shape[0]:
        is_start[0] = True
        np.not_equal(keys[1:], keys[:-1], out=is_start[1:])
        run = np.cumsum(is_start) - 1
        nw = np.zeros(run[-1] + 1, dtype=w.dtype)
        np.add.at(nw, run, w)
        cu = cu[is_start]
        cv = cv[is_start]
    else:
        nw = w

    rowptr = np.zeros(nc + 1, dtype=np.int64)
    np.add.at(rowptr, cu + 1, 1)
    np.cumsum(rowptr, out=rowptr)
    coarse = Graph(rowptr=rowptr, cols=cv, vwgt=cvwgt, ewgt=nw)
    return coarse, cmap
