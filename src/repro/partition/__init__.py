"""Graph partitioning: the repo's METIS substitute plus simple baselines."""

from .graph import Graph, contract, heavy_edge_matching
from .metrics import (
    PartitionReport,
    edge_cut,
    edges_per_part,
    load_imbalance,
    partition_report,
    replication_overhead,
)
from .multilevel import multilevel_bisect, partition_graph
from .simple import coordinate_partition, natural_partition, spectral_partition

__all__ = [
    "Graph",
    "contract",
    "heavy_edge_matching",
    "PartitionReport",
    "edge_cut",
    "edges_per_part",
    "load_imbalance",
    "partition_report",
    "replication_overhead",
    "multilevel_bisect",
    "partition_graph",
    "coordinate_partition",
    "natural_partition",
    "spectral_partition",
]
