"""Partition quality metrics.

These feed directly into the machine model: the replication overhead of the
owner-writes edge-loop strategy is exactly the cut-edge fraction, and thread
load balance bounds the parallel speedup of every strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PartitionReport",
    "edge_cut",
    "load_imbalance",
    "replication_overhead",
    "partition_report",
    "edges_per_part",
]


def edge_cut(edges: np.ndarray, labels: np.ndarray) -> int:
    """Number of edges whose endpoints lie in different parts."""
    return int((labels[edges[:, 0]] != labels[edges[:, 1]]).sum())


def load_imbalance(labels: np.ndarray, n_parts: int, weights=None) -> float:
    """max part weight / mean part weight (1.0 = perfect balance)."""
    if weights is None:
        weights = np.ones(labels.shape[0])
    sums = np.zeros(n_parts)
    np.add.at(sums, labels, weights)
    mean = sums.sum() / n_parts
    return float(sums.max() / mean) if mean > 0 else 1.0


def replication_overhead(edges: np.ndarray, labels: np.ndarray) -> float:
    """Redundant-compute fraction of the owner-writes edge-loop strategy.

    With vertices divided among threads and each thread processing every
    edge incident to one of its vertices (writing only its own vertices),
    each cut edge is processed twice.  The extra work relative to the
    sequential edge count is therefore ``cut / n_edges`` — the paper's
    "41% increase in compute" (natural, 20 threads) vs "nominal 4%" (METIS).
    """
    if edges.shape[0] == 0:
        return 0.0
    return edge_cut(edges, labels) / edges.shape[0]


def edges_per_part(
    edges: np.ndarray, labels: np.ndarray, n_parts: int
) -> np.ndarray:
    """Edges processed by each part under owner-writes (cut edges count for
    both sides)."""
    counts = np.zeros(n_parts, dtype=np.int64)
    l0, l1 = labels[edges[:, 0]], labels[edges[:, 1]]
    np.add.at(counts, l0, 1)
    cut = l0 != l1
    np.add.at(counts, l1[cut], 1)
    return counts


@dataclass
class PartitionReport:
    """Aggregate quality of a k-way partition."""

    n_parts: int
    edge_cut: int
    cut_fraction: float
    replication_overhead: float
    vertex_imbalance: float
    edge_imbalance: float

    def __str__(self) -> str:  # noqa: D105
        return (
            f"PartitionReport(k={self.n_parts}, cut={self.edge_cut} "
            f"({100 * self.cut_fraction:.1f}%), repl=+{100 * self.replication_overhead:.1f}%, "
            f"vbal={self.vertex_imbalance:.3f}, ebal={self.edge_imbalance:.3f})"
        )


def partition_report(
    edges: np.ndarray, labels: np.ndarray, n_parts: int
) -> PartitionReport:
    """Compute all partition quality metrics at once."""
    cut = edge_cut(edges, labels)
    per_part = edges_per_part(edges, labels, n_parts)
    mean_e = per_part.sum() / n_parts
    return PartitionReport(
        n_parts=n_parts,
        edge_cut=cut,
        cut_fraction=cut / max(edges.shape[0], 1),
        replication_overhead=replication_overhead(edges, labels),
        vertex_imbalance=load_imbalance(labels, n_parts),
        edge_imbalance=float(per_part.max() / mean_e) if mean_e else 1.0,
    )
