"""Non-multilevel partitioning strategies.

* Natural-order splitting — the paper's baseline thread partitioning ("we
  divide edges in natural order between threads" / "divide the vertices ...
  based on natural order").
* Recursive coordinate bisection — a cheap geometric partitioner, used for
  comparison and as the seed partitioner in the distributed layer when a
  mesh (with coordinates) is available.
* Spectral bisection — Fiedler-vector recursive bisection, the classical
  high-quality (but slow) reference; practical only for small graphs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "natural_partition",
    "coordinate_partition",
    "spectral_partition",
]


def natural_partition(n_items: int, n_parts: int) -> np.ndarray:
    """Split ``0..n_items`` into ``n_parts`` contiguous, balanced chunks.

    ``labels[i] = floor(i * n_parts / n_items)`` — exactly the natural-order
    splitting of vertices (or edges) used by the paper's basic strategies.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_items == 0:
        return np.zeros(0, dtype=np.int64)
    labels = (np.arange(n_items, dtype=np.int64) * n_parts) // n_items
    return np.minimum(labels, n_parts - 1)


def coordinate_partition(coords: np.ndarray, n_parts: int) -> np.ndarray:
    """Recursive coordinate bisection: split along the longest axis by the
    weighted median, recursing with proportional targets for non-power-of-2
    part counts."""
    n = coords.shape[0]
    labels = np.zeros(n, dtype=np.int64)
    _rcb(coords, np.arange(n, dtype=np.int64), labels, 0, n_parts)
    return labels


def _rcb(
    coords: np.ndarray,
    ids: np.ndarray,
    labels: np.ndarray,
    first: int,
    k: int,
) -> None:
    if k == 1 or ids.size == 0:
        labels[ids] = first
        return
    k1 = k // 2
    pts = coords[ids]
    axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
    order = np.argsort(pts[:, axis], kind="stable")
    split = int(round(ids.size * (k1 / k)))
    left, right = ids[order[:split]], ids[order[split:]]
    _rcb(coords, left, labels, first, k1)
    _rcb(coords, right, labels, first + k1, k - k1)


def spectral_partition(
    edges: np.ndarray, n_vertices: int, n_parts: int, seed: int = 0
) -> np.ndarray:
    """Recursive spectral bisection via the Fiedler vector.

    Uses scipy's Lanczos on the graph Laplacian.  Quadratic-ish cost; meant
    for graphs up to a few thousand vertices (tests, small studies).
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    labels = np.zeros(n_vertices, dtype=np.int64)

    def bisect(ids: np.ndarray, sub_edges: np.ndarray, first: int, k: int) -> None:
        if k == 1 or ids.size <= 1:
            labels[ids] = first
            return
        k1 = k // 2
        n = ids.size
        if sub_edges.shape[0] == 0:
            # no edges: arbitrary balanced split
            half = int(round(n * k1 / k))
            bisect(ids[:half], sub_edges, first, k1)
            bisect(ids[half:], sub_edges, first + k1, k - k1)
            return
        rows = np.concatenate([sub_edges[:, 0], sub_edges[:, 1]])
        cls_ = np.concatenate([sub_edges[:, 1], sub_edges[:, 0]])
        data = np.ones(rows.shape[0])
        adj = sp.csr_matrix((data, (rows, cls_)), shape=(n, n))
        lap = sp.csgraph.laplacian(adj)
        try:
            _, vecs = spla.eigsh(
                lap.asfptype(),
                k=2,
                sigma=-1e-8,
                which="LM",
                v0=np.ones(n) / np.sqrt(n),
            )
            fiedler = vecs[:, 1]
        except Exception:
            rng = np.random.default_rng(seed)
            fiedler = rng.normal(size=n)
        order = np.argsort(fiedler, kind="stable")
        split = int(round(n * k1 / k))
        in_left = np.zeros(n, dtype=bool)
        in_left[order[:split]] = True
        remap = -np.ones(n, dtype=np.int64)
        remap[order[:split]] = np.arange(split)
        left_edges = sub_edges[in_left[sub_edges[:, 0]] & in_left[sub_edges[:, 1]]]
        left_edges = remap[left_edges]
        remap_r = -np.ones(n, dtype=np.int64)
        remap_r[order[split:]] = np.arange(n - split)
        right_mask = ~in_left[sub_edges[:, 0]] & ~in_left[sub_edges[:, 1]]
        right_edges = remap_r[sub_edges[right_mask]]
        bisect(ids[order[:split]], left_edges, first, k1)
        bisect(ids[order[split:]], right_edges, first + k1, k - k1)

    bisect(np.arange(n_vertices, dtype=np.int64), np.asarray(edges), 0, n_parts)
    return labels
