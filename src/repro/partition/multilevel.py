"""Multilevel graph partitioning — the repo's METIS substitute.

The paper partitions the per-node subdomain among threads with METIS to get
balanced work and a small edge cut (4% redundant compute at 20 threads vs.
41% for natural-order splitting).  METIS is not importable here, so this
module implements the same recipe from scratch:

* coarsening by randomized heavy-edge matching,
* a greedy BFS-grown bisection of the coarsest graph,
* Fiduccia-Mattheyses-style boundary refinement at every uncoarsening level,
* k-way partitioning by recursive bisection with proportional weight targets.

Quality is within a small factor of METIS on our meshes (validated by the
partition-metric tests), which is what the reproduction needs: the *gap*
between partition-quality-aware threading and natural-order threading.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph, contract, heavy_edge_matching

__all__ = ["partition_graph", "multilevel_bisect"]

_COARSEST = 160  # stop coarsening below this many vertices
_MAX_LEVELS = 40
_FM_PASSES = 6


def partition_graph(
    edges: np.ndarray,
    n_vertices: int,
    n_parts: int,
    vwgt: np.ndarray | None = None,
    ewgt: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Partition the graph of ``edges`` into ``n_parts`` balanced parts.

    Returns ``labels`` with ``labels[v]`` in ``[0, n_parts)``.  Balance is
    measured in ``vwgt`` (default: unit weights); the objective is the
    weighted edge cut.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    labels = np.zeros(n_vertices, dtype=np.int64)
    if n_parts == 1 or n_vertices == 0:
        return labels
    graph = Graph.from_edges(edges, n_vertices, vwgt=vwgt, ewgt=ewgt)
    rng = np.random.default_rng(seed)
    _recurse(graph, np.arange(n_vertices, dtype=np.int64), labels, 0, n_parts, rng)
    return labels


def _recurse(
    graph: Graph,
    vertex_ids: np.ndarray,
    labels: np.ndarray,
    first_part: int,
    n_parts: int,
    rng: np.random.Generator,
) -> None:
    if n_parts == 1:
        labels[vertex_ids] = first_part
        return
    k1 = n_parts // 2
    frac = k1 / n_parts
    side = multilevel_bisect(graph, frac, rng)
    for s, (p0, kp) in enumerate(((first_part, k1), (first_part + k1, n_parts - k1))):
        mask = side == s
        sub_ids = np.where(mask)[0]
        if sub_ids.size == 0:
            continue
        sub = _subgraph(graph, mask)
        _recurse(sub, vertex_ids[sub_ids], labels, p0, kp, rng)


def _subgraph(graph: Graph, mask: np.ndarray) -> Graph:
    """Induced subgraph on ``mask``; edges leaving the set are dropped."""
    idx = np.where(mask)[0]
    remap = -np.ones(graph.n_vertices, dtype=np.int64)
    remap[idx] = np.arange(idx.shape[0])
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degree())
    keep = mask[src] & mask[graph.cols]
    su, sv, w = remap[src[keep]], remap[graph.cols[keep]], graph.ewgt[keep]
    rowptr = np.zeros(idx.shape[0] + 1, dtype=np.int64)
    np.add.at(rowptr, su + 1, 1)
    np.cumsum(rowptr, out=rowptr)
    order = np.argsort(su, kind="stable")
    return Graph(rowptr=rowptr, cols=sv[order], vwgt=graph.vwgt[idx], ewgt=w[order])


def multilevel_bisect(
    graph: Graph, frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Bisect ``graph`` into sides 0/1 with side 0 holding ``frac`` of weight.

    Full multilevel cycle: coarsen, BFS-grow an initial bisection, then
    refine while projecting back up.
    """
    # ---- coarsening phase
    levels: list[tuple[Graph, np.ndarray]] = []
    g = graph
    for _ in range(_MAX_LEVELS):
        if g.n_vertices <= _COARSEST:
            break
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        if coarse.n_vertices > 0.95 * g.n_vertices:
            break  # matching stalled (e.g. star graphs); stop coarsening
        levels.append((g, cmap))
        g = coarse

    # ---- initial bisection on the coarsest graph
    side = _grow_bisection(g, frac, rng)
    side = _fm_refine(g, side, frac)

    # ---- uncoarsening with refinement
    for fine, cmap in reversed(levels):
        side = side[cmap]
        side = _fm_refine(fine, side, frac)
    return side


def _grow_bisection(graph: Graph, frac: float, rng: np.random.Generator) -> np.ndarray:
    """Greedy BFS region growing from a random seed until side 0 holds
    ``frac`` of the total vertex weight."""
    n = graph.n_vertices
    target = frac * graph.total_vwgt()
    best_side: np.ndarray | None = None
    best_cut = np.inf
    for _ in range(4):  # a few seeds, keep the best cut
        seed_v = int(rng.integers(n))
        side = np.ones(n, dtype=np.int64)
        in0 = np.zeros(n, dtype=bool)
        acc = 0.0
        frontier = [seed_v]
        ptr = 0
        while acc < target and ptr < len(frontier):
            v = frontier[ptr]
            ptr += 1
            if in0[v]:
                continue
            in0[v] = True
            acc += graph.vwgt[v]
            nbrs = graph.cols[graph.rowptr[v] : graph.rowptr[v + 1]]
            frontier.extend(int(u) for u in nbrs[~in0[nbrs]])
        if acc < target:  # disconnected: absorb arbitrary leftovers
            rest = np.where(~in0)[0]
            for v in rest:
                if acc >= target:
                    break
                in0[v] = True
                acc += graph.vwgt[v]
        side[in0] = 0
        cut = _cut_weight(graph, side)
        if cut < best_cut:
            best_cut, best_side = cut, side
    assert best_side is not None
    return best_side


def _cut_weight(graph: Graph, side: np.ndarray) -> float:
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degree())
    return float(graph.ewgt[side[src] != side[graph.cols]].sum()) / 2.0


def _fm_refine(graph: Graph, side: np.ndarray, frac: float) -> np.ndarray:
    """Greedy FM-style boundary refinement under a hard balance constraint.

    Repeatedly moves the highest-gain vertex to the other side; a move is
    admissible only if it keeps side 0's weight within an absolute tolerance
    of the target (or strictly improves balance).  A final rebalance pass
    moves cheapest boundary vertices off the heavy side if the incoming
    partition was out of tolerance.
    """
    n = graph.n_vertices
    total = graph.total_vwgt()
    target0 = frac * total
    # tolerance: 1.5% of total or the largest vertex, whichever is bigger
    tol = max(0.015 * total, float(graph.vwgt.max()))
    side = side.copy()
    rowptr, cols, ewgt, vwgt = graph.rowptr, graph.cols, graph.ewgt, graph.vwgt

    w0 = float(vwgt[side == 0].sum())
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degree())

    def compute_gain() -> np.ndarray:
        same = side[src] == side[cols]
        ext = np.zeros(n)
        np.add.at(ext, src[~same], ewgt[~same])
        intw = np.zeros(n)
        np.add.at(intw, src[same], ewgt[same])
        return ext - intw

    def apply_move(v: int, gain: np.ndarray) -> None:
        nonlocal w0
        sv = side[v]
        side[v] = 1 - sv
        w0 += -float(vwgt[v]) if sv == 0 else float(vwgt[v])
        gain[v] = -gain[v]
        lo, hi = rowptr[v], rowptr[v + 1]
        for u, w in zip(cols[lo:hi], ewgt[lo:hi]):
            if side[u] == sv:
                gain[u] += 2 * w
            else:
                gain[u] -= 2 * w

    for _ in range(_FM_PASSES):
        gain = compute_gain()
        cand = np.where(gain > 0)[0]
        if cand.size == 0:
            break
        order = cand[np.argsort(-gain[cand], kind="stable")]
        moved = 0
        for v in order:
            if gain[v] <= 0:
                continue
            dv = float(vwgt[v])
            new_w0 = w0 - dv if side[v] == 0 else w0 + dv
            improves = abs(new_w0 - target0) < abs(w0 - target0)
            if abs(new_w0 - target0) > tol and not improves:
                continue
            apply_move(int(v), gain)
            moved += 1
        if moved == 0:
            break

    # Rebalance: if still out of tolerance, move lowest-cost vertices from
    # the heavy side (cost = -gain = cut increase), until within tolerance.
    if abs(w0 - target0) > tol:
        gain = compute_gain()
        heavy = 0 if w0 > target0 else 1
        order = np.argsort(-gain, kind="stable")
        for v in order:
            if abs(w0 - target0) <= tol:
                break
            if side[v] != heavy:
                continue
            dv = float(vwgt[v])
            new_w0 = w0 - dv if heavy == 0 else w0 + dv
            if abs(new_w0 - target0) >= abs(w0 - target0):
                continue
            apply_move(int(v), gain)
    return side
