"""Cold-vs-warm serve throughput benchmark (``BENCH_serve_throughput.json``).

Measures the daemon's reason to exist: the setup-vs-solve cost split.  The
*cold* baseline prices the real one-shot path per case — a fresh
``repro solve`` CLI process paying interpreter start, imports, mesh build,
gather–scatter plan compile, Jacobian pattern and Schwarz/ILU symbolics
every time (``cold_mode="cli"``; ``"inproc"`` restricts the baseline to a
fresh in-process family per case, for subprocess-free test runs).  The
*warm batched* rows price the same cases through one resident
:class:`~repro.serve.cache.WarmFamily` via
:func:`~repro.serve.batcher.solve_cases`, where the per-case cost is state
arrays and Newton steps only.  The ratio is the amortization factor the CI
gate enforces (warm batched cases/sec must stay >= ``min_amortization``x
cold).

Document shape follows the flux/TRSV/scatter benches (``serial`` reference
wall + ``results`` strategy rows + explicit ``kind``) so the shared JSONL
history and rolling-median tooling in :mod:`repro.smp.bench` apply as-is.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from .batcher import solve_cases
from .cache import ExecutionConfig, WarmFamily
from .protocol import CaseSpec, FamilySpec

__all__ = [
    "SERVE_SCHEMA",
    "run_serve_throughput",
    "serve_gate_failures",
    "rolling_serve_gate_failures",
]

SERVE_SCHEMA = "repro.bench.serve_throughput/v1"


def _case_grid(n: int, max_steps: int, rtol: float) -> list[CaseSpec]:
    """n cases sweeping angle of attack over [0, 4] degrees."""
    aoas = [4.0 * i / max(1, n - 1) for i in range(n)]
    return [
        CaseSpec(aoa=a, max_steps=max_steps, rtol=rtol, tag=f"aoa={a:g}")
        for a in aoas
    ]


def _cold_cli_case(spec: FamilySpec, case: CaseSpec) -> tuple[float, tuple]:
    """One cold ``repro solve`` subprocess: (wall seconds, (cl, cd)).

    Bootstraps ``sys.path`` explicitly so the child resolves the same
    ``repro`` package as the parent regardless of install mode.
    """
    pkg_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))
    code = (
        f"import sys; sys.path.insert(0, {pkg_root!r}); "
        "from repro.cli import main; sys.exit(main(sys.argv[1:]))"
    )
    argv = [
        sys.executable, "-c", code, "solve",
        "--dataset", spec.dataset, "--scale", str(spec.scale),
        "--seed", str(spec.seed), "--ordering", spec.ordering,
        "--ilu", str(spec.ilu), "--subdomains", str(spec.subdomains),
        "--dissipation", case.dissipation, "--aoa", str(case.aoa),
        "--max-steps", str(case.max_steps), "--rtol", str(case.rtol),
        "--json",
    ]
    t0 = time.perf_counter()
    proc = subprocess.run(argv, capture_output=True, text=True)
    wall = time.perf_counter() - t0
    if proc.returncode not in (0, 1):  # 1 = unconverged, still a result
        raise RuntimeError(
            f"cold repro solve failed ({proc.returncode}): "
            f"{proc.stderr.strip()[-500:]}"
        )
    result = None
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("{"):
            result = json.loads(line)
    if result is None:
        raise RuntimeError("cold repro solve emitted no --json result line")
    return wall, (result["forces"]["cl"], result["forces"]["cd"])


def run_serve_throughput(
    dataset: str = "wing",
    scale: float = 0.03,
    seed: int = 7,
    ilu: int = 0,
    batch_sizes: tuple[int, ...] = (2, 4),
    max_steps: int = 3,
    rtol: float = 1e-3,
    execution: ExecutionConfig | None = None,
    cold_mode: str = "cli",
) -> dict:
    """Cold per-case vs warm batched throughput document (see module doc).

    Cold: every case pays the full one-shot path — a ``repro solve``
    subprocess (``cold_mode="cli"``) or a fresh in-process family
    (``"inproc"``) — and tears it down.  Warm: one family is built once,
    then each batch size in ``batch_sizes`` runs through it; forces must
    match the cold run bitwise (``max_abs_dev``) — batching is
    amortization, never approximation.
    """
    if cold_mode not in ("cli", "inproc"):
        raise ValueError(f"unknown cold_mode {cold_mode!r}")
    execution = execution or ExecutionConfig()
    spec = FamilySpec(
        dataset=dataset, scale=scale, seed=seed, ilu=ilu
    )
    n_cases = max(batch_sizes)
    cases = _case_grid(n_cases, max_steps, rtol)

    # ---- cold reference: full one-shot path per case --------------------
    cold_walls: list[float] = []
    cold_forces: dict[str, tuple[float, float]] = {}
    for case in cases:
        if cold_mode == "cli":
            wall, forces = _cold_cli_case(spec, case)
        else:
            t0 = time.perf_counter()
            family = WarmFamily(spec, execution)
            try:
                result = solve_cases(family, [case])[0]
            finally:
                family.close()
            wall = time.perf_counter() - t0
            forces = (result.cl, result.cd)
        cold_walls.append(wall)
        cold_forces[case.tag] = forces
    cold_per_case = sum(cold_walls) / len(cold_walls)

    # ---- warm batched: one family, k cases ------------------------------
    family = WarmFamily(spec, execution)
    rows: list[dict] = []
    try:
        for batch in sorted(batch_sizes):
            sub = cases[:batch]
            t0 = time.perf_counter()
            results = solve_cases(family, sub)
            wall = time.perf_counter() - t0
            per_case = wall / batch
            dev = max(
                max(
                    abs(r.cl - cold_forces[c.tag][0]),
                    abs(r.cd - cold_forces[c.tag][1]),
                )
                for r, c in zip(results, sub)
            )
            rows.append({
                "strategy": "warm-batched",
                "workers": batch,  # batch size, in the shared history shape
                "wall_seconds": per_case,
                "batch_wall_seconds": wall,
                "cases_per_second": batch / wall if wall > 0 else 0.0,
                "amortization_x": cold_per_case / per_case
                if per_case > 0 else 0.0,
                "max_abs_dev": dev,
            })
    finally:
        family.close()

    return {
        "schema": SERVE_SCHEMA,
        "kind": "serve",
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "fill_level": ilu,
        "cold_mode": cold_mode,
        "n_cases": n_cases,
        "max_steps": max_steps,
        "rtol": rtol,
        "family_build_seconds": family.build_seconds,
        "serial": {
            # cold one-shot per-case wall: the reference every gate and the
            # shared history format compare against
            "wall_seconds": cold_per_case,
            "cases_per_second": 1.0 / cold_per_case
            if cold_per_case > 0 else 0.0,
            "walls": cold_walls,
        },
        "results": rows,
    }


def _gate_row(doc: dict, strategy: str) -> dict | None:
    rows = [r for r in doc["results"] if r["strategy"] == strategy]
    return max(rows, key=lambda r: r["workers"]) if rows else None


def serve_gate_failures(
    doc: dict,
    tol: float = 1e-12,
    min_amortization: float = 3.0,
    gate_strategy: str = "warm-batched",
) -> list[str]:
    """CI gate for the serve throughput bench.  Returns failure messages.

    (1) Every warm batched case reproduced the cold one-shot forces within
    ``tol`` (the amortization-never-approximation contract); (2) the warm
    batched throughput at the largest batch is at least ``min_amortization``
    times the cold per-case throughput — the warm cache must actually pay.
    """
    failures = [
        f"{r['strategy']} @ batch {r['workers']} deviates from the cold "
        f"one-shot forces by {r['max_abs_dev']:.3e} (tolerance {tol:.0e})"
        for r in doc["results"]
        if not (r["max_abs_dev"] <= tol)
    ]
    row = _gate_row(doc, gate_strategy)
    if row is None:
        failures.append(f"gate strategy {gate_strategy!r} was not measured")
        return failures
    amort = (
        doc["serial"]["wall_seconds"] / row["wall_seconds"]
        if row["wall_seconds"] > 0 else 0.0
    )
    if amort < min_amortization:
        failures.append(
            f"warm batched throughput is only {amort:.2f}x cold per-case "
            f"(gate {min_amortization:.2f}x): warm "
            f"{1e3 * row['wall_seconds']:.1f} ms/case vs cold "
            f"{1e3 * doc['serial']['wall_seconds']:.1f} ms/case"
        )
    return failures


def rolling_serve_gate_failures(
    doc: dict,
    history: list[dict],
    window: int = 5,
    min_amortization: float = 3.0,
    max_regression: float = 1.25,
    tol: float = 1e-12,
    gate_strategy: str = "warm-batched",
) -> list[str]:
    """Trend-aware serve gate.

    The fixed amortization floor of :func:`serve_gate_failures` always
    applies; on top, when comparable history exists (same
    kind/dataset/scale/seed/fill via the shared JSONL format), the warm
    per-case wall at the largest batch must not exceed ``max_regression``
    times the rolling median of the last ``window`` runs.
    """
    from ..smp.bench import _history_key
    import numpy as np

    failures = serve_gate_failures(
        doc, tol=tol, min_amortization=min_amortization,
        gate_strategy=gate_strategy,
    )
    row = _gate_row(doc, gate_strategy)
    if row is None:
        return failures
    cell = f"{row['strategy']}@{row['workers']}"
    prior = [h for h in history if _history_key(h) == _history_key(doc)]
    walls = [
        h["walls"][cell] for h in prior[-window:] if cell in h.get("walls", {})
    ]
    if walls:
        median = float(np.median(walls))
        if row["wall_seconds"] > max_regression * median:
            failures.append(
                f"{cell} wall {1e3 * row['wall_seconds']:.2f} ms/case "
                f"exceeds {max_regression:.2f}x the rolling median of the "
                f"last {len(walls)} run(s) ({1e3 * median:.2f} ms/case)"
            )
    return failures
