"""``repro serve``: a warm-fleet solver daemon over a local Unix socket.

The expensive half of every solve — mesh build, gather–scatter plans,
Jacobian pattern, Schwarz/ILU symbolics, forked worker fleets, multilevel
partitions — depends only on the mesh *family*, not on the case being
solved.  This package keeps those artifacts resident in one long-lived
process and multiplexes solve requests onto them:

* :mod:`.protocol` — length-prefixed JSON framing, family/case specs,
  HTTP-like error envelopes;
* :mod:`.queue` — bounded admission-controlled job queue (503 on depth,
  408 on expired deadlines);
* :mod:`.cache` — LRU :class:`WarmCache` of :class:`WarmFamily` bundles;
* :mod:`.batcher` — k-case sweeps through one warm family, bitwise equal
  to k independent solves;
* :mod:`.daemon` — the :class:`ServeDaemon` socket server;
* :mod:`.client` — :class:`ServeClient` used by ``repro submit``;
* :mod:`.bench` — cold-vs-warm throughput benchmark feeding the CI gate.
"""

from .batcher import (
    CaseResult,
    EvaluationResult,
    evaluate_cases,
    solve_cases,
    sweep_grid,
)
from .cache import ExecutionConfig, WarmCache, WarmFamily
from .client import ServeClient, ServeError, wait_for_socket
from .daemon import SERVE_SLOTS, ServeDaemon
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CaseSpec,
    FamilySpec,
    ProtocolError,
    error_response,
    ok_response,
    parse_cases,
    read_frame,
    write_frame,
)
from .queue import AdmissionQueue, Job, QueueClosed, QueueFull

__all__ = [
    "AdmissionQueue",
    "CaseResult",
    "CaseSpec",
    "EvaluationResult",
    "ExecutionConfig",
    "FamilySpec",
    "Job",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueClosed",
    "QueueFull",
    "SERVE_SLOTS",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "WarmCache",
    "WarmFamily",
    "error_response",
    "evaluate_cases",
    "ok_response",
    "parse_cases",
    "read_frame",
    "solve_cases",
    "sweep_grid",
    "wait_for_socket",
    "write_frame",
]
