"""``repro serve``: the warm-fleet solver daemon.

One process owns every warm artifact (see :mod:`repro.serve.cache`) and
serves solve requests over a local Unix-domain socket using the framing in
:mod:`repro.serve.protocol`.  Architecture::

    accept thread ──> connection threads ──> AdmissionQueue ──> solver
         │                  │    (submit; 503 when over depth)   threads
      listener          read/write frames                           │
                                                             WarmCache
                                                      (families, fleets)

Connection threads never solve: they parse, admit, block on the job's
completion event and write the response (so a slow or disconnecting client
cannot stall the solver).  Solver threads own the warm cache; one family
solves one job at a time (fleets are single-caller), while distinct
families can solve concurrently when ``solver_threads > 1``.

Observability: the daemon publishes a ``serve`` telemetry row (queue depth,
in-flight, cache hits/misses, batch cases, busy seconds) into the live
plane, runs the standard aggregator so ``--metrics-serve`` exposes
``live_serve_*`` gauges to ``repro top``, traces each request as a
``serve.request`` span, and installs the flight recorder — a crash dumps
the last seconds of queue telemetry like any other fleet death.

Shutdown: SIGTERM/SIGINT stop admission, answer every queued-but-unstarted
job with a 503, let in-flight solves finish, close every fleet and shared
segment, unlink the socket and exit 0 — leak-free teardown is asserted by
the ``serve-smoke`` CI job.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

from .batcher import evaluate_cases, solve_cases
from .cache import ExecutionConfig, WarmCache
from .protocol import (
    PROTOCOL_VERSION,
    FamilySpec,
    ProtocolError,
    error_response,
    ok_response,
    parse_cases,
    read_frame,
    write_frame,
)
from .queue import AdmissionQueue, Job, QueueClosed, QueueFull

__all__ = ["SERVE_SLOTS", "ServeDaemon"]

#: Telemetry slots of the daemon's ``serve`` plane row.
SERVE_SLOTS = (
    "queue_depth", "in_flight", "requests", "completed", "rejected",
    "errors", "cache_hits", "cache_misses", "batch_cases", "busy_seconds",
)


class ServeDaemon:
    """Persistent solver daemon on a Unix socket (see module docstring)."""

    def __init__(
        self,
        socket_path: str,
        execution: ExecutionConfig | None = None,
        max_families: int = 4,
        max_queue: int = 8,
        default_deadline_s: float | None = None,
        solver_threads: int = 1,
        telemetry: bool = True,
        metrics_port: int | None = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.cache = WarmCache(execution, max_families=max_families)
        self.queue = AdmissionQueue(max_depth=max_queue)
        self.default_deadline_s = default_deadline_s
        self.solver_threads = max(1, int(solver_threads))
        self.metrics_port = metrics_port
        self.started_at = time.monotonic()
        self.in_flight = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self._stats_lock = threading.Lock()
        self._stop = threading.Event()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._shut_down = False

        from ..obs import MetricsRegistry, Tracer

        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self._plane = None
        self._writer = None
        self._writer_lock = threading.Lock()
        self._agg = None
        self._server = None
        if telemetry:
            from ..obs.live import TelemetryAggregator, TelemetryPlane

            self._plane = TelemetryPlane({"serve": SERVE_SLOTS}, shared=False)
            self._writer = self._plane.writer("serve")
            self._writer.hello()
            self._agg = TelemetryAggregator(self.metrics)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _telem(self, adds: dict | None = None, **sets: float) -> None:
        if self._writer is None:
            return
        with self._writer_lock:
            if adds:
                self._writer.add(**adds)
            if sets:
                self._writer.update(**sets)

    def _gauge_sync(self) -> None:
        self._telem(
            queue_depth=float(self.queue.depth),
            in_flight=float(self.in_flight),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind, listen, and start accept + solver threads."""
        path = self.socket_path
        if os.path.exists(path):
            # a previous daemon may have died without unlinking; only a
            # *live* listener makes the path contested
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(path)
                probe.close()
                raise RuntimeError(
                    f"another daemon is already listening on {path}"
                )
            except (ConnectionRefusedError, socket.timeout, FileNotFoundError,
                    OSError):
                probe.close()
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(16)
        self._listener.settimeout(0.5)
        if self._agg is not None:
            self._agg.start()
        if self.metrics_port is not None:
            from ..obs.live import MetricsServer, prometheus_text

            self._server = MetricsServer(
                lambda: prometheus_text(self.metrics), port=self.metrics_port
            )
            self._server.start()
        for i in range(self.solver_threads):
            t = threading.Thread(
                target=self._solver_loop, name=f"serve-solver-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        t = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        t.start()
        self._threads.append(t)

    def run(self) -> int:
        """Start, serve until signalled, tear down; returns the exit code.

        SIGTERM and SIGINT both request a graceful stop; the flight
        recorder is installed so a crash still dumps telemetry.
        """
        from ..obs.live import install_flight_recorder
        from ..obs.live.recorder import install_signal_dump

        install_flight_recorder()
        try:
            install_signal_dump()
            signal.signal(signal.SIGTERM, lambda *_: self.request_stop())
            signal.signal(signal.SIGINT, lambda *_: self.request_stop())
        except (ValueError, OSError, AttributeError):
            pass  # non-main thread or exotic platform
        self.start()
        if self._server is not None:
            print(f"serve: live metrics at {self._server.url}", flush=True)
        print(
            f"serve: listening on {self.socket_path} "
            f"(pid {os.getpid()}, queue depth {self.queue.max_depth}, "
            f"max families {self.cache.max_families})",
            flush=True,
        )
        self._stop.wait()
        self.shutdown()
        print("serve: clean shutdown", flush=True)
        return 0

    def request_stop(self) -> None:
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def shutdown(self) -> None:
        """Graceful teardown (idempotent): see module docstring."""
        if self._shut_down:
            return
        self._shut_down = True
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # refuse new admissions; answer never-started jobs with 503
        for job in self.queue.close():
            job.finish(error_response(
                503, "daemon shutting down", id=job.id
            ))
        for t in self._threads:
            t.join(timeout=120.0)
        with self._conns_lock:
            conns = list(self._conns)
        for c in conns:
            try:
                c.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                c.close()
            except OSError:
                pass
        self.cache.close()
        if self._server is not None:
            self._server.stop()
        if self._agg is not None:
            self._agg.stop()
        if self._plane is not None:
            self._plane.close()
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        except OSError:
            pass

    # ------------------------------------------------------------------
    # accept / connection side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conns_lock:
                self._conns.add(conn)
            t = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="serve-conn", daemon=True,
            )
            t.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    req = read_frame(conn)
                except ProtocolError as exc:
                    # framing is unreliable after a malformed frame: answer
                    # 400 and close rather than resynchronize heuristically
                    self._count_error()
                    try:
                        write_frame(conn, error_response(400, str(exc)))
                    except OSError:
                        pass
                    return
                except OSError:
                    return
                if req is None:  # clean EOF
                    return
                resp = self._handle_request(req)
                if resp is None:
                    return  # shutdown op: no further frames
                try:
                    write_frame(conn, resp)
                except OSError:
                    # client went away while we solved; the work is done,
                    # the result is simply undeliverable
                    self._count_error()
                    return
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _count_error(self) -> None:
        with self._stats_lock:
            self.errors += 1
        self._telem(adds={"errors": 1.0})

    def _handle_request(self, req: dict) -> dict | None:
        op = req.get("op")
        self._telem(adds={"requests": 1.0})
        if op == "ping":
            return ok_response(
                "ping", pid=os.getpid(), version=PROTOCOL_VERSION
            )
        if op == "stats":
            return ok_response("stats", stats=self.stats())
        if op == "shutdown":
            self.request_stop()
            try:
                return ok_response("shutdown")
            finally:
                pass
        if op in ("solve", "batch", "evaluate"):
            return self._enqueue_and_wait(op, req)
        self._count_error()
        return error_response(404, f"unknown op {op!r}")

    def _enqueue_and_wait(self, op: str, req: dict) -> dict:
        try:
            family = FamilySpec.from_dict(req.get("family"))
            cases = parse_cases(req)
            if op == "solve" and len(cases) != 1:
                raise ProtocolError("'solve' takes exactly one case")
            if op == "evaluate" and family.dist_ranks > 0:
                raise ProtocolError(
                    "'evaluate' is not supported for distributed families"
                )
        except ProtocolError as exc:
            self._count_error()
            return error_response(400, str(exc))
        deadline_s = req.get("deadline_s", self.default_deadline_s)
        deadline = (
            time.monotonic() + float(deadline_s)
            if deadline_s is not None else None
        )
        job = Job(op=op, family=family, cases=cases, deadline=deadline)
        try:
            self.queue.submit(job)
        except (QueueFull, QueueClosed) as exc:
            with self._stats_lock:
                self.rejected += 1
            self._telem(adds={"rejected": 1.0})
            return error_response(
                503, str(exc), id=job.id, queue_depth=self.queue.depth,
            )
        self._gauge_sync()
        job.done.wait()
        return job.response

    # ------------------------------------------------------------------
    # solver side
    # ------------------------------------------------------------------
    def _solver_loop(self) -> None:
        while True:
            job = self.queue.get(timeout=0.5)
            if job is None:
                if self._stop.is_set() and self.queue.closed:
                    return
                continue
            with self._stats_lock:
                self.in_flight += 1
            self._gauge_sync()
            try:
                job.finish(self._run_job(job))
            except Exception as exc:  # never kill the solver thread
                self._count_error()
                job.finish(error_response(
                    500, f"{type(exc).__name__}: {exc}", id=job.id
                ))
            finally:
                with self._stats_lock:
                    self.in_flight -= 1
                self._gauge_sync()

    def _run_job(self, job: Job) -> dict:
        if job.expired():
            with self._stats_lock:
                self.rejected += 1
            self._telem(adds={"rejected": 1.0})
            return error_response(
                408,
                f"deadline expired after {job.queue_seconds:.2f}s in queue",
                id=job.id,
            )
        t0 = time.perf_counter()
        family, hit = self.cache.get(job.family)
        setup_seconds = 0.0 if hit else family.build_seconds
        self._telem(adds={
            ("cache_hits" if hit else "cache_misses"): 1.0,
            "batch_cases": float(len(job.cases)),
        })
        from ..obs.span import use_tracer

        with use_tracer(self.tracer):
            with self.tracer.span(
                "serve.request",
                id=job.id,
                op=job.op,
                cases=len(job.cases),
                cache="hit" if hit else "miss",
                dataset=job.family.dataset,
            ):
                with family.lock:
                    if job.op == "evaluate":
                        results = evaluate_cases(family, job.cases)
                    else:
                        results = solve_cases(family, job.cases)
        wall = time.perf_counter() - t0
        self._telem(adds={"completed": 1.0, "busy_seconds": wall})
        with self._stats_lock:
            self.completed += 1
        payload = {
            "id": job.id,
            "cache": "hit" if hit else "miss",
            "family": job.family.to_dict(),
            "span": {
                "queue_seconds": job.queue_seconds,
                "setup_seconds": setup_seconds,
                "solve_seconds": wall - (0.0 if hit else setup_seconds),
                "total_seconds": job.queue_seconds + wall,
            },
        }
        if job.op == "solve":
            payload["result"] = results[0].to_dict()
        else:
            payload["results"] = [r.to_dict() for r in results]
        return ok_response(job.op, **payload)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._stats_lock:
            stats = {
                "pid": os.getpid(),
                "version": PROTOCOL_VERSION,
                "uptime_seconds": time.monotonic() - self.started_at,
                "in_flight": self.in_flight,
                "completed": self.completed,
                "rejected": self.rejected,
                "errors": self.errors,
            }
        stats["queue"] = {
            "depth": self.queue.depth,
            "max_depth": self.queue.max_depth,
            "submitted": self.queue.submitted,
            "rejected_full": self.queue.rejected_full,
        }
        stats["cache"] = self.cache.stats()
        return stats
