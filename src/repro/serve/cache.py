"""Warm per-family cache: the daemon's reason to exist.

Every expensive artifact the stack builds is keyed by mesh *structure*, not
by case state: the mesh itself, the :class:`FlowField`'s precompiled
gather–scatter plans, the BCSR Jacobian pattern, the Schwarz split with its
ILU symbolic plans, forked edge/sparse worker fleets, and (for distributed
families) the multilevel partition + domain decomposition.  A
:class:`WarmFamily` bundles all of that behind one
:class:`~repro.solver.newton.SteadySolverSession`; the :class:`WarmCache`
keeps the most recently used families resident with LRU eviction (evicted
families close their fleets and shared segments).

Per-request cost after the first build is state arrays only — the paper's
conclusion that the shared-memory win comes from keeping structures
resident across solves rather than paying setup per run, applied to the
service tier.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from .protocol import FamilySpec

__all__ = ["ExecutionConfig", "WarmFamily", "WarmCache"]


@dataclass(frozen=True)
class ExecutionConfig:
    """How the daemon executes solves (daemon-wide, not per-request).

    Requests describe *what* to solve (family + cases); the operator who
    started the daemon decides *how* — which backends, how many workers.
    """

    edge_backend: str = "serial"  # serial | process
    workers: int = 2
    edge_strategy: str = "owner"
    partitioner: str = "metis"
    sparse_backend: str = "serial"  # serial | process
    sparse_strategy: str = "p2p"
    sparse_workers: int = 2
    #: "on" routes residual evaluation through the fused kernel-graph
    #: programs (repro.kgir) — bitwise-identical, fewer edge passes, and
    #: batched multi-case evaluation for the "evaluate" op
    fuse: str = "off"  # off | on
    #: "on" re-plans the knobs above per family through the calibrated
    #: auto-tuner (repro.tune); the operator's static choices stay the
    #: tuner's default candidate, so tuning never picks a predicted-slower
    #: configuration than the one the daemon was started with
    tune: str = "off"  # off | on
    #: calibration file for the tuner ("" = default path, falling back to
    #: the analytic paper model when absent or from another host)
    calibration: str = ""


class WarmFamily:
    """All warm state of one mesh family (see module docstring)."""

    def __init__(self, spec: FamilySpec, execution: ExecutionConfig) -> None:
        from ..cfd import FlowField
        from ..mesh import dataset_mesh
        from ..solver import SolverOptions, SteadySolverSession

        t0 = time.perf_counter()
        self.spec = spec
        self.mesh = dataset_mesh(
            spec.dataset, scale=spec.scale, seed=spec.seed,
            ordering=spec.ordering,
        )
        self.field = FlowField(self.mesh)
        self.tuned = None
        self.tuned_batch_width = 0
        if execution.tune == "on" and spec.dist_ranks == 0:
            execution = self._tuned_execution(execution)
        self.execution = execution
        self.opts = SolverOptions(
            ilu_fill=spec.ilu,
            n_subdomains=spec.subdomains,
            sparse_backend=execution.sparse_backend,
            sparse_strategy=execution.sparse_strategy,
            sparse_workers=execution.sparse_workers,
        )
        self.session = SteadySolverSession(self.field, self.opts)
        self.edge_backend = None
        if execution.edge_backend == "process" and spec.dist_ranks == 0:
            from ..smp import ProcessEdgeBackend

            self.edge_backend = ProcessEdgeBackend(
                self.field,
                n_workers=execution.workers,
                strategy=execution.edge_strategy,
                partitioner=execution.partitioner,
                seed=spec.seed,
            )
        if execution.fuse == "on" and spec.dist_ranks == 0:
            from ..kgir import FusedEdgeBackend

            # wraps the process fleet when one exists; the fused program
            # (and its segment plans) is compiled once and cached on the
            # warm field like every other plan
            self.edge_backend = FusedEdgeBackend(
                self.field, inner=self.edge_backend
            )
        self.decomp = None
        if spec.dist_ranks > 0:
            from ..dist.halo import DomainDecomposition
            from ..partition.multilevel import partition_graph
            import numpy as np

            nv = self.mesh.n_vertices
            labels = (
                partition_graph(
                    self.mesh.edges, nv, spec.dist_ranks, seed=spec.seed
                )
                if spec.dist_ranks > 1
                else np.zeros(nv, dtype=np.int64)
            )
            self.decomp = DomainDecomposition(self.mesh.edges, labels)
        self.build_seconds = time.perf_counter() - t0
        self.solves = 0
        self.last_used = time.monotonic()
        self._lock = threading.Lock()  # one solve at a time per family
        self._closed = False

    # ------------------------------------------------------------------
    def _tuned_execution(self, execution: ExecutionConfig) -> ExecutionConfig:
        """Re-plan the execution knobs for *this* mesh with the auto-tuner.

        The mesh ordering stays pinned by the family spec (batched solves
        must match one-shot runs bitwise), so only backend/fleet/fusion
        knobs move; ``tuned_batch_width`` tells the batcher how many
        evaluate-cases amortize one dispatch on this host.
        """
        from dataclasses import replace

        from ..smp.bench import load_history
        from ..tune import active_model, tune_solve

        machine, cal = active_model(execution.calibration or None)
        cfg = tune_solve(
            self.mesh, machine, cal,
            load_history(".bench_history.jsonl"),
            dataset=self.spec.dataset, scale=self.spec.scale,
            seed=self.spec.seed, ilu_fill=self.spec.ilu,
            ordering=self.spec.ordering, field=self.field,
            allow_dist=False, serve_cases=8,
        )
        self.tuned = cfg
        self.tuned_batch_width = int(cfg.batch_width)
        return replace(
            execution,
            edge_backend=cfg.edge_backend,
            workers=max(cfg.workers, 1),
            edge_strategy=cfg.edge_strategy,
            partitioner=cfg.partitioner,
            sparse_backend=cfg.sparse_backend,
            sparse_strategy=cfg.sparse_strategy,
            sparse_workers=cfg.sparse_workers or max(cfg.workers, 1),
            fuse=cfg.fuse,
        )

    # ------------------------------------------------------------------
    @property
    def lock(self) -> threading.Lock:
        return self._lock

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def fleet_stats(self) -> dict:
        """Dispatch counters of this family's forked fleets (if any).

        Counters grow monotonically across solves on one fleet, so the
        daemon's ``stats`` op proves fleets are reused, not reforked.
        """
        out: dict = {}
        if self.edge_backend is not None:
            out["edge"] = self.edge_backend.fleet_stats()
        sparse = getattr(self.session, "_backend", None)
        if sparse is not None:
            out["sparse"] = sparse.fleet_stats()
        return out

    def close(self) -> None:
        """Tear down fleets and shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.edge_backend is not None:
            self.edge_backend.close()
        self.session.close()


class WarmCache:
    """LRU cache of :class:`WarmFamily` keyed by :attr:`FamilySpec.key`."""

    def __init__(
        self,
        execution: ExecutionConfig | None = None,
        max_families: int = 4,
    ) -> None:
        if max_families < 1:
            raise ValueError("max_families must be >= 1")
        self.execution = execution or ExecutionConfig()
        self.max_families = int(max_families)
        self._families: OrderedDict[tuple, WarmFamily] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._closed = False

    # ------------------------------------------------------------------
    def get(self, spec: FamilySpec) -> tuple[WarmFamily, bool]:
        """``(family, hit)`` — builds and possibly evicts on a miss.

        Building outside the cache lock would be nicer for tail latency,
        but correctness first: a duplicate concurrent build would fork
        duplicate fleets.  Builds are rare (once per family).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("warm cache is closed")
            fam = self._families.get(spec.key)
            if fam is not None:
                self._families.move_to_end(spec.key)
                fam.touch()
                self.hits += 1
                return fam, True
            evicted: list[WarmFamily] = []
            while len(self._families) >= self.max_families:
                _, old = self._families.popitem(last=False)
                evicted.append(old)
                self.evictions += 1
            fam = WarmFamily(spec, self.execution)
            self._families[spec.key] = fam
            self.misses += 1
        for old in evicted:
            old.close()
        return fam, False

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            families = [
                {
                    "family": fam.spec.to_dict(),
                    "solves": fam.solves,
                    "build_seconds": fam.build_seconds,
                    "n_vertices": fam.mesh.n_vertices,
                    "n_edges": fam.mesh.n_edges,
                    "fleets": fam.fleet_stats(),
                    "tuned": (
                        fam.tuned.to_dict() if fam.tuned is not None
                        else None
                    ),
                }
                for fam in self._families.values()
            ]
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident": len(families),
            "max_families": self.max_families,
            "families": families,
        }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            families = list(self._families.values())
            self._families.clear()
        for fam in families:
            fam.close()
