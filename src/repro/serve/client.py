"""Client side of the serve protocol: ``ServeClient`` + socket helpers.

Thin synchronous wrapper used by ``repro submit``, the CI smoke job and the
tests: connect, frame a request, block for the framed response.  One client
holds one connection; requests on it are sequential (the daemon pipelines
across *connections*, not within one).
"""

from __future__ import annotations

import os
import socket
import time

from .protocol import ProtocolError, read_frame, write_frame

__all__ = ["ServeClient", "ServeError", "wait_for_socket"]


class ServeError(RuntimeError):
    """Daemon answered with an error envelope; carries the HTTP-like code."""

    def __init__(self, code: int, message: str, response: dict | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.response = response or {}


def wait_for_socket(path: str, timeout: float = 30.0) -> None:
    """Block until a daemon accepts connections on ``path`` (ping works)."""
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        if os.path.exists(path):
            try:
                with ServeClient(path, timeout=2.0) as client:
                    client.ping()
                return
            except (OSError, ProtocolError, ServeError) as exc:
                last = exc
        time.sleep(0.05)
    raise TimeoutError(
        f"no daemon on {path} after {timeout:.0f}s"
        + (f" (last error: {last})" if last else "")
    )


class ServeClient:
    """One connection to a ``repro serve`` daemon."""

    def __init__(self, socket_path: str, timeout: float | None = None):
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request object; return the daemon's ``ok`` response.

        Raises :class:`ServeError` on an error envelope, OSError on
        transport failure, ProtocolError on an unframeable reply.
        """
        write_frame(self._sock, payload)
        resp = read_frame(self._sock)
        if resp is None:
            raise ProtocolError("daemon closed the connection mid-request")
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise ServeError(
                int(err.get("code", 500)),
                str(err.get("message", "unknown error")),
                resp,
            )
        return resp

    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def solve(
        self,
        family: dict | None = None,
        case: dict | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        req = {"op": "solve", "family": family or {}, "case": case or {}}
        if deadline_s is not None:
            req["deadline_s"] = deadline_s
        return self.request(req)

    def batch(
        self,
        family: dict | None = None,
        cases: list[dict] | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        req = {"op": "batch", "family": family or {}, "cases": cases or [{}]}
        if deadline_s is not None:
            req["deadline_s"] = deadline_s
        return self.request(req)

    def evaluate(
        self,
        family: dict | None = None,
        cases: list[dict] | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """Batched residual evaluation (no solve): one fused sweep for
        all cases over the warm family."""
        req = {
            "op": "evaluate", "family": family or {}, "cases": cases or [{}],
        }
        if deadline_s is not None:
            req["deadline_s"] = deadline_s
        return self.request(req)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
