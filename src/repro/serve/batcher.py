"""Batched multi-case solves over one warm family.

A parameter sweep — angle of attack, artificial-compressibility ``beta``,
dissipation scheme — is k cases over *one* mesh family: every plan,
pattern, fleet and symbolic factorization is shared and only the state
arrays differ.  :func:`solve_cases` runs such a batch through a single
:class:`~repro.solver.newton.SteadySolverSession`, so the k cases pay the
structural setup zero times (the family was built once by the warm cache)
and the per-case work is pure solve.

Numerics contract: each case in a batch is computed exactly as an
independent one-shot solve would compute it — same initial state, same
Newton/Krylov path, bitwise-identical structures — property-tested in
``tests/test_serve.py``.  Batching buys amortization, never approximation.

:func:`sweep_grid` expands ``{"aoa": [0, 2, 4], "beta": [2, 4]}`` into the
cartesian case list the ``repro submit --sweep`` convenience fans into the
daemon's queue.

:func:`evaluate_cases` is the cheap sibling of :func:`solve_cases`: one
*batched* fused residual sweep (``repro.kgir.batched_residual``) over the
k cases' freestream states — k residual norms and force coefficients for
one pass over the edge arrays instead of k solves.  Same numerics
contract: each case's residual is bitwise what a lone
:func:`~repro.cfd.residual.compute_residual` would return.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from .cache import WarmFamily
from .protocol import CaseSpec, ProtocolError

__all__ = [
    "CaseResult",
    "EvaluationResult",
    "evaluate_cases",
    "solve_cases",
    "sweep_grid",
]


@dataclass
class CaseResult:
    """JSON-ready outcome of one case."""

    case: dict
    converged: bool
    steps: int
    krylov_iterations: int
    initial_residual: float
    final_residual: float
    residual_history: list[float]
    cl: float
    cd: float
    wall_seconds: float

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "converged": self.converged,
            "steps": self.steps,
            "krylov_iterations": self.krylov_iterations,
            "initial_residual": self.initial_residual,
            "final_residual": self.final_residual,
            "residual_history": self.residual_history,
            "forces": {"cl": self.cl, "cd": self.cd},
            "wall_seconds": self.wall_seconds,
        }


def _solve_one(family: WarmFamily, case: CaseSpec) -> CaseResult:
    from ..cfd import integrate_forces

    config = case.flow_config()
    t0 = time.perf_counter()
    if family.decomp is not None:
        from ..dist.runtime import distributed_solve

        dres = distributed_solve(
            family.field,
            config,
            family.opts,
            n_ranks=family.spec.dist_ranks,
            decomp=family.decomp,
        )
        solve = dres.result
    else:
        solve = family.session.solve(
            config, max_steps=case.max_steps, steady_rtol=case.rtol
        )
    wall = time.perf_counter() - t0
    family.solves += 1
    forces = integrate_forces(family.field, solve.q, config)
    return CaseResult(
        case=case.to_dict(),
        converged=bool(solve.converged),
        steps=int(solve.steps),
        krylov_iterations=int(solve.linear_iterations),
        initial_residual=float(solve.initial_residual),
        final_residual=float(solve.final_residual),
        residual_history=[float(r) for r in solve.residual_history],
        cl=float(forces.cl),
        cd=float(forces.cd),
        wall_seconds=wall,
    )


def solve_cases(
    family: WarmFamily, cases: list[CaseSpec]
) -> list[CaseResult]:
    """Run ``cases`` through the family's warm session, in order.

    The family's edge fleet (if any) is installed for the whole batch, so
    consecutive cases reuse the same forked workers; the sparse fleet lives
    inside the session and persists the same way.  Distributed families
    reuse the cached decomposition per case (rank fleets are per-solve).
    """
    from contextlib import nullcontext

    from ..smp import use_edge_backend

    cm = (
        use_edge_backend(family.edge_backend)
        if family.edge_backend is not None and not family.edge_backend.closed
        else nullcontext()
    )
    with cm:
        return [_solve_one(family, case) for case in cases]


@dataclass
class EvaluationResult:
    """JSON-ready outcome of one batched residual evaluation."""

    case: dict
    residual_norm: float
    residual_max: float
    cl: float
    cd: float

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "residual_norm": self.residual_norm,
            "residual_max": self.residual_max,
            "forces": {"cl": self.cl, "cd": self.cd},
        }


def evaluate_cases(
    family: WarmFamily, cases: list[CaseSpec]
) -> list[EvaluationResult]:
    """Batched freestream residual evaluation over ``cases``.

    All k cases share the family's warm field, so the fused program
    gathers the edge endpoints once per stage for the whole batch
    (trailing-axis batching, see :mod:`repro.kgir`) and only the per-case
    arithmetic is repeated.  The per-case residuals are bitwise identical
    to k independent :func:`~repro.cfd.residual.compute_residual` calls.

    Tuned families (``--tune``) cap the stack depth at the family's
    ``tuned_batch_width``: wide enough to amortize dispatch, narrow enough
    that the batched working set stays cache-resident on this host.  The
    chunking changes grouping only, never per-case numerics.
    """
    import numpy as np

    from ..cfd import integrate_forces
    from ..kgir import batched_residual

    if family.decomp is not None:
        raise ProtocolError(
            "'evaluate' is not supported for distributed families"
        )
    field = family.field
    width = int(getattr(family, "tuned_batch_width", 0)) or len(cases)
    out = []
    for start in range(0, len(cases), max(width, 1)):
        chunk = cases[start:start + max(width, 1)]
        configs = [case.flow_config() for case in chunk]
        q_batch = np.stack(
            [field.initial_state(cfg) for cfg in configs], axis=-1
        )
        res, _grad, _phi = batched_residual(field, q_batch, configs)
        for b, (case, cfg) in enumerate(zip(chunk, configs)):
            rb = np.ascontiguousarray(res[..., b])
            forces = integrate_forces(
                field, np.ascontiguousarray(q_batch[..., b]), cfg
            )
            out.append(EvaluationResult(
                case=case.to_dict(),
                residual_norm=float(np.linalg.norm(rb)),
                residual_max=float(np.abs(rb).max()),
                cl=float(forces.cl),
                cd=float(forces.cd),
            ))
    return out


def sweep_grid(base: dict, sweep: dict[str, list]) -> list[CaseSpec]:
    """Cartesian case grid: ``base`` case fields x every sweep combination.

    ``sweep`` maps case-field name -> list of values.  Each produced case
    gets a ``tag`` like ``"aoa=2,beta=4"`` so responses stay attributable
    after the daemon interleaves batches.
    """
    if not sweep:
        return [CaseSpec.from_dict(base)]
    for name in sweep:
        if name not in CaseSpec._FIELDS or name == "tag":
            raise ProtocolError(f"cannot sweep over {name!r}")
        if not sweep[name]:
            raise ProtocolError(f"empty sweep values for {name!r}")
    names = sorted(sweep)
    cases = []
    for combo in itertools.product(*(sweep[n] for n in names)):
        d = dict(base)
        d.update(dict(zip(names, combo)))
        d["tag"] = ",".join(f"{n}={v:g}" if isinstance(v, float) else f"{n}={v}"
                            for n, v in zip(names, combo))
        cases.append(CaseSpec.from_dict(d))
    return cases
