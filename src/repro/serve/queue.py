"""Admission-controlled job queue of the serve daemon.

Connection handler threads *produce* jobs; solver threads *consume* them.
Admission control is enforced at submit time: a bounded depth (the queue
rejects rather than buffers unboundedly — the 503 path) and an optional
per-request deadline (a job whose deadline passes while it waits is
rejected at dequeue with 408 instead of wasting a warm fleet on an answer
nobody is waiting for).  Jobs carry a one-shot completion event so the
connection handler can block for the result without polling.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Job", "QueueFull", "QueueClosed", "AdmissionQueue"]


class QueueFull(Exception):
    """Bounded depth reached — admission refused (503)."""


class QueueClosed(Exception):
    """Submit after shutdown began (503)."""


_ids = itertools.count(1)


@dataclass
class Job:
    """One queued unit of solver work (a single case or a whole batch)."""

    op: str
    family: object  # FamilySpec
    cases: list  # list[CaseSpec]; length 1 for op == "solve"
    deadline: float | None = None  # time.monotonic() cutoff, None = none
    id: int = field(default_factory=lambda: next(_ids))
    enqueued_at: float = field(default_factory=time.monotonic)
    done: threading.Event = field(default_factory=threading.Event)
    response: dict | None = None
    queue_seconds: float = 0.0

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def finish(self, response: dict) -> None:
        self.response = response
        self.done.set()


class AdmissionQueue:
    """Bounded FIFO with depth-based admission control.

    ``max_depth`` counts *queued* jobs only; in-flight work is tracked by
    the caller (the daemon's solver threads).  All methods are thread-safe.
    """

    def __init__(self, max_depth: int = 8) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = int(max_depth)
        self._jobs: deque[Job] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.submitted = 0
        self.rejected_full = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._jobs)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Admit ``job`` or raise :class:`QueueFull`/:class:`QueueClosed`."""
        with self._cond:
            if self._closed:
                raise QueueClosed("daemon is shutting down")
            if len(self._jobs) >= self.max_depth:
                self.rejected_full += 1
                raise QueueFull(
                    f"queue full ({self.max_depth} queued); retry later"
                )
            self._jobs.append(job)
            self.submitted += 1
            self._cond.notify()
            return job

    def get(self, timeout: float = 0.5) -> Job | None:
        """Next job, or None after ``timeout`` with the queue empty/closed."""
        with self._cond:
            if not self._jobs:
                self._cond.wait(timeout)
            if not self._jobs:
                return None
            job = self._jobs.popleft()
            job.queue_seconds = time.monotonic() - job.enqueued_at
            return job

    # ------------------------------------------------------------------
    def close(self) -> list[Job]:
        """Refuse new work and drain: returns the jobs never started so the
        daemon can answer each with a shutdown rejection."""
        with self._cond:
            self._closed = True
            drained = list(self._jobs)
            self._jobs.clear()
            self._cond.notify_all()
        return drained
