"""Wire protocol of the ``repro serve`` daemon.

Length-prefixed JSON frames over a local stream socket: every message is a
4-byte big-endian payload length followed by that many bytes of UTF-8 JSON
encoding one object.  Both directions use the same framing; a connection
carries any number of request/response pairs.

Requests are objects with an ``op`` field:

``ping``      liveness probe -> ``{"ok": true, "pid": ...}``
``stats``     queue/cache/uptime counters of the daemon
``solve``     one case: ``{"op": "solve", "family": {...}, "case": {...},
              "deadline_s": 30.0}``
``batch``     k structurally-identical cases through one warm family:
              ``{"op": "batch", "family": {...}, "cases": [{...}, ...]}``
``shutdown``  graceful stop (the daemon finishes in-flight work and exits 0)

A *family* names the shared structure every expensive artifact hangs off —
mesh dataset/scale/seed/ordering, ILU fill, Schwarz subdomains, distributed
rank count.  A *case* holds only what varies inside a sweep: angle of
attack, artificial-compressibility ``beta`` (the Mach analogue), the
dissipation scheme, and non-structural solver knobs (step/tolerance caps).
Two requests with equal families share every plan, fleet and symbolic
factorization in the daemon's warm cache.

Responses mirror HTTP semantics in one ``ok``/``error`` envelope::

    {"ok": true,  "op": "solve", "result": {...}}
    {"ok": false, "error": {"code": 503, "message": "queue full ..."}}

Codes: 400 malformed frame/request, 404 unknown op, 408 client deadline
expired in queue, 500 solve failure, 503 admission-control rejection.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "FamilySpec",
    "CaseSpec",
    "read_frame",
    "write_frame",
    "error_response",
    "ok_response",
    "parse_cases",
]

PROTOCOL_VERSION = "repro.serve/v1"
#: sanity bound on one frame — requests are small JSON; anything larger is a
#: corrupt or hostile length prefix, rejected before allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024
_LEN = struct.Struct("!I")


class ProtocolError(Exception):
    """Malformed framing or request payload (maps to a 400 response)."""


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF *before* any byte.

    EOF after a partial read is a truncated frame — that is a protocol
    error, not a clean close.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"truncated frame: EOF after {got} of {n} bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """One length-prefixed JSON object; None on clean EOF between frames."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (n,) = _LEN.unpack(header)
    if n == 0 or n > MAX_FRAME_BYTES:
        raise ProtocolError(f"invalid frame length {n}")
    payload = _recv_exact(sock, n)
    if payload is None:
        raise ProtocolError("truncated frame: EOF before payload")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must encode an object, got {type(obj).__name__}"
        )
    return obj


def write_frame(sock: socket.socket, obj: dict) -> None:
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def ok_response(op: str, **fields) -> dict:
    return {"ok": True, "op": op, **fields}


def error_response(code: int, message: str, **fields) -> dict:
    return {"ok": False, "error": {"code": code, "message": message, **fields}}


# ---------------------------------------------------------------------------
# family / case specs
# ---------------------------------------------------------------------------

def _typed(d: dict, key: str, typ, default):
    v = d.get(key, default)
    try:
        return typ(v)
    except (TypeError, ValueError):
        raise ProtocolError(f"field {key!r} must be {typ.__name__}, got {v!r}")


@dataclass(frozen=True)
class FamilySpec:
    """Structural identity of a mesh family: everything the warm cache keys
    plans, fleets and symbolic factorizations on."""

    dataset: str = "mesh-c"
    scale: float = 0.12
    seed: int = 7
    ordering: str = "natural"
    ilu: int = 1
    subdomains: int = 1
    dist_ranks: int = 0

    _FIELDS = ("dataset", "scale", "seed", "ordering", "ilu", "subdomains",
               "dist_ranks")

    @classmethod
    def from_dict(cls, d: dict | None) -> "FamilySpec":
        d = d or {}
        if not isinstance(d, dict):
            raise ProtocolError("'family' must be an object")
        unknown = set(d) - set(cls._FIELDS)
        if unknown:
            raise ProtocolError(f"unknown family field(s) {sorted(unknown)}")
        spec = cls(
            dataset=str(d.get("dataset", "mesh-c")),
            scale=_typed(d, "scale", float, 0.12),
            seed=_typed(d, "seed", int, 7),
            ordering=str(d.get("ordering", "natural")),
            ilu=_typed(d, "ilu", int, 1),
            subdomains=_typed(d, "subdomains", int, 1),
            dist_ranks=_typed(d, "dist_ranks", int, 0),
        )
        if spec.dataset not in ("mesh-c", "mesh-d", "wing"):
            raise ProtocolError(f"unknown dataset {spec.dataset!r}")
        if spec.ordering not in ("natural", "rcm"):
            raise ProtocolError(f"unknown ordering {spec.ordering!r}")
        return spec

    def to_dict(self) -> dict:
        return {k: getattr(self, k) for k in self._FIELDS}

    @property
    def key(self) -> tuple:
        return tuple(getattr(self, k) for k in self._FIELDS)


@dataclass(frozen=True)
class CaseSpec:
    """Per-case state: what varies across a sweep over one family.

    ``aoa``/``beta``/``dissipation`` feed the :class:`FlowConfig`;
    ``max_steps``/``rtol`` are non-structural solver overrides (they change
    no plan, pattern or fleet, so cases with different caps still share one
    warm family).
    """

    aoa: float = 3.0
    beta: float = 4.0
    dissipation: str = "rusanov"
    max_steps: int = 100
    rtol: float = 1e-6
    tag: str = ""  # echoed back verbatim (sweep bookkeeping)

    _FIELDS = ("aoa", "beta", "dissipation", "max_steps", "rtol", "tag")

    @classmethod
    def from_dict(cls, d: dict | None) -> "CaseSpec":
        d = d or {}
        if not isinstance(d, dict):
            raise ProtocolError("'case' must be an object")
        unknown = set(d) - set(cls._FIELDS)
        if unknown:
            raise ProtocolError(f"unknown case field(s) {sorted(unknown)}")
        spec = cls(
            aoa=_typed(d, "aoa", float, 3.0),
            beta=_typed(d, "beta", float, 4.0),
            dissipation=str(d.get("dissipation", "rusanov")),
            max_steps=_typed(d, "max_steps", int, 100),
            rtol=_typed(d, "rtol", float, 1e-6),
            tag=str(d.get("tag", "")),
        )
        if spec.dissipation not in ("rusanov", "roe"):
            raise ProtocolError(f"unknown dissipation {spec.dissipation!r}")
        if spec.max_steps < 1:
            raise ProtocolError("max_steps must be >= 1")
        return spec

    def to_dict(self) -> dict:
        return {k: getattr(self, k) for k in self._FIELDS}

    def flow_config(self):
        from ..cfd import FlowConfig

        return FlowConfig(
            aoa_deg=self.aoa, beta=self.beta, dissipation=self.dissipation
        )


def parse_cases(payload: dict) -> list[CaseSpec]:
    """The case list of a ``solve`` (one) or ``batch`` (many) request."""
    if "cases" in payload:
        raw = payload["cases"]
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'cases' must be a non-empty list")
        return [CaseSpec.from_dict(c) for c in raw]
    return [CaseSpec.from_dict(payload.get("case"))]
