"""Host calibration and per-mesh auto-tuning.

The analytic machine model answers the paper's questions for the paper's
hardware; this package makes the same cost paths answer them for the
*host that is actually running*:

* :mod:`~repro.tune.calibrate` — ``repro calibrate``: micro-bench sweeps
  fit the :class:`~repro.smp.machine.MachineModel` constants and write a
  host-fingerprinted ``.repro_calibration.json``;
* :mod:`~repro.tune.tuner` — ``--tune``: a deterministic search over the
  CLI's configuration space, priced by the calibrated model and
  cross-checked against matching ``.bench_history.jsonl`` measurements,
  that never picks anything predicted slower than the static default;
* :mod:`~repro.tune.bench` — ``repro bench --kernel tune``: measures
  tuned vs default on a real solve and gates the never-slower contract.
"""

from .bench import (
    TUNE_SCHEMA,
    rolling_tune_gate_failures,
    run_tune_bench,
    tune_gate_failures,
)
from .calibrate import (
    CALIBRATION_SCHEMA,
    DEFAULT_CALIBRATION_PATH,
    Calibration,
    active_model,
    calibrated_fabric,
    fit_machine_model,
    load_calibration,
    run_calibration,
    run_micro_benchmarks,
    same_host,
    save_calibration,
    stable_host_key,
)
from .tuner import TunedConfig, tune_solve

__all__ = [
    "CALIBRATION_SCHEMA",
    "DEFAULT_CALIBRATION_PATH",
    "TUNE_SCHEMA",
    "Calibration",
    "TunedConfig",
    "active_model",
    "calibrated_fabric",
    "fit_machine_model",
    "load_calibration",
    "rolling_tune_gate_failures",
    "run_calibration",
    "run_micro_benchmarks",
    "run_tune_bench",
    "same_host",
    "save_calibration",
    "stable_host_key",
    "tune_gate_failures",
    "tune_solve",
]
