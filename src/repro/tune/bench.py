"""Tuned-vs-default measurement: the ``BENCH_tune.json`` harness.

``run_tune_bench`` solves the same case twice — once with the static
default configuration, once with whatever :func:`~repro.tune.tuner.
tune_solve` picked on this host — and writes a document in the bench
family's shape (``serial`` + ``results`` rows, host fingerprint, history
append), so the existing ``--gate`` / ``--history`` machinery applies
unchanged.  Each row carries the calibrated model's predicted wall and
its relative error against the measurement; the gate enforces the
tuner's contract: **tuned is never slower than default** (within a small
measurement-noise slack) and the two solves produce identical forces.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.live.fingerprint import host_fingerprint
from ..smp.machine import MachineModel
from .calibrate import Calibration, same_host
from .tuner import TunedConfig, tune_solve

__all__ = [
    "TUNE_SCHEMA",
    "run_tune_bench",
    "tune_gate_failures",
    "rolling_tune_gate_failures",
]

TUNE_SCHEMA = "repro.bench.tune/v1"


def _solve_once(mesh, cfg: TunedConfig, ilu: int, max_steps: int,
                seed: int):
    """One measured steady solve under ``cfg``; returns (wall, result)."""
    from contextlib import nullcontext

    from ..apps import Fun3dApp, OptimizationConfig
    from ..cfd import FlowConfig
    from ..solver import SolverOptions

    app = Fun3dApp(
        mesh,
        flow=FlowConfig(),
        solver=SolverOptions(
            max_steps=max_steps,
            ilu_fill=ilu,
            sparse_backend=cfg.sparse_backend,
            sparse_strategy=cfg.sparse_strategy,
            sparse_workers=cfg.sparse_workers or cfg.workers,
        ),
    )
    backend_cm = install_cm = nullcontext()
    if cfg.edge_backend == "process":
        from ..smp import ProcessEdgeBackend, use_edge_backend

        backend_cm = ProcessEdgeBackend(
            app.field,
            n_workers=cfg.workers,
            strategy=cfg.edge_strategy,
            partitioner=cfg.partitioner,
            seed=seed,
        )
        install_cm = use_edge_backend(backend_cm)
    if cfg.fuse == "on":
        from ..kgir import FusedEdgeBackend
        from ..smp import use_edge_backend

        inner = backend_cm if cfg.edge_backend == "process" else None
        install_cm = use_edge_backend(
            FusedEdgeBackend(app.field, inner=inner)
        )
    with backend_cm, install_cm:
        t0 = time.perf_counter()
        res = app.run(OptimizationConfig.baseline(ilu_fill=ilu))
        wall = time.perf_counter() - t0
    from ..cfd import integrate_forces

    forces = integrate_forces(app.field, res.solve.q, app.flow)
    return wall, res.solve, forces


def run_tune_bench(
    dataset: str = "mesh-c",
    scale: float = 0.06,
    seed: int = 7,
    ilu: int = 0,
    max_steps: int = 3,
    machine: MachineModel | None = None,
    cal: Calibration | None = None,
    history: list[dict] | None = None,
) -> dict:
    """Measure tuned vs default on one case; return the BENCH_tune doc."""
    from ..mesh import dataset_mesh
    from ..smp.machine import XEON_E5_2690_V2

    machine = machine or (cal.model if cal is not None else XEON_E5_2690_V2)
    default = TunedConfig()
    mesh_default = dataset_mesh(dataset, scale=scale, seed=seed,
                                ordering=default.ordering)
    tuned = tune_solve(
        mesh_default, machine, cal, history,
        dataset=dataset, scale=scale, seed=seed, ilu_fill=ilu,
        allow_dist=False,  # the bench compares in-process configurations
    )
    mesh_tuned = (
        mesh_default
        if tuned.ordering == default.ordering
        else dataset_mesh(dataset, scale=scale, seed=seed,
                          ordering=tuned.ordering)
    )

    default_wall, default_solve, default_forces = _solve_once(
        mesh_default, default, ilu, max_steps, seed
    )
    tuned_wall, tuned_solve, tuned_forces = _solve_once(
        mesh_tuned, tuned, ilu, max_steps, seed
    )
    max_abs_dev = float(
        max(
            abs(default_forces.cl - tuned_forces.cl),
            abs(default_forces.cd - tuned_forces.cd),
        )
    )

    def _row(strategy: str, cfg: TunedConfig, wall: float, solve,
             step_model: float) -> dict:
        model = max(solve.steps, 1) * step_model
        return {
            "strategy": strategy,
            "workers": cfg.workers if strategy == "tuned" else 1,
            "wall_seconds": wall,
            "steps": int(solve.steps),
            "model_seconds": model,
            "model_rel_error": abs(model - wall) / wall if wall > 0
            else float("inf"),
            "max_abs_dev": max_abs_dev,
        }

    doc = {
        "schema": TUNE_SCHEMA,
        "kind": "tune",
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "fill_level": ilu,
        "max_steps": max_steps,
        "host": host_fingerprint(),
        "machine": machine.name,
        "calibrated": cal is not None,
        "tuned": tuned.to_dict(),
        "serial": {"wall_seconds": default_wall},
        "results": [
            _row("default", default, default_wall, default_solve,
                 tuned.default_step_seconds),
            _row("tuned", tuned, tuned_wall, tuned_solve,
                 tuned.predicted_step_seconds),
        ],
    }
    return doc


# ---------------------------------------------------------------------------
# gates
# ---------------------------------------------------------------------------
def tune_gate_failures(
    doc: dict,
    max_slowdown: float = 1.10,
    force_tol: float = 1e-8,
) -> list[str]:
    """The tuner's contract, checkable in CI.

    * tuned wall <= ``max_slowdown`` x default wall (never-slower, with
      slack for timer noise on short solves);
    * both solves produced identical forces (bit-identical numerics
      across strategies is the repo-wide contract);
    * every row reports a finite measured-vs-predicted relative error.
    """
    failures: list[str] = []
    rows = {r["strategy"]: r for r in doc.get("results", [])}
    default = rows.get("default")
    tuned = rows.get("tuned")
    if default is None or tuned is None:
        return ["tune doc missing default/tuned rows"]
    if tuned["wall_seconds"] > max_slowdown * default["wall_seconds"]:
        failures.append(
            f"tuned config slower than default: "
            f"{tuned['wall_seconds']:.4f}s vs "
            f"{default['wall_seconds']:.4f}s "
            f"(allowed {max_slowdown:.2f}x)"
        )
    for r in (default, tuned):
        err = r.get("model_rel_error")
        if err is None or not np.isfinite(err):
            failures.append(
                f"{r['strategy']}: missing/non-finite model_rel_error"
            )
    dev = tuned.get("max_abs_dev", float("inf"))
    if dev > force_tol:
        failures.append(
            f"tuned forces deviate from default by {dev:.3e} "
            f"(tol {force_tol:g})"
        )
    return failures


def rolling_tune_gate_failures(
    doc: dict,
    history: list[dict],
    window: int = 5,
    max_regression: float = 1.25,
    max_slowdown: float = 1.10,
    force_tol: float = 1e-8,
) -> list[str]:
    """Tune gate with a rolling-median wall check against host history.

    Prior records must match the problem key *and* this host's stable
    fingerprint; with no comparable history the fixed gate alone decides
    (first run on a new machine never fails on history grounds).
    """
    from ..smp.bench import _history_key

    failures = tune_gate_failures(doc, max_slowdown=max_slowdown,
                                  force_tol=force_tol)
    key = _history_key(doc)
    prior_walls = []
    for rec in history:
        if _history_key(rec) != key:
            continue
        if not same_host(rec.get("host"), doc.get("host")):
            continue
        walls = rec.get("walls") or {}
        tuned_cells = [v for k, v in walls.items()
                       if k.startswith("tuned@")]
        if tuned_cells:
            prior_walls.append(min(tuned_cells))
    if not prior_walls:
        return failures
    median = float(np.median(prior_walls[-window:]))
    tuned = {r["strategy"]: r for r in doc["results"]}["tuned"]
    if tuned["wall_seconds"] > max_regression * median:
        failures.append(
            f"tuned wall regressed vs rolling median: "
            f"{tuned['wall_seconds']:.4f}s vs median {median:.4f}s "
            f"over {len(prior_walls[-window:])} run(s) "
            f"(allowed {max_regression:.2f}x)"
        )
    return failures
