"""Deterministic per-mesh auto-tuner over the calibrated cost model.

``tune_solve`` prices one implicit solver step for every configuration the
CLI exposes — edge strategy (locked / replicate / owner x partitioner),
worker count, sparse strategy (levels / p2p) and fleet width, vertex
ordering, kernel-graph fusion, forked ranks x sparse-workers splits, and
the serve batch width — using the host-calibrated
:class:`~repro.smp.machine.MachineModel` (falling back to the analytic
paper model), and returns the cheapest as a frozen :class:`TunedConfig`.

Two guarantees shape the search:

* **never slower by construction** — the static default configuration is
  always a candidate, and the tuner only deviates from it when a
  challenger's predicted step is below ``margin`` (default 0.85) of the
  default's prediction, so model noise inside the margin keeps the
  default;
* **deterministic** — no clocks, no randomness: the same mesh, machine
  constants, and history records always produce the same choice (the
  tuner-determinism test runs it twice and compares).

When a ``.bench_history.jsonl`` record from *this* host (fingerprint
match, same dataset/scale/seed) has measured exactly a candidate's
(strategy, workers) cell, the measured serial-relative ratio replaces the
modeled one — measurements outrank the model where both exist
(``source`` reports ``model+history``).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from ..smp.cost import (
    EdgeLoopOptions,
    edge_loop_time,
    flux_kernel_work,
    grad_kernel_work,
    ilu_time,
    jacobian_kernel_work,
    trsv_time,
)
from ..smp.machine import MachineModel
from ..smp.strategies import (
    EdgeLoopExecutor,
    make_edge_loop_options,
    metis_thread_labels,
    natural_thread_labels,
    tri_solve_options_from_plan,
)
from .calibrate import Calibration, calibrated_fabric, same_host

__all__ = ["TunedConfig", "tune_solve"]

#: Newton-step shape priced by the tuner (typical implicit-solver counts:
#: residual at the state + one linesearch probe; GMRES-ish inner solves;
#: dot products + norms).  Fixed constants keep the tuner deterministic —
#: only *ratios between candidates* matter for the choice.
RESID_EVALS_PER_STEP = 2
TRSV_PER_STEP = 12
ALLREDUCE_PER_STEP = 25
ALLREDUCE_BYTES = 64.0

#: a challenger must beat margin * default to displace the default
DEFAULT_MARGIN = 0.85


@dataclass(frozen=True)
class TunedConfig:
    """The tuner's decision plus the evidence behind it."""

    edge_backend: str = "serial"
    workers: int = 1
    edge_strategy: str = "owner"
    partitioner: str = "metis"
    fuse: str = "off"
    ordering: str = "rcm"
    sparse_backend: str = "serial"
    sparse_strategy: str = "p2p"
    sparse_workers: int = 0
    dist_ranks: int = 0
    batch_width: int = 1
    predicted_step_seconds: float = 0.0
    default_step_seconds: float = 0.0
    source: str = "model"
    machine: str = ""
    #: (label, predicted step seconds) for every configuration priced
    candidates: tuple = dc_field(default_factory=tuple)

    @property
    def predicted_speedup(self) -> float:
        if self.predicted_step_seconds <= 0.0:
            return 1.0
        return self.default_step_seconds / self.predicted_step_seconds

    def is_default(self) -> bool:
        return (
            self.edge_backend == "serial"
            and self.sparse_backend == "serial"
            and self.dist_ranks == 0
            and self.fuse == "off"
        )

    def to_dict(self) -> dict:
        return {
            "edge_backend": self.edge_backend,
            "workers": self.workers,
            "edge_strategy": self.edge_strategy,
            "partitioner": self.partitioner,
            "fuse": self.fuse,
            "ordering": self.ordering,
            "sparse_backend": self.sparse_backend,
            "sparse_strategy": self.sparse_strategy,
            "sparse_workers": self.sparse_workers,
            "dist_ranks": self.dist_ranks,
            "batch_width": self.batch_width,
            "predicted_step_seconds": self.predicted_step_seconds,
            "default_step_seconds": self.default_step_seconds,
            "predicted_speedup": self.predicted_speedup,
            "source": self.source,
            "machine": self.machine,
            "candidates": [
                {"label": label, "step_seconds": cost}
                for label, cost in self.candidates
            ],
        }

    def summary(self) -> str:
        if self.is_default():
            head = "tune: keeping static default"
        else:
            head = (
                f"tune: edge={self.edge_backend}"
                f"/{self.edge_strategy}@{self.workers}"
                f" sparse={self.sparse_backend}/{self.sparse_strategy}"
                f"@{self.sparse_workers or self.workers}"
                f" fuse={self.fuse} ordering={self.ordering}"
            )
            if self.dist_ranks:
                head += f" ranks={self.dist_ranks}"
        return (
            f"{head}  (predicted {self.predicted_step_seconds * 1e3:.3f} ms"
            f"/step vs default {self.default_step_seconds * 1e3:.3f} ms, "
            f"{self.predicted_speedup:.2f}x, {self.source}, "
            f"machine: {self.machine})"
        )


# ---------------------------------------------------------------------------
# per-dimension pricing
# ---------------------------------------------------------------------------
def _residual_seconds(machine: MachineModel, n_edges: int,
                      opts: EdgeLoopOptions) -> float:
    """One residual evaluation: gradient sweep + flux sweep."""
    return edge_loop_time(
        machine, grad_kernel_work(n_edges), opts
    ) + edge_loop_time(machine, flux_kernel_work(n_edges), opts)


def _edge_candidates(
    mesh, machine: MachineModel, ordering: str, max_workers: int
) -> list[dict]:
    """Price every (backend, strategy, partitioner, workers) edge config.

    Structural inputs (per-thread edge counts with replication) come from
    real :class:`EdgeLoopExecutor` partitions of *this* mesh, exactly as
    the bench harness prices its cells.
    """
    rcm = ordering == "rcm"
    n_edges = mesh.n_edges
    seq = EdgeLoopOptions(
        n_threads=1, strategy="sequential", layout="aos",
        simd=True, prefetch=True, rcm=rcm,
    )
    out = [{
        "label": "serial",
        "backend": "serial", "workers": 1,
        "strategy": "owner", "partitioner": "metis",
        "resid_seconds": _residual_seconds(machine, n_edges, seq),
        "jac_seconds": edge_loop_time(
            machine, jacobian_kernel_work(n_edges), seq
        ),
    }]
    w = 2
    widths = []
    while w <= max_workers:
        widths.append(w)
        w *= 2
    for w in widths:
        labels_by_part = {
            "metis": metis_thread_labels(mesh.edges, mesh.n_vertices, w),
            "natural": natural_thread_labels(mesh.n_vertices, w),
        }
        for cli_strategy, model_strategy, part in (
            ("locked", "atomic", "metis"),
            ("owner", "replicate", "metis"),
            ("owner", "replicate", "natural"),
        ):
            ex = EdgeLoopExecutor(
                mesh.edges, mesh.n_vertices, n_threads=w,
                strategy=model_strategy,
                labels=labels_by_part[part]
                if model_strategy == "replicate" else None,
            )
            opts = make_edge_loop_options(ex, layout="aos", simd=True,
                                          prefetch=True, rcm=rcm)
            hist_label = (
                "locked" if cli_strategy == "locked" else f"owner-{part}"
            )
            out.append({
                "label": f"{hist_label}@{w}",
                "hist_key": f"{hist_label}@{w}",
                "backend": "process", "workers": w,
                "strategy": cli_strategy, "partitioner": part,
                "resid_seconds": _residual_seconds(machine, n_edges, opts),
                "jac_seconds": edge_loop_time(
                    machine, jacobian_kernel_work(n_edges), opts
                ),
            })
    return out


def _sparse_candidates(
    mesh, machine: MachineModel, ilu_fill: int, max_workers: int, seed: int
) -> list[dict]:
    """Price serial vs (levels | p2p) fleet TRSV+ILU on the real plan."""
    from ..sparse.bcsr import bcsr_pattern_from_edges
    from ..sparse.ilu import build_ilu_plan

    rowptr, cols = bcsr_pattern_from_edges(mesh.edges, mesh.n_vertices)
    plan = build_ilu_plan(rowptr, cols, b=4, fill_level=ilu_fill)
    nnzb, n, b = plan.cols.shape[0], plan.n, plan.b
    block_ops = plan.factor_block_ops()

    def price(strategy: str, t: int) -> tuple[float, float]:
        opts = tri_solve_options_from_plan(plan, strategy, t)
        return (
            trsv_time(machine, nnzb, n, b, opts),
            ilu_time(machine, block_ops, nnzb, n, b, opts),
        )

    trsv_s, ilu_s = price("sequential", 1)
    out = [{
        "label": "sparse-serial",
        "backend": "serial", "strategy": "p2p", "workers": 0,
        "trsv_seconds": trsv_s, "ilu_seconds": ilu_s,
    }]
    w = 2
    while w <= max_workers:
        for strategy in ("levels", "p2p"):
            trsv_s, ilu_s = price(
                "level" if strategy == "levels" else "p2p", w
            )
            out.append({
                "label": f"sparse-{strategy}@{w}",
                "backend": "process", "strategy": strategy, "workers": w,
                "trsv_seconds": trsv_s, "ilu_seconds": ilu_s,
            })
        w *= 2
    return out


def _fuse_saving_seconds(machine: MachineModel, mesh, field,
                         workers: int) -> float:
    """Seconds one fused residual saves vs the staged pipeline."""
    if field is not None:
        from ..kgir import fusion_report

        bytes_saved = float(fusion_report(field).bytes_saved)
    else:
        # structural estimate: fusing grad+flux re-reads drops one
        # edge-stream pass (normal + indices) and the gradient gather
        bytes_saved = float(mesh.n_edges) * 56.0
    return bytes_saved / machine.bandwidth(max(workers, 1))


def _dist_candidates(
    mesh, machine: MachineModel, fabric, serial_resid: float,
    serial_jac: float, sparse_serial: dict, max_ranks: int
) -> list[dict]:
    """Price ranks x sparse-workers splits of one step on the local fabric.

    Edge work splits by owned vertices (natural chunks, the rank
    decomposition's assignment); each rank pays halo exchange for its cut
    edges and the step pays ``ALLREDUCE_PER_STEP`` reductions.
    """
    out = []
    r = 2
    while r <= max_ranks:
        labels = natural_thread_labels(mesh.n_vertices, r)
        l0 = labels[mesh.edges[:, 0]]
        l1 = labels[mesh.edges[:, 1]]
        cut_edges = int(np.count_nonzero(l0 != l1))
        halo_bytes = np.full(
            max(r - 1, 1), cut_edges * 32.0 / max(r - 1, 1)
        )
        halo = fabric.neighbor_exchange_time(halo_bytes, hops=1)
        allreduce = ALLREDUCE_PER_STEP * fabric.allreduce_time(
            ALLREDUCE_BYTES, r
        )
        # replication at the cut keeps ranks from perfect 1/r scaling
        eff = (mesh.n_edges + cut_edges) / (mesh.n_edges * r)
        workers_per_rank = max(machine.n_cores // r, 1)
        sparse_w = 1 if workers_per_rank == 1 else workers_per_rank
        step = (
            RESID_EVALS_PER_STEP * (serial_resid * eff + halo)
            + serial_jac * eff
            + sparse_serial["ilu_seconds"] / r
            + TRSV_PER_STEP * (
                sparse_serial["trsv_seconds"] / r
                + fabric.allreduce_time(ALLREDUCE_BYTES, r)
            )
            + allreduce
            + RESID_EVALS_PER_STEP * machine.dispatch_seconds()
        )
        out.append({
            "label": f"dist@{r}x{sparse_w}",
            "ranks": r, "sparse_workers": sparse_w,
            "step_seconds": step,
        })
        r *= 2
    return out


def _history_ratio(history, candidate_key: str, *, dataset, scale, seed,
                   host) -> float | None:
    """Median measured cell/serial ratio from matching host records."""
    if not history:
        return None
    ratios = []
    for rec in history:
        if rec.get("kind", "flux") != "flux":
            continue
        if (rec.get("dataset"), rec.get("scale"), rec.get("seed")) != (
            dataset, scale, seed
        ):
            continue
        if not same_host(rec.get("host"), host):
            continue
        serial = rec.get("serial_wall_seconds")
        cell = (rec.get("walls") or {}).get(candidate_key)
        if serial and cell:
            ratios.append(cell / serial)
    return float(np.median(ratios)) if ratios else None


# ---------------------------------------------------------------------------
def tune_solve(
    mesh,
    machine: MachineModel,
    cal: Calibration | None = None,
    history: list[dict] | None = None,
    *,
    dataset: str | None = None,
    scale: float | None = None,
    seed: int = 7,
    ilu_fill: int = 1,
    ordering: str = "rcm",
    field=None,
    margin: float = DEFAULT_MARGIN,
    max_workers: int | None = None,
    allow_dist: bool = True,
    serve_cases: int = 1,
) -> TunedConfig:
    """Choose the fastest configuration for one mesh on one machine."""
    host = cal.host if cal is not None else None
    # never price more workers than the machine *or the real host* has:
    # an uncalibrated (paper-machine) model must not oversubscribe the
    # box it actually runs on
    import os

    max_w = min(max_workers or machine.n_cores, machine.n_cores,
                os.cpu_count() or 1)
    source = "model"

    # --- ordering: keep RCM unless the host shows no locality penalty ---
    orderings = {"rcm", "natural"}
    best_ordering = ordering if ordering in orderings else "rcm"
    if machine.unordered_latency_factor > 1.02:
        best_ordering = "rcm"

    # --- edge dimension --------------------------------------------------
    edge = _edge_candidates(mesh, machine, best_ordering, max_w)
    default_edge = edge[0]
    for c in edge[1:]:
        ratio = _history_ratio(
            history, c.get("hist_key", ""), dataset=dataset, scale=scale,
            seed=seed, host=host,
        )
        if ratio is not None:
            c["resid_seconds"] = default_edge["resid_seconds"] * ratio
            c["jac_seconds"] = default_edge["jac_seconds"] * ratio
            source = "model+history"
    best_edge = min(edge[1:], key=lambda c: c["resid_seconds"],
                    default=default_edge)
    if best_edge["resid_seconds"] >= margin * default_edge["resid_seconds"]:
        best_edge = default_edge

    # --- sparse dimension ------------------------------------------------
    sparse = _sparse_candidates(mesh, machine, ilu_fill, max_w, seed)
    default_sparse = sparse[0]

    def sparse_step(c: dict) -> float:
        return c["ilu_seconds"] + TRSV_PER_STEP * c["trsv_seconds"]

    best_sparse = min(sparse[1:], key=sparse_step, default=default_sparse)
    if sparse_step(best_sparse) >= margin * sparse_step(default_sparse):
        best_sparse = default_sparse

    # --- fusion ----------------------------------------------------------
    saving = _fuse_saving_seconds(
        machine, mesh, field, best_edge["workers"]
    )
    fused_resid = max(best_edge["resid_seconds"] - saving, 0.0)
    fuse = "on" if fused_resid < margin * best_edge["resid_seconds"] \
        else "off"
    resid_chosen = fused_resid if fuse == "on" \
        else best_edge["resid_seconds"]

    # --- assemble smp step costs ----------------------------------------
    def step_cost(resid: float, jac: float, sp: dict) -> float:
        return (
            RESID_EVALS_PER_STEP * resid + jac + sparse_step(sp)
        )

    default_step = step_cost(
        default_edge["resid_seconds"], default_edge["jac_seconds"],
        default_sparse,
    )
    smp_step = step_cost(resid_chosen, best_edge["jac_seconds"],
                         best_sparse)

    candidates = [("default", default_step)]
    candidates += [
        (c["label"], step_cost(c["resid_seconds"], c["jac_seconds"],
                               default_sparse))
        for c in edge[1:]
    ]
    candidates += [
        (c["label"],
         step_cost(default_edge["resid_seconds"],
                   default_edge["jac_seconds"], c))
        for c in sparse[1:]
    ]

    # --- ranks x workers split on the calibrated local fabric -----------
    chosen_ranks = 0
    dist_step = float("inf")
    if allow_dist and machine.n_cores >= 4:
        fabric = calibrated_fabric(cal, machine)
        dist = _dist_candidates(
            mesh, machine, fabric, default_edge["resid_seconds"],
            default_edge["jac_seconds"], default_sparse,
            max_ranks=min(max_w, 8),
        )
        candidates += [(c["label"], c["step_seconds"]) for c in dist]
        if dist:
            best_dist = min(dist, key=lambda c: c["step_seconds"])
            if best_dist["step_seconds"] < margin * min(smp_step,
                                                        default_step):
                chosen_ranks = best_dist["ranks"]
                dist_step = best_dist["step_seconds"]

    # --- serve batch width: amortize dispatch over stacked cases --------
    dispatch = machine.dispatch_seconds() + machine.barrier_seconds(
        max(best_edge["workers"], 2)
    )
    marginal = max(resid_chosen, 1e-12)
    batch_width = int(np.clip(np.ceil(dispatch / (0.05 * marginal)),
                              1, 8))
    if serve_cases > 1:
        batch_width = min(batch_width, serve_cases)

    if chosen_ranks:
        return TunedConfig(
            edge_backend="serial", workers=1,
            edge_strategy="owner", partitioner="metis",
            fuse=fuse, ordering=best_ordering,
            sparse_backend="serial", sparse_strategy="p2p",
            sparse_workers=0, dist_ranks=chosen_ranks,
            batch_width=batch_width,
            predicted_step_seconds=dist_step,
            default_step_seconds=default_step,
            source=source, machine=machine.name,
            candidates=tuple(candidates),
        )
    return TunedConfig(
        edge_backend=best_edge["backend"],
        workers=best_edge["workers"],
        edge_strategy=best_edge["strategy"],
        partitioner=best_edge["partitioner"],
        fuse=fuse,
        ordering=best_ordering,
        sparse_backend=best_sparse["backend"],
        sparse_strategy=best_sparse["strategy"],
        sparse_workers=best_sparse["workers"],
        dist_ranks=0,
        batch_width=batch_width,
        predicted_step_seconds=smp_step,
        default_step_seconds=default_step,
        source=source,
        machine=machine.name,
        candidates=tuple(candidates),
    )
