"""Host calibration: fit the MachineModel constants from micro-benchmarks.

The analytic models in :mod:`repro.smp` are calibrated to the *paper's*
2013 Xeon, so their absolute predictions say nothing about the host that
actually runs a solve.  ``repro calibrate`` measures the host with short
micro-bench sweeps — STREAM-style bandwidth vs thread count, gather
per-load latency (sorted vs shuffled index), the real flux / TRSV / ILU
kernels on a small mesh, barrier / P2P-flag / fleet-dispatch sync costs,
and a forked-rank allreduce — and fits the small set of
:class:`~repro.smp.machine.MachineModel` constants from them, following
the empirical-overhead-factor pattern (measure a primitive, divide by the
pure model, keep the ratio as the calibrated constant).

Fitting (:func:`fit_machine_model`) is **pure**: raw measurements in,
model out, no clocks — so a calibration file round-trips exactly and the
fit is unit-testable with synthetic measurements.  Constants that cannot
be observed from NumPy-level Python (``prefetch_stall_factor``,
``simd_gather_factor``, ``atomic_cycles``, ``smt_yield``) keep their
paper-calibrated defaults; DESIGN.md lists which is which.

The result is written to ``.repro_calibration.json`` (schema
``repro.calibration/v1``) stamped with the host fingerprint;
:func:`active_model` only honors a file whose *stable* fingerprint subset
(cpu count, architecture, python/numpy — not the git revision) matches
the current host, and falls back to the analytic paper model otherwise.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..obs.live.fingerprint import host_fingerprint, same_host, stable_host_key
from ..smp.cost import FLUX_WORK_PER_EDGE
from ..smp.machine import XEON_E5_2690_V2, MachineModel

__all__ = [
    "CALIBRATION_SCHEMA",
    "DEFAULT_CALIBRATION_PATH",
    "Calibration",
    "stable_host_key",
    "same_host",
    "run_micro_benchmarks",
    "fit_machine_model",
    "run_calibration",
    "save_calibration",
    "load_calibration",
    "active_model",
    "calibrated_fabric",
]

CALIBRATION_SCHEMA = "repro.calibration/v1"
DEFAULT_CALIBRATION_PATH = ".repro_calibration.json"


@dataclass(frozen=True)
class Calibration:
    """A fitted machine model plus the raw measurements that produced it."""

    model: MachineModel
    host: dict
    micro: dict
    #: fitted per-stage allreduce cost of the host's forked-rank fabric
    allreduce_stage_cost: float
    fast: bool = False
    created: float = 0.0

    def to_dict(self) -> dict:
        return {
            "schema": CALIBRATION_SCHEMA,
            "created": self.created,
            "fast": self.fast,
            "host": self.host,
            "allreduce_stage_cost": self.allreduce_stage_cost,
            "micro": self.micro,
            "model": self.model.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Calibration":
        return cls(
            model=MachineModel.from_dict(d["model"]),
            host=d.get("host", {}),
            micro=d.get("micro", {}),
            allreduce_stage_cost=float(d.get("allreduce_stage_cost", 0.0)),
            fast=bool(d.get("fast", False)),
            created=float(d.get("created", 0.0)),
        )

    def matches_host(self, fp: dict | None = None) -> bool:
        return same_host(self.host, fp)


# ---------------------------------------------------------------------------
# micro-benchmarks (everything below measures; nothing below fits)
# ---------------------------------------------------------------------------
def _stream_sweep(thread_counts, n_doubles: int, repeats: int) -> dict:
    """Threaded STREAM triad: aggregate B/s per thread count.

    NumPy releases the GIL inside large ufuncs, so plain threads expose
    the host's real bandwidth-vs-core curve (the ``bandwidth(t)`` model).
    """
    bws = []
    for t in thread_counts:
        rng = np.random.default_rng(0)
        arrs = [
            (rng.random(n_doubles), rng.random(n_doubles),
             np.empty(n_doubles))
            for _ in range(t)
        ]
        start = threading.Barrier(t + 1)
        done = threading.Barrier(t + 1)

        def worker(i: int) -> None:
            b, c, a = arrs[i]
            for _ in range(repeats + 1):
                start.wait()
                np.multiply(c, 3.0, out=a)
                a += b
                done.wait()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(t)
        ]
        for th in threads:
            th.start()
        best = 0.0
        for rep in range(repeats + 1):
            start.wait()
            t0 = time.perf_counter()
            done.wait()
            dt = time.perf_counter() - t0
            if rep == 0:
                continue  # warm-up (page faults, thread spin-up)
            best = max(best, 3.0 * 8.0 * n_doubles * t / dt)
        for th in threads:
            th.join()
        bws.append(best)
    return {
        "threads": [int(t) for t in thread_counts],
        "bandwidth_bps": bws,
        "n_doubles": int(n_doubles),
    }


def _gather_latency(n: int, repeats: int, seed: int) -> dict:
    """Per-element fancy-index gather seconds, ordered vs shuffled index.

    The ordered walk is the RCM-renumbered mesh's access pattern; the
    shuffled one is the unordered mesh's.  Their ratio fits
    ``unordered_latency_factor``; the ordered latency (converted to cycles
    by the fitted frequency) fits ``stall_per_load``.
    """
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    idx_sorted = np.arange(n, dtype=np.int64)
    idx_shuffled = rng.permutation(n).astype(np.int64)
    out = {}
    for name, idx in (("sorted", idx_sorted), ("shuffled", idx_shuffled)):
        best = float("inf")
        for _ in range(repeats + 1):
            t0 = time.perf_counter()
            a[idx]
            best = min(best, time.perf_counter() - t0)
        out[f"per_load_seconds_{name}"] = best / n
    out["n"] = int(n)
    return out


def _flux_kernel(mesh, repeats: int, seed: int) -> dict:
    """Measured ns/edge of the real interior flux kernel (serial)."""
    from ..cfd.flux import interior_flux_residual
    from ..cfd.state import FlowField

    field = FlowField(mesh)
    rng = np.random.default_rng(seed)
    q = np.tile(np.array([0.0, 1.0, 0.05, 0.0]), (field.n_vertices, 1))
    q += 0.05 * rng.normal(size=q.shape)
    interior_flux_residual(field, q, 4.0)  # warm-up (plan compilation)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        interior_flux_residual(field, q, 4.0)
        best = min(best, time.perf_counter() - t0)
    return {
        "per_edge_seconds": best / mesh.n_edges,
        "n_edges": int(mesh.n_edges),
    }


def _sparse_kernels(mesh, repeats: int, seed: int) -> dict:
    """Measured serial TRSV and ILU walls + their counted flops."""
    from ..sparse.ilu import build_ilu_plan, ilu_factorize
    from ..sparse.trsv import trsv_solve
    from ..smp.bench import _trsv_matrix

    matrix = _trsv_matrix(mesh, seed)
    plan = build_ilu_plan(matrix.rowptr, matrix.cols, b=matrix.b,
                          fill_level=0)
    rng = np.random.default_rng(seed + 1)
    rhs = rng.normal(size=(plan.n, plan.b))
    factor = ilu_factorize(matrix, plan)
    trsv_solve(factor, rhs)  # warm-up
    ilu_best = trsv_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        ilu_factorize(matrix, plan)
        ilu_best = min(ilu_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        trsv_solve(factor, rhs)
        trsv_best = min(trsv_best, time.perf_counter() - t0)
    nnzb, n, b = plan.cols.shape[0], plan.n, plan.b
    return {
        "trsv_seconds": trsv_best,
        "trsv_flops": float(nnzb * 2.0 * b * b + n * 2.0 * b * b),
        "ilu_seconds": ilu_best,
        "ilu_flops": float(
            plan.factor_block_ops() * 2.0 * b**3 + n * (2.0 / 3.0) * b**3
        ),
        "nnzb": int(nnzb),
        "n": int(n),
        "b": int(b),
    }


def _barrier_cost(thread_counts, waits: int) -> dict:
    """Measured per-wait seconds of a centralized barrier at t threads."""
    rows = []
    for t in thread_counts:
        bar = threading.Barrier(t)

        def worker() -> None:
            for _ in range(waits):
                bar.wait()

        threads = [
            threading.Thread(target=worker, daemon=True) for _ in range(t - 1)
        ]
        t0 = time.perf_counter()
        for th in threads:
            th.start()
        for _ in range(waits):
            bar.wait()
        for th in threads:
            th.join()
        rows.append((time.perf_counter() - t0) / waits)
    return {
        "threads": [int(t) for t in thread_counts],
        "per_barrier_seconds": rows,
        "waits": int(waits),
    }


def _p2p_flag_cost(rounds: int, budget_s: float = 0.5) -> dict:
    """Shared-memory flag ping-pong between two forked processes.

    The same transport the P2P sparse backend's generation flags use:
    one side spins on a shm word the other writes.  ``budget_s`` bounds
    the measurement on oversubscribed hosts (where a spin round trip is
    honestly a scheduler timeslice — the fitted cost reflects that).
    """
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    buf = ctx.RawArray("q", 2)

    def child() -> None:
        arr = np.frombuffer(buf, dtype=np.int64)
        for i in range(1, rounds + 1):
            while arr[0] < i:
                pass
            arr[1] = i

    proc = ctx.Process(target=child, daemon=True)
    proc.start()
    arr = np.frombuffer(buf, dtype=np.int64)
    t0 = time.perf_counter()
    done = 0
    for i in range(1, rounds + 1):
        arr[0] = i
        while arr[1] < i:
            pass
        done = i
        if time.perf_counter() - t0 > budget_s:
            break
    dt = time.perf_counter() - t0
    arr[0] = rounds  # release the child's remaining iterations
    proc.join(timeout=10.0)
    return {"per_sync_seconds": dt / (2 * max(done, 1)), "rounds": int(done)}


def _dispatch_cost(rounds: int) -> dict:
    """Pipe round trip to a forked child: one fleet-dispatch latency."""
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    parent, child_end = ctx.Pipe()

    def child(conn) -> None:
        while True:
            msg = conn.recv()
            if msg is None:
                return
            conn.send(msg)

    proc = ctx.Process(target=child, args=(child_end,), daemon=True)
    proc.start()
    parent.send(0)
    parent.recv()  # warm-up
    t0 = time.perf_counter()
    for i in range(rounds):
        parent.send(i)
        parent.recv()
    dt = time.perf_counter() - t0
    parent.send(None)
    proc.join(timeout=10.0)
    return {"per_dispatch_seconds": dt / rounds, "rounds": int(rounds)}


def _allreduce_cost(rank_counts, rounds: int, nbytes: int = 64) -> dict:
    """Parent-mediated allreduce of an ``nbytes`` vector over forked ranks.

    Same transport family as the rank runtime (fork + IPC); the fitted
    per-stage cost feeds the calibrated local fabric's
    ``allreduce_time`` so the dist comm model predicts *this host's*
    reductions rather than Stampede's.
    """
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    width = max(nbytes // 8, 1)
    rows = []
    for r in rank_counts:
        pipes = [ctx.Pipe() for _ in range(r)]

        def child(conn) -> None:
            while True:
                vec = conn.recv()
                if vec is None:
                    return
                conn.send(vec * 2.0)

        procs = [
            ctx.Process(target=child, args=(child_end,), daemon=True)
            for _, child_end in pipes
        ]
        for p in procs:
            p.start()
        vec = np.ones(width)
        for parent, _ in pipes:  # warm-up round
            parent.send(vec)
        acc = sum(parent.recv() for parent, _ in pipes)
        t0 = time.perf_counter()
        for _ in range(rounds):
            for parent, _ in pipes:
                parent.send(vec)
            acc = sum(parent.recv() for parent, _ in pipes)
        dt = time.perf_counter() - t0
        for parent, _ in pipes:
            parent.send(None)
        for p in procs:
            p.join(timeout=10.0)
        del acc
        rows.append(dt / rounds)
    return {
        "ranks": [int(r) for r in rank_counts],
        "per_allreduce_seconds": rows,
        "nbytes": int(nbytes),
        "rounds": int(rounds),
    }


def run_micro_benchmarks(
    fast: bool = False, max_threads: int | None = None, seed: int = 7
) -> dict:
    """All raw measurements :func:`fit_machine_model` needs, as one dict."""
    ncpu = os.cpu_count() or 1
    cap = min(max_threads or ncpu, ncpu)
    thread_counts = [1]
    t = 2
    while t <= cap:
        thread_counts.append(t)
        t *= 2
    if cap > 1 and cap not in thread_counts:
        thread_counts.append(cap)

    stream_n = 1_000_000 if fast else 4_000_000
    gather_n = 500_000 if fast else 2_000_000
    repeats = 3 if fast else 5
    mesh_scale = 0.04 if fast else 0.08

    from ..mesh import dataset_mesh

    mesh = dataset_mesh("mesh-c", scale=mesh_scale, seed=seed,
                        ordering="rcm")
    barrier_counts = [t for t in thread_counts if t >= 2][:2] or []
    rank_counts = [r for r in (2, 4) if r <= cap] if cap >= 2 else []

    micro: dict = {
        "cpu_count": int(ncpu),
        "mesh_scale": mesh_scale,
        "stream": _stream_sweep(thread_counts, stream_n, repeats),
        "gather": _gather_latency(gather_n, repeats, seed),
        "flux": _flux_kernel(mesh, repeats, seed),
        "sparse": _sparse_kernels(mesh, repeats, seed),
    }
    if barrier_counts:
        micro["barrier"] = _barrier_cost(barrier_counts, 50 if fast else 200)
    if ncpu >= 2:
        micro["p2p"] = _p2p_flag_cost(200 if fast else 1000)
    micro["dispatch"] = _dispatch_cost(30 if fast else 100)
    if rank_counts:
        micro["allreduce"] = _allreduce_cost(rank_counts, 20 if fast else 60)
    return micro


# ---------------------------------------------------------------------------
# fitting (pure: measurements in, model out — no clocks)
# ---------------------------------------------------------------------------
def _clamp(x: float, lo: float, hi: float) -> float:
    return float(min(max(x, lo), hi))


def fit_machine_model(
    micro: dict, base: MachineModel = XEON_E5_2690_V2
) -> MachineModel:
    """Fit a host :class:`MachineModel` from raw micro-bench measurements.

    Deterministic and side-effect free; every constant not derivable from
    ``micro`` keeps ``base``'s value.  The frequency is an *effective*
    NumPy-execution frequency solved from the measured flux kernel through
    the exact cost-model path the flux predictions use (AoS + SIMD +
    prefetch + RCM), so model and measurement meet on the same terms.
    """
    ncpu = int(micro.get("cpu_count") or 1)

    stream = micro.get("stream", {})
    bws = [float(b) for b in stream.get("bandwidth_bps", [])]
    threads = [int(t) for t in stream.get("threads", [])]
    core_bw = bws[threads.index(1)] if 1 in threads and bws else base.core_bw
    stream_bw = max(bws) if bws else base.stream_bw
    stream_bw = max(stream_bw, core_bw)

    gather = micro.get("gather", {})
    g_sorted = float(gather.get("per_load_seconds_sorted", 0.0))
    g_shuffled = float(gather.get("per_load_seconds_shuffled", g_sorted))
    unordered = (
        _clamp(g_shuffled / g_sorted, 1.0, 4.0)
        if g_sorted > 0
        else base.unordered_latency_factor
    )

    # --- effective frequency from the measured flux kernel --------------
    # model (aos+simd+prefetch+rcm):  t_edge = compute/freq + loads * lat_s
    # with lat_s = g_sorted * simd_gather_factor * prefetch_stall_factor.
    flux = micro.get("flux", {})
    t_edge = float(flux.get("per_edge_seconds", 0.0))
    compute_cycles = (
        FLUX_WORK_PER_EDGE["flops_per_edge"] / base.flops_per_cycle_simd
    )
    loads = FLUX_WORK_PER_EDGE["gather_loads_aos"]
    lat_s = g_sorted * base.simd_gather_factor * base.prefetch_stall_factor
    if t_edge > 0:
        # keep at least 20% of the measured time attributed to compute so
        # a gather-dominated host cannot drive the frequency negative
        compute_s = max(t_edge - loads * lat_s, 0.2 * t_edge)
        freq = _clamp(compute_cycles / compute_s, 1e7, 1e11)
    else:
        freq = base.freq_hz
    stall = (
        _clamp(g_sorted * freq, 0.05, 500.0)
        if g_sorted > 0
        else base.stall_per_load
    )

    # --- small-block rates from the measured serial TRSV / ILU ----------
    sparse = micro.get("sparse", {})
    fpcs = base.flops_per_cycle_scalar
    ilu_rate_factor = base.ilu_rate_factor
    if sparse.get("trsv_seconds", 0) and sparse.get("trsv_flops", 0):
        trsv_rate = sparse["trsv_flops"] / sparse["trsv_seconds"]
        fpcs = _clamp(trsv_rate / (freq * base.block_simd_boost), 0.02, 16.0)
    if sparse.get("ilu_seconds", 0) and sparse.get("ilu_flops", 0):
        ilu_rate = sparse["ilu_flops"] / sparse["ilu_seconds"]
        block_rate = freq * fpcs * base.block_simd_boost
        ilu_rate_factor = _clamp(ilu_rate / block_rate, 0.01, 4.0)

    barrier_ns = base.barrier_base_ns
    bar = micro.get("barrier", {})
    if bar.get("per_barrier_seconds"):
        fits = [
            per / (2.0 * np.log2(t)) * 1e9
            for t, per in zip(bar["threads"], bar["per_barrier_seconds"])
            if t >= 2
        ]
        if fits:
            barrier_ns = float(np.median(fits))

    p2p_ns = base.p2p_sync_ns
    if micro.get("p2p", {}).get("per_sync_seconds"):
        p2p_ns = micro["p2p"]["per_sync_seconds"] * 1e9

    dispatch_ns = 0.0
    if micro.get("dispatch", {}).get("per_dispatch_seconds"):
        dispatch_ns = micro["dispatch"]["per_dispatch_seconds"] * 1e9

    return base.with_overrides(
        name=f"calibrated({ncpu} cpu)",
        n_cores=ncpu,
        smt=1,
        freq_hz=freq,
        flops_per_cycle_scalar=fpcs,
        stream_bw=stream_bw,
        core_bw=core_bw,
        stall_per_load=stall,
        unordered_latency_factor=unordered,
        ilu_rate_factor=ilu_rate_factor,
        barrier_base_ns=barrier_ns,
        p2p_sync_ns=p2p_ns,
        dispatch_ns=dispatch_ns,
    )


def fit_allreduce_stage_cost(micro: dict) -> float:
    """Per-stage allreduce cost of the host's forked-rank transport."""
    allred = micro.get("allreduce", {})
    rows = allred.get("per_allreduce_seconds") or []
    ranks = allred.get("ranks") or []
    fits = [
        per / max(np.ceil(np.log2(r)), 1.0)
        for r, per in zip(ranks, rows)
        if r >= 2
    ]
    return float(np.median(fits)) if fits else 0.0


# ---------------------------------------------------------------------------
# file I/O + the active-model fallback chain
# ---------------------------------------------------------------------------
def run_calibration(
    fast: bool = False, max_threads: int | None = None, seed: int = 7
) -> Calibration:
    """Measure this host and fit its model (the ``repro calibrate`` body)."""
    micro = run_micro_benchmarks(fast=fast, max_threads=max_threads,
                                 seed=seed)
    return Calibration(
        model=fit_machine_model(micro),
        host=host_fingerprint(),
        micro=micro,
        allreduce_stage_cost=fit_allreduce_stage_cost(micro),
        fast=fast,
        created=time.time(),
    )


def save_calibration(cal: Calibration, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(cal.to_dict(), fh, indent=2)
        fh.write("\n")


def load_calibration(path: str) -> Calibration | None:
    """Parse a calibration file; ``None`` on missing/invalid/wrong schema."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != CALIBRATION_SCHEMA:
        return None
    try:
        return Calibration.from_dict(doc)
    except (KeyError, TypeError, ValueError):
        return None


def active_model(
    path: str | None = None, require_host_match: bool = True
) -> tuple[MachineModel, Calibration | None]:
    """The model cost paths should price with on this host.

    Returns ``(calibrated model, calibration)`` when ``path`` holds a
    valid calibration for this host, else ``(analytic paper model, None)``
    — the graceful-fallback contract: everything downstream works without
    a calibration file, it just prices with assumed constants.
    """
    cal = load_calibration(path or DEFAULT_CALIBRATION_PATH)
    if cal is None:
        return XEON_E5_2690_V2, None
    if require_host_match and not cal.matches_host():
        return XEON_E5_2690_V2, None
    return cal.model, cal


def calibrated_fabric(cal: Calibration | None, machine: MachineModel):
    """A local 'fat tree' priced from host measurements.

    The forked ranks of :mod:`repro.dist.runtime` talk over shm mailboxes
    on one node; modeling them as a single-leaf fabric with the measured
    link bandwidth / sync latencies lets the existing
    :class:`~repro.dist.network.FatTreeNetwork` comm model predict *local*
    halo and allreduce walls.  Without a calibration the constants fall
    back to the machine model's sync terms.
    """
    from ..dist.network import FatTreeNetwork

    stage = cal.allreduce_stage_cost if cal is not None else 0.0
    if stage <= 0.0:
        stage = machine.dispatch_seconds() + machine.barrier_seconds(
            max(machine.n_cores, 2)
        ) + machine.p2p_seconds()
    return FatTreeNetwork(
        name=f"local fabric ({machine.name})",
        link_bw=machine.stream_bw,
        base_latency=max(machine.p2p_seconds(), 1e-9),
        hop_latency=0.0,
        nodes_per_leaf=max(machine.n_cores, 1),
        allreduce_stage_cost=stage,
    )
