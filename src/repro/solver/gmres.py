"""Restarted flexible GMRES with Givens rotations.

The Krylov method inside the paper's Newton-Krylov-Schwarz solver.  Flexible
(right-preconditioned, storing the preconditioned basis) so matrix-free
operators and subdomain-parallel preconditioners drop in as plain callables.
Orthogonalization uses classical Gram-Schmidt expressed as one fused
``VecMDot`` + ``VecMAXPY`` pair per iteration — the same vector-primitive mix
PETSc's GMRES produces, which the multi-node experiments count (the
``MPI_Allreduce`` per iteration that dominates at 256 nodes lives in
``VecMDot``/``VecNorm``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs.live.plane import get_live_writer
from ..obs.metrics import get_metrics
from ..obs.span import get_tracer
from ..petsclite.vec import vec_copy, vec_maxpy, vec_mdot, vec_norm, vec_scale

__all__ = ["GMRESResult", "gmres"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class GMRESResult:
    """Outcome of a GMRES solve."""

    x: np.ndarray
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else np.inf


def gmres(
    op: Operator,
    b: np.ndarray,
    precond: Operator | None = None,
    x0: np.ndarray | None = None,
    rtol: float = 1e-5,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 300,
) -> GMRESResult:
    """Solve ``op(x) = b`` with restarted FGMRES.

    ``precond`` applies the (right) preconditioner M^-1; None means identity.
    Convergence: ``||b - op(x)|| <= max(rtol * ||b||, atol)``.
    """
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else x0.copy()
    M = precond if precond is not None else lambda v: v
    metrics = get_metrics()
    # allreduce accounting: every vec_norm / vec_mdot is one global
    # reduction in the distributed setting (the Fig. 10 MPI_Allreduce wall)
    allreduces = 1  # the ||b|| norm below

    bnorm = vec_norm(b)
    if bnorm == 0.0:
        metrics.counter("gmres.allreduces").inc(allreduces)
        return GMRESResult(x=np.zeros(n), iterations=0, residual_norms=[0.0], converged=True)
    tol = max(rtol * bnorm, atol)

    res_hist: list[float] = []
    total_it = 0
    converged = False

    with get_tracer().span("gmres", restart=restart, rtol=rtol) as gm_span:
        converged, total_it, allreduces = _gmres_cycles(
            op, b, M, x, tol, restart, maxiter, res_hist, allreduces
        )
        if gm_span is not None:
            gm_span.attrs["iterations"] = total_it

    metrics.counter("gmres.solves").inc()
    metrics.counter("gmres.iterations").inc(total_it)
    metrics.counter("gmres.allreduces").inc(allreduces)
    metrics.histogram("gmres.iters_per_solve").observe(total_it)

    return GMRESResult(
        x=x,
        iterations=total_it,
        residual_norms=res_hist,
        converged=converged,
    )


def _gmres_cycles(
    op: Operator,
    b: np.ndarray,
    M: Operator,
    x: np.ndarray,
    tol: float,
    restart: int,
    maxiter: int,
    res_hist: list[float],
    allreduces: int,
) -> tuple[bool, int, int]:
    """Restart cycles of :func:`gmres`; updates ``x`` in place."""
    live = get_live_writer()  # ambient telemetry row (set by the CLI)
    x0_zero = not x.any()
    total_it = 0
    converged = False
    while total_it < maxiter and not converged:
        r = b - op(x) if total_it else (vec_copy(b) if x0_zero else b - op(x))
        beta = vec_norm(r)
        allreduces += 1
        res_hist.append(beta)
        if beta <= tol:
            converged = True
            break
        m = min(restart, maxiter - total_it)
        V = [vec_scale(r, 1.0 / beta)]  # orthonormal basis
        Z: list[np.ndarray] = []  # preconditioned basis (flexible)
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        j_done = 0
        for j in range(m):
            z = M(V[j])
            Z.append(z)
            w = op(z)
            if w is z or w is V[j]:  # defend against aliasing operators
                w = w.copy()
            # classical Gram-Schmidt: one fused MDot + MAXPY
            h = vec_mdot(V, w)
            vec_maxpy(w, -h, V)
            allreduces += 2  # the MDot and the norm below
            H[: j + 1, j] = h
            H[j + 1, j] = vec_norm(w)
            if H[j + 1, j] > 1e-14 * max(beta, 1.0):
                V.append(vec_scale(w, 1.0 / H[j + 1, j]))
            else:
                V.append(np.zeros_like(w))  # lucky breakdown
            # apply stored Givens rotations to the new column
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            # new rotation
            denom = np.hypot(H[j, j], H[j + 1, j])
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, H[j + 1, j] / denom
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_it += 1
            if live is not None:
                live.add(gmres_iters=1.0)
            j_done = j + 1
            res_hist.append(abs(g[j + 1]))
            if abs(g[j + 1]) <= tol:
                converged = True
                break
        # solve the small triangular system and update x
        if j_done:
            y = np.zeros(j_done)
            for i in range(j_done - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1 : j_done] @ y[i + 1 : j_done]) / H[i, i]
            vec_maxpy(x, y, Z[:j_done])

    return converged, total_it, allreduces
