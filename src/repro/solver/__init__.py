"""Newton-Krylov-Schwarz solver stack: GMRES, JFNK, ASM-ILU, pseudo-transient."""

from .gmres import GMRESResult, gmres
from .jfnk import fd_jacobian_operator
from .newton import (
    SolveResult,
    SolverOptions,
    SteadySolverSession,
    solve_steady,
)
from .schwarz import AdditiveSchwarzILU, SubdomainILU

__all__ = [
    "GMRESResult",
    "gmres",
    "fd_jacobian_operator",
    "SolveResult",
    "SolverOptions",
    "SteadySolverSession",
    "solve_steady",
    "AdditiveSchwarzILU",
    "SubdomainILU",
]
