"""Pseudo-transient inexact Newton driver (the paper's NKS outer loop).

Each pseudo-time step l solves, inexactly with preconditioned GMRES,

    [ V/dt_l + df/du ] du = -f(u_l)

where the operator action is matrix-free (second-order residual, FD
directional derivative plus exact ``V/dt`` diagonal) and the preconditioner
is an additive-Schwarz block-ILU of the *first-order* Jacobian.  The CFL
grows by SER so the iteration transitions from pseudo-time marching to
Newton's method; iteration and step counts come out as the Table I / II
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..cfd.jacobian import JacobianAssembler
from ..cfd.residual import compute_residual, residual_norm
from ..cfd.state import FlowConfig, FlowField
from ..cfd.timestep import local_timestep, ser_cfl
from ..obs.live.plane import get_live_writer
from ..obs.metrics import get_metrics
from ..obs.span import get_tracer, kernel_span
from .gmres import gmres
from .jfnk import fd_jacobian_operator
from .schwarz import AdditiveSchwarzILU

__all__ = [
    "SolverOptions",
    "SolveResult",
    "SteadySolverSession",
    "solve_steady",
]


@dataclass
class SolverOptions:
    """Knobs of the pseudo-transient Newton-Krylov-Schwarz solve."""

    cfl0: float = 10.0
    cfl_max: float = 1e5
    max_steps: int = 100
    steady_rtol: float = 1e-6  # outer convergence: ||f|| / ||f_0||
    steady_atol: float = 1e-12
    gmres_rtol: float = 1e-2
    gmres_restart: int = 30
    gmres_maxiter: int = 60
    ilu_fill: int = 0
    n_subdomains: int = 1
    subdomain_labels: np.ndarray | None = None
    overlap: int = 0
    max_update: float = 0.5  # clip |du| per step (robustness)
    #: True (default): matrix-free JFNK products against the second-order
    #: residual (the paper's configuration).  False: defect correction —
    #: the assembled first-order Jacobian is the Krylov operator itself
    #: (cheaper per iteration, first-order-limited convergence path).
    matrix_free: bool = True
    #: ``serial`` (in-process kernels) or ``process``: run ILU/TRSV on a
    #: :class:`repro.smp.sparse_parallel.SparseProcessBackend` fleet.
    sparse_backend: str = "serial"
    sparse_strategy: str = "p2p"  # levels | p2p
    sparse_workers: int = 2


@dataclass
class SolveResult:
    """Convergence record of a steady solve."""

    q: np.ndarray
    steps: int
    linear_iterations: int
    residual_history: list[float] = field(default_factory=list)
    cfl_history: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def initial_residual(self) -> float:
        return self.residual_history[0]

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1]


class SteadySolverSession:
    """Warm, reusable solver context for repeated solves on one field.

    Everything that depends only on the *structure* of the problem — the
    Jacobian pattern and assembler workspaces, the BCSR matrix, the
    additive-Schwarz subdomain split with its ILU symbolic plans, and an
    optional :class:`~repro.smp.sparse_parallel.SparseProcessBackend`
    worker fleet — is built once here and reused by every :meth:`solve`.
    Only the state arrays and the :class:`FlowConfig` differ per case, so
    an angle-of-attack / Mach sweep pays the setup exactly once (the serve
    daemon's warm-cache story; the paper's setup-vs-solve cost split).

    Numerics contract: :meth:`solve` is bitwise identical to a fresh
    :func:`solve_steady` with the same options — the assembler overwrites
    the matrix (``set_zero``) and the preconditioner refactorizes from the
    current values on every Newton step, so no state leaks between cases.
    Property-tested in ``tests/test_serve.py``.
    """

    def __init__(self, fld: FlowField, opts: SolverOptions | None = None):
        opts = opts or SolverOptions()
        if opts.sparse_backend not in ("serial", "process"):
            raise ValueError(
                f"unknown sparse backend {opts.sparse_backend!r}; "
                "pick 'serial' or 'process'"
            )
        self.field = fld
        self.opts = opts
        self.assembler = JacobianAssembler(fld)
        self.A = self.assembler.new_matrix()
        labels = opts.subdomain_labels
        if labels is None and opts.n_subdomains > 1:
            from ..partition.multilevel import partition_graph

            labels = partition_graph(
                fld.mesh.edges, fld.n_vertices, opts.n_subdomains
            )
        self.precond = AdditiveSchwarzILU(
            self.A, labels=labels, overlap=opts.overlap,
            fill_level=opts.ilu_fill,
        )
        self._backend = None
        self._owns_backend = False
        self._closed = False

    # ------------------------------------------------------------------
    def _sparse_cm(self):
        """Context installing the session's sparse fleet (if configured).

        An ambient backend installed by the caller (e.g. the serve daemon
        keeping one fleet warm across requests) takes precedence: the
        session then never forks its own workers.
        """
        from contextlib import nullcontext

        if self.opts.sparse_backend != "process":
            return nullcontext()
        from ..sparse.dispatch import get_sparse_backend, use_sparse_backend

        ambient = get_sparse_backend()
        if ambient is not None and not getattr(ambient, "closed", False):
            return nullcontext()
        if self._backend is None or self._backend.closed:
            from ..smp.sparse_parallel import SparseProcessBackend

            self._backend = SparseProcessBackend(
                n_workers=max(1, self.opts.sparse_workers),
                strategy=self.opts.sparse_strategy,
            )
            self._owns_backend = True
        return use_sparse_backend(self._backend)

    #: solver knobs safe to override per solve: none of them changes a
    #: pattern, plan, partition or fleet, so the warm structures stay valid.
    NONSTRUCTURAL = frozenset({
        "cfl0", "cfl_max", "max_steps", "steady_rtol", "steady_atol",
        "gmres_rtol", "gmres_restart", "gmres_maxiter", "max_update",
        "matrix_free",
    })

    def solve(
        self,
        config: FlowConfig,
        q0: np.ndarray | None = None,
        callback: Callable[[int, float, float], None] | None = None,
        **overrides,
    ) -> SolveResult:
        """One steady solve over the warm structures (see class docstring).

        Keyword overrides are restricted to :attr:`NONSTRUCTURAL` solver
        options (step caps, tolerances, CFL schedule) — anything structural
        requires a new session.
        """
        if self._closed:
            raise RuntimeError("solver session is closed")
        opts = self.opts
        if overrides:
            bad = set(overrides) - self.NONSTRUCTURAL
            if bad:
                raise ValueError(
                    f"structural option(s) {sorted(bad)} cannot be "
                    "overridden on a warm session"
                )
            from dataclasses import replace

            opts = replace(opts, **overrides)
        with self._sparse_cm():
            return _solve_steady_impl(
                self.field, config, opts, q0, callback, session=self
            )

    def close(self) -> None:
        """Tear down the session's own sparse fleet (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._backend is not None and self._owns_backend:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "SteadySolverSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def solve_steady(
    fld: FlowField,
    config: FlowConfig,
    opts: SolverOptions | None = None,
    q0: np.ndarray | None = None,
    callback: Callable[[int, float, float], None] | None = None,
) -> SolveResult:
    """Drive the flow to steady state; returns the state and statistics.

    All hot kernels report to the active perf registry under the paper's
    kernel names (Flux+BC residual assembly under ``flux``/``grad``,
    ``jacobian``, ``ilu``, ``trsv`` inside the preconditioner, vector
    primitives from GMRES under their PETSc names).

    With ``opts.sparse_backend == "process"`` the preconditioner's ILU
    factorizations and triangular solves run on a process fleet
    (:class:`repro.smp.sparse_parallel.SparseProcessBackend`) for the
    duration of the solve; the workers persist across Newton steps and
    Krylov iterations and are torn down on exit.  If a sparse backend is
    already installed (:func:`repro.sparse.use_sparse_backend`), that warm
    fleet is reused instead of forking a fresh one.

    One-shot wrapper over :class:`SteadySolverSession`; callers with many
    structurally-identical cases should hold a session (or go through
    ``repro serve``) to amortize the setup.
    """
    with SteadySolverSession(fld, opts) as session:
        return session.solve(config, q0=q0, callback=callback)


def _solve_steady_impl(
    fld: FlowField,
    config: FlowConfig,
    opts: SolverOptions,
    q0: np.ndarray | None,
    callback: Callable[[int, float, float], None] | None,
    session: SteadySolverSession,
) -> SolveResult:
    tracer = get_tracer()
    metrics = get_metrics()
    nv = fld.n_vertices

    q = fld.initial_state(config) if q0 is None else q0.copy()

    assembler = session.assembler
    A = session.A
    precond = session.precond

    def spatial_residual(u_flat: np.ndarray) -> np.ndarray:
        u = u_flat.reshape(nv, 4)
        r = compute_residual(fld, u, config)
        return r.reshape(-1)

    history: list[float] = []
    cfls: list[float] = []
    total_linear = 0
    converged = False
    cfl = opts.cfl0
    r0_norm = None
    live = get_live_writer()  # ambient telemetry row (set by the CLI)

    step = 0
    with tracer.span(
        "solve", n_vertices=nv, ilu_fill=opts.ilu_fill,
        n_subdomains=opts.n_subdomains,
    ):
        for step in range(1, opts.max_steps + 1):
            with tracer.span("newton-step", step=step):
                res = compute_residual(fld, q, config)
                rnorm = residual_norm(res)
                history.append(rnorm)
                if r0_norm is None:
                    r0_norm = rnorm
                if callback:
                    callback(step, rnorm, cfl)
                tracer.event("residual", step=step, rnorm=rnorm, cfl=cfl)
                metrics.gauge("newton.residual_norm").set(rnorm)
                if live is not None:
                    live.update(
                        step=float(step),
                        residual=float(rnorm),
                        cfl=float(cfl),
                        krylov_iters=float(total_linear),
                    )
                    live.add(newton_steps=1.0)
                if rnorm <= max(opts.steady_rtol * r0_norm, opts.steady_atol):
                    converged = True
                    break
                metrics.counter("newton.steps").inc()

                cfl = ser_cfl(
                    opts.cfl0, r0_norm, rnorm, cfl_max=opts.cfl_max,
                    cfl_prev=cfl,
                )
                cfls.append(cfl)
                dt = local_timestep(fld, q, config, cfl)

                with kernel_span("jacobian"):
                    assembler.assemble(q, config, out=A)
                    assembler.add_pseudo_time(A, dt)
                with kernel_span("ilu"):
                    precond.update(A)

                diag = np.repeat(fld.volumes / dt, 4)
                if opts.matrix_free:
                    op = fd_jacobian_operator(
                        spatial_residual, q.reshape(-1), r0=res.reshape(-1),
                        diag=diag,
                    )
                else:
                    op = A.matvec  # defect correction: first-order operator

                def apply_pc(v: np.ndarray) -> np.ndarray:
                    with kernel_span("trsv"):
                        return precond.apply(v)

                result = gmres(
                    op,
                    -res.reshape(-1),
                    precond=apply_pc,
                    rtol=opts.gmres_rtol,
                    restart=opts.gmres_restart,
                    maxiter=opts.gmres_maxiter,
                )
                total_linear += result.iterations
                metrics.histogram("newton.krylov_per_step").observe(
                    result.iterations
                )

                du = result.x.reshape(nv, 4)
                # clip the update for robustness during the strongly
                # nonlinear transient (acts like the physicality checks in
                # production codes)
                m = np.abs(du).max()
                scale = min(1.0, opts.max_update / m) if m > 0 else 1.0
                q += scale * du

    metrics.gauge("newton.final_residual").set(history[-1] if history else 0.0)
    return SolveResult(
        q=q,
        steps=step,
        linear_iterations=total_linear,
        residual_history=history,
        cfl_history=cfls,
        converged=converged,
    )
