"""Additive Schwarz / block-Jacobi preconditioning with subdomain block-ILU.

The paper's preconditioner: the domain is split into subdomains (one per MPI
rank, or one for the whole node in the shared-memory study); each subdomain
carries an incomplete factorization of the *local* first-order Jacobian, and
the preconditioner applies all subdomain solves additively.  Overlap 0
degenerates to block Jacobi; with overlap, the restricted-additive-Schwarz
variant (solve on the overlapped region, keep only owned updates) is used.

"Applying any approximate subdomain solver in an additive Schwarz manner
tends to improve flop rates ... since the smaller subdomain blocks maintain
better cache residency" — the cost model in ``repro.smp`` captures exactly
this effect through per-subdomain working sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.bcsr import BCSRMatrix
from ..sparse.ilu import ILUPlan, build_ilu_plan, ilu_factorize
from ..sparse.trsv import TrsvWorkspace, trsv_solve

__all__ = ["SubdomainILU", "AdditiveSchwarzILU"]


def _expand_overlap(
    rowptr: np.ndarray, cols: np.ndarray, owned: np.ndarray, overlap: int
) -> np.ndarray:
    """Grow a vertex set by ``overlap`` layers of graph neighbors."""
    in_set = np.zeros(rowptr.shape[0] - 1, dtype=bool)
    in_set[owned] = True
    for _ in range(overlap):
        frontier = np.where(in_set)[0]
        for v in frontier:
            in_set[cols[rowptr[v] : rowptr[v + 1]]] = True
    return np.where(in_set)[0]


@dataclass
class SubdomainILU:
    """ILU factorization of one subdomain's local matrix."""

    owned: np.ndarray  # global block-rows owned by this subdomain
    local_rows: np.ndarray  # global block-rows included (owned + overlap)
    owned_mask: np.ndarray  # mask of owned within local_rows
    plan: ILUPlan
    sub_pattern: tuple[np.ndarray, np.ndarray]
    gather: np.ndarray  # indices of parent blocks forming the local matrix


class AdditiveSchwarzILU:
    """(Restricted) additive Schwarz preconditioner with block-ILU solves.

    Parameters
    ----------
    matrix:
        Global BCSR Jacobian (defines the pattern; values are refreshed each
        call to :meth:`update`).
    labels:
        Subdomain id per block row; ``None`` or all-zeros = single-domain
        global ILU (the paper's single-node configuration).
    overlap:
        Layers of adjacency overlap between subdomains (0 = block Jacobi).
    fill_level:
        ILU fill level (0 or 1 in the paper's study).
    """

    def __init__(
        self,
        matrix: BCSRMatrix,
        labels: np.ndarray | None = None,
        overlap: int = 0,
        fill_level: int = 0,
    ) -> None:
        n = matrix.n_brows
        self.b = matrix.b
        self.n = n
        self.fill_level = fill_level
        if labels is None:
            labels = np.zeros(n, dtype=np.int64)
        self.labels = np.asarray(labels)
        self.n_subdomains = int(self.labels.max()) + 1 if n else 1

        self.subs: list[SubdomainILU] = []
        for s in range(self.n_subdomains):
            owned = np.where(self.labels == s)[0]
            local = (
                _expand_overlap(matrix.rowptr, matrix.cols, owned, overlap)
                if overlap > 0
                else owned
            )
            sub = self._build_subdomain(matrix, owned, local)
            self.subs.append(sub)
        self._factors = [None] * self.n_subdomains
        # per-subdomain scratch, reused across Krylov iterations (the solve
        # runs every GMRES iteration; allocating there dominated profiles)
        self._work = [TrsvWorkspace.for_plan(s.plan) for s in self.subs]
        self._local_z = [
            np.zeros((s.local_rows.shape[0], self.b)) for s in self.subs
        ]

    def _build_subdomain(
        self, matrix: BCSRMatrix, owned: np.ndarray, local: np.ndarray
    ) -> SubdomainILU:
        remap = -np.ones(self.n, dtype=np.int64)
        remap[local] = np.arange(local.shape[0])
        rows = []
        cols = []
        gather = []
        for li, g in enumerate(local):
            lo, hi = matrix.rowptr[g], matrix.rowptr[g + 1]
            for p in range(lo, hi):
                lj = remap[matrix.cols[p]]
                if lj >= 0:
                    rows.append(li)
                    cols.append(lj)
                    gather.append(p)
        nl = local.shape[0]
        rowptr = np.zeros(nl + 1, dtype=np.int64)
        rows_a = np.asarray(rows, dtype=np.int64)
        cols_a = np.asarray(cols, dtype=np.int64)
        gather_a = np.asarray(gather, dtype=np.int64)
        rowptr[1:] = np.bincount(rows_a, minlength=nl)
        np.cumsum(rowptr, out=rowptr)
        plan = build_ilu_plan(rowptr, cols_a, b=self.b, fill_level=self.fill_level)
        owned_mask = np.isin(local, owned)
        return SubdomainILU(
            owned=owned,
            local_rows=local,
            owned_mask=owned_mask,
            plan=plan,
            sub_pattern=(rowptr, cols_a),
            gather=gather_a,
        )

    def update(self, matrix: BCSRMatrix) -> None:
        """Refactor all subdomains from the current matrix values."""
        for s, sub in enumerate(self.subs):
            rowptr, cols = sub.sub_pattern
            local = BCSRMatrix(
                rowptr=rowptr, cols=cols, vals=matrix.vals[sub.gather]
            )
            self._factors[s] = ilu_factorize(local, sub.plan)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """z = M^-1 r (restricted additive Schwarz combination).

        Always returns a *fresh* array: Krylov callers keep each
        preconditioned vector in their flexible basis, so internal scratch
        is never handed out.
        """
        flat = r.ndim == 1
        rb = r.reshape(self.n, self.b)
        z = np.zeros_like(rb)
        for s, sub in enumerate(self.subs):
            factor = self._factors[s]
            if factor is None:
                raise RuntimeError("preconditioner not updated")
            local_r = rb[sub.local_rows]
            local_z = trsv_solve(
                factor, local_r, out=self._local_z[s], work=self._work[s]
            )
            z[sub.local_rows[sub.owned_mask]] = local_z[sub.owned_mask]
        return z.reshape(-1) if flat else z
