"""Matrix-free Jacobian-vector products (Jacobian-free Newton-Krylov).

The paper "relies directly on matrix-free Jacobian-vector product operations
to approximate the action of the Jacobian matrix on Krylov vectors" [Knoll &
Keyes 2004].  The directional finite difference

    J v ~= (F(u + eps v) - F(u)) / eps,   eps = sqrt(machine_eps) * scale

acts on the *pseudo-transient* nonlinear function, so the product includes
the ``V/dt`` diagonal exactly and the second-order spatial part to FD
accuracy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["fd_jacobian_operator"]


def fd_jacobian_operator(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    u: np.ndarray,
    r0: np.ndarray | None = None,
    diag: np.ndarray | None = None,
    eps_base: float = None,  # type: ignore[assignment]
) -> Callable[[np.ndarray], np.ndarray]:
    """Build ``v -> J v`` by one-sided finite differences around ``u``.

    ``residual_fn`` maps a flat state to a flat spatial residual.  ``diag``
    (flat, same size) is an exact diagonal term added analytically —
    the pseudo-time ``V/dt`` contribution, kept out of the FD for accuracy.
    ``r0`` may pass a precomputed ``residual_fn(u)``.
    """
    u = u.reshape(-1)
    if r0 is None:
        r0 = residual_fn(u)
    r0 = r0.reshape(-1)
    if eps_base is None:
        eps_base = np.sqrt(np.finfo(float).eps)
    u_scale = 1.0 + float(np.linalg.norm(u)) / np.sqrt(max(u.size, 1))

    def apply(v: np.ndarray) -> np.ndarray:
        vnorm = float(np.linalg.norm(v))
        if vnorm == 0.0:
            return np.zeros_like(v)
        eps = eps_base * u_scale / vnorm * np.sqrt(v.size)
        jv = (residual_fn(u + eps * v) - r0) / eps
        if diag is not None:
            jv = jv + diag * v
        return jv

    return apply
