"""Distributed Krylov path: GMRES dots/norms through a communicator.

The serial FGMRES in :mod:`repro.solver.gmres` charges one *modeled*
allreduce per ``VecMDot``/``VecNorm``; here the same algorithm runs on
distributed vectors (each rank holds its owned slice) and those reductions
become *real* :meth:`~repro.dist.runtime.comm.Communicator.allreduce`
calls with measured wall time.  Because the communicator's reductions are
deterministic and bitwise-identical on every rank, all ranks see the same
Hessenberg entries, Givens rotations and convergence decisions — the
replicated control flow never diverges.

The matrix-free operator mirrors :func:`repro.solver.jfnk.
fd_jacobian_operator` with the two norms it needs (state scale, Krylov
vector norm) computed globally, so the finite-difference epsilon is a
single well-defined number across ranks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .gmres import GMRESResult

__all__ = ["dist_norm", "dist_fd_operator", "dist_gmres"]

Operator = Callable[[np.ndarray], np.ndarray]


def dist_norm(x: np.ndarray, comm) -> float:
    """Global 2-norm of a distributed vector (one allreduce)."""
    return float(np.sqrt(comm.allreduce(float(x @ x))))


def dist_fd_operator(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    u: np.ndarray,
    comm,
    n_global: int,
    r0: np.ndarray | None = None,
    diag: np.ndarray | None = None,
    eps_base: float | None = None,
) -> Operator:
    """Distributed counterpart of :func:`repro.solver.jfnk.
    fd_jacobian_operator`: ``v -> (R(u + eps v) - R(u)) / eps + diag * v``
    with globally-consistent ``eps``.

    ``u``/``v`` are the rank's owned slices (flat); ``n_global`` is the
    global unknown count the norms scale by.  ``residual_fn`` may itself
    communicate (it runs the halo'd residual).
    """
    u = u.reshape(-1)
    if r0 is None:
        r0 = residual_fn(u)
    r0 = r0.reshape(-1)
    if eps_base is None:
        eps_base = float(np.sqrt(np.finfo(float).eps))
    u_scale = 1.0 + dist_norm(u, comm) / np.sqrt(max(n_global, 1))

    def apply(v: np.ndarray) -> np.ndarray:
        vnorm = dist_norm(v, comm)
        if vnorm == 0.0:
            return np.zeros_like(v)
        eps = eps_base * u_scale / vnorm * np.sqrt(n_global)
        jv = (residual_fn(u + eps * v) - r0) / eps
        if diag is not None:
            jv = jv + diag * v
        return jv

    return apply


def dist_gmres(
    op: Operator,
    b: np.ndarray,
    comm,
    precond: Operator | None = None,
    x0: np.ndarray | None = None,
    rtol: float = 1e-5,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 300,
) -> GMRESResult:
    """Restarted FGMRES on distributed vectors (owned slices per rank).

    Identical algorithm to :func:`repro.solver.gmres.gmres` — classical
    Gram-Schmidt as one fused MDot+MAXPY per iteration, Givens rotations,
    lucky-breakdown guard — with every dot/norm a real allreduce.  One
    MDot of j+1 coefficients is a single width-(j+1) vector reduction,
    matching how PETSc fuses the Gram-Schmidt reduction into one
    ``MPI_Allreduce``.
    """
    n = b.shape[0]
    x = np.zeros(n) if x0 is None else x0.copy()
    M = precond if precond is not None else lambda v: v

    bnorm = dist_norm(b, comm)
    if bnorm == 0.0:
        return GMRESResult(
            x=np.zeros(n), iterations=0, residual_norms=[0.0], converged=True
        )
    tol = max(rtol * bnorm, atol)

    res_hist: list[float] = []
    total_it = 0
    converged = False
    x0_zero = not x.any()

    while total_it < maxiter and not converged:
        r = b - op(x) if (total_it or not x0_zero) else b.copy()
        beta = dist_norm(r, comm)
        res_hist.append(beta)
        if beta <= tol:
            converged = True
            break
        m = min(restart, maxiter - total_it)
        V = [r / beta]
        Z: list[np.ndarray] = []
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        j_done = 0
        for j in range(m):
            z = M(V[j])
            Z.append(z)
            w = op(z)
            if w is z or w is V[j]:
                w = w.copy()
            # classical Gram-Schmidt: the j+1 local dots fuse into one
            # width-(j+1) allreduce
            h_local = np.array([float(vi @ w) for vi in V])
            h = np.atleast_1d(comm.allreduce(h_local))
            for i, vi in enumerate(V):
                w -= h[i] * vi
            H[: j + 1, j] = h
            H[j + 1, j] = dist_norm(w, comm)
            if H[j + 1, j] > 1e-14 * max(beta, 1.0):
                V.append(w / H[j + 1, j])
            else:
                V.append(np.zeros_like(w))  # lucky breakdown
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            denom = np.hypot(H[j, j], H[j + 1, j])
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, H[j + 1, j] / denom
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_it += 1
            j_done = j + 1
            res_hist.append(abs(g[j + 1]))
            if abs(g[j + 1]) <= tol:
                converged = True
                break
        if j_done:
            y = np.zeros(j_done)
            for i in range(j_done - 1, -1, -1):
                y[i] = (
                    g[i] - H[i, i + 1 : j_done] @ y[i + 1 : j_done]
                ) / H[i, i]
            for i in range(j_done):
                x += y[i] * Z[i]

    return GMRESResult(
        x=x,
        iterations=total_it,
        residual_norms=res_hist,
        converged=converged,
    )
