"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``mesh-info``   generate a dataset, validate it, print structural stats
``solve``       run the steady solver, print convergence/forces/profile
``profile``     traced solve: span-tree profile + metrics (+ exports)
``speedup``     price a run under baseline + optimized configs (Fig 8a)
``scaling``     multi-node strong-scaling table (Fig 9-11)
``partition``   partition-quality study (natural / RCB / multilevel)
``calibrate``   micro-benchmark this host, fit the cost-model constants,
                write ``.repro_calibration.json`` (read by ``--tune`` and
                the bench model columns)
``bench``       measured flux-kernel scaling sweep -> BENCH_flux_scaling.json
                (``bench report`` prints the trend table of ``--history``)
``top``         live per-rank/per-worker view of a running solve's metrics

``solve``/``profile``/``serve`` accept ``--tune``: the host-calibrated
cost model picks edge strategy, worker counts, sparse strategy, fusion,
ordering and (for serve) the evaluate batch width per mesh, never slower
than the static flags by construction.

``solve`` and ``profile`` accept ``--backend process --workers N`` to run
the flux/gradient edge loops across real worker processes over shared
memory (``--edge-strategy`` picks locked / replicate / owner writes).

Every command works on the generated ONERA-M6-like datasets; ``--scale``
sizes them (1.0 = full Mesh-C'/Mesh-D' analogues).  ``solve``, ``profile``
and ``scaling`` accept ``--trace-out`` (Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto) and ``--metrics-out`` (JSONL event log);
``solve`` and ``profile`` additionally accept ``--metrics-serve PORT``
(live Prometheus endpoint while running), ``--metrics-prom`` (one-shot
``.prom`` snapshot) and ``--trace-otlp`` (OTLP/JSON trace export), and
install the flight recorder: a crash, SIGUSR1, or dead worker dumps a
``flightrec-*.jsonl`` bundle with the fleet's last seconds of telemetry.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed: fall back to the source tree
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="PyFUN3D: IPDPS'15 shared-memory CFD optimization study",
    )
    p.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = p.add_subparsers(dest="command")

    def add_mesh_args(sp):
        sp.add_argument("--dataset", choices=["mesh-c", "mesh-d", "wing"],
                        default="mesh-c")
        sp.add_argument("--scale", type=float, default=0.12)
        sp.add_argument("--seed", type=int, default=7)
        sp.add_argument(
            "--ordering", choices=["natural", "rcm"], default="natural",
            help="vertex numbering: generator order or RCM relabeling "
                 "(paper Section V.A locality pass; makes the scatter "
                 "plans' CSR walks near-monotone in memory)"
        )

    def add_obs_args(sp):
        sp.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace_event JSON file")
        sp.add_argument("--metrics-out", metavar="PATH",
                        help="write a JSONL span/event/metrics log")
        sp.add_argument("--metrics-serve", type=int, default=None,
                        metavar="PORT",
                        help="serve live Prometheus text on "
                             "http://127.0.0.1:PORT/metrics while running "
                             "(0 = pick a free port)")
        sp.add_argument("--metrics-prom", metavar="PATH",
                        help="write a one-shot Prometheus text snapshot "
                             "(.prom) at exit")
        sp.add_argument("--trace-otlp", metavar="PATH",
                        help="write the span tree as an OTLP/JSON trace "
                             "export at exit")

    def add_backend_args(sp):
        sp.add_argument(
            "--backend", choices=["serial", "process"], default="serial",
            help="edge-kernel executor: in-process NumPy or worker processes"
        )
        sp.add_argument("--workers", type=int, default=2,
                        help="worker processes for --backend process")
        sp.add_argument(
            "--edge-strategy", choices=["locked", "replicate", "owner"],
            default="owner", help="process-backend scatter strategy"
        )
        sp.add_argument("--partitioner", choices=["metis", "natural"],
                        default="metis",
                        help="vertex ownership labels for the owner strategy")
        sp.add_argument(
            "--sparse-backend", choices=["serial", "process"],
            default="serial",
            help="ILU/TRSV executor: in-process kernels or a persistent "
                 "worker fleet over shared memory"
        )
        sp.add_argument(
            "--sparse-strategy", choices=["levels", "p2p"], default="p2p",
            help="sparse-fleet synchronization: barrier per wavefront or "
                 "P2P-sparsified per-row flags"
        )
        sp.add_argument(
            "--sparse-workers", type=int, default=0, metavar="N",
            help="worker processes for --sparse-backend process "
                 "(0 = same as --workers)"
        )
        sp.add_argument(
            "--fuse", choices=["off", "on"], default="off",
            help="route the second-order residual through the fused "
                 "kernel-graph programs (repro.kgir): bitwise-identical, "
                 "fewer edge passes; composes with --backend process and "
                 "--dist-ranks"
        )
        sp.add_argument(
            "--tune", action="store_true",
            help="let the calibrated auto-tuner (repro.tune) pick backend/"
                 "strategy/workers/fusion/ordering for this mesh; the "
                 "flags above become the fallback default candidate"
        )
        sp.add_argument(
            "--calibration", default="", metavar="PATH",
            help="calibration file for --tune and the bench cost models "
                 "(default: .repro_calibration.json; analytic paper model "
                 "when absent or from another host)"
        )

    def add_dist_args(sp):
        sp.add_argument(
            "--dist-ranks", type=int, default=0, metavar="N",
            help="run the solve on N forked rank processes with real "
                 "shared-memory halo exchange (0 = serial in-process)"
        )
        sp.add_argument("--pipelined", action="store_true",
                        help="overlap interior compute with halo fills "
                             "(requires --dist-ranks)")
        sp.add_argument("--allreduce", choices=["flat", "tree"],
                        default="flat",
                        help="collective algorithm for --dist-ranks")

    def add_solve_args(sp):
        add_mesh_args(sp)
        sp.add_argument("--ilu", type=int, default=1, help="ILU fill level")
        sp.add_argument("--subdomains", type=int, default=1)
        sp.add_argument("--dissipation", choices=["rusanov", "roe"],
                        default="rusanov")
        sp.add_argument("--aoa", type=float, default=3.0)
        sp.add_argument("--max-steps", type=int, default=100)
        sp.add_argument("--rtol", type=float, default=1e-6)
        add_backend_args(sp)
        add_dist_args(sp)
        add_obs_args(sp)

    sp = sub.add_parser("mesh-info", help="generate and validate a dataset")
    add_mesh_args(sp)

    sp = sub.add_parser("solve", help="steady flow solve")
    add_solve_args(sp)
    sp.add_argument("--json", action="store_true",
                    help="also print a machine-readable result line "
                         "(full-precision forces; what `repro serve` "
                         "responses are compared against)")

    sp = sub.add_parser(
        "profile",
        help="traced steady solve: span-tree profile, metrics, exports",
    )
    add_solve_args(sp)

    sp = sub.add_parser("speedup", help="modeled optimization speedups")
    add_mesh_args(sp)
    sp.add_argument("--ilu", type=int, default=0)
    sp.add_argument("--threads", type=int, default=20)

    sp = sub.add_parser("scaling", help="multi-node strong scaling model")
    sp.add_argument("--workload", choices=["mesh-c", "mesh-d"],
                    default="mesh-d")
    sp.add_argument("--nodes", type=int, nargs="+",
                    default=[1, 4, 16, 64, 256])
    sp.add_argument("--pipelined", action="store_true",
                    help="model pipelined GMRES (future-work extension)")
    add_obs_args(sp)

    sp = sub.add_parser("partition", help="partition quality study")
    add_mesh_args(sp)
    sp.add_argument("--parts", type=int, default=20)

    sp = sub.add_parser(
        "calibrate",
        help="micro-benchmark this host and fit the cost-model constants",
    )
    sp.add_argument("--out", default=".repro_calibration.json",
                    metavar="PATH",
                    help="calibration file to write (what --tune and the "
                         "bench cost models read back)")
    sp.add_argument("--fast", action="store_true",
                    help="smoke mode: smaller arrays, fewer repeats "
                         "(seconds instead of a minute; noisier constants)")
    sp.add_argument("--seed", type=int, default=7)
    sp.add_argument("--max-threads", type=int, default=0,
                    help="cap the bandwidth/barrier thread sweeps "
                         "(0 = cpu count)")

    sp = sub.add_parser(
        "serve",
        help="persistent warm-fleet solver daemon on a local Unix socket",
    )
    sp.add_argument("--socket", required=True, metavar="PATH",
                    help="Unix socket path to listen on")
    sp.add_argument("--max-queue", type=int, default=8,
                    help="admission-control queue depth "
                         "(requests beyond it are rejected with 503)")
    sp.add_argument("--deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="default per-request deadline while queued "
                         "(expired jobs are rejected with 408)")
    sp.add_argument("--max-families", type=int, default=4,
                    help="warm mesh families kept resident (LRU beyond)")
    sp.add_argument("--solver-threads", type=int, default=1,
                    help="concurrent solver threads (distinct families "
                         "solve in parallel; one family solves serially)")
    add_backend_args(sp)
    sp.add_argument("--metrics-serve", type=int, default=None,
                    metavar="PORT",
                    help="serve live Prometheus text on "
                         "http://127.0.0.1:PORT/metrics (0 = free port)")

    sp = sub.add_parser(
        "submit",
        help="send solve requests to a running `repro serve` daemon",
    )
    sp.add_argument("--socket", required=True, metavar="PATH",
                    help="Unix socket of the daemon")
    add_mesh_args(sp)
    sp.add_argument("--ilu", type=int, default=1, help="ILU fill level")
    sp.add_argument("--subdomains", type=int, default=1)
    sp.add_argument("--dist-ranks", type=int, default=0, metavar="N",
                    help="solve on N forked rank processes in the daemon")
    sp.add_argument("--dissipation", choices=["rusanov", "roe"],
                    default="rusanov")
    sp.add_argument("--aoa", type=float, default=3.0)
    sp.add_argument("--beta", type=float, default=4.0,
                    help="artificial compressibility (the Mach analogue)")
    sp.add_argument("--max-steps", type=int, default=100)
    sp.add_argument("--rtol", type=float, default=1e-6)
    sp.add_argument("--sweep", action="append", default=[],
                    metavar="FIELD=V1,V2,...",
                    help="fan a parameter grid, e.g. --sweep aoa=0,2,4 "
                         "--sweep beta=2,4 (repeatable); all combinations "
                         "run as one batch over one warm family")
    sp.add_argument("--no-batch", action="store_true",
                    help="send sweep cases as individual solve requests "
                         "instead of one batch")
    sp.add_argument("--deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="per-request queueing deadline")
    sp.add_argument("--timeout", type=float, default=600.0,
                    help="client socket timeout in seconds")
    sp.add_argument("--json", action="store_true",
                    help="print the raw response JSON")
    sp.add_argument("--op",
                    choices=["solve", "evaluate", "ping", "stats",
                             "shutdown"],
                    default="solve",
                    help="request type (solve fans --sweep into a batch; "
                         "evaluate runs one batched fused residual sweep "
                         "over all cases, no solve)")

    sp = sub.add_parser("top", help="live view of a running solve's telemetry")
    sp.add_argument("--url", metavar="URL",
                    help="Prometheus endpoint of the running solve "
                         "(e.g. http://127.0.0.1:9100/metrics)")
    sp.add_argument("--port", type=int, default=None,
                    help="shorthand for --url http://127.0.0.1:PORT/metrics")
    sp.add_argument("--interval", type=float, default=1.0,
                    help="seconds between scrapes")
    sp.add_argument("--iterations", type=int, default=None,
                    help="frames to render (default: until the endpoint "
                         "goes away)")
    sp.add_argument("--plain", action="store_true",
                    help="append frames instead of redrawing (logs/CI)")
    sp.add_argument("spawn", nargs=argparse.REMAINDER, metavar="-- CMD",
                    help="repro subcommand to launch and watch, e.g. "
                         "`repro top -- solve --dist-ranks 4`")

    sp = sub.add_parser(
        "bench",
        help="measured flux-kernel scaling sweep (workers x strategies)",
    )
    sp.add_argument("mode", nargs="?", choices=["run", "report"],
                    default="run",
                    help="'report' prints the per-kernel trend table of "
                         "--history instead of running a sweep")
    add_mesh_args(sp)
    sp.add_argument("--workers", type=int, default=4,
                    help="max worker count of the sweep")
    sp.add_argument("--strategies", nargs="+",
                    default=["locked", "replicate", "owner-natural",
                             "owner-metis"],
                    help="strategy labels to measure")
    sp.add_argument("--repeats", type=int, default=5,
                    help="timed repetitions per configuration (min is kept)")
    sp.add_argument("--quick", action="store_true",
                    help="smoke mode: measure only --workers, 3 repeats")
    sp.add_argument(
        "--sparse-backend", choices=["flux", "process"], default="flux",
        help="'process' switches the sweep to process-parallel ILU/TRSV "
             "(levels vs p2p synchronization) -> BENCH_trsv_scaling.json"
    )
    sp.add_argument(
        "--kernel",
        choices=["flux", "trsv", "scatter", "serve", "fusion", "tune"],
        default="flux",
        help="'scatter' benches the precompiled gather-scatter plans "
             "against the np.add.at reference across mesh sizes -> "
             "BENCH_scatter_kernels.json; 'trsv' is an alias for "
             "--sparse-backend process; 'serve' benches warm batched "
             "daemon throughput against cold one-shot `repro solve` "
             "runs -> BENCH_serve_throughput.json; 'fusion' benches the "
             "fused kernel-graph residual against the unfused three-kernel "
             "sequence across mesh sizes -> BENCH_fusion.json; 'tune' "
             "measures the auto-tuned configuration against the static "
             "default (never-slower gate) -> BENCH_tune.json"
    )
    sp.add_argument(
        "--calibration", default="", metavar="PATH",
        help="calibration file for the model columns and --kernel tune "
             "(default: .repro_calibration.json; analytic paper model "
             "when absent or from another host)"
    )
    sp.add_argument(
        "--all-hosts", action="store_true",
        help="'report' mode: include history records from other hosts "
             "(default: only this host's fingerprint)"
    )
    sp.add_argument(
        "--engine", choices=["csr", "bincount", "addat"], default=None,
        help="force a scatter engine for --kernel scatter (default: auto)"
    )
    sp.add_argument("--ilu", type=int, default=0,
                    help="ILU fill level of the TRSV sweep")
    sp.add_argument("--out", default="BENCH_flux_scaling.json",
                    help="output JSON path")
    sp.add_argument("--gate", action="store_true",
                    help="exit 1 if residuals diverge or owner-writes "
                         "regresses vs serial (CI benchmark gate)")
    sp.add_argument("--gate-tol", type=float, default=1e-12,
                    help="max |parallel - serial| residual deviation")
    sp.add_argument("--gate-slowdown", type=float, default=1.25,
                    help="max owner-writes wall time as a multiple of serial")
    sp.add_argument("--gate-amortization", type=float, default=3.0,
                    help="min warm-batched throughput as a multiple of the "
                         "cold per-case throughput (--kernel serve gate)")
    sp.add_argument("--gate-speedup", type=float, default=1.2,
                    help="min fused/unfused speedup on the largest benched "
                         "mesh (--kernel fusion gate)")
    sp.add_argument("--cold-mode", choices=["cli", "inproc"], default="cli",
                    help="--kernel serve cold baseline: one-shot `repro "
                         "solve` subprocesses or in-process family builds")
    sp.add_argument("--history", metavar="PATH",
                    help="JSONL trend file: append this run and, with "
                         "--gate, compare against the rolling median of "
                         "the last 5 comparable runs instead of the fixed "
                         "slowdown bound")
    sp.add_argument("--dist-ranks", type=int, default=0, metavar="N",
                    help="also measure a short N-rank distributed solve's "
                         "comm/compute breakdown (--kernel trsv: a "
                         "ranks x sparse-workers sweep up to N ranks "
                         "instead)")
    sp.add_argument("--pipelined", action="store_true",
                    help="pipelined comm/compute overlap for --dist-ranks")
    return p


def _make_mesh(args, scale: float | None = None):
    from .mesh import dataset_mesh

    return dataset_mesh(
        args.dataset,
        scale=args.scale if scale is None else scale,
        seed=args.seed,
        ordering=getattr(args, "ordering", "natural"),
    )


def cmd_mesh_info(args) -> int:
    from .mesh import validate_mesh

    mesh = _make_mesh(args)
    report = validate_mesh(mesh)
    print(mesh)
    for k, v in mesh.stats().items():
        print(f"  {k:<12} {v:g}")
    print(report)
    return 0 if report.ok else 1


def _write_obs(args, tracer, metrics) -> None:
    """Honor --trace-out / --metrics-out if the command defines them."""
    from .obs import write_chrome_trace, write_jsonl

    if getattr(args, "trace_out", None):
        write_chrome_trace(tracer, args.trace_out)
        print(f"wrote Chrome trace: {args.trace_out}")
    if getattr(args, "metrics_out", None):
        write_jsonl(args.metrics_out, tracer, metrics)
        print(f"wrote JSONL log: {args.metrics_out}")


class _ObsSession:
    """Observability envelope of one ``solve``/``profile`` run.

    Owns the tracer and metrics registry the run writes into, installs the
    flight recorder (crash dumps + SIGUSR1 on-demand bundles), publishes
    the solver loop's progress into a process-local telemetry plane, runs
    the aggregator thread that folds every live plane into ``live.*``
    gauges, and — with ``--metrics-serve`` — serves Prometheus text while
    the solve is still running.  ``flush()`` writes every requested export
    and runs on *all* exit paths, so a Ctrl-C or SIGTERM mid-solve still
    leaves partial trace/metrics files behind (satellite requirement).
    """

    SOLVER_SLOTS = (
        "step", "residual", "cfl", "krylov_iters", "newton_steps",
        "gmres_iters",
    )

    def __init__(self, args) -> None:
        from .obs import MetricsRegistry, Tracer

        self.args = args
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.plane = None
        self.server = None
        self.agg = None
        self._live_cm = None
        self._flushed = False

    def __enter__(self) -> "_ObsSession":
        import signal

        from .obs.live import (
            HealthMonitor,
            MetricsServer,
            TelemetryAggregator,
            TelemetryPlane,
            install_flight_recorder,
            prometheus_text,
            use_live_writer,
        )
        from .obs.live.recorder import get_flight_recorder, install_signal_dump

        install_flight_recorder()
        try:
            install_signal_dump()  # SIGUSR1 -> on-demand bundle

            def _term(signum, frame):  # SIGTERM flushes like Ctrl-C
                raise KeyboardInterrupt

            signal.signal(signal.SIGTERM, _term)
        except (ValueError, OSError, AttributeError):
            pass  # non-main thread or platform without these signals
        self.plane = TelemetryPlane({"solver": self.SOLVER_SLOTS}, shared=False)
        writer = self.plane.writer("solver")
        writer.hello()
        self._live_cm = use_live_writer(writer)
        self._live_cm.__enter__()
        self.agg = TelemetryAggregator(
            self.metrics,
            recorder=get_flight_recorder(),
            health=HealthMonitor(),
        )
        self.agg.start()
        if getattr(self.args, "metrics_serve", None) is not None:
            self.server = MetricsServer(
                lambda: prometheus_text(self.metrics),
                port=self.args.metrics_serve,
            )
            self.server.start()
            print(f"live metrics: {self.server.url}")
        return self

    def flush(self) -> None:
        """Write every requested export (idempotent; runs on interrupt and
        crash paths too, so partial data survives an aborted run)."""
        if self._flushed:
            return
        self._flushed = True
        args = self.args
        _write_obs(args, self.tracer, self.metrics)
        if getattr(args, "metrics_prom", None):
            from .obs.live import write_prometheus

            write_prometheus(args.metrics_prom, self.metrics)
            print(f"wrote Prometheus snapshot: {args.metrics_prom}")
        if getattr(args, "trace_otlp", None):
            from .obs.live import write_otlp_trace

            write_otlp_trace(self.tracer, args.trace_otlp)
            print(f"wrote OTLP trace: {args.trace_otlp}")

    def __exit__(self, exc_type, exc, tb) -> bool:
        from .obs.live.recorder import crash_dump

        if self.agg is not None:
            self.agg.stop()
        if exc_type is not None and not issubclass(
            exc_type, (KeyboardInterrupt, SystemExit)
        ):
            crash_dump(f"unhandled-{exc_type.__name__}")
        try:
            self.flush()
        finally:
            if self.server is not None:
                self.server.stop()
            if self._live_cm is not None:
                self._live_cm.__exit__(None, None, None)
            if self.plane is not None:
                self.plane.close()
        return False


def _reconciliation(tracer, registry) -> float:
    """Worst per-kernel relative deviation, span tree vs flat registry.

    Only kernels that appear in both views are compared: Vec* primitives
    report to the registry alone (they are too fine-grained to trace).
    """
    span_tot = tracer.kernel_totals()
    return max(
        (
            abs(span_tot[k] - r.seconds) / r.seconds
            for k, r in registry.records.items()
            if r.seconds > 0 and k in span_tot
        ),
        default=0.0,
    )


def _run_dist_solve(args, app, obs=None):
    """N-rank distributed solve wrapped as a :class:`Fun3dRunResult`.

    The modeled per-kernel profile does not apply (ranks measure their own
    walls), so ``counts``/``profile`` are empty and the result instead
    carries a ``dist`` attribute with the measured communication story.
    """
    from .apps import Fun3dRunResult, OptimizationConfig
    from .dist.runtime import distributed_solve
    from .obs import MetricsRegistry, Tracer, use_metrics, use_tracer
    from .perf import PerfRegistry, use_registry

    reg = PerfRegistry()
    tracer = obs.tracer if obs is not None else Tracer()
    metrics = obs.metrics if obs is not None else MetricsRegistry()
    with use_registry(reg), use_tracer(tracer), use_metrics(metrics):
        dres = distributed_solve(
            app.field,
            app.flow,
            app.solver,
            n_ranks=args.dist_ranks,
            pipelined=args.pipelined,
            seed=args.seed,
            allreduce_algo=args.allreduce,
            fuse=getattr(args, "fuse", "off") == "on",
        )
    res = Fun3dRunResult(
        solve=dres.result,
        registry=reg,
        counts={},
        profile={},
        config=OptimizationConfig.baseline(ilu_fill=args.ilu),
        trace=tracer,
        metrics=metrics,
    )
    res.dist = dres
    return res


def _print_dist_breakdown(dres) -> None:
    bd = dres.comm_breakdown()
    mode = "pipelined" if dres.pipelined else "plain"
    print(
        f"measured {dres.n_ranks}-rank breakdown ({mode}, critical path): "
        f"halo {100 * bd['halo_fraction']:.1f}% "
        f"allreduce {100 * bd['allreduce_fraction']:.1f}% "
        f"(comm {100 * bd['comm_fraction']:.1f}% of "
        f"{1e3 * bd['elapsed_seconds']:.1f} ms)"
    )


def _apply_tune(args, obs=None) -> None:
    """``--tune``: replace the backend args with the tuner's choice.

    The flags the user passed stay the tuner's default candidate, so an
    explicit ``--backend process --workers 8`` is only overridden when the
    calibrated model predicts a clear win (see ``repro.tune.tuner``).  The
    chosen plan is printed and logged as a ``tune.plan`` trace event.
    """
    from .smp.bench import load_history
    from .tune import active_model, tune_solve

    machine, cal = active_model(getattr(args, "calibration", "") or None)
    cfg = tune_solve(
        _make_mesh(args), machine, cal,
        load_history(".bench_history.jsonl"),
        dataset=args.dataset, scale=args.scale, seed=args.seed,
        ilu_fill=args.ilu, ordering=getattr(args, "ordering", "natural"),
        allow_dist=getattr(args, "dist_ranks", 0) == 0,
    )
    args.backend = cfg.edge_backend
    args.workers = max(cfg.workers, 1)
    args.edge_strategy = cfg.edge_strategy
    args.partitioner = cfg.partitioner
    args.fuse = cfg.fuse
    args.ordering = cfg.ordering
    args.sparse_backend = cfg.sparse_backend
    args.sparse_strategy = cfg.sparse_strategy
    args.sparse_workers = cfg.sparse_workers
    if cfg.dist_ranks > 0 and getattr(args, "dist_ranks", 0) == 0:
        args.dist_ranks = cfg.dist_ranks
    print(cfg.summary())
    if obs is not None:
        attrs = {
            k: v for k, v in cfg.to_dict().items() if k != "candidates"
        }
        obs.tracer.event("tune.plan", **attrs)


def _run_solve(args, obs=None):
    from contextlib import nullcontext

    from .apps import Fun3dApp, OptimizationConfig
    from .cfd import FlowConfig
    from .solver import SolverOptions

    if getattr(args, "tune", False):
        _apply_tune(args, obs)
    mesh = _make_mesh(args)
    sparse_backend = getattr(args, "sparse_backend", "serial")
    sparse_workers = getattr(args, "sparse_workers", 0) or args.workers
    app = Fun3dApp(
        mesh,
        flow=FlowConfig(aoa_deg=args.aoa, dissipation=args.dissipation),
        solver=SolverOptions(
            max_steps=args.max_steps,
            steady_rtol=args.rtol,
            n_subdomains=args.subdomains,
            ilu_fill=args.ilu,
            sparse_backend=sparse_backend,
            sparse_strategy=getattr(args, "sparse_strategy", "p2p"),
            sparse_workers=sparse_workers,
        ),
    )
    if sparse_backend == "process":
        print(
            f"sparse backend: process x{sparse_workers} "
            f"({args.sparse_strategy} synchronization)"
        )
    if getattr(args, "dist_ranks", 0) > 0:
        print(
            f"distributed runtime: {args.dist_ranks} rank processes "
            f"({'pipelined' if args.pipelined else 'plain'} halo exchange, "
            f"{args.allreduce} allreduce)"
        )
        return app, _run_dist_solve(args, app, obs)
    backend_cm = install_cm = nullcontext()
    if getattr(args, "backend", "serial") == "process":
        from .smp import ProcessEdgeBackend, use_edge_backend

        backend_cm = ProcessEdgeBackend(
            app.field,
            n_workers=args.workers,
            strategy=args.edge_strategy,
            partitioner=args.partitioner,
            seed=args.seed,
        )
        install_cm = use_edge_backend(backend_cm)
        print(
            f"edge backend: process x{args.workers} "
            f"({backend_cm.strategy_label}, redundant edges "
            f"{100 * backend_cm.redundant_edge_fraction:.1f}%)"
        )
    if getattr(args, "fuse", "off") == "on":
        from .kgir import FusedEdgeBackend
        from .smp import use_edge_backend

        inner = (
            backend_cm
            if getattr(args, "backend", "serial") == "process"
            else None
        )
        fused = FusedEdgeBackend(app.field, inner=inner)
        install_cm = use_edge_backend(fused)
        rep = fused.program.report
        print(
            f"fused kernel-graph pipeline: {rep.stages_before} stages -> "
            f"{rep.stages_after}"
            + (f" over process x{args.workers}" if inner is not None else "")
        )
    with backend_cm, install_cm:
        res = app.run(
            OptimizationConfig.baseline(ilu_fill=args.ilu),
            tracer=obs.tracer if obs is not None else None,
            metrics=obs.metrics if obs is not None else None,
        )
    return app, res


def cmd_solve(args) -> int:
    from .cfd import integrate_forces

    try:
        with _ObsSession(args) as obs:
            app, res = _run_solve(args, obs)
            mesh, s = app.mesh, res.solve
            print(
                f"{mesh.name}: {mesh.n_vertices} vertices / "
                f"{mesh.n_edges} edges"
            )
            print(
                f"converged={s.converged} steps={s.steps} "
                f"krylov={s.linear_iterations} "
                f"residual {s.initial_residual:.3e} -> {s.final_residual:.3e}"
            )
            forces = integrate_forces(app.field, s.q, app.flow)
            print(f"CL={forces.cl:.4f} CD={forces.cd:.4f}")
            if getattr(args, "json", False):
                import json

                print(json.dumps({
                    "converged": bool(s.converged),
                    "steps": int(s.steps),
                    "krylov_iterations": int(s.linear_iterations),
                    "initial_residual": float(s.initial_residual),
                    "final_residual": float(s.final_residual),
                    "forces": {
                        "cl": float(forces.cl), "cd": float(forces.cd)
                    },
                }))
            if getattr(res, "dist", None) is not None:
                _print_dist_breakdown(res.dist)
            if res.profile:
                print("baseline profile:")
                for name, frac in sorted(
                    res.fractions().items(), key=lambda kv: -kv[1]
                ):
                    print(f"  {name:<9} {100 * frac:5.1f}%")
            return 0 if s.converged else 1
    except KeyboardInterrupt:
        print("interrupted — partial telemetry exports flushed",
              file=sys.stderr)
        return 130


def _print_recurrence_structure(app, fill: int) -> None:
    """Table II companion: ILU/TRSV dependency-graph parallelism stats.

    ``available_parallelism`` is the paper's metric (total work over
    critical-path work); ``max_level_width`` caps how many sparse workers
    can ever be busy at once, and the width histogram shows how much of the
    schedule sits in levels too narrow to share.
    """
    from .sparse import available_parallelism

    plan = app.ilu_plan(fill)
    par = available_parallelism(plan.rowptr, plan.cols, b=plan.b)
    print(f"ILU({fill}) recurrence structure (Table II):")
    print(f"  available parallelism {par:.0f}x")
    for name, sched in (("forward", plan.schedule),
                        ("backward", plan.schedule_back)):
        hist = " ".join(
            f"[{lo}-{hi}]x{cnt}" for lo, hi, cnt in sched.width_histogram()
        )
        print(
            f"  {name:<8} {len(sched.levels)} levels, max width "
            f"{sched.max_level_width}; widths {hist}"
        )


def cmd_profile(args) -> int:
    try:
        with _ObsSession(args) as obs:
            return _cmd_profile_impl(args, obs)
    except KeyboardInterrupt:
        print("interrupted — partial telemetry exports flushed",
              file=sys.stderr)
        return 130


def _cmd_profile_impl(args, obs) -> int:
    from .obs import aggregate_spans
    from .perf import format_profile

    app, res = _run_solve(args, obs)
    tracer, s = res.trace, res.solve
    print(f"{app.mesh.name}: traced solve "
          f"(converged={s.converged} steps={s.steps} "
          f"krylov={s.linear_iterations})")
    print()
    print(format_profile(
        aggregate_spans(tracer.roots),
        title="span-tree profile (wall seconds of this Python run, "
              "same-name spans folded)",
    ))
    print()
    print(res.metrics.report())
    print()
    from .perf.scatter import plan_report

    print("per-kernel scatter strategy (precompiled plans vs np.add.at):")
    print(plan_report())
    print()
    from .kgir import fusion_report

    print(fusion_report(app.field).text())
    print()
    _print_recurrence_structure(app, args.ilu)
    print()
    if getattr(res, "dist", None) is not None:
        _print_dist_breakdown(res.dist)
        if args.dataset in ("mesh-c", "mesh-d"):
            from .dist import MESH_C_PAPER, MESH_D_PAPER, MultiNodeModel

            wl = MESH_C_PAPER if args.dataset == "mesh-c" else MESH_D_PAPER
            model = MultiNodeModel(wl).trace_breakdown(args.dist_ranks)
            print(
                f"modeled comm fraction at {args.dist_ranks} nodes "
                f"(Fig 10 cost model, paper-scale "
                f"{wl.name}): {100 * model.attrs['comm_fraction']:.1f}%"
            )
    else:
        print(f"span/registry reconciliation: max per-kernel deviation "
              f"{100 * _reconciliation(tracer, res.registry):.3f}%")
    return 0 if s.converged else 1


def cmd_speedup(args) -> int:
    from .apps import Fun3dApp, OptimizationConfig
    from .solver import SolverOptions

    mesh = _make_mesh(args)
    app = Fun3dApp(mesh, solver=SolverOptions(max_steps=100))
    res = app.run(OptimizationConfig.baseline(ilu_fill=args.ilu))
    opt = OptimizationConfig.optimized(n_threads=args.threads,
                                       ilu_fill=args.ilu)
    measured = app.speedup(res.counts, opt)
    paper_scale = app.speedup_paper_scale(res.counts, opt)
    print(f"{mesh.name}: modeled full-app speedup at {args.threads} threads")
    print(f"  at this mesh's recurrence parallelism: {measured:.1f}x")
    print(f"  at paper-scale parallelism (248x):     {paper_scale:.1f}x "
          f"(paper: 6.9x)")
    return 0


def cmd_scaling(args) -> int:
    from .dist import MESH_C_PAPER, MESH_D_PAPER, MultiNodeModel, NodeConfig
    from .obs import MetricsRegistry, Tracer, use_metrics
    from .perf import format_series

    wl = MESH_C_PAPER if args.workload == "mesh-c" else MESH_D_PAPER
    configs = {
        "baseline": NodeConfig(optimized=False),
        "optimized": NodeConfig(
            optimized=True, pipelined_gmres=args.pipelined
        ),
        "hybrid": NodeConfig(
            optimized=True, ranks_per_node=2, threads_per_rank=8,
            threaded_kernels=True, pipelined_gmres=args.pipelined
        ),
    }
    metrics = MetricsRegistry()
    tracer = Tracer()  # holds the synthetic model spans for export
    series = {}
    with use_metrics(metrics):
        for name, cfg in configs.items():
            mm = MultiNodeModel(wl, config=cfg)
            series[name + " (s)"] = [
                f"{mm.total_time(n):.1f}" for n in args.nodes
            ]
        base = MultiNodeModel(wl, config=configs["baseline"])
        breakdowns = [base.trace_breakdown(n) for n in args.nodes]
    from .obs import synthetic_span

    tracer.roots.append(synthetic_span(
        f"scaling/{wl.name}",
        sum(s.seconds for s in breakdowns),
        children=breakdowns,
    ))
    series["comm %"] = [
        f"{100 * s.attrs['comm_fraction']:.0f}%" for s in breakdowns
    ]
    print(format_series("nodes", args.nodes, series,
                        title=f"{wl.name} strong scaling (modeled)"))
    _write_obs(args, tracer, metrics)
    return 0


def cmd_partition(args) -> int:
    from .partition import (
        coordinate_partition,
        natural_partition,
        partition_graph,
        partition_report,
    )
    from .perf import format_table

    mesh = _make_mesh(args)
    k = args.parts
    rows = []
    for name, labels in (
        ("natural", natural_partition(mesh.n_vertices, k)),
        ("RCB", coordinate_partition(mesh.coords, k)),
        ("multilevel", partition_graph(mesh.edges, mesh.n_vertices, k,
                                       seed=args.seed)),
    ):
        r = partition_report(mesh.edges, labels, k)
        rows.append([
            name, f"{100 * r.cut_fraction:.1f}%",
            f"+{100 * r.replication_overhead:.1f}%",
            f"{r.vertex_imbalance:.3f}", f"{r.edge_imbalance:.3f}",
        ])
    print(format_table(
        ["partitioner", "edge cut", "replication", "vertex imbalance",
         "edge imbalance"],
        rows,
        title=f"{mesh.name}: {k}-way partition quality",
    ))
    return 0


def _bench_trsv(args, mesh, worker_list, repeats, machine=None,
                calibrated=False) -> dict:
    """TRSV-sweep branch of ``bench``: measured process ILU/TRSV scaling."""
    from .smp.bench import run_trsv_scaling
    from .smp.machine import XEON_E5_2690_V2

    return run_trsv_scaling(
        mesh,
        workers=tuple(worker_list),
        repeats=repeats,
        fill_level=args.ilu,
        seed=args.seed,
        dataset=args.dataset,
        scale=args.scale,
        machine=machine or XEON_E5_2690_V2,
        calibrated=calibrated,
    )


def _print_rank_worker_sweep(rows: list[dict]) -> None:
    from .perf import format_table

    table = [
        [
            f"{r['n_ranks']}x{r['sparse_workers']}",
            f"{1e3 * r['wall_seconds']:.1f}",
            f"{100 * r['halo_fraction']:.1f}%",
            f"{100 * r['allreduce_fraction']:.1f}%",
            (
                f"{100 * r['allreduce_model_rel_error']:.0f}%"
                if r.get("allreduce_model_rel_error") is not None
                else "-"
            ),
        ]
        for r in rows
    ]
    print(format_table(
        ["ranks x workers", "wall ms", "halo", "allreduce", "model err"],
        table,
        title="measured ranks x sparse-workers splits (dist_sweep)",
    ))


def _print_trsv_table(args, mesh, doc, repeats) -> None:
    from .perf import format_table

    rows = [
        [
            r["strategy"], str(r["workers"]),
            f"{1e3 * r['trsv_wall_seconds']:.2f}",
            f"{r['trsv_speedup']:.2f}x",
            f"{1e3 * r['ilu_wall_seconds']:.2f}",
            f"{r['ilu_speedup']:.2f}x",
            f"{1e3 * r['trsv_model_seconds']:.2f}",
            str(r["cross_deps"]),
            f"{r['max_abs_dev']:.1e}",
        ]
        for r in doc["results"]
    ]
    print(format_table(
        ["strategy", "workers", "trsv ms", "speedup", "ilu ms", "speedup",
         "model ms", "cross", "max dev"],
        rows,
        title=f"{mesh.name}: measured ILU({doc['fill_level']})+TRSV "
              f"process scaling (serial trsv "
              f"{1e3 * doc['serial']['trsv_wall_seconds']:.2f} ms / ilu "
              f"{1e3 * doc['serial']['ilu_wall_seconds']:.2f} ms, "
              f"best of {repeats}; {doc['n_levels']} fwd levels, "
              f"max width {doc['max_level_width']})",
    ))
    print(f"wrote {args.out}")


def _bench_scatter(args, repeats) -> int:
    """Scatter-plan branch of ``bench``: precompiled plans vs np.add.at."""
    from .perf import format_table
    from .smp.bench import (
        append_history,
        load_history,
        rolling_scatter_gate_failures,
        run_scatter_kernels,
        scatter_gate_failures,
        write_bench_json,
    )

    if args.out == "BENCH_flux_scaling.json":  # only the untouched default
        args.out = "BENCH_scatter_kernels.json"
    # ascending mesh sizes so the largest (last) carries the gate reference
    fractions = (1.0,) if args.quick else (0.25, 0.5, 1.0)
    meshes = [_make_mesh(args, scale=args.scale * f) for f in fractions]
    doc = run_scatter_kernels(
        meshes,
        repeats=repeats,
        seed=args.seed,
        dataset=args.dataset,
        scale=args.scale,
        engine=args.engine,
    )
    write_bench_json(doc, args.out)
    rows = [
        [
            r["strategy"], str(r["mesh_vertices"]), str(r["mesh_edges"]),
            r["engine"], str(r["entries"]),
            f"{1e3 * r['addat_seconds']:.2f}",
            f"{1e3 * r['wall_seconds']:.2f}",
            f"{r['speedup']:.2f}x",
            f"{r['max_abs_dev']:.1e}",
        ]
        for r in doc["results"]
    ]
    print(format_table(
        ["kernel", "vertices", "edges", "engine", "entries", "add.at ms",
         "plan ms", "speedup", "max dev"],
        rows,
        title=f"scatter-plan kernels vs np.add.at reference "
              f"({args.dataset}, ordering={args.ordering}, "
              f"best of {repeats})",
    ))
    print(f"wrote {args.out}")
    history = load_history(args.history) if args.history else []
    if args.gate:
        if args.history:
            failures = rolling_scatter_gate_failures(
                doc, history, max_regression=args.gate_slowdown,
            )
            gate_kind = (
                "rolling-median trend" if history else
                "fixed slowdown (no comparable history yet)"
            )
        else:
            failures = scatter_gate_failures(
                doc, max_slowdown=args.gate_slowdown
            )
            gate_kind = "fixed slowdown"
        for msg in failures:
            print(f"GATE FAIL: {msg}")
        if failures:
            return 1
        print(f"GATE OK: bitwise add.at equivalence + plan performance "
              f"({gate_kind})")
    if args.history:
        append_history(doc, args.history)
        print(f"appended trend record to {args.history} "
              f"({len(history) + 1} total)")
    return 0


def _bench_fusion(args, repeats) -> int:
    """Fusion branch of ``bench``: fused kgir programs vs the unfused
    three-kernel (gradients / limiter / flux) reference sequence."""
    from .perf import format_table
    from .smp.bench import (
        append_history,
        fusion_gate_failures,
        load_history,
        rolling_fusion_gate_failures,
        run_fusion,
        write_bench_json,
    )

    if args.out == "BENCH_flux_scaling.json":  # only the untouched default
        args.out = "BENCH_fusion.json"
    # ascending mesh sizes so the largest (last) carries the gate reference
    fractions = (1.0,) if args.quick else (0.25, 0.5, 1.0)
    meshes = [_make_mesh(args, scale=args.scale * f) for f in fractions]
    doc = run_fusion(
        meshes,
        repeats=repeats,
        seed=args.seed,
        dataset=args.dataset,
        scale=args.scale,
    )
    write_bench_json(doc, args.out)
    rows = [
        [
            str(r["mesh_vertices"]), str(r["mesh_edges"]),
            f"{r['stages_before']}->{r['stages_after']}",
            f"{1e3 * r['unfused_seconds']:.2f}",
            f"{1e3 * r['wall_seconds']:.2f}",
            f"{r['speedup']:.2f}x",
            f"{r['bytes_saved'] / 1e6:.2f}",
            f"{r['max_abs_dev']:.1e}",
        ]
        for r in doc["results"]
    ]
    print(format_table(
        ["vertices", "edges", "stages", "unfused ms", "fused ms",
         "speedup", "saved MB", "max dev"],
        rows,
        title=f"fused kernel-graph residual vs unfused reference "
              f"({args.dataset}, ordering={args.ordering}, "
              f"best of {repeats})",
    ))
    print(f"wrote {args.out}")
    history = load_history(args.history) if args.history else []
    if args.gate:
        if args.history:
            failures = rolling_fusion_gate_failures(
                doc, history, max_regression=args.gate_slowdown,
                min_speedup=args.gate_speedup,
            )
            gate_kind = (
                "rolling-median trend" if history else
                "fixed speedup (no comparable history yet)"
            )
        else:
            failures = fusion_gate_failures(
                doc, min_speedup=args.gate_speedup
            )
            gate_kind = "fixed speedup"
        for msg in failures:
            print(f"GATE FAIL: {msg}")
        if failures:
            return 1
        print(f"GATE OK: bitwise fused==unfused equivalence + fusion "
              f"speedup ({gate_kind})")
    if args.history:
        append_history(doc, args.history)
        print(f"appended trend record to {args.history} "
              f"({len(history) + 1} total)")
    return 0


def cmd_top(args) -> int:
    """Live terminal view of a running solve's Prometheus endpoint.

    Attach with ``--url``/``--port``, or pass a repro subcommand after
    ``--`` to launch it (``--metrics-serve`` appended on a free port) and
    watch it until it exits.
    """
    from .obs.live.top import run_top

    child = None
    url = args.url
    if url is None and args.port is not None:
        url = f"http://127.0.0.1:{args.port}/metrics"
    if url is None:
        spawn = [a for a in args.spawn if a != "--"]
        if not spawn:
            print("top: give --url/--port or a command to launch "
                  "(repro top -- solve ...)", file=sys.stderr)
            return 2
        import socket
        import subprocess

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", *spawn,
             "--metrics-serve", str(port)]
        )
        url = f"http://127.0.0.1:{port}/metrics"
    try:
        rc = run_top(
            url,
            interval=args.interval,
            iterations=args.iterations,
            plain=args.plain,
        )
    except KeyboardInterrupt:
        rc = 130
    if child is not None:
        try:
            child_rc = child.wait(timeout=60.0)
        except Exception:
            child.terminate()
            child_rc = child.wait(timeout=10.0)
        return child_rc
    return rc


def cmd_calibrate(args) -> int:
    """``repro calibrate``: fit the cost model to this host and save it."""
    import time

    from .perf import format_table
    from .tune import run_calibration, save_calibration

    mode = "fast" if args.fast else "full"
    print(f"calibrating host ({mode} sweep) ...")
    t0 = time.perf_counter()
    cal = run_calibration(
        fast=args.fast,
        max_threads=args.max_threads or None,
        seed=args.seed,
    )
    elapsed = time.perf_counter() - t0
    save_calibration(cal, args.out)

    m = cal.model
    rows = [
        ["n_cores", f"{m.n_cores}", "cpu count"],
        ["freq_hz", f"{m.freq_hz:.3e}", "effective cycles/s from the "
                                        "serial flux kernel"],
        ["core_bw", f"{m.core_bw / 1e9:.2f} GB/s", "1-thread STREAM triad"],
        ["stream_bw", f"{m.stream_bw / 1e9:.2f} GB/s",
         "best multi-thread STREAM triad"],
        ["stall_per_load", f"{m.stall_per_load:.2f} cy",
         "sorted gather latency"],
        ["unordered_latency_factor", f"{m.unordered_latency_factor:.2f}",
         "shuffled/sorted gather ratio"],
        ["flops_per_cycle_simd", f"{m.flops_per_cycle_simd:.2f}",
         "block TRSV rate"],
        ["ilu_rate_factor", f"{m.ilu_rate_factor:.2f}",
         "ILU factorization rate"],
        ["barrier_base_ns", f"{m.barrier_base_ns:.0f} ns",
         "threading.Barrier sweep"],
        ["p2p_sync_ns", f"{m.p2p_sync_ns:.0f} ns",
         "shared-flag ping-pong"],
        ["dispatch_ns", f"{m.dispatch_ns:.0f} ns",
         "fork + pipe round trip"],
        ["allreduce_stage_cost", f"{cal.allreduce_stage_cost:.2e} s",
         "forked-rank scatter-gather (per tree stage)"],
    ]
    print(format_table(
        ["constant", "fitted", "measured from"],
        rows,
        title=f"{m.name}: calibrated in {elapsed:.1f} s ({mode})",
    ))
    print(f"wrote {args.out} (used by --tune and the bench model columns "
          f"on this host)")
    return 0


def _cmd_bench_report(args) -> int:
    """``repro bench report``: per-kernel trend table of the history file."""
    from .perf import format_table
    from .smp.bench import load_history, summarize_history

    path = args.history or ".bench_history.jsonl"
    records = load_history(path)
    if not records:
        print(f"no history records in {path}")
        return 1
    hidden = 0
    if not getattr(args, "all_hosts", False):
        from .obs.live.fingerprint import same_host

        here = [r for r in records if same_host(r.get("host"))]
        hidden = len(records) - len(here)
        if not here:
            print(f"no records from this host in {path} "
                  f"({hidden} from other hosts or unfingerprinted; "
                  f"--all-hosts to include them)")
            return 1
        records = here
    rows = [
        [
            r["kind"], str(r["dataset"]), r["cell"], str(r["runs"]),
            f"{1e3 * r['median_seconds']:.2f}",
            f"{1e3 * r['last_seconds']:.2f}",
            f"{100 * r['delta_fraction']:+.1f}%",
            r["verdict"],
        ]
        for r in summarize_history(records)
    ]
    print(format_table(
        ["kind", "dataset", "cell", "runs", "median ms", "last ms",
         "delta", "verdict"],
        rows,
        title=f"bench trends from {path} ({len(records)} records"
              + (f", {hidden} other-host hidden" if hidden else "")
              + ", rolling median of last 5)",
    ))
    if any(r[-1] == "regressed" for r in rows):
        return 1
    return 0


def _bench_serve(args) -> int:
    """--kernel serve: warm batched daemon throughput vs cold one-shots."""
    from .perf import format_table
    from .serve.bench import (
        rolling_serve_gate_failures,
        run_serve_throughput,
        serve_gate_failures,
    )
    from .smp.bench import append_history, load_history, write_bench_json

    if args.out == "BENCH_flux_scaling.json":  # only the untouched default
        args.out = "BENCH_serve_throughput.json"
    batch_sizes = (2, 4) if args.quick else (2, 4, 8)
    doc = run_serve_throughput(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        ilu=args.ilu,
        batch_sizes=batch_sizes,
        cold_mode=args.cold_mode,
    )
    write_bench_json(doc, args.out)

    rows = [
        [
            r["strategy"], str(r["workers"]),
            f"{1e3 * r['wall_seconds']:.1f}",
            f"{r['cases_per_second']:.2f}",
            f"{r['amortization_x']:.2f}x",
            f"{r['max_abs_dev']:.1e}",
        ]
        for r in doc["results"]
    ]
    print(format_table(
        ["strategy", "batch", "ms/case", "cases/s", "vs cold", "max dev"],
        rows,
        title=f"{args.dataset}: serve throughput (cold {args.cold_mode} "
              f"one-shot {1e3 * doc['serial']['wall_seconds']:.0f} ms/case, "
              f"family build {1e3 * doc['family_build_seconds']:.0f} ms)",
    ))
    print(f"wrote {args.out}")

    history = load_history(args.history) if args.history else []
    if args.gate:
        if args.history:
            failures = rolling_serve_gate_failures(
                doc, history, min_amortization=args.gate_amortization,
                max_regression=args.gate_slowdown, tol=args.gate_tol,
            )
            gate_kind = (
                "amortization floor + rolling-median trend" if history
                else "amortization floor (no comparable history yet)"
            )
        else:
            failures = serve_gate_failures(
                doc, tol=args.gate_tol,
                min_amortization=args.gate_amortization,
            )
            gate_kind = "amortization floor"
        for msg in failures:
            print(f"GATE FAIL: {msg}")
        if failures:
            return 1
        print(f"GATE OK: cold-equivalent forces + warm amortization "
              f"({gate_kind})")
    if args.history:
        append_history(doc, args.history)
        print(f"appended trend record to {args.history} "
              f"({len(history) + 1} total)")
    return 0


def _bench_tune(args) -> int:
    """--kernel tune: auto-tuned vs static-default solve (never-slower)."""
    from .perf import format_table
    from .smp.bench import append_history, load_history, write_bench_json
    from .tune import (
        active_model,
        rolling_tune_gate_failures,
        run_tune_bench,
        tune_gate_failures,
    )

    if args.out == "BENCH_flux_scaling.json":  # only the untouched default
        args.out = "BENCH_tune.json"
    machine, cal = active_model(getattr(args, "calibration", "") or None)
    history = load_history(args.history) if args.history else []
    doc = run_tune_bench(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        ilu=args.ilu,
        max_steps=3 if args.quick else 5,
        machine=machine,
        cal=cal,
        history=history,
    )
    write_bench_json(doc, args.out)

    rows = [
        [
            r["strategy"], str(r["workers"]),
            f"{1e3 * r['wall_seconds']:.1f}",
            f"{1e3 * r['model_seconds']:.1f}",
            f"{100 * r['model_rel_error']:.0f}%",
            f"{r['max_abs_dev']:.1e}",
        ]
        for r in doc["results"]
    ]
    tuned = doc["tuned"]
    print(format_table(
        ["strategy", "workers", "wall ms", "model ms", "rel err",
         "max dev"],
        rows,
        title=f"{args.dataset}: tuned vs default "
              f"({tuned['predicted_speedup']:.2f}x predicted, "
              f"{tuned['source']}, machine: {doc['machine']}"
              f"{', calibrated' if doc['calibrated'] else ''})",
    ))
    print(f"wrote {args.out}")

    if args.gate:
        if history:
            failures = rolling_tune_gate_failures(
                doc, history, max_regression=args.gate_slowdown,
            )
            gate_kind = "never-slower + rolling-median trend"
        else:
            failures = tune_gate_failures(doc)
            gate_kind = "never-slower"
        for msg in failures:
            print(f"GATE FAIL: {msg}")
        if failures:
            return 1
        print(f"GATE OK: tuned config no slower than default, forces "
              f"identical ({gate_kind})")
    if args.history:
        append_history(doc, args.history)
        print(f"appended trend record to {args.history} "
              f"({len(history) + 1} total)")
    return 0


def cmd_bench(args) -> int:
    from .perf import format_table
    from .smp.bench import (
        append_history,
        gate_failures,
        load_history,
        rolling_gate_failures,
        run_dist_breakdown,
        run_flux_scaling,
        trsv_gate_failures,
        rolling_trsv_gate_failures,
        write_bench_json,
    )
    from .tune import active_model, calibrated_fabric

    if args.mode == "report":
        return _cmd_bench_report(args)

    if args.quick:
        worker_list = [max(1, args.workers)]
        repeats = min(args.repeats, 3)
    else:
        worker_list, w = [1], 2
        while w < args.workers:
            worker_list.append(w)
            w *= 2
        if args.workers > 1:
            worker_list.append(args.workers)
        repeats = args.repeats

    if args.kernel == "scatter":
        return _bench_scatter(args, repeats)

    if args.kernel == "fusion":
        return _bench_fusion(args, repeats)

    if args.kernel == "serve":
        return _bench_serve(args)

    if args.kernel == "tune":
        return _bench_tune(args)

    machine, cal = active_model(getattr(args, "calibration", "") or None)
    mesh = _make_mesh(args)
    if args.sparse_backend == "process" or args.kernel == "trsv":
        if args.out == "BENCH_flux_scaling.json":  # only the untouched default
            args.out = "BENCH_trsv_scaling.json"
        doc = _bench_trsv(args, mesh, worker_list, repeats,
                          machine=machine, calibrated=cal is not None)
        if args.dist_ranks > 0:
            from .smp.bench import run_rank_worker_sweep

            pairs = []
            r = 2
            while r <= args.dist_ranks:
                pairs.append((r, max(args.dist_ranks // r, 1)))
                r *= 2
            doc["dist_sweep"] = run_rank_worker_sweep(
                mesh, pairs or [(args.dist_ranks, 1)], seed=args.seed,
                fabric=calibrated_fabric(cal, machine),
            )
        write_bench_json(doc, args.out)
        _print_trsv_table(args, mesh, doc, repeats)
        if "dist_sweep" in doc:
            _print_rank_worker_sweep(doc["dist_sweep"])
        history = load_history(args.history) if args.history else []
        if args.gate:
            if args.history:
                failures = rolling_trsv_gate_failures(
                    doc, history, max_regression=args.gate_slowdown,
                    tol=args.gate_tol,
                )
                gate_kind = (
                    "rolling-median trend" if history else
                    "fixed slowdown (no comparable history yet)"
                )
            else:
                failures = trsv_gate_failures(
                    doc, tol=args.gate_tol, max_slowdown=args.gate_slowdown
                )
                gate_kind = "fixed slowdown"
            for msg in failures:
                print(f"GATE FAIL: {msg}")
            if failures:
                return 1
            print(f"GATE OK: serial-equivalent solves + p2p performance "
                  f"({gate_kind})")
        if args.history:
            append_history(doc, args.history)
            print(f"appended trend record to {args.history} "
                  f"({len(history) + 1} total)")
        return 0

    doc = run_flux_scaling(
        mesh,
        workers=tuple(worker_list),
        strategies=tuple(args.strategies),
        repeats=repeats,
        seed=args.seed,
        dataset=args.dataset,
        scale=args.scale,
        machine=machine,
        calibrated=cal is not None,
    )
    if args.dist_ranks > 0:
        doc["dist"] = run_dist_breakdown(
            mesh, n_ranks=args.dist_ranks, pipelined=args.pipelined,
            seed=args.seed, fabric=calibrated_fabric(cal, machine),
        )
    write_bench_json(doc, args.out)

    rows = [
        [
            r["strategy"], str(r["workers"]),
            f"{1e3 * r['wall_seconds']:.2f}", f"{r['speedup']:.2f}x",
            f"{100 * r['redundant_edge_fraction']:.1f}%",
            f"{r['max_abs_dev']:.1e}",
        ]
        for r in doc["results"]
    ]
    print(format_table(
        ["strategy", "workers", "wall ms", "speedup", "redundant",
         "max dev"],
        rows,
        title=f"{mesh.name}: measured flux-kernel scaling "
              f"(serial {1e3 * doc['serial']['wall_seconds']:.2f} ms, "
              f"best of {repeats})",
    ))
    print(f"wrote {args.out}")
    if "dist" in doc:
        d = doc["dist"]
        print(
            f"dist breakdown ({d['n_ranks']} ranks, "
            f"{'pipelined' if d['pipelined'] else 'plain'}): "
            f"halo {100 * d['halo_fraction']:.1f}% "
            f"allreduce {100 * d['allreduce_fraction']:.1f}% "
            f"comm {100 * d['comm_fraction']:.1f}%"
        )

    history = load_history(args.history) if args.history else []
    if args.gate:
        if args.history:
            failures = rolling_gate_failures(
                doc, history, max_regression=args.gate_slowdown,
                tol=args.gate_tol,
            )
            gate_kind = (
                "rolling-median trend" if history else
                "fixed slowdown (no comparable history yet)"
            )
        else:
            failures = gate_failures(
                doc, tol=args.gate_tol, max_slowdown=args.gate_slowdown
            )
            gate_kind = "fixed slowdown"
        for msg in failures:
            print(f"GATE FAIL: {msg}")
        if failures:
            return 1
        print(f"GATE OK: residual equivalence + owner-writes performance "
              f"({gate_kind})")
    if args.history:
        append_history(doc, args.history)
        print(f"appended trend record to {args.history} "
              f"({len(history) + 1} total)")
    return 0


def cmd_serve(args) -> int:
    """Run the warm-fleet solver daemon until SIGTERM/SIGINT (exit 0)."""
    from .serve import ExecutionConfig, ServeDaemon

    execution = ExecutionConfig(
        edge_backend=args.backend,
        workers=args.workers,
        edge_strategy=args.edge_strategy,
        partitioner=args.partitioner,
        sparse_backend=args.sparse_backend,
        sparse_strategy=args.sparse_strategy,
        sparse_workers=args.sparse_workers or args.workers,
        fuse=args.fuse,
        tune="on" if args.tune else "off",
        calibration=args.calibration,
    )
    daemon = ServeDaemon(
        args.socket,
        execution=execution,
        max_families=args.max_families,
        max_queue=args.max_queue,
        default_deadline_s=args.deadline,
        solver_threads=args.solver_threads,
        metrics_port=args.metrics_serve,
    )
    return daemon.run()


def _parse_sweep(entries: list[str]) -> dict[str, list]:
    """``["aoa=0,2,4", "beta=2,4"]`` -> ``{"aoa": [...], "beta": [...]}``."""
    sweep: dict[str, list] = {}
    for entry in entries:
        name, _, raw = entry.partition("=")
        name = name.strip()
        if not _ or not name or not raw:
            raise SystemExit(
                f"repro submit: bad --sweep {entry!r} "
                "(expected FIELD=V1,V2,...)"
            )
        values: list = []
        for tok in raw.split(","):
            tok = tok.strip()
            if name == "dissipation":
                values.append(tok)
            elif name == "max_steps":
                values.append(int(tok))
            else:
                values.append(float(tok))
        sweep[name] = values
    return sweep


def cmd_submit(args) -> int:
    """Client of a running daemon; fans --sweep grids into one batch."""
    import json

    from .serve import ServeClient, ServeError, sweep_grid
    from .serve.protocol import ProtocolError

    family = {
        "dataset": args.dataset, "scale": args.scale, "seed": args.seed,
        "ordering": args.ordering, "ilu": args.ilu,
        "subdomains": args.subdomains, "dist_ranks": args.dist_ranks,
    }
    base = {
        "aoa": args.aoa, "beta": args.beta,
        "dissipation": args.dissipation,
        "max_steps": args.max_steps, "rtol": args.rtol,
    }
    try:
        cases = [c.to_dict() for c in sweep_grid(base, _parse_sweep(args.sweep))]
    except ProtocolError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2
    try:
        with ServeClient(args.socket, timeout=args.timeout) as client:
            if args.op == "ping":
                print(json.dumps(client.ping()))
                return 0
            if args.op == "stats":
                print(json.dumps(client.stats(), indent=2))
                return 0
            if args.op == "shutdown":
                print(json.dumps(client.shutdown()))
                return 0
            if args.op == "evaluate":
                responses = [client.evaluate(
                    family=family, cases=cases, deadline_s=args.deadline
                )]
            elif len(cases) > 1 and not args.no_batch:
                responses = [client.batch(
                    family=family, cases=cases, deadline_s=args.deadline
                )]
            else:
                responses = [
                    client.solve(
                        family=family, case=c, deadline_s=args.deadline
                    )
                    for c in cases
                ]
    except ServeError as exc:
        print(f"repro submit: daemon rejected the request: {exc}",
              file=sys.stderr)
        return 1
    except (OSError, ProtocolError) as exc:
        print(f"repro submit: cannot reach daemon on {args.socket}: {exc}",
              file=sys.stderr)
        return 1

    if args.json:
        for resp in responses:
            print(json.dumps(resp))
        return 0
    from .perf import format_table

    results = [
        r
        for resp in responses
        for r in (resp["results"] if "results" in resp else [resp["result"]])
    ]
    if args.op == "evaluate":
        rows = [
            [
                r["case"].get("tag") or f"aoa={r['case']['aoa']:g}",
                f"{r['residual_norm']:.6e}",
                f"{r['residual_max']:.6e}",
                f"{r['forces']['cl']:.6f}",
                f"{r['forces']['cd']:.6f}",
            ]
            for r in results
        ]
        first = responses[0]
        print(format_table(
            ["case", "|R|", "max|R|", "CL", "CD"],
            rows,
            title=f"{args.dataset}: {len(results)} case(s) evaluated in "
                  f"one batched sweep via {args.socket} "
                  f"(plan cache {first['cache']}, "
                  f"queue {first['span']['queue_seconds'] * 1e3:.0f} ms)",
        ))
        return 0
    rows = [
        [
            r["case"].get("tag") or f"aoa={r['case']['aoa']:g}",
            "yes" if r["converged"] else "no",
            str(r["steps"]),
            f"{r['final_residual']:.3e}",
            f"{r['forces']['cl']:.6f}",
            f"{r['forces']['cd']:.6f}",
            f"{1e3 * r['wall_seconds']:.0f}",
        ]
        for r in results
    ]
    first = responses[0]
    print(format_table(
        ["case", "conv", "steps", "residual", "CL", "CD", "ms"],
        rows,
        title=f"{args.dataset}: {len(results)} case(s) via {args.socket} "
              f"(plan cache {first['cache']}, "
              f"queue {first['span']['queue_seconds'] * 1e3:.0f} ms)",
    ))
    return 0


_COMMANDS = {
    "mesh-info": cmd_mesh_info,
    "solve": cmd_solve,
    "profile": cmd_profile,
    "speedup": cmd_speedup,
    "scaling": cmd_scaling,
    "partition": cmd_partition,
    "calibrate": cmd_calibrate,
    "bench": cmd_bench,
    "top": cmd_top,
    "serve": cmd_serve,
    "submit": cmd_submit,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
