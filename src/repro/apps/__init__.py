"""Full-application driver and optimization configurations."""

from .config import OptimizationConfig
from .fun3d import Fun3dApp, Fun3dRunResult

__all__ = ["OptimizationConfig", "Fun3dApp", "Fun3dRunResult"]
