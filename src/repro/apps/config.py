"""Optimization configurations: the paper's single-node tuning space.

An :class:`OptimizationConfig` selects one point in the space the paper
explores — threading strategy and thread count, thread partitioner, node
data layout, SIMD, software prefetch, RCM reordering, triangular-solve
strategy, ILU fill level, and whether the PETSc vector primitives are
replaced with threaded versions.  ``baseline()`` and ``optimized()`` are the
two endpoints compared throughout Section VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..smp.machine import XEON_E5_2690_V2, MachineModel

__all__ = ["OptimizationConfig"]


@dataclass
class OptimizationConfig:
    """One configuration of the shared-memory optimization space."""

    n_threads: int = 1
    edge_strategy: str = "sequential"  # sequential | atomic | replicate
    thread_partitioner: str = "metis"  # natural | metis (for replicate)
    layout: str = "soa"  # soa | aos
    simd: bool = False
    prefetch: bool = False
    rcm: bool = False
    tri_strategy: str = "sequential"  # sequential | level | p2p
    ilu_fill: int = 1  # the original PETSc-FUN3D default (Table II)
    vec_threaded: bool = False  # our optimized vector primitives
    machine: MachineModel = field(default_factory=lambda: XEON_E5_2690_V2)

    @classmethod
    def baseline(cls, ilu_fill: int = 1) -> "OptimizationConfig":
        """Out-of-the-box single-threaded configuration (the paper's base)."""
        return cls(ilu_fill=ilu_fill)

    @classmethod
    def optimized(
        cls, n_threads: int = 20, ilu_fill: int = 1
    ) -> "OptimizationConfig":
        """All shared-memory optimizations on (paper Section VI.A)."""
        return cls(
            n_threads=n_threads,
            edge_strategy="replicate",
            thread_partitioner="metis",
            layout="aos",
            simd=True,
            prefetch=True,
            rcm=True,
            tri_strategy="p2p",
            ilu_fill=ilu_fill,
            vec_threaded=True,
        )

    def with_(self, **kw) -> "OptimizationConfig":
        """Functional update (for optimization sweeps)."""
        return replace(self, **kw)

    def label(self) -> str:
        if self.n_threads == 1:
            return "baseline"
        bits = [f"{self.n_threads}t", self.edge_strategy]
        if self.edge_strategy == "replicate":
            bits.append(self.thread_partitioner)
        bits.append(self.layout)
        if self.simd:
            bits.append("simd")
        if self.prefetch:
            bits.append("pf")
        if self.rcm:
            bits.append("rcm")
        bits.append(self.tri_strategy)
        bits.append(f"ilu{self.ilu_fill}")
        return "+".join(bits)
