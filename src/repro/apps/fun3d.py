"""The full PETSc-FUN3D-like application driver.

:class:`Fun3dApp` ties the whole stack together: mesh (optionally RCM
reordered), flow field, pseudo-transient Newton-Krylov-Schwarz solve, and —
after the numerics finish — a *modeled* per-kernel time profile for the
selected :class:`OptimizationConfig` built from the measured operation
counts and the machine cost models.

Because every optimization is numerics-preserving, one solve yields the
operation counts for **all** configurations at that ILU fill level; the
profile/speedup methods re-price those counts under different configs.
That is how the benchmarks regenerate Figures 5 and 8 and Tables I and II
in seconds instead of hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfd.state import FlowConfig, FlowField
from ..obs.metrics import MetricsRegistry, use_metrics
from ..obs.span import NullTracer, Tracer, use_tracer
from ..ordering import rcm_relabel
from ..mesh.core import UnstructuredMesh
from ..perf.profile import PerfRegistry, use_registry
from ..smp.cost import (
    EdgeLoopOptions,
    edge_loop_time,
    flux_kernel_work,
    grad_kernel_work,
    ilu_time,
    jacobian_kernel_work,
    trsv_time,
    vector_op_time,
)
from ..smp.strategies import (
    EdgeLoopExecutor,
    metis_thread_labels,
    natural_thread_labels,
    tri_solve_options_from_plan,
)
from ..solver.newton import SolveResult, SolverOptions, solve_steady
from ..sparse.bcsr import bcsr_pattern_from_edges
from ..sparse.ilu import build_ilu_plan
from .config import OptimizationConfig

__all__ = ["Fun3dApp", "Fun3dRunResult"]

#: kernels whose counts drive the modeled profile
_EDGE_KERNELS = ("flux", "grad", "jacobian")


@dataclass
class Fun3dRunResult:
    """Numerics + measured counts + modeled per-kernel times of one run."""

    solve: SolveResult
    registry: PerfRegistry
    counts: dict[str, int]
    profile: dict[str, float]  # kernel -> modeled seconds for the config
    config: OptimizationConfig
    trace: Tracer | None = None  # hierarchical span tree of the solve
    metrics: MetricsRegistry | None = None  # convergence/comm telemetry

    @property
    def modeled_total(self) -> float:
        return sum(self.profile.values())

    def fractions(self) -> dict[str, float]:
        total = self.modeled_total or 1.0
        return {k: v / total for k, v in self.profile.items()}


class Fun3dApp:
    """End-to-end incompressible FUN3D analogue on one mesh."""

    def __init__(
        self,
        mesh: UnstructuredMesh,
        flow: FlowConfig | None = None,
        solver: SolverOptions | None = None,
        apply_rcm: bool = False,
    ) -> None:
        self.mesh = rcm_relabel(mesh) if apply_rcm else mesh
        self.flow = flow or FlowConfig()
        self.solver = solver or SolverOptions()
        self.field = FlowField(self.mesh)
        self._plans: dict[int, object] = {}

    # ------------------------------------------------------------------
    def ilu_plan(self, fill: int):
        """ILU plan of the Jacobian pattern at the given fill (cached)."""
        if fill not in self._plans:
            rowptr, cols = bcsr_pattern_from_edges(
                self.mesh.edges, self.mesh.n_vertices
            )
            self._plans[fill] = build_ilu_plan(rowptr, cols, 4, fill)
        return self._plans[fill]

    # ------------------------------------------------------------------
    def run(
        self,
        config: OptimizationConfig | None = None,
        solver_overrides: dict | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> Fun3dRunResult:
        """Solve to steady state and price the run under ``config``.

        Every run is traced: a fresh :class:`~repro.obs.Tracer` and
        :class:`~repro.obs.MetricsRegistry` (or the ones passed in) are
        active for the solve, and the result carries both alongside the
        flat registry.
        """
        config = config or OptimizationConfig.baseline()
        opts = self.solver
        kw = {"ilu_fill": config.ilu_fill}
        if solver_overrides:
            kw.update(solver_overrides)
        from dataclasses import replace

        opts = replace(opts, **kw)

        reg = PerfRegistry()
        tracer = tracer if tracer is not None else Tracer()
        metrics = metrics if metrics is not None else MetricsRegistry()
        with use_registry(reg), use_tracer(tracer), use_metrics(metrics):
            solve = solve_steady(self.field, self.flow, opts)

        counts = self.operation_counts(reg, solve)
        profile = self.modeled_profile(counts, config)
        return Fun3dRunResult(
            solve=solve,
            registry=reg,
            counts=counts,
            profile=profile,
            config=config,
            trace=tracer,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def operation_counts(reg: PerfRegistry, solve: SolveResult) -> dict[str, int]:
        """Kernel invocation counts measured during the solve."""

        def calls(name: str) -> int:
            return reg.records[name].calls if name in reg.records else 0

        return {
            "residual_evals": calls("flux"),
            "jacobian_assemblies": calls("jacobian"),
            "ilu_factorizations": calls("ilu"),
            "trsv_applies": calls("trsv"),
            "linear_iterations": solve.linear_iterations,
            "steps": solve.steps,
            "vec_bytes": sum(
                r.bytes for n, r in reg.records.items() if n.startswith("Vec")
            ),
            "vec_flops": sum(
                r.flops for n, r in reg.records.items() if n.startswith("Vec")
            ),
            "vec_calls": sum(
                r.calls for n, r in reg.records.items() if n.startswith("Vec")
            ),
        }

    # ------------------------------------------------------------------
    @staticmethod
    def counts_from_trace(
        tracer: Tracer | NullTracer, reg: PerfRegistry
    ) -> dict[str, int]:
        """Operation counts derived from the span tree.

        The trace-first variant of :meth:`operation_counts`: kernel
        invocation counts, Newton steps and Krylov iterations all come from
        spans (``flux``/``jacobian``/``ilu``/``trsv`` leaves, ``newton-step``
        and ``gmres`` structure spans with their ``iterations`` attribute).
        Vector-primitive tallies have no spans — they stay registry-sourced.
        For an instrumented solve this reproduces ``operation_counts``
        exactly; the Fig. 5 benchmark asserts that reconciliation.
        """
        kc = tracer.kernel_counts()
        counts = {
            "residual_evals": kc.get("flux", 0),
            "jacobian_assemblies": kc.get("jacobian", 0),
            "ilu_factorizations": kc.get("ilu", 0),
            "trsv_applies": kc.get("trsv", 0),
            "linear_iterations": sum(
                int(s.attrs.get("iterations", 0)) for s in tracer.find("gmres")
            ),
            "steps": kc.get("newton-step", 0),
        }
        for key, attr in (
            ("vec_bytes", "bytes"),
            ("vec_flops", "flops"),
            ("vec_calls", "calls"),
        ):
            counts[key] = sum(
                getattr(r, attr)
                for n, r in reg.records.items()
                if n.startswith("Vec")
            )
        return counts

    # ------------------------------------------------------------------
    def _edge_options(self, config: OptimizationConfig) -> EdgeLoopOptions:
        t = config.n_threads
        if t <= 1 or config.edge_strategy == "sequential":
            return EdgeLoopOptions(
                n_threads=1,
                strategy="sequential",
                layout=config.layout,
                simd=config.simd,
                prefetch=config.prefetch,
                rcm=config.rcm,
            )
        if config.edge_strategy == "replicate":
            labels = (
                metis_thread_labels(self.mesh.edges, self.mesh.n_vertices, t)
                if config.thread_partitioner == "metis"
                else natural_thread_labels(self.mesh.n_vertices, t)
            )
            ex = EdgeLoopExecutor(
                self.mesh.edges, self.mesh.n_vertices, t, "replicate", labels
            )
            per = ex.edges_per_thread()
        else:
            ex = EdgeLoopExecutor(
                self.mesh.edges, self.mesh.n_vertices, t, config.edge_strategy
            )
            per = ex.edges_per_thread()
        return EdgeLoopOptions(
            n_threads=t,
            strategy=config.edge_strategy,
            layout=config.layout,
            simd=config.simd,
            prefetch=config.prefetch,
            rcm=config.rcm,
            edges_per_thread=per,
        )

    def modeled_profile(
        self,
        counts: dict[str, int],
        config: OptimizationConfig,
        parallelism_override: float | None = None,
    ) -> dict[str, float]:
        """Price the measured operation counts under ``config``.

        Returns modeled seconds per kernel — the quantity the paper's
        Fig. 5 (baseline profile) and Fig. 8 (optimized speedups) report.
        ``parallelism_override`` substitutes the recurrence dependency-graph
        parallelism (e.g. the paper's Mesh-C values, 248x/60x) to price the
        counts as if the mesh were paper-sized.
        """
        mach = config.machine
        ne = self.mesh.n_edges
        nv = self.mesh.n_vertices
        plan = self.ilu_plan(config.ilu_fill)

        eopts = self._edge_options(config)
        flux_t = edge_loop_time(mach, flux_kernel_work(ne), eopts)
        grad_t = edge_loop_time(mach, grad_kernel_work(ne), eopts)
        jac_t = edge_loop_time(mach, jacobian_kernel_work(ne), eopts)

        topts = tri_solve_options_from_plan(
            plan, config.tri_strategy, config.n_threads, simd=config.simd
        )
        if parallelism_override is not None:
            topts.available_parallelism = parallelism_override
        trsv_t = trsv_time(mach, plan.factor_nnzb, plan.n, 4, topts)
        ilu_t = ilu_time(
            mach, plan.factor_block_ops(), plan.factor_nnzb, plan.n, 4, topts
        )

        vec_threads = config.n_threads if config.vec_threaded else 1
        vec_t = vector_op_time(
            mach, counts["vec_bytes"], counts["vec_flops"], vec_threads
        )
        # charge each call's launch/barrier separately
        vec_t += counts["vec_calls"] * mach.barrier_seconds(vec_threads) * 0.1

        second_order = self.flow.second_order
        n_res = counts["residual_evals"]
        return {
            "flux": n_res * flux_t,
            "grad": (n_res * grad_t) if second_order else 0.0,
            "jacobian": counts["jacobian_assemblies"] * jac_t,
            "ilu": counts["ilu_factorizations"] * ilu_t,
            "trsv": counts["trsv_applies"] * trsv_t,
            "vecops": vec_t,
        }

    def speedup(
        self,
        counts: dict[str, int],
        config: OptimizationConfig,
        reference: OptimizationConfig | None = None,
    ) -> float:
        """Modeled speedup of ``config`` over ``reference`` (baseline)."""
        ref = reference or OptimizationConfig.baseline(
            ilu_fill=config.ilu_fill
        )
        t_ref = sum(self.modeled_profile(counts, ref).values())
        t_cfg = sum(self.modeled_profile(counts, config).values())
        return t_ref / t_cfg

    def speedup_paper_scale(
        self,
        counts: dict[str, int],
        config: OptimizationConfig,
        parallelism: float = 248.0,
    ) -> float:
        """Modeled speedup pricing the recurrences at paper-scale graph
        parallelism (Mesh-C ILU-0: 248x) — removes the small-mesh artifact
        when comparing against the paper's absolute speedups."""
        ref = OptimizationConfig.baseline(ilu_fill=config.ilu_fill)
        t_ref = sum(
            self.modeled_profile(counts, ref, parallelism_override=parallelism).values()
        )
        t_cfg = sum(
            self.modeled_profile(counts, config, parallelism_override=parallelism).values()
        )
        return t_ref / t_cfg
