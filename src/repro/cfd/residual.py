"""Full nonlinear residual assembly: f(q) in the paper's Eq. (2).

``R_i = sum_faces F . S`` over vertex i's control-volume surface — interior
dual faces (the edge-based flux kernel), slip-wall/symmetry faces and
far-field faces.  At steady state ``R = 0``.  The second-order path runs the
gradient and limiter kernels first, mirroring the kernel mix in the paper's
profile (flux 42%, gradient 13%).
"""

from __future__ import annotations

import numpy as np

from ..obs.metrics import get_metrics
from ..obs.span import kernel_span
from ..smp.backend import get_edge_backend
from .boundary import farfield_residual, wall_residual
from .flux import interior_flux_residual
from .gradient import lsq_gradients, venkat_limiter
from .state import FlowConfig, FlowField, freestream_state

__all__ = ["compute_residual", "residual_norm"]


def compute_residual(
    field: FlowField,
    q: np.ndarray,
    config: FlowConfig,
    first_order: bool = False,
) -> np.ndarray:
    """Spatial residual ``f(q)``, shape ``(n_vertices, 4)``.

    ``first_order=True`` skips reconstruction regardless of the config —
    used for the preconditioner-side discretization, which the paper keeps
    "lower-order, sparser and more diffusive".

    Instrumentation: the reconstruction runs under a ``grad`` kernel span
    and the flux + boundary sweep under ``flux`` (the paper's two edge-loop
    profile entries), reported to both the perf registry and any active
    tracer.
    """
    get_metrics().counter("residual.evals").inc()
    grad = limiter = None
    backend = get_edge_backend()
    if (
        config.second_order
        and not first_order
        and backend is not None
        and getattr(backend, "residual_pipeline", None) is not None
        and backend.handles(field)
    ):
        # fused kernel-graph path: one program evaluates gradients,
        # limiter and interior flux (bitwise-equal to the staged oracle
        # below); only the boundary closures remain per-kernel
        res, grad, limiter = backend.residual_pipeline(q, config)
        return _add_boundary(field, q, config, res)
    if config.second_order and not first_order:
        with kernel_span("grad"):
            grad = lsq_gradients(field, q)
            limiter = venkat_limiter(field, q, grad, k=config.limiter_k)
    with kernel_span("flux"):
        res = interior_flux_residual(
            field, q, config.beta, grad, limiter, scheme=config.dissipation
        )
        res += wall_residual(field, q, "wall")
        res += wall_residual(field, q, "sym")
        res += farfield_residual(
            field, q, freestream_state(config), config.beta,
            scheme=config.dissipation,
        )
        if config.mu > 0.0:
            from .viscous import viscous_residual

            res += viscous_residual(field, q, config.mu, field.visc_coeffs)
    return res


def _add_boundary(
    field: FlowField,
    q: np.ndarray,
    config: FlowConfig,
    res: np.ndarray,
) -> np.ndarray:
    """Boundary closures on top of an interior residual, oracle order."""
    with kernel_span("flux"):
        res += wall_residual(field, q, "wall")
        res += wall_residual(field, q, "sym")
        res += farfield_residual(
            field, q, freestream_state(config), config.beta,
            scheme=config.dissipation,
        )
        if config.mu > 0.0:
            from .viscous import viscous_residual

            res += viscous_residual(field, q, config.mu, field.visc_coeffs)
    return res


def residual_norm(res: np.ndarray) -> float:
    """Root-mean-square residual over all unknowns (convergence monitor)."""
    return float(np.sqrt(np.mean(res * res)))
