"""Pseudo-transient continuation: local time steps and SER CFL growth.

The implicit step (paper Eq. 2) is ``(u^l - u^{l-1}) / dt_l + f(u^l) = 0``
with ``dt_l -> inf`` as ``l -> inf``.  Per Mulder & Van Leer, the time step
is local (``dt_i = CFL * V_i / sum_faces lambda_f``) and the CFL grows by
Switched Evolution Relaxation: ``CFL_l = CFL_0 * ||f(u^0)|| / ||f(u^l)||``,
capped, so the iteration turns into Newton's method as the residual drops.
"""

from __future__ import annotations

import numpy as np

from .flux import edge_spectral_radius
from .state import FlowConfig, FlowField

__all__ = ["local_timestep", "ser_cfl"]


def local_timestep(
    field: FlowField, q: np.ndarray, config: FlowConfig, cfl: float
) -> np.ndarray:
    """Per-vertex pseudo time step ``dt_i = CFL * V_i / sum lambda_f``.

    The wave-speed sum runs over all dual faces of the control volume
    (interior edges seen from both endpoints, plus boundary faces).
    """
    beta = config.beta
    lam_e = edge_spectral_radius(
        q[field.e0], q[field.e1], field.enormals, beta
    )
    lam_sum = field.edge_sum_plan.apply(lam_e)

    for which in ("wall", "sym", "far"):
        verts, vnormals3, cplan = field.corner_scatter(which)
        if verts.shape[0] == 0:
            continue
        lam_b = edge_spectral_radius(q[verts], q[verts], vnormals3, beta)
        cplan.apply(lam_b, out=lam_sum, accumulate=True)

    lam_sum = np.maximum(lam_sum, 1e-30)
    return cfl * field.volumes / lam_sum


def ser_cfl(
    cfl0: float,
    r0: float,
    r_now: float,
    cfl_max: float = 1e6,
    growth_cap: float = 2.0,
    cfl_prev: float | None = None,
) -> float:
    """Switched Evolution Relaxation CFL.

    ``cfl = cfl0 * r0 / r_now`` clipped to ``cfl_max``; if ``cfl_prev`` is
    given, growth per step is additionally capped at ``growth_cap``x (keeps
    early transients from blowing the CFL up prematurely).
    """
    if r_now <= 0.0:
        return cfl_max
    cfl = cfl0 * r0 / r_now
    if cfl_prev is not None:
        cfl = min(cfl, growth_cap * cfl_prev)
    return float(min(max(cfl, cfl0), cfl_max))
