"""First-order analytic Jacobian assembly into BCSR (4x4 blocks).

The Schwarz preconditioner's coefficients come from "a lower-order, sparser
and more diffusive discretization than that used for f(u) itself": we
linearize the *first-order* Rusanov residual with frozen dissipation
coefficients.  Each edge contributes four 4x4 blocks; boundary faces add to
the diagonal blocks; the pseudo-transient term adds ``V_i / dt_i`` on the
diagonal.  This is the "Jacobian construction" kernel (7% of the baseline
profile) and the matrix consumed by the ILU / TRSV kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from ..perf.scatter import (
    ScatterTerm,
    build_scatter_plan,
    jacobian_edge_plan,
    scatter_plan,
)
from ..sparse.bcsr import BCSRMatrix, bcsr_pattern_from_edges
from .flux import edge_spectral_radius
from .state import NVARS, FlowConfig, FlowField, freestream_state

__all__ = ["analytic_flux_jacobian", "JacobianAssembler"]


def analytic_flux_jacobian(
    q: np.ndarray, normals: np.ndarray, beta: float
) -> np.ndarray:
    """Batched ``dF/dq`` of the artificial-compressibility flux, ``(n, 4, 4)``.

        row p:    (0,          beta S_x,          beta S_y,          beta S_z)
        row u_i:  (S_i,        u_i S_j + delta_ij Theta)
    """
    n = q.shape[0]
    vel = q[:, 1:4]
    theta = np.einsum("ni,ni->n", normals, vel)
    A = np.zeros((n, NVARS, NVARS))
    A[:, 0, 1:4] = beta * normals
    A[:, 1:4, 0] = normals
    A[:, 1:4, 1:4] = np.einsum("ni,nj->nij", vel, normals)
    idx = np.arange(3)
    A[:, idx + 1, idx + 1] += theta[:, None]
    return A


@dataclass
class JacobianAssembler:
    """Assembles the first-order Jacobian for a fixed mesh/pattern.

    Precomputes, once per mesh, the scatter indices mapping each edge to its
    four blocks in the BCSR value array — the NumPy analogue of the paper's
    static access information.
    """

    field: FlowField
    rowptr: np.ndarray = dc_field(init=False)
    cols: np.ndarray = dc_field(init=False)
    _diag_idx: np.ndarray = dc_field(init=False)
    _idx_ij: np.ndarray = dc_field(init=False)
    _idx_ji: np.ndarray = dc_field(init=False)

    def __post_init__(self) -> None:
        f = self.field
        nv = f.n_vertices
        self.rowptr, self.cols = bcsr_pattern_from_edges(f.mesh.edges, nv)
        # Global block keys are sorted (rows ascending, cols sorted within
        # rows), so block lookup is a single vectorized searchsorted.
        keys = np.repeat(
            np.arange(nv, dtype=np.int64), np.diff(self.rowptr)
        ) * np.int64(nv) + self.cols
        self._diag_idx = np.searchsorted(
            keys, np.arange(nv, dtype=np.int64) * nv + np.arange(nv)
        )
        self._idx_ij = np.searchsorted(keys, f.e0 * np.int64(nv) + f.e1)
        self._idx_ji = np.searchsorted(keys, f.e1 * np.int64(nv) + f.e0)
        nnzb = self.cols.shape[0]
        self._edge_plan = jacobian_edge_plan(
            self._diag_idx[f.e0],
            self._idx_ij,
            self._diag_idx[f.e1],
            self._idx_ji,
            nnzb,
            name="jacobian.edge",
        )
        # boundary corners land on diagonal blocks, one value per corner
        self._bc_plans = {
            which: scatter_plan(
                self._diag_idx[verts], nnzb, name="jacobian.bc"
            )
            for which, (verts, _, _) in (
                (w, f.corner_scatter(w)) for w in ("wall", "sym", "far")
            )
        }
        self._visc_plan = None

    def new_matrix(self) -> BCSRMatrix:
        return BCSRMatrix.from_pattern(self.rowptr, self.cols, NVARS)

    def assemble(
        self,
        q: np.ndarray,
        config: FlowConfig,
        out: BCSRMatrix | None = None,
    ) -> BCSRMatrix:
        """Assemble the first-order spatial Jacobian ``df/dq`` at state ``q``.

        The pseudo-transient diagonal is added separately with
        :meth:`add_pseudo_time` so the spatial part can be reused.
        """
        f = self.field
        beta = config.beta
        A = out if out is not None else self.new_matrix()
        A.set_zero()
        vals = A.vals

        ql, qr = q[f.e0], q[f.e1]
        Ai = analytic_flux_jacobian(ql, f.enormals, beta)
        Aj = analytic_flux_jacobian(qr, f.enormals, beta)
        lam = edge_spectral_radius(ql, qr, f.enormals, beta)
        lamI = lam[:, None, None] * np.eye(NVARS)

        # dF/dq_i and dF/dq_j of F = 0.5 (F_i + F_j) - 0.5 lam (q_j - q_i)
        dFdqi = 0.5 * Ai + 0.5 * lamI
        dFdqj = 0.5 * Aj - 0.5 * lamI
        # residual of e0 gains +F; residual of e1 gains -F: all four edge
        # statements execute as one precompiled scatter over vals
        self._edge_plan.apply(
            np.concatenate([dFdqi, dFdqj]), out=vals, accumulate=True
        )

        # slip wall / symmetry: dF/dq has only the pressure column (the
        # same block for each of a face's three corners)
        for which in ("wall", "sym"):
            verts, vnormals3, _ = f.corner_scatter(which)
            if verts.shape[0] == 0:
                continue
            blk = np.zeros((verts.shape[0], NVARS, NVARS))
            blk[:, 1:4, 0] = vnormals3
            self._bc_plans[which].apply(blk, out=vals, accumulate=True)

        # far field: 0.5 A(q_i) + 0.5 lam I (freestream side has no
        # dependence on the unknowns)
        verts, vnormals3, _ = f.corner_scatter("far")
        if verts.shape[0]:
            q_inf = freestream_state(config)
            qi = q[verts]
            Af = analytic_flux_jacobian(qi, vnormals3, beta)
            lam_f = edge_spectral_radius(
                qi, np.broadcast_to(q_inf, qi.shape), vnormals3, beta
            )
            blk = 0.5 * Af + 0.5 * lam_f[:, None, None] * np.eye(NVARS)
            self._bc_plans["far"].apply(blk, out=vals, accumulate=True)

        if config.mu > 0.0:
            from .viscous import viscous_jacobian_blocks

            d_diag, d_off = viscous_jacobian_blocks(
                f, config.mu, f.visc_coeffs
            )
            if self._visc_plan is None:
                ne = f.e0.shape[0]
                self._visc_plan = build_scatter_plan(
                    [
                        ScatterTerm(self._diag_idx[f.e0], 0, 1.0),
                        ScatterTerm(self._diag_idx[f.e1], 0, 1.0),
                        ScatterTerm(self._idx_ij, ne, 1.0),
                        ScatterTerm(self._idx_ji, ne, 1.0),
                    ],
                    self.cols.shape[0],
                    n_sources=2 * ne,
                    name="jacobian.visc",
                )
            self._visc_plan.apply(
                np.concatenate([d_diag, d_off]), out=vals, accumulate=True
            )

        return A

    def add_pseudo_time(self, A: BCSRMatrix, dt: np.ndarray) -> None:
        """Add the pseudo-transient term ``V_i / dt_i`` to the diagonal."""
        shift = self.field.volumes / dt
        A.vals[A.diag_idx] += shift[:, None, None] * np.eye(NVARS)
