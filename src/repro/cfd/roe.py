"""Characteristic (Roe-type) dissipation for the artificial-compressibility
system — the "3x3 eigen-system on each face" of the paper.

The face Jacobian ``A = dF/dq`` of the artificial-compressibility flux has
eigenvalues ``{Theta, Theta, Theta + c, Theta - c}`` with
``c = sqrt(Theta^2 + beta |S|^2)``.  Rather than assembling eigenvector
matrices per face, ``|A|`` is evaluated as the quadratic matrix polynomial
interpolating ``|lambda|`` at the three distinct eigenvalues (exact for any
diagonalizable matrix with that spectrum — verified against the numerical
eigen-decomposition in the tests):

    |A| = f(a) P_a + f(b) P_b + f(d) P_d,     f = abs,
    a = Theta, b = Theta + c, d = Theta - c,

with the Lagrange projectors

    P_a = -(A - bI)(A - dI) / c^2,
    P_b =  (A - aI)(A - dI) / (2 c^2),
    P_d =  (A - aI)(A - bI) / (2 c^2).

The characteristic flux ``0.5 (F_L + F_R) - 0.5 |A(q_mean)| (q_R - q_L)``
is strictly less dissipative than the Rusanov flux (which replaces ``|A|``
by its spectral radius), at the cost of two extra batched 4x4 multiplies
per edge — exactly the flop/byte trade the paper's flux kernel embodies.
"""

from __future__ import annotations

import numpy as np

from .jacobian import analytic_flux_jacobian
from .flux import pointwise_flux

__all__ = ["abs_flux_jacobian", "characteristic_edge_flux"]

_EYE4 = np.eye(4)


def abs_flux_jacobian(
    q: np.ndarray, normals: np.ndarray, beta: float
) -> np.ndarray:
    """Batched ``|A|`` of the artificial-compressibility face Jacobian.

    ``q``: states ``(n, 4)``; ``normals``: area vectors ``(n, 3)``.
    Returns ``(n, 4, 4)``.
    """
    A = analytic_flux_jacobian(q, normals, beta)
    theta = np.einsum("ni,ni->n", normals, q[:, 1:4])
    s2 = np.einsum("ni,ni->n", normals, normals)
    c = np.sqrt(theta * theta + beta * s2)
    # guard degenerate faces (zero area): |A| = 0 there
    c_safe = np.where(c > 0.0, c, 1.0)

    a = theta
    b = theta + c
    d = theta - c
    fa, fb, fd = np.abs(a), np.abs(b), np.abs(d)

    Ai = A - a[:, None, None] * _EYE4
    Bi = A - b[:, None, None] * _EYE4
    Di = A - d[:, None, None] * _EYE4

    BD = np.einsum("nij,njk->nik", Bi, Di)
    AD = np.einsum("nij,njk->nik", Ai, Di)
    AB = np.einsum("nij,njk->nik", Ai, Bi)

    c2 = (c_safe * c_safe)[:, None, None]
    absA = (
        -fa[:, None, None] * BD / c2
        + fb[:, None, None] * AD / (2.0 * c2)
        + fd[:, None, None] * AB / (2.0 * c2)
    )
    absA[c <= 0.0] = 0.0
    return absA


def characteristic_edge_flux(
    ql: np.ndarray, qr: np.ndarray, normals: np.ndarray, beta: float
) -> np.ndarray:
    """Upwind flux with full characteristic (matrix) dissipation."""
    fl = pointwise_flux(ql, normals, beta)
    fr = pointwise_flux(qr, normals, beta)
    absA = abs_flux_jacobian(0.5 * (ql + qr), normals, beta)
    diss = np.einsum("nij,nj->ni", absA, qr - ql)
    return 0.5 * (fl + fr) - 0.5 * diss
