"""Flow state and solver-facing mesh fields for the incompressible solver.

FUN3D's incompressible path solves for ``q = (p, u, v, w)`` per vertex with
Chorin's artificial compressibility: the continuity equation becomes
``dp/dt + beta * div(u) = 0`` so the steady state satisfies ``div(u) = 0``
while the pseudo-transient system stays hyperbolic with wave speed
``c = sqrt(theta^2 + beta)``.

:class:`FlowField` bundles the mesh-derived arrays every kernel needs
(edge endpoints, dual normals, volumes, tagged boundary data) in the layout
the kernels stream over, so hot loops never touch the mesh object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh.core import TAG_FARFIELD, TAG_SYMMETRY, TAG_WALL, UnstructuredMesh

__all__ = ["NVARS", "FlowField", "freestream_state", "FlowConfig"]

NVARS = 4  # (p, u, v, w)


@dataclass
class FlowConfig:
    """Physical/numerical parameters of the incompressible Euler solve."""

    beta: float = 4.0  # artificial compressibility parameter
    aoa_deg: float = 3.0  # angle of attack (x-y plane)
    u_inf: float = 1.0  # freestream speed
    second_order: bool = True  # reconstructed (limited) fluxes
    limiter_k: float = 5.0  # Venkatakrishnan limiter constant
    #: upwind dissipation: "rusanov" (spectral radius) or "roe" (full
    #: characteristic matrix dissipation via the face eigen-system)
    dissipation: str = "rusanov"
    #: dynamic viscosity; 0 = inviscid Euler (the paper's regime).  Nonzero
    #: activates the Galerkin-style viscous fluxes of Eq. (1).
    mu: float = 0.0


def freestream_state(config: FlowConfig) -> np.ndarray:
    """Freestream ``(p, u, v, w)`` for the configured angle of attack."""
    a = np.deg2rad(config.aoa_deg)
    return np.array(
        [0.0, config.u_inf * np.cos(a), config.u_inf * np.sin(a), 0.0]
    )


@dataclass
class FlowField:
    """Kernel-ready views of a mesh for the flow solver.

    Attributes mirror the data structures discussed in the paper's
    "Data structures" optimization: edge arrays are SoA (streamed in edge
    order), vertex arrays are AoS rows of 4 states (gathered per edge).
    """

    mesh: UnstructuredMesh
    e0: np.ndarray = field(init=False)
    e1: np.ndarray = field(init=False)
    enormals: np.ndarray = field(init=False)
    emid_d0: np.ndarray = field(init=False)  # edge midpoint - x[e0]
    emid_d1: np.ndarray = field(init=False)  # edge midpoint - x[e1]
    volumes: np.ndarray = field(init=False)
    wall_faces: np.ndarray = field(init=False)
    wall_vnormals: np.ndarray = field(init=False)
    far_faces: np.ndarray = field(init=False)
    far_vnormals: np.ndarray = field(init=False)
    sym_faces: np.ndarray = field(init=False)
    sym_vnormals: np.ndarray = field(init=False)
    lsq_inv: np.ndarray = field(init=False)  # per-vertex 3x3 LSQ pseudo-inv
    _visc_coeffs: np.ndarray | None = field(default=None, repr=False)
    #: precompiled gather-scatter plans, keyed by kernel (built on first use)
    _plans: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        mesh = self.mesh
        self.e0 = np.ascontiguousarray(mesh.edges[:, 0])
        self.e1 = np.ascontiguousarray(mesh.edges[:, 1])
        self.enormals = np.ascontiguousarray(mesh.edge_normals)
        mid = 0.5 * (mesh.coords[self.e0] + mesh.coords[self.e1])
        self.emid_d0 = mid - mesh.coords[self.e0]
        self.emid_d1 = mid - mesh.coords[self.e1]
        self.volumes = mesh.volumes

        def faces_for(tag: int) -> tuple[np.ndarray, np.ndarray]:
            sel = mesh.btags == tag
            return mesh.bfaces[sel], mesh.bvertex_normals[sel]

        self.wall_faces, self.wall_vnormals = faces_for(TAG_WALL)
        self.far_faces, self.far_vnormals = faces_for(TAG_FARFIELD)
        self.sym_faces, self.sym_vnormals = faces_for(TAG_SYMMETRY)

        self.lsq_inv = self._build_lsq()

    def _build_lsq(self) -> np.ndarray:
        """Per-vertex inverse LSQ normal matrix for gradient reconstruction.

        Unweighted least squares over incident edges: the gradient solves
        ``(sum dx dx^T) g = sum dx dq``.  The 3x3 normal matrices are
        assembled edge-based and inverted in one batched call.
        """
        dx = self.mesh.coords[self.e1] - self.mesh.coords[self.e0]
        outer = np.einsum("ni,nj->nij", dx, dx)
        m = self.edge_sum_plan.apply(outer)
        # Boundary vertices with nearly-planar neighborhoods can still be
        # full rank in 3D tet meshes; regularize defensively anyway.
        tr = np.trace(m, axis1=1, axis2=2)
        m += (1e-12 * np.maximum(tr, 1e-30))[:, None, None] * np.eye(3)
        return np.linalg.inv(m)

    # ------------------------------------------------------------------
    # Precompiled scatter plans (repro.perf.scatter): compiled on first
    # use per field and reused by every kernel evaluation thereafter.
    # ------------------------------------------------------------------
    def plan(self, key: str, builder):
        """Cached :class:`~repro.perf.scatter.ScatterPlan` for ``key``."""
        p = self._plans.get(key)
        if p is None:
            p = self._plans[key] = builder()
        return p

    @property
    def edge_diff_plan(self):
        """``out[e0] += x; out[e1] -= x`` (flux write-out)."""
        from ..perf.scatter import edge_difference_plan

        return self.plan(
            "edge.diff",
            lambda: edge_difference_plan(
                self.e0, self.e1, self.n_vertices, name="flux.edge"
            ),
        )

    @property
    def edge_sum_plan(self):
        """``out[e0] += x; out[e1] += x`` (gradient / wave-speed sums)."""
        from ..perf.scatter import edge_sum_plan

        return self.plan(
            "edge.sum",
            lambda: edge_sum_plan(
                self.e0, self.e1, self.n_vertices, name="grad.edge"
            ),
        )

    def corner_scatter(self, which: str):
        """Flattened boundary corners of tag ``which``: the per-corner
        vertex ids, their replicated face normals, and the scatter plan
        accumulating one value per corner — all three in the serial
        kernels' column-major corner order (all first corners, then all
        second, then all third)."""
        key = f"corner.{which}"
        cached = self._plans.get(key)
        if cached is None:
            from ..perf.scatter import scatter_plan

            faces, vnormals = {
                "wall": (self.wall_faces, self.wall_vnormals),
                "sym": (self.sym_faces, self.sym_vnormals),
                "far": (self.far_faces, self.far_vnormals),
            }[which]
            verts = np.ascontiguousarray(faces.T.reshape(-1))
            normals = np.concatenate([vnormals] * 3, axis=0)
            cached = self._plans[key] = (
                verts,
                normals,
                scatter_plan(
                    verts, self.n_vertices, name=f"boundary.{which}"
                ),
            )
        return cached

    @property
    def n_vertices(self) -> int:
        return self.mesh.n_vertices

    @property
    def n_edges(self) -> int:
        return self.e0.shape[0]

    @property
    def visc_coeffs(self) -> np.ndarray:
        """Per-edge viscous transmissibilities (lazy; see repro.cfd.viscous)."""
        if self._visc_coeffs is None:
            from .viscous import viscous_edge_coefficients

            self._visc_coeffs = viscous_edge_coefficients(self)
        return self._visc_coeffs

    def initial_state(self, config: FlowConfig) -> np.ndarray:
        """Uniform freestream initial state, ``(n_vertices, 4)``."""
        return np.tile(freestream_state(config), (self.n_vertices, 1))
