"""Compressible Euler path (5 unknowns per vertex).

FUN3D is both an incompressible and a compressible code; the paper notes
that "for compressible flows in three dimensions, this eigen-system becomes
5x5" and that compressibility adds flops "without significantly expanding
the memory traffic ... and without any fundamental change in the solution
algorithm".  This module provides that path: ideal-gas Euler equations in
conservative variables ``q = (rho, rho*u, rho*v, rho*w, E)`` on the same
median-dual machinery, with

* the analytic flux and its exact 5x5 Jacobian (FD-verified in the tests),
* a Rusanov upwind flux with acoustic spectral radius ``|Theta| + c |S|``,
* slip-wall / symmetry and characteristic far-field boundary conditions,
* limited least-squares reconstruction (reusing the generic gradient and
  limiter kernels, which are variable-count agnostic),
* a pseudo-transient Newton-Krylov-Schwarz driver on 5x5 BCSR blocks
  (reusing the generic GMRES / JFNK / additive-Schwarz stack).

The block machinery (BCSR, ILU, TRSV, Schwarz) is block-size generic, so
the whole solver stack runs unchanged at ``b=5`` — exactly the paper's
claim about the compressible regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perf.scatter import jacobian_edge_plan, scatter_plan
from ..solver.gmres import gmres
from ..solver.jfnk import fd_jacobian_operator
from ..solver.schwarz import AdditiveSchwarzILU
from ..sparse.bcsr import BCSRMatrix, bcsr_pattern_from_edges
from .gradient import lsq_gradients, venkat_limiter
from .state import FlowField
from .timestep import ser_cfl

__all__ = [
    "NVARS_C",
    "GAMMA",
    "CompressibleConfig",
    "compressible_freestream",
    "euler_flux",
    "euler_flux_jacobian",
    "euler_spectral_radius",
    "rusanov_euler_flux",
    "compressible_residual",
    "compressible_local_timestep",
    "CompressibleJacobian",
    "solve_compressible_steady",
    "CompressibleResult",
]

NVARS_C = 5
GAMMA = 1.4


@dataclass
class CompressibleConfig:
    """Parameters of the compressible Euler solve."""

    mach: float = 0.5
    aoa_deg: float = 3.0
    gamma: float = GAMMA
    second_order: bool = True
    limiter_k: float = 5.0


def compressible_freestream(config: CompressibleConfig) -> np.ndarray:
    """Freestream conservative state with ``rho = 1``, ``p = 1/gamma``
    (so the sound speed is 1 and ``|u| = Mach``)."""
    g = config.gamma
    rho = 1.0
    p = 1.0 / g
    a = np.deg2rad(config.aoa_deg)
    vel = config.mach * np.array([np.cos(a), np.sin(a), 0.0])
    E = p / (g - 1.0) + 0.5 * rho * vel @ vel
    return np.array([rho, rho * vel[0], rho * vel[1], rho * vel[2], E])


def _pressure(q: np.ndarray, gamma: float) -> np.ndarray:
    rho = q[..., 0]
    m2 = np.einsum("...i,...i->...", q[..., 1:4], q[..., 1:4])
    return (gamma - 1.0) * (q[..., 4] - 0.5 * m2 / rho)


def euler_flux(q: np.ndarray, normals: np.ndarray, gamma: float = GAMMA) -> np.ndarray:
    """Analytic compressible flux ``F(q) . S`` for ``(n, 5)`` states."""
    rho = q[..., 0]
    mom = q[..., 1:4]
    E = q[..., 4]
    p = _pressure(q, gamma)
    theta = np.einsum("...i,...i->...", normals, mom) / rho  # S . velocity
    out = np.empty_like(q)
    out[..., 0] = rho * theta
    out[..., 1:4] = mom * theta[..., None] + normals * p[..., None]
    out[..., 4] = (E + p) * theta
    return out


def euler_flux_jacobian(
    q: np.ndarray, normals: np.ndarray, gamma: float = GAMMA
) -> np.ndarray:
    """Exact ``dF/dq`` of the compressible flux, batched ``(n, 5, 5)``."""
    n = q.shape[0]
    rho = q[:, 0]
    mom = q[:, 1:4]
    E = q[:, 4]
    vel = mom / rho[:, None]
    theta = np.einsum("ni,ni->n", normals, vel)
    v2 = np.einsum("ni,ni->n", vel, vel)
    p = _pressure(q, gamma)
    gm1 = gamma - 1.0

    A = np.zeros((n, NVARS_C, NVARS_C))
    # row rho
    A[:, 0, 1:4] = normals
    # rows momentum
    dp_drho = 0.5 * gm1 * v2
    A[:, 1:4, 0] = -vel * theta[:, None] + normals * dp_drho[:, None]
    A[:, 1:4, 1:4] = (
        np.einsum("ni,nj->nij", vel, normals)
        - gm1 * np.einsum("ni,nj->nij", normals, vel)
    )
    idx = np.arange(3)
    A[:, idx + 1, idx + 1] += theta[:, None]
    A[:, 1:4, 4] = gm1 * normals
    # row energy
    H = (E + p) / rho  # total enthalpy per unit mass
    A[:, 4, 0] = theta * (dp_drho - H)
    A[:, 4, 1:4] = normals * H[:, None] - gm1 * vel * theta[:, None]
    A[:, 4, 4] = gamma * theta
    return A


def euler_spectral_radius(
    ql: np.ndarray, qr: np.ndarray, normals: np.ndarray, gamma: float = GAMMA
) -> np.ndarray:
    """``|Theta| + c |S|`` at the average state (acoustic wave speed)."""
    qa = 0.5 * (ql + qr)
    rho = qa[..., 0]
    vel = qa[..., 1:4] / rho[..., None]
    theta = np.einsum("...i,...i->...", normals, vel)
    p = np.maximum(_pressure(qa, gamma), 1e-12)
    c = np.sqrt(gamma * p / rho)
    s = np.sqrt(np.einsum("...i,...i->...", normals, normals))
    return np.abs(theta) + c * s


def rusanov_euler_flux(
    ql: np.ndarray, qr: np.ndarray, normals: np.ndarray, gamma: float = GAMMA
) -> np.ndarray:
    fl = euler_flux(ql, normals, gamma)
    fr = euler_flux(qr, normals, gamma)
    lam = euler_spectral_radius(ql, qr, normals, gamma)
    return 0.5 * (fl + fr) - 0.5 * lam[..., None] * (qr - ql)


# ---------------------------------------------------------------------------
# Residual
# ---------------------------------------------------------------------------
def _wall_flux_c(q: np.ndarray, normals: np.ndarray, gamma: float) -> np.ndarray:
    """Slip wall: only the pressure force crosses the face."""
    out = np.zeros_like(q)
    p = _pressure(q, gamma)
    out[..., 1:4] = normals * p[..., None]
    return out


def compressible_residual(
    fld: FlowField,
    q: np.ndarray,
    config: CompressibleConfig,
    first_order: bool = False,
) -> np.ndarray:
    """Spatial residual of the compressible Euler equations, ``(nv, 5)``."""
    g = config.gamma
    ql = q[fld.e0]
    qr = q[fld.e1]
    if config.second_order and not first_order:
        grad = lsq_gradients(fld, q)
        lim = venkat_limiter(fld, q, grad, k=config.limiter_k)
        dq0 = np.einsum("nvi,ni->nv", grad[fld.e0], fld.emid_d0) * lim[fld.e0]
        dq1 = np.einsum("nvi,ni->nv", grad[fld.e1], fld.emid_d1) * lim[fld.e1]
        ql = ql + dq0
        qr = qr + dq1
    flux = rusanov_euler_flux(ql, qr, fld.enormals, g)
    res = fld.edge_diff_plan.apply(flux)

    for which in ("wall", "sym"):
        verts, vnormals3, cplan = fld.corner_scatter(which)
        if verts.shape[0] == 0:
            continue
        cplan.apply(
            _wall_flux_c(q[verts], vnormals3, g), out=res, accumulate=True
        )

    q_inf = compressible_freestream(config)
    verts, vnormals3, cplan = fld.corner_scatter("far")
    if verts.shape[0]:
        qi = q[verts]
        fl = rusanov_euler_flux(
            qi, np.broadcast_to(q_inf, qi.shape), vnormals3, g
        )
        cplan.apply(fl, out=res, accumulate=True)
    return res


def compressible_local_timestep(
    fld: FlowField, q: np.ndarray, config: CompressibleConfig, cfl: float
) -> np.ndarray:
    """Local pseudo time step from the acoustic wave-speed sums."""
    g = config.gamma
    lam_e = euler_spectral_radius(q[fld.e0], q[fld.e1], fld.enormals, g)
    lam_sum = fld.edge_sum_plan.apply(lam_e)
    for which in ("wall", "sym", "far"):
        verts, vnormals3, cplan = fld.corner_scatter(which)
        if verts.shape[0] == 0:
            continue
        lam_b = euler_spectral_radius(q[verts], q[verts], vnormals3, g)
        cplan.apply(lam_b, out=lam_sum, accumulate=True)
    return cfl * fld.volumes / np.maximum(lam_sum, 1e-30)


# ---------------------------------------------------------------------------
# First-order Jacobian on 5x5 BCSR
# ---------------------------------------------------------------------------
class CompressibleJacobian:
    """Assembles the first-order compressible Jacobian (5x5 blocks)."""

    def __init__(self, fld: FlowField):
        self.fld = fld
        nv = fld.n_vertices
        self.rowptr, self.cols = bcsr_pattern_from_edges(fld.mesh.edges, nv)
        keys = np.repeat(
            np.arange(nv, dtype=np.int64), np.diff(self.rowptr)
        ) * np.int64(nv) + self.cols
        self._diag = np.searchsorted(
            keys, np.arange(nv, dtype=np.int64) * nv + np.arange(nv)
        )
        self._ij = np.searchsorted(keys, fld.e0 * np.int64(nv) + fld.e1)
        self._ji = np.searchsorted(keys, fld.e1 * np.int64(nv) + fld.e0)
        nnzb = self.cols.shape[0]
        self._edge_plan = jacobian_edge_plan(
            self._diag[fld.e0],
            self._ij,
            self._diag[fld.e1],
            self._ji,
            nnzb,
            name="jacobian.edge",
        )
        self._bc_plans = {
            which: scatter_plan(self._diag[verts], nnzb, name="jacobian.bc")
            for which, (verts, _, _) in (
                (w, fld.corner_scatter(w)) for w in ("wall", "sym", "far")
            )
        }

    def new_matrix(self) -> BCSRMatrix:
        return BCSRMatrix.from_pattern(self.rowptr, self.cols, NVARS_C)

    def assemble(
        self,
        q: np.ndarray,
        config: CompressibleConfig,
        out: BCSRMatrix | None = None,
    ) -> BCSRMatrix:
        fld = self.fld
        g = config.gamma
        A = out if out is not None else self.new_matrix()
        A.set_zero()
        vals = A.vals

        ql, qr = q[fld.e0], q[fld.e1]
        Ai = euler_flux_jacobian(ql, fld.enormals, g)
        Aj = euler_flux_jacobian(qr, fld.enormals, g)
        lam = euler_spectral_radius(ql, qr, fld.enormals, g)
        lamI = lam[:, None, None] * np.eye(NVARS_C)
        dFdqi = 0.5 * Ai + 0.5 * lamI
        dFdqj = 0.5 * Aj - 0.5 * lamI
        self._edge_plan.apply(
            np.concatenate([dFdqi, dFdqj]), out=vals, accumulate=True
        )

        # slip wall / symmetry: d(S p)/dq rows
        gm1 = g - 1.0
        for which in ("wall", "sym"):
            verts, vnormals3, _ = fld.corner_scatter(which)
            if verts.shape[0] == 0:
                continue
            qi = q[verts]
            vel = qi[:, 1:4] / qi[:, 0:1]
            v2 = np.einsum("ni,ni->n", vel, vel)
            blk = np.zeros((verts.shape[0], NVARS_C, NVARS_C))
            # dp/drho, dp/dm_j, dp/dE
            blk[:, 1:4, 0] = vnormals3 * (0.5 * gm1 * v2)[:, None]
            blk[:, 1:4, 1:4] = -gm1 * np.einsum(
                "ni,nj->nij", vnormals3, vel
            )
            blk[:, 1:4, 4] = gm1 * vnormals3
            self._bc_plans[which].apply(blk, out=vals, accumulate=True)

        verts, vnormals3, _ = fld.corner_scatter("far")
        if verts.shape[0]:
            q_inf = compressible_freestream(config)
            qi = q[verts]
            Af = euler_flux_jacobian(qi, vnormals3, g)
            lam_f = euler_spectral_radius(
                qi, np.broadcast_to(q_inf, qi.shape), vnormals3, g
            )
            blk = 0.5 * Af + 0.5 * lam_f[:, None, None] * np.eye(NVARS_C)
            self._bc_plans["far"].apply(blk, out=vals, accumulate=True)
        return A

    def add_pseudo_time(self, A: BCSRMatrix, dt: np.ndarray) -> None:
        shift = self.fld.volumes / dt
        A.vals[A.diag_idx] += shift[:, None, None] * np.eye(NVARS_C)


# ---------------------------------------------------------------------------
# Pseudo-transient driver
# ---------------------------------------------------------------------------
@dataclass
class CompressibleResult:
    """Convergence record of a compressible steady solve."""

    q: np.ndarray
    steps: int
    linear_iterations: int
    residual_history: list[float] = field(default_factory=list)
    converged: bool = False


def solve_compressible_steady(
    fld: FlowField,
    config: CompressibleConfig | None = None,
    cfl0: float = 5.0,
    cfl_max: float = 1e5,
    max_steps: int = 100,
    steady_rtol: float = 1e-6,
    gmres_rtol: float = 1e-2,
    ilu_fill: int = 0,
    max_update: float = 0.25,
) -> CompressibleResult:
    """Pseudo-transient NKS solve of the compressible Euler equations.

    Same algorithm as the incompressible driver, on 5x5 blocks; the
    preconditioner stack (additive-Schwarz block-ILU, level-scheduled
    TRSV) runs unchanged because it is block-size generic.
    """
    config = config or CompressibleConfig()
    nv = fld.n_vertices
    q = np.tile(compressible_freestream(config), (nv, 1))

    assembler = CompressibleJacobian(fld)
    A = assembler.new_matrix()
    precond = AdditiveSchwarzILU(A, fill_level=ilu_fill)

    def spatial(u_flat: np.ndarray) -> np.ndarray:
        return compressible_residual(
            fld, u_flat.reshape(nv, NVARS_C), config
        ).reshape(-1)

    history: list[float] = []
    total_linear = 0
    converged = False
    cfl = cfl0
    r0 = None
    step = 0
    for step in range(1, max_steps + 1):
        res = compressible_residual(fld, q, config)
        rnorm = float(np.sqrt(np.mean(res * res)))
        history.append(rnorm)
        if r0 is None:
            r0 = rnorm
        if rnorm <= steady_rtol * r0:
            converged = True
            break
        cfl = ser_cfl(cfl0, r0, rnorm, cfl_max=cfl_max, cfl_prev=cfl)
        dt = compressible_local_timestep(fld, q, config, cfl)

        assembler.assemble(q, config, out=A)
        assembler.add_pseudo_time(A, dt)
        precond.update(A)

        diag = np.repeat(fld.volumes / dt, NVARS_C)
        op = fd_jacobian_operator(
            spatial, q.reshape(-1), r0=res.reshape(-1), diag=diag
        )
        result = gmres(
            op,
            -res.reshape(-1),
            precond=precond.apply,
            rtol=gmres_rtol,
            restart=30,
            maxiter=60,
        )
        total_linear += result.iterations

        du = result.x.reshape(nv, NVARS_C)
        m = np.abs(du).max()
        scale = min(1.0, max_update / m) if m > 0 else 1.0
        q_new = q + scale * du
        # physicality guard: keep density and pressure positive
        for _ in range(20):
            if (
                q_new[:, 0].min() > 0.0
                and _pressure(q_new, config.gamma).min() > 0.0
            ):
                break
            scale *= 0.5
            q_new = q + scale * du
        q = q_new

    return CompressibleResult(
        q=q,
        steps=step,
        linear_iterations=total_linear,
        residual_history=history,
        converged=converged,
    )
