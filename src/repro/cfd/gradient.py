"""Gradient kernel — unweighted least-squares reconstruction gradients.

FUN3D reconstructs face states from vertex gradients computed by
least-squares over the incident edges (exact for linear fields everywhere,
including boundaries — unlike midpoint-rule Green-Gauss, see the mesh
tests).  The kernel is edge-based: one pass accumulates ``dx * dq``
contributions to both endpoints, then a batched 3x3 multiply by the
precomputed inverse normal matrices finishes the job.  In the paper's
profile this "Grad" kernel is 13% of the baseline run time.

A Venkatakrishnan limiter (smooth, differentiable) guards the second-order
reconstruction near stagnation points.
"""

from __future__ import annotations

import numpy as np

from ..smp.backend import get_edge_backend
from .state import FlowField

__all__ = [
    "lsq_gradients",
    "weighted_lsq_gradients",
    "green_gauss_gradients",
    "venkat_limiter",
]


def lsq_gradients(field: FlowField, q: np.ndarray) -> np.ndarray:
    """Least-squares gradients, ``(n_vertices, 4, 3)``.

    Solves, per vertex i, ``min_g sum_j |q_j - q_i - g . (x_j - x_i)|^2``
    over edge-connected neighbors j, using the prefactored normal matrices
    in ``field.lsq_inv``.  An installed process-parallel edge backend
    (:func:`repro.smp.use_edge_backend`) takes over the edge-based
    accumulation; the batched 3x3 solve stays in this process either way.
    """
    backend = get_edge_backend()
    if backend is not None and backend.handles(field):
        return backend.gradients(q)
    dx = field.emid_d0 * 2.0  # x[e1] - x[e0]
    dq = q[field.e1] - q[field.e0]  # (ne, 4)
    rhs_contrib = dq[:, :, None] * dx[:, None, :]  # (ne, 4, 3)
    rhs = field.edge_sum_plan.apply(rhs_contrib)
    return np.einsum("nij,nvj->nvi", field.lsq_inv, rhs)


def weighted_lsq_gradients(field: FlowField, q: np.ndarray) -> np.ndarray:
    """Inverse-distance-weighted least-squares gradients.

    FUN3D's reconstruction offers both unweighted and 1/|dx|-weighted
    least squares; weighting improves robustness on highly stretched
    meshes (boundary-layer cells) by keeping far neighbors from dominating
    the fit.  Still exact for linear fields.  The weighted normal matrices
    are not prefactored in :class:`FlowField` (this variant is off the
    default path), so they are built per call.
    """
    dx = field.emid_d0 * 2.0
    w = 1.0 / np.maximum(np.linalg.norm(dx, axis=1), 1e-300)
    outer = np.einsum("n,ni,nj->nij", w, dx, dx)
    m = field.edge_sum_plan.apply(outer)
    tr = np.trace(m, axis1=1, axis2=2)
    m += (1e-12 * np.maximum(tr, 1e-30))[:, None, None] * np.eye(3)
    minv = np.linalg.inv(m)

    dq = q[field.e1] - q[field.e0]
    rhs_contrib = w[:, None, None] * dq[:, :, None] * dx[:, None, :]
    rhs = field.edge_sum_plan.apply(rhs_contrib)
    return np.einsum("nij,nvj->nvi", minv, rhs)


def green_gauss_gradients(field: FlowField, q: np.ndarray) -> np.ndarray:
    """Green-Gauss gradients on the median dual (edge midpoint rule).

    ``V_i grad(q)_i ~= sum_j S_ij (q_i + q_j)/2 + boundary closure``.
    Exact for linear fields at *interior* vertices (the classical
    median-dual property, see the mesh tests); at boundary vertices the
    midpoint-rule piece errors do not cancel, which is why the default
    reconstruction kernel is least squares.  Provided for diagnostics and
    cross-checks.
    """
    mid = 0.5 * (q[field.e0] + q[field.e1])  # (ne, nvar)
    contrib = mid[:, :, None] * field.enormals[:, None, :]
    acc = field.edge_diff_plan.apply(contrib)
    for which in ("wall", "sym", "far"):
        verts, vnormals3, cplan = field.corner_scatter(which)
        if verts.shape[0] == 0:
            continue
        faces = {
            "wall": field.wall_faces,
            "sym": field.sym_faces,
            "far": field.far_faces,
        }[which]
        fc = q[faces].mean(axis=1)  # (nf, nvar)
        fc3 = np.concatenate([fc] * 3, axis=0)  # per corner, c-major
        cplan.apply(
            fc3[:, :, None] * vnormals3[:, None, :],
            out=acc,
            accumulate=True,
        )
    return acc / field.volumes[:, None, None]


def venkat_limiter(
    field: FlowField,
    q: np.ndarray,
    grad: np.ndarray,
    k: float = 5.0,
) -> np.ndarray:
    """Venkatakrishnan limiter per vertex and variable, in ``[0, 1]``.

    phi = min over incident edges of the smooth Venkat function of
    (allowed jump) / (reconstructed jump).  ``k`` controls how much
    limiting happens in smooth regions (larger = less limiting); the
    threshold scales with the local control-volume size ``h^3 = V``.
    """
    nv, nvar = q.shape
    # min/max of neighbors per vertex and variable
    qmin = q.copy()
    qmax = q.copy()
    np.minimum.at(qmin, field.e0, q[field.e1])
    np.minimum.at(qmin, field.e1, q[field.e0])
    np.maximum.at(qmax, field.e0, q[field.e1])
    np.maximum.at(qmax, field.e1, q[field.e0])

    eps2 = (k**3) * field.volumes  # (nv,)
    phi = np.ones((nv, nvar))

    for end, disp in ((field.e0, field.emid_d0), (field.e1, field.emid_d1)):
        d2 = np.einsum("nvi,ni->nv", grad[end], disp)  # reconstructed jump
        dmax = qmax[end] - q[end]
        dmin = qmin[end] - q[end]
        d1 = np.where(d2 > 0.0, dmax, dmin)
        e2 = eps2[end][:, None]
        num = (d1 * d1 + e2) * d2 + 2.0 * d2 * d2 * d1
        den = d2 * (d1 * d1 + 2.0 * d2 * d2 + d1 * d2 + e2)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = np.where(np.abs(d2) > 1e-14, num / den, 1.0)
        val = np.clip(val, 0.0, 1.0)
        np.minimum.at(phi, end, val)
    return phi
