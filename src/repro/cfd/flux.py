"""Edge-based flux kernel — the paper's primary compute hot spot (42%).

Inviscid artificial-compressibility flux through a dual face with area
vector ``S`` (pointing from vertex i to vertex j):

    F(q, S) = ( beta * Theta,
                u * Theta + S_x * p,
                v * Theta + S_y * p,
                w * Theta + S_z * p ),     Theta = S . (u, v, w)

The numerical flux is an upwind Rusanov/local-Lax flux built on the system's
spectral radius ``|Theta| + c`` with ``c = sqrt(Theta^2 + beta |S|^2)`` (the
eigenvalues of the artificial-compressibility eigen-system the paper's
"3x3 eigen-system per face" refers to).  Second order comes from limited
least-squares reconstruction to the edge midpoint.

The kernel is written exactly in the paper's edge-loop shape (Fig. 1):
a *compute* phase producing one flux per edge (vectorizable across edges —
cf. the paper's SIMD-across-edges optimization with scalar write-out), then
a *scatter* phase accumulating ``+F`` at ``e0`` and ``-F`` at ``e1``.  All
threading strategies in ``repro.smp`` replay these two phases and must
reproduce the sequential result bit-for-bit up to summation order.
"""

from __future__ import annotations

import numpy as np

from ..smp.backend import get_edge_backend
from .state import FlowField

__all__ = [
    "pointwise_flux",
    "edge_spectral_radius",
    "rusanov_edge_flux",
    "scatter_edge_flux",
    "interior_flux_residual",
]


def pointwise_flux(q: np.ndarray, normals: np.ndarray, beta: float) -> np.ndarray:
    """Analytic flux ``F(q, S)`` for states ``(n, 4)`` and normals ``(n, 3)``."""
    p = q[..., 0]
    vel = q[..., 1:4]
    theta = np.einsum("...i,...i->...", normals, vel)
    out = np.empty_like(q)
    out[..., 0] = beta * theta
    out[..., 1:4] = vel * theta[..., None] + normals * p[..., None]
    return out


def edge_spectral_radius(
    ql: np.ndarray, qr: np.ndarray, normals: np.ndarray, beta: float
) -> np.ndarray:
    """Spectral radius ``|Theta| + c`` of the face eigen-system, evaluated at
    the Roe-style arithmetic average state."""
    qa = 0.5 * (ql + qr)
    theta = np.einsum("...i,...i->...", normals, qa[..., 1:4])
    s2 = np.einsum("...i,...i->...", normals, normals)
    c = np.sqrt(theta * theta + beta * s2)
    return np.abs(theta) + c


def rusanov_edge_flux(
    ql: np.ndarray, qr: np.ndarray, normals: np.ndarray, beta: float
) -> np.ndarray:
    """Upwind flux ``0.5 (F(ql) + F(qr)) - 0.5 lambda (qr - ql)`` per edge."""
    fl = pointwise_flux(ql, normals, beta)
    fr = pointwise_flux(qr, normals, beta)
    lam = edge_spectral_radius(ql, qr, normals, beta)
    return 0.5 * (fl + fr) - 0.5 * lam[..., None] * (qr - ql)


def numerical_edge_flux(
    ql: np.ndarray,
    qr: np.ndarray,
    normals: np.ndarray,
    beta: float,
    scheme: str = "rusanov",
) -> np.ndarray:
    """Dispatch to the configured upwind flux.

    ``"rusanov"`` uses scalar spectral-radius dissipation; ``"roe"`` the
    full characteristic matrix dissipation (see :mod:`repro.cfd.roe`).
    """
    if scheme == "rusanov":
        return rusanov_edge_flux(ql, qr, normals, beta)
    if scheme == "roe":
        from .roe import characteristic_edge_flux

        return characteristic_edge_flux(ql, qr, normals, beta)
    raise ValueError(f"unknown dissipation scheme {scheme!r}")


def scatter_edge_flux(
    flux: np.ndarray, e0: np.ndarray, e1: np.ndarray, n_vertices: int
) -> np.ndarray:
    """Accumulate per-edge fluxes into the vertex residual (write-out phase).

    Flux leaves control volume ``e0`` (normal points e0 -> e1) and enters
    ``e1``.  This is the reference ``np.add.at`` statement sequence; the
    hot path (:func:`interior_flux_residual`) runs the same scatter through
    the field's precompiled :class:`~repro.perf.scatter.ScatterPlan`,
    which is bitwise-identical and several times faster.
    """
    res = np.zeros((n_vertices, flux.shape[-1]))
    np.add.at(res, e0, flux)
    np.subtract.at(res, e1, flux)
    return res


def interior_flux_residual(
    field: FlowField,
    q: np.ndarray,
    beta: float,
    grad: np.ndarray | None = None,
    limiter: np.ndarray | None = None,
    scheme: str = "rusanov",
) -> np.ndarray:
    """Residual contribution of all interior dual faces.

    First order when ``grad`` is None; otherwise states are reconstructed to
    the edge midpoint with the (optionally limited) gradients:
    ``q_L = q[e0] + psi_0 * grad[e0] . (x_mid - x_0)``.

    When a process-parallel edge backend is installed for this field
    (:func:`repro.smp.use_edge_backend`), the whole compute+scatter loop
    runs across its worker processes instead; the result agrees with the
    sequential path to round-off by the backend's contract.
    """
    backend = get_edge_backend()
    if backend is not None and backend.handles(field):
        return backend.flux_residual(
            q, beta, grad=grad, limiter=limiter, scheme=scheme
        )
    ql = q[field.e0]
    qr = q[field.e1]
    if grad is not None:
        dq0 = np.einsum("nvi,ni->nv", grad[field.e0], field.emid_d0)
        dq1 = np.einsum("nvi,ni->nv", grad[field.e1], field.emid_d1)
        if limiter is not None:
            dq0 = dq0 * limiter[field.e0]
            dq1 = dq1 * limiter[field.e1]
        ql = ql + dq0
        qr = qr + dq1
    flux = numerical_edge_flux(ql, qr, field.enormals, beta, scheme)
    return field.edge_diff_plan.apply(flux)
