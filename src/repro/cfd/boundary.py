"""Boundary-condition fluxes: slip wall / symmetry and characteristic far field.

Vertex-centered boundary closure: every boundary triangle contributes a third
of its area vector to each of its vertices' control-volume surfaces
(``FlowField.*_vnormals``), and the boundary flux is evaluated with the
vertex state:

* **slip wall / symmetry** — no mass crosses the face (``Theta = 0``), so
  the flux reduces to the pressure term ``(0, S p, ...)``.
* **far field** — an upwind (Rusanov) flux between the interior state and
  the freestream, which lets outgoing waves exit and imposes incoming data.
"""

from __future__ import annotations

import numpy as np

from .state import FlowField

__all__ = ["wall_flux", "wall_residual", "farfield_residual"]


def wall_flux(q: np.ndarray, normals: np.ndarray) -> np.ndarray:
    """Slip-wall flux: pressure force only (``Theta = 0`` on the face)."""
    out = np.zeros_like(q)
    out[..., 1:4] = normals * q[..., 0:1]
    return out


def wall_residual(
    field: FlowField, q: np.ndarray, which: str = "wall"
) -> np.ndarray:
    """Accumulate slip-wall (or symmetry) fluxes into the residual."""
    faces = field.wall_faces if which == "wall" else field.sym_faces
    vnormals = field.wall_vnormals if which == "wall" else field.sym_vnormals
    res = np.zeros_like(q)
    if faces.shape[0] == 0:
        return res
    for c in range(3):
        verts = faces[:, c]
        res_c = wall_flux(q[verts], vnormals)
        np.add.at(res, verts, res_c)
    return res


def farfield_residual(
    field: FlowField,
    q: np.ndarray,
    q_inf: np.ndarray,
    beta: float,
    scheme: str = "rusanov",
) -> np.ndarray:
    """Upwind far-field fluxes between interior states and the freestream."""
    from .flux import numerical_edge_flux

    res = np.zeros_like(q)
    faces = field.far_faces
    if faces.shape[0] == 0:
        return res
    for c in range(3):
        verts = faces[:, c]
        qi = q[verts]
        qe = np.broadcast_to(q_inf, qi.shape)
        fl = numerical_edge_flux(qi, qe, field.far_vnormals, beta, scheme)
        np.add.at(res, verts, fl)
    return res
