"""Boundary-condition fluxes: slip wall / symmetry and characteristic far field.

Vertex-centered boundary closure: every boundary triangle contributes a third
of its area vector to each of its vertices' control-volume surfaces
(``FlowField.*_vnormals``), and the boundary flux is evaluated with the
vertex state:

* **slip wall / symmetry** — no mass crosses the face (``Theta = 0``), so
  the flux reduces to the pressure term ``(0, S p, ...)``.
* **far field** — an upwind (Rusanov) flux between the interior state and
  the freestream, which lets outgoing waves exit and imposes incoming data.
"""

from __future__ import annotations

import numpy as np

from .state import FlowField

__all__ = ["wall_flux", "wall_residual", "farfield_residual"]


def wall_flux(q: np.ndarray, normals: np.ndarray) -> np.ndarray:
    """Slip-wall flux: pressure force only (``Theta = 0`` on the face)."""
    out = np.zeros_like(q)
    out[..., 1:4] = normals * q[..., 0:1]
    return out


def wall_residual(
    field: FlowField, q: np.ndarray, which: str = "wall"
) -> np.ndarray:
    """Accumulate slip-wall (or symmetry) fluxes into the residual.

    All three corners of every face are evaluated in one batch (the flux
    is pointwise, so the values match the per-corner loop exactly) and
    written out through the field's precompiled corner scatter plan.
    """
    verts, vnormals3, cplan = field.corner_scatter(which)
    if verts.shape[0] == 0:
        return np.zeros_like(q)
    return cplan.apply(wall_flux(q[verts], vnormals3))


def farfield_residual(
    field: FlowField,
    q: np.ndarray,
    q_inf: np.ndarray,
    beta: float,
    scheme: str = "rusanov",
) -> np.ndarray:
    """Upwind far-field fluxes between interior states and the freestream."""
    from .flux import numerical_edge_flux

    verts, vnormals3, cplan = field.corner_scatter("far")
    if verts.shape[0] == 0:
        return np.zeros_like(q)
    qi = q[verts]
    qe = np.broadcast_to(q_inf, qi.shape)
    fl = numerical_edge_flux(qi, qe, vnormals3, beta, scheme)
    return cplan.apply(fl)
