"""Incompressible Euler physics: flux, gradients, Jacobian, BCs, timestep."""

from .boundary import farfield_residual, wall_flux, wall_residual
from .compressible import (
    CompressibleConfig,
    CompressibleJacobian,
    CompressibleResult,
    compressible_freestream,
    compressible_residual,
    euler_flux,
    euler_flux_jacobian,
    rusanov_euler_flux,
    solve_compressible_steady,
)
from .forces import AeroForces, integrate_forces
from .flux import (
    edge_spectral_radius,
    numerical_edge_flux,
    interior_flux_residual,
    pointwise_flux,
    rusanov_edge_flux,
    scatter_edge_flux,
)
from .gradient import (
    green_gauss_gradients,
    lsq_gradients,
    venkat_limiter,
    weighted_lsq_gradients,
)
from .roe import abs_flux_jacobian, characteristic_edge_flux
from .jacobian import JacobianAssembler, analytic_flux_jacobian
from .residual import compute_residual, residual_norm
from .state import NVARS, FlowConfig, FlowField, freestream_state
from .timestep import local_timestep, ser_cfl

__all__ = [
    "CompressibleConfig",
    "CompressibleJacobian",
    "CompressibleResult",
    "compressible_freestream",
    "compressible_residual",
    "euler_flux",
    "euler_flux_jacobian",
    "rusanov_euler_flux",
    "solve_compressible_steady",
    "AeroForces",
    "integrate_forces",
    "farfield_residual",
    "wall_flux",
    "wall_residual",
    "edge_spectral_radius",
    "interior_flux_residual",
    "pointwise_flux",
    "rusanov_edge_flux",
    "numerical_edge_flux",
    "abs_flux_jacobian",
    "characteristic_edge_flux",
    "scatter_edge_flux",
    "lsq_gradients",
    "green_gauss_gradients",
    "weighted_lsq_gradients",
    "venkat_limiter",
    "JacobianAssembler",
    "analytic_flux_jacobian",
    "compute_residual",
    "residual_norm",
    "NVARS",
    "FlowConfig",
    "FlowField",
    "freestream_state",
    "local_timestep",
    "ser_cfl",
]
