"""Viscous fluxes for the incompressible Navier-Stokes path.

The paper's governing equations (Eq. 1) include the viscous flux
``f_v . n = (0, n . tau_x, n . tau_y, n . tau_z)`` discretized with a
Galerkin scheme; the evaluation then deliberately runs the inviscid
("Euler setting ... omits the viscous fluxes") regime because it is the
hardest for performance.  The substrate still must exist to claim the
paper's system — this module provides it.

For constant-viscosity incompressible flow the stress divergence reduces
to ``mu * Laplacian(u)``; on the median dual it is discretized edge-based
with the standard positive thin-layer approximation

    integral over the dual face of mu * du/dn dA
        ~= mu * |S|^2 / (S . dx) * (u_j - u_i)

(per edge, applied to each velocity component; ``dx = x_j - x_i``).  This
is the classic edge Laplacian: symmetric, positive, zero for constant
fields, and exact for linear profiles on orthogonal meshes.  It reuses the
edge-loop computational pattern, so the shared-memory strategies and cost
models apply unchanged.
"""

from __future__ import annotations

import numpy as np

from .state import FlowField

__all__ = ["viscous_edge_coefficients", "viscous_residual", "viscous_jacobian_blocks"]


def viscous_edge_coefficients(field: FlowField) -> np.ndarray:
    """Per-edge transmissibility ``|S|^2 / (S . dx)`` (positive on meshes
    that are not pathologically non-orthogonal)."""
    dx = 2.0 * field.emid_d0  # x_j - x_i
    s2 = np.einsum("ni,ni->n", field.enormals, field.enormals)
    sdx = np.einsum("ni,ni->n", field.enormals, dx)
    # guard: skewed edges could make S.dx small; clamp to keep positivity
    sdx = np.maximum(sdx, 1e-12 * np.sqrt(s2) * np.linalg.norm(dx, axis=1))
    return s2 / sdx


def viscous_residual(
    field: FlowField,
    q: np.ndarray,
    mu: float,
    coeffs: np.ndarray | None = None,
) -> np.ndarray:
    """Viscous contribution to the residual (momentum rows only).

    Sign convention matches the inviscid residual: the steady equation is
    ``R_inviscid + R_viscous = 0`` with ``R_viscous = -mu * Laplacian``.
    """
    if coeffs is None:
        coeffs = viscous_edge_coefficients(field)
    res = np.zeros_like(q)
    du = q[field.e1, 1:4] - q[field.e0, 1:4]
    flux = mu * coeffs[:, None] * du  # diffusive flux into e0's CV
    # outflow-positive residual: diffusion relaxes toward neighbors
    np.subtract.at(res[:, 1:4], field.e0, flux)
    np.add.at(res[:, 1:4], field.e1, flux)
    return res


def viscous_jacobian_blocks(
    field: FlowField, mu: float, coeffs: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge diagonal/off-diagonal 4x4 Jacobian blocks of the viscous
    residual: ``(d_diag, d_off)`` with ``dR_i/dq_i += d_diag[e]`` and
    ``dR_i/dq_j += d_off[e]`` for each edge (i, j), symmetric in i <-> j."""
    if coeffs is None:
        coeffs = viscous_edge_coefficients(field)
    ne = coeffs.shape[0]
    d_diag = np.zeros((ne, 4, 4))
    d_off = np.zeros((ne, 4, 4))
    for k in range(1, 4):
        d_diag[:, k, k] = mu * coeffs
        d_off[:, k, k] = -mu * coeffs
    return d_diag, d_off
