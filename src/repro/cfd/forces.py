"""Aerodynamic force integration over the wing surface.

For the inviscid solver, the force on the body is the integral of pressure
over the wall: ``F = sum_wall p * S`` (the wall flux's momentum part).
Coefficients are normalized by the dynamic pressure ``0.5 * u_inf^2`` and
the projected planform area, with lift/drag resolved against the freestream
direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .state import FlowConfig, FlowField, freestream_state

__all__ = ["AeroForces", "integrate_forces"]


@dataclass
class AeroForces:
    """Integrated surface force and the usual coefficients."""

    force: np.ndarray  # (3,), raw pressure integral
    lift: float
    drag: float
    cl: float
    cd: float
    reference_area: float


def integrate_forces(
    field: FlowField, q: np.ndarray, config: FlowConfig
) -> AeroForces:
    """Integrate wall pressure into lift/drag for the configured freestream."""
    if field.wall_faces.shape[0] == 0:
        raise ValueError("mesh has no wall faces to integrate over")
    force = np.zeros(3)
    for c in range(3):
        verts = field.wall_faces[:, c]
        # wall normals point out of the fluid (into the body); the pressure
        # force on the body is +p * S_outward_from_fluid
        force += (q[verts, 0:1] * field.wall_vnormals).sum(axis=0)

    q_inf = freestream_state(config)
    u_inf = q_inf[1:4]
    speed = float(np.linalg.norm(u_inf)) or 1.0
    drag_dir = u_inf / speed
    # lift direction: perpendicular to drag in the x-y plane (z = span)
    lift_dir = np.array([-drag_dir[1], drag_dir[0], 0.0])

    # reference area: projected planform (x-z extent of the wall surface)
    wall_pts = field.mesh.coords[np.unique(field.wall_faces)]
    span = wall_pts[:, 2].max() - wall_pts[:, 2].min()
    chord = wall_pts[:, 0].max() - wall_pts[:, 0].min()
    area = max(span * chord, 1e-30)

    qdyn = 0.5 * speed**2
    lift = float(force @ lift_dir)
    drag = float(force @ drag_dir)
    return AeroForces(
        force=force,
        lift=lift,
        drag=drag,
        cl=lift / (qdyn * area),
        cd=drag / (qdyn * area),
        reference_area=area,
    )
