"""PETSc-style vector primitives with per-operation accounting.

The paper's single-node Section VI.A finds that after optimizing the big
kernels, "the 'other' auxiliary operations become quite significant ... the
major contribution is from the vector primitives (VecMAXPY, VecWAXPY,
VecMDOT, etc.) and the vector scatter operations (VecScatter), which are
PETSc native functions" — and its multi-node Section VI.B.3 shows that the
*lack of threading* in exactly these routines creates the hybrid version's
Amdahl fraction.

To study that, every vector primitive here goes through one choke point
that (a) performs the NumPy operation and (b) reports call counts, flops and
bytes to the active :class:`~repro.perf.PerfRegistry` under its PETSc name.
The shared-memory model later assigns these kernels a thread count of 1
(native PETSc) or ``n_threads`` (our optimized replacements) to reproduce
Fig. 11.
"""

from __future__ import annotations

import numpy as np

from ..perf.profile import get_registry

__all__ = [
    "vec_norm",
    "vec_dot",
    "vec_mdot",
    "vec_axpy",
    "vec_aypx",
    "vec_waxpy",
    "vec_maxpy",
    "vec_scale",
    "vec_copy",
    "vec_set",
]

_F8 = 8.0  # bytes per double


def vec_norm(x: np.ndarray, name: str = "VecNorm") -> float:
    """2-norm; one reduction (a global collective in the distributed case)."""
    get_registry().add(name, flops=2.0 * x.size, nbytes=_F8 * x.size)
    return float(np.linalg.norm(x))


def vec_dot(x: np.ndarray, y: np.ndarray) -> float:
    get_registry().add("VecDot", flops=2.0 * x.size, nbytes=2 * _F8 * x.size)
    return float(np.dot(x, y))


def vec_mdot(xs: list[np.ndarray], y: np.ndarray) -> np.ndarray:
    """Multiple dot products against a common vector (VecMDot).

    GMRES orthogonalization is built on this: one fused pass over y.
    """
    m = len(xs)
    get_registry().add(
        "VecMDot", flops=2.0 * m * y.size, nbytes=_F8 * (m + 1) * y.size
    )
    if m == 0:
        return np.zeros(0)
    return np.asarray(np.stack(xs) @ y)


def vec_axpy(y: np.ndarray, alpha: float, x: np.ndarray) -> np.ndarray:
    """y += alpha * x (in place)."""
    get_registry().add("VecAXPY", flops=2.0 * x.size, nbytes=3 * _F8 * x.size)
    y += alpha * x
    return y


def vec_aypx(y: np.ndarray, alpha: float, x: np.ndarray) -> np.ndarray:
    """y = alpha * y + x (in place)."""
    get_registry().add("VecAYPX", flops=2.0 * x.size, nbytes=3 * _F8 * x.size)
    y *= alpha
    y += x
    return y


def vec_waxpy(w: np.ndarray, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """w = alpha * x + y."""
    get_registry().add("VecWAXPY", flops=2.0 * x.size, nbytes=3 * _F8 * x.size)
    np.multiply(x, alpha, out=w)
    w += y
    return w


def vec_maxpy(y: np.ndarray, alphas: np.ndarray, xs: list[np.ndarray]) -> np.ndarray:
    """y += sum_k alphas[k] * xs[k] (fused multi-AXPY)."""
    m = len(xs)
    get_registry().add(
        "VecMAXPY", flops=2.0 * m * y.size, nbytes=_F8 * (m + 2) * y.size
    )
    if m:
        y += np.asarray(alphas) @ np.stack(xs)
    return y


def vec_scale(x: np.ndarray, alpha: float) -> np.ndarray:
    get_registry().add("VecScale", flops=1.0 * x.size, nbytes=2 * _F8 * x.size)
    x *= alpha
    return x


def vec_copy(x: np.ndarray) -> np.ndarray:
    get_registry().add("VecCopy", nbytes=2 * _F8 * x.size)
    return x.copy()


def vec_set(x: np.ndarray, alpha: float) -> np.ndarray:
    get_registry().add("VecSet", nbytes=_F8 * x.size)
    x[:] = alpha
    return x
