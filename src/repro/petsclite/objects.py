"""PETSc-style solver objects: Vec, Mat, PC, KSP.

PETSc-FUN3D is organized around PETSc's object model — the application
assembles a ``Mat``, wraps its matrix-free operator in a shell ``Mat``,
configures a ``KSP`` (Krylov solver) with a ``PC`` (preconditioner), and
hands ``Vec`` objects around.  This module provides that shape on top of
the repro stack so the paper's configuration surface (``-ksp_rtol``,
``-pc_type asm``, ``-pc_asm_overlap`` ...) is expressible, while all the
numerics route to ``repro.solver`` / ``repro.sparse``.

It is intentionally a thin, faithful veneer: every vector operation goes
through the instrumented primitives in :mod:`repro.petsclite.vec`, so
profiles of KSP solves show the PETSc operation names the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from typing import TYPE_CHECKING

from ..sparse.bcsr import BCSRMatrix
from . import vec as _v

if TYPE_CHECKING:  # deferred at runtime: solver.gmres imports this package
    from ..solver.gmres import GMRESResult
    from ..solver.schwarz import AdditiveSchwarzILU

__all__ = ["Vec", "Mat", "PC", "KSP", "OptionsDB"]


class Vec:
    """A distributed-in-spirit vector wrapping a NumPy array."""

    def __init__(self, array: np.ndarray):
        self._a = np.asarray(array, dtype=float)

    # -- creation ------------------------------------------------------
    @classmethod
    def create(cls, n: int) -> "Vec":
        return cls(np.zeros(n))

    def duplicate(self) -> "Vec":
        return Vec(np.zeros_like(self._a))

    def copy(self) -> "Vec":
        return Vec(_v.vec_copy(self._a))

    @property
    def array(self) -> np.ndarray:
        return self._a

    @property
    def size(self) -> int:
        return self._a.shape[0]

    # -- instrumented operations ----------------------------------------
    def norm(self) -> float:
        return _v.vec_norm(self._a)

    def dot(self, other: "Vec") -> float:
        return _v.vec_dot(self._a, other._a)

    def mdot(self, others: list["Vec"]) -> np.ndarray:
        return _v.vec_mdot([o._a for o in others], self._a)

    def axpy(self, alpha: float, x: "Vec") -> "Vec":
        _v.vec_axpy(self._a, alpha, x._a)
        return self

    def aypx(self, alpha: float, x: "Vec") -> "Vec":
        _v.vec_aypx(self._a, alpha, x._a)
        return self

    def waxpy(self, alpha: float, x: "Vec", y: "Vec") -> "Vec":
        _v.vec_waxpy(self._a, alpha, x._a, y._a)
        return self

    def maxpy(self, alphas: np.ndarray, xs: list["Vec"]) -> "Vec":
        _v.vec_maxpy(self._a, alphas, [x._a for x in xs])
        return self

    def scale(self, alpha: float) -> "Vec":
        _v.vec_scale(self._a, alpha)
        return self

    def set(self, alpha: float) -> "Vec":
        _v.vec_set(self._a, alpha)
        return self


class Mat:
    """A linear operator: BCSR-backed or a matrix-free shell."""

    def __init__(
        self,
        n: int,
        apply_fn: Callable[[np.ndarray], np.ndarray],
        bcsr: BCSRMatrix | None = None,
    ):
        self.n = n
        self._apply = apply_fn
        self.bcsr = bcsr

    @classmethod
    def from_bcsr(cls, A: BCSRMatrix) -> "Mat":
        return cls(A.shape[0], A.matvec, bcsr=A)

    @classmethod
    def shell(cls, n: int, apply_fn: Callable[[np.ndarray], np.ndarray]) -> "Mat":
        """Matrix-free operator (the paper's Jacobian-vector products)."""
        return cls(n, apply_fn, bcsr=None)

    def mult(self, x: Vec, y: Vec | None = None) -> Vec:
        out = self._apply(x.array)
        if y is None:
            return Vec(out)
        y.array[:] = out
        return y

    @property
    def is_shell(self) -> bool:
        return self.bcsr is None


@dataclass
class PC:
    """Preconditioner object: ``none``, ``ilu``, ``bjacobi`` or ``asm``."""

    type: str = "ilu"
    fill_level: int = 0
    overlap: int = 0
    labels: np.ndarray | None = None
    _impl: "AdditiveSchwarzILU | None" = field(default=None, repr=False)

    def setup(self, pmat: Mat) -> None:
        """Build the preconditioner from the (assembled) matrix."""
        if self.type == "none":
            self._impl = None
            return
        if pmat.bcsr is None:
            raise ValueError("PC setup needs an assembled (BCSR) matrix")
        if self.type == "ilu":
            labels, overlap = None, 0
        elif self.type == "bjacobi":
            labels, overlap = self.labels, 0
        elif self.type == "asm":
            labels, overlap = self.labels, max(self.overlap, 1)
        else:
            raise ValueError(f"unknown pc type {self.type!r}")
        from ..solver.schwarz import AdditiveSchwarzILU

        self._impl = AdditiveSchwarzILU(
            pmat.bcsr,
            labels=labels,
            overlap=overlap,
            fill_level=self.fill_level,
        )
        self._impl.update(pmat.bcsr)

    def apply(self, x: np.ndarray) -> np.ndarray:
        if self.type == "none" or self._impl is None:
            return x
        return self._impl.apply(x)


@dataclass
class KSP:
    """Krylov solver object (GMRES with right preconditioning)."""

    rtol: float = 1e-5
    atol: float = 0.0
    max_it: int = 1000
    restart: int = 30
    pc: PC = field(default_factory=lambda: PC(type="none"))
    _amat: Mat | None = field(default=None, repr=False)
    _pmat: Mat | None = field(default=None, repr=False)

    def set_operators(self, amat: Mat, pmat: Mat | None = None) -> None:
        """``amat`` defines the system; ``pmat`` (default ``amat``) feeds the
        preconditioner — the paper's split between the matrix-free
        second-order operator and the assembled first-order Jacobian."""
        self._amat = amat
        self._pmat = pmat if pmat is not None else amat

    def setup(self) -> None:
        if self._pmat is None:
            raise RuntimeError("call set_operators first")
        self.pc.setup(self._pmat)

    def solve(self, b: Vec, x: Vec | None = None) -> "tuple[Vec, GMRESResult]":
        if self._amat is None:
            raise RuntimeError("call set_operators first")
        from ..solver.gmres import gmres

        result = gmres(
            self._amat._apply,
            b.array,
            precond=self.pc.apply,
            x0=None if x is None else x.array,
            rtol=self.rtol,
            atol=self.atol,
            restart=self.restart,
            maxiter=self.max_it,
        )
        out = Vec(result.x)
        return out, result

    def set_from_options(self, options: "OptionsDB") -> None:
        """Configure from a PETSc-style options database."""
        self.rtol = options.get_float("ksp_rtol", self.rtol)
        self.atol = options.get_float("ksp_atol", self.atol)
        self.max_it = options.get_int("ksp_max_it", self.max_it)
        self.restart = options.get_int("ksp_gmres_restart", self.restart)
        self.pc.type = options.get_str("pc_type", self.pc.type)
        self.pc.fill_level = options.get_int(
            "pc_factor_levels", self.pc.fill_level
        )
        self.pc.overlap = options.get_int("pc_asm_overlap", self.pc.overlap)


class OptionsDB:
    """PETSc-style string options database.

    Parses command-line-like strings: ``"-ksp_rtol 1e-6 -pc_type asm
    -pc_asm_overlap 1 -snes_monitor"`` (flags without values become True).
    """

    def __init__(self, spec: str = "", **kwargs):
        self._opts: dict[str, str] = {}
        tokens = spec.split()
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if not tok.startswith("-"):
                raise ValueError(f"expected an option, got {tok!r}")
            key = tok.lstrip("-")
            if i + 1 < len(tokens) and not tokens[i + 1].startswith("-"):
                self._opts[key] = tokens[i + 1]
                i += 2
            else:
                self._opts[key] = "true"
                i += 1
        for k, v in kwargs.items():
            self._opts[k] = str(v)

    def get_str(self, key: str, default: str = "") -> str:
        return self._opts.get(key, default)

    def get_float(self, key: str, default: float = 0.0) -> float:
        return float(self._opts.get(key, default))

    def get_int(self, key: str, default: int = 0) -> int:
        return int(self._opts.get(key, default))

    def get_bool(self, key: str, default: bool = False) -> bool:
        if key not in self._opts:
            return default
        return self._opts[key].lower() in ("true", "1", "yes", "on")

    def has(self, key: str) -> bool:
        return key in self._opts

    def __contains__(self, key: str) -> bool:  # noqa: D105
        return key in self._opts
