"""PETSc-like layer: instrumented vector primitives and solver objects."""

from .objects import KSP, PC, Mat, OptionsDB, Vec
from .vec import (
    vec_axpy,
    vec_aypx,
    vec_copy,
    vec_dot,
    vec_maxpy,
    vec_mdot,
    vec_norm,
    vec_scale,
    vec_set,
    vec_waxpy,
)

__all__ = [
    "KSP",
    "PC",
    "Mat",
    "OptionsDB",
    "Vec",
    "vec_axpy",
    "vec_aypx",
    "vec_copy",
    "vec_dot",
    "vec_maxpy",
    "vec_mdot",
    "vec_norm",
    "vec_scale",
    "vec_set",
    "vec_waxpy",
]
