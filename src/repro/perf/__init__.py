"""Performance instrumentation: kernel timers, profiles, report tables."""

from .profile import KernelRecord, PerfRegistry, get_registry, use_registry
from .report import format_profile, format_series, format_table
from .stream import measure_stream_triad

__all__ = [
    "KernelRecord",
    "PerfRegistry",
    "get_registry",
    "use_registry",
    "format_profile",
    "format_series",
    "measure_stream_triad",
    "format_table",
]
