"""Performance instrumentation: kernel timers, profiles, report tables."""

from .profile import KernelRecord, PerfRegistry, get_registry, use_registry
from .report import format_profile, format_series, format_table
from .scatter import (
    ScatterPlan,
    ScatterTerm,
    build_scatter_plan,
    default_engine,
    edge_difference_plan,
    edge_sum_plan,
    jacobian_edge_plan,
    plan_report,
    reset_scatter_stats,
    scatter_add,
    scatter_plan,
    scatter_stats,
)
from .stream import measure_stream_triad

__all__ = [
    "KernelRecord",
    "PerfRegistry",
    "get_registry",
    "use_registry",
    "format_profile",
    "format_series",
    "measure_stream_triad",
    "format_table",
    "ScatterPlan",
    "ScatterTerm",
    "build_scatter_plan",
    "scatter_plan",
    "edge_difference_plan",
    "edge_sum_plan",
    "jacobian_edge_plan",
    "scatter_add",
    "scatter_stats",
    "plan_report",
    "reset_scatter_stats",
    "default_engine",
]
