"""Precompiled gather–scatter plans for edge-loop write-out phases.

The paper's single-node flux-kernel wins (AoS layout, SIMD across edges
with *scalar write-out*, software prefetch) all restructure the
gather–compute–scatter shape of unstructured edge loops.  Our NumPy analog
of the scalar write-out was ``np.add.at`` — the unbuffered ``ufunc.at``
loop, 10–50x slower than a segment reduction — at every hot call site.

A :class:`ScatterPlan` is the static half of that scatter, compiled once
per (index structure, target count) and reused every evaluation:

* the contributions of all terms are laid out as a CSR matrix over the
  *targets* (rows = target slots, one column per source row, coefficients
  ``+-1``), with each row's entries ordered exactly as the reference
  ``np.add.at`` statement sequence visits them (term-major, then source
  position) — so executing the plan accumulates in the *identical* order
  and the result is bitwise-equal to the serial reference;
* applying the plan is one ``scipy.sparse._sparsetools.csr_matvecs`` call
  (a strict sequential per-row loop, allocation-free, accumulating
  ``y += A x`` in place) over the flattened trailing block dimensions, so
  one plan serves any value shape ``(n_sources, *block)``;
* without SciPy the plan falls back to per-component ``np.bincount``
  (also a strict sequential C loop, bitwise-equal to ``add.at`` when
  accumulating from zero) and to the literal ``ufunc.at`` statements when
  even that cannot preserve the reference order (accumulate-into with no
  CSR engine).

Determinism contract: for every engine and any block shape,
``plan.apply(x)`` is **bitwise identical** to replaying the reference
``np.add.at`` / ``np.subtract.at`` statement sequence (property-tested in
``tests/test_scatter.py``).  Note ``np.add.reduceat`` does *not* satisfy
this contract — NumPy's reduce loop uses unrolled partial accumulators —
which is why the engines above were chosen instead.

Locality: plans do not reorder targets themselves; combine them with
``repro.ordering.rcm_relabel`` (``--ordering rcm`` on the CLI) so vertex
ids — and hence the CSR row walk and the gathers feeding it — become
nearly monotone in memory, the paper's prefetch/AoS analog.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ScatterTerm",
    "ScatterPlan",
    "SegmentReducePlan",
    "build_scatter_plan",
    "segment_reduce_plan",
    "scatter_plan",
    "edge_difference_plan",
    "edge_sum_plan",
    "jacobian_edge_plan",
    "scatter_add",
    "scatter_stats",
    "plan_report",
    "reset_scatter_stats",
    "default_engine",
]

try:  # SciPy is optional at runtime; the bincount engine covers its absence
    from scipy.sparse import _sparsetools as _sparsetools

    _HAVE_CSR = hasattr(_sparsetools, "csr_matvecs")
except Exception:  # pragma: no cover - exercised only without scipy
    _sparsetools = None
    _HAVE_CSR = False

ENGINES = ("csr", "bincount", "addat")


def default_engine() -> str:
    """Fastest bitwise-exact engine available in this environment."""
    return "csr" if _HAVE_CSR else "bincount"


# ---------------------------------------------------------------------------
# Build/apply accounting (consumed by ``repro profile``)
# ---------------------------------------------------------------------------
_stats: dict[str, dict] = {}


def _stat(name: str) -> dict:
    s = _stats.get(name)
    if s is None:
        s = _stats[name] = {
            "engine": "",
            "builds": 0,
            "build_seconds": 0.0,
            "applies": 0,
            "apply_seconds": 0.0,
            "entries": 0,
            "targets": 0,
        }
    return s


def scatter_stats() -> dict[str, dict]:
    """Per-plan-name aggregate build/apply statistics (live view)."""
    return _stats


def reset_scatter_stats() -> None:
    _stats.clear()


def plan_report() -> str:
    """Human-readable table of every compiled plan family.

    One row per plan *name* (families like ``trsv.level`` aggregate all
    their level plans): engine in use, compiles, entries scattered per
    apply, and build/apply walls — the per-kernel scatter strategy line
    ``repro profile`` prints.
    """
    if not _stats:
        return "scatter plans: none compiled (all scatters ran np.add.at)"
    lines = [
        f"{'plan':<22}{'engine':>9}{'builds':>8}{'applies':>9}"
        f"{'entries':>10}{'build s':>9}{'apply s':>9}"
    ]
    for name in sorted(_stats):
        s = _stats[name]
        lines.append(
            f"{name:<22}{s['engine']:>9}{s['builds']:>8}{s['applies']:>9}"
            f"{s['entries']:>10}{s['build_seconds']:>9.4f}"
            f"{s['apply_seconds']:>9.4f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Plan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScatterTerm:
    """One reference statement ``out[targets] += sign * x[start:start+m]``.

    ``targets`` maps each consecutive source row of the term's slice to its
    destination slot; ``sign`` must be +-1 (matching ``np.add.at`` /
    ``np.subtract.at``).
    """

    targets: np.ndarray
    src_start: int = 0
    sign: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "targets",
            np.ascontiguousarray(self.targets, dtype=np.int64),
        )
        if self.sign not in (1.0, -1.0):
            raise ValueError(f"term sign must be +-1, got {self.sign}")


@dataclass
class ScatterPlan:
    """Compiled conflict-free scatter-add over a fixed index structure.

    Built once per (mesh/matrix, destination) by :func:`build_scatter_plan`;
    :meth:`apply` then executes the whole reference statement sequence as a
    single segment reduction, bitwise-identical to ``np.add.at`` and
    allocation-free when a destination buffer is supplied.
    """

    name: str
    engine: str
    n_targets: int
    n_sources: int
    terms: tuple[ScatterTerm, ...]
    # statement-order concatenation (bincount engine + reference replay)
    _tgt_cat: np.ndarray = field(repr=False)
    _col_cat: np.ndarray = field(repr=False)
    _sign_cat: np.ndarray = field(repr=False)
    # row-ordered CSR (csr engine)
    _indptr: np.ndarray | None = field(repr=False)
    _indices: np.ndarray | None = field(repr=False)
    _data: np.ndarray | None = field(repr=False)

    @property
    def n_entries(self) -> int:
        return int(self._tgt_cat.shape[0])

    # ------------------------------------------------------------------
    def apply(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        accumulate: bool = False,
    ) -> np.ndarray:
        """Scatter ``x`` of shape ``(n_sources, *block)`` into ``out``.

        ``out`` defaults to a fresh zero array of shape
        ``(n_targets, *block)``; pass a persistent buffer to make repeated
        applies allocation-free.  With ``accumulate=True`` the plan adds on
        top of the existing contents of ``out`` (reference semantics:
        exactly as if the ``np.add.at`` statements had run on it).
        """
        t0 = time.perf_counter()
        block = x.shape[1:]
        from_zero = not accumulate
        if out is None:
            out = np.zeros((self.n_targets, *block), dtype=np.float64)
            from_zero = True
        elif not accumulate:
            out[...] = 0.0

        engine = self.engine
        if engine != "addat" and (
            x.dtype != np.float64
            or out.dtype != np.float64
            or not out.flags.c_contiguous
        ):
            engine = "addat"  # exact fallback for exotic inputs
        if engine == "bincount" and not from_zero:
            # bincount totals a fresh sum; folding it onto nonzero contents
            # would reassociate the accumulation, so replay the reference
            engine = "addat"

        if engine == "csr":
            k = 1
            for d in block:
                k *= int(d)
            x2 = np.ascontiguousarray(x, dtype=np.float64)
            _sparsetools.csr_matvecs(
                self.n_targets,
                self.n_sources,
                k,
                self._indptr,
                self._indices,
                self._data,
                x2.reshape(-1),
                out.reshape(-1),
            )
        elif engine == "bincount":
            k = 1
            for d in block:
                k *= int(d)
            x2 = x.reshape(x.shape[0], k)
            out2 = out.reshape(self.n_targets, k)
            for j in range(x2.shape[1]):
                out2[:, j] += np.bincount(
                    self._tgt_cat,
                    weights=self._sign_cat * x2[self._col_cat, j],
                    minlength=self.n_targets,
                )
        else:  # literal reference statements
            self.apply_reference(x, out)

        s = _stat(self.name)
        s["applies"] += 1
        s["apply_seconds"] += time.perf_counter() - t0
        return out

    def apply_reference(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Replay the original ``np.add.at`` statement sequence on ``out``.

        The semantics every engine must reproduce bitwise; also the
        baseline the scatter bench times plans against.
        """
        for t in self.terms:
            rows = x[t.src_start : t.src_start + t.targets.shape[0]]
            if t.sign > 0:
                np.add.at(out, t.targets, rows)
            else:
                np.subtract.at(out, t.targets, rows)
        return out

    # small convenience used by tests/benchmarks
    def out_like(self, x: np.ndarray) -> np.ndarray:
        return np.zeros((self.n_targets, *x.shape[1:]), dtype=np.float64)


# ---------------------------------------------------------------------------
# Segment min/max reductions
# ---------------------------------------------------------------------------
@dataclass
class SegmentReducePlan:
    """Compiled scatter-min/-max over a fixed target index structure.

    The additive scatters above must replay the reference statement order
    because float addition is order-sensitive; ``min``/``max`` are exact
    (associative *and* commutative in IEEE-754, no rounding), so any
    reduction order is bitwise-identical to the ``np.minimum.at`` /
    ``np.maximum.at`` reference.  That freedom buys the fast shape: sort
    the targets once at build time, then every apply is one pre-permuted
    gather plus a ``ufunc.reduceat`` over the segment starts — the same
    10-50x win over ``ufunc.at`` the additive plans get from CSR, and the
    enabler for the fused kgir limiter stages.

    ``apply`` folds the segment results *into* ``out`` (``out[t] =
    op(out[t], reduce(values at t))``), matching the reference kernels'
    "initialize from q / ones, then tighten" idiom; untouched targets keep
    their initial values.
    """

    name: str
    n_targets: int
    #: statement-order target concatenation (reference replay + bound check)
    _targets: np.ndarray = field(repr=False)
    _order: np.ndarray = field(repr=False)  # argsort of targets
    _starts: np.ndarray = field(repr=False)  # segment starts in sorted order
    _uts: np.ndarray = field(repr=False)  # unique targets, one per segment

    @property
    def n_entries(self) -> int:
        return int(self._targets.shape[0])

    def apply(self, values: np.ndarray, out: np.ndarray, op: str) -> np.ndarray:
        """Fold ``values`` of shape ``(n_entries, *block)`` into ``out``.

        ``op`` is ``"min"`` or ``"max"``.  Bitwise-identical to
        ``np.minimum.at(out, targets, values)`` (property-tested in
        ``tests/test_kgir.py``) and several times faster.
        """
        t0 = time.perf_counter()
        ufunc = np.minimum if op == "min" else np.maximum
        if self._targets.shape[0]:
            seg = ufunc.reduceat(values[self._order], self._starts, axis=0)
            out[self._uts] = ufunc(out[self._uts], seg)
        s = _stat(self.name)
        s["applies"] += 1
        s["apply_seconds"] += time.perf_counter() - t0
        return out

    def apply_reference(
        self, values: np.ndarray, out: np.ndarray, op: str
    ) -> np.ndarray:
        """The ``ufunc.at`` statement ``apply`` must reproduce bitwise."""
        ufunc = np.minimum if op == "min" else np.maximum
        ufunc.at(out, self._targets, values)
        return out


def segment_reduce_plan(
    targets: np.ndarray, n_targets: int, name: str = "segreduce"
) -> SegmentReducePlan:
    """Compile a :class:`SegmentReducePlan` for one target index vector."""
    t0 = time.perf_counter()
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    if targets.shape[0] and (
        targets.min() < 0 or targets.max() >= n_targets
    ):
        raise ValueError("segment-reduce targets out of range")
    order = np.argsort(targets, kind="stable")
    st = targets[order]
    starts = (
        np.flatnonzero(np.r_[True, st[1:] != st[:-1]])
        if st.shape[0]
        else np.zeros(0, dtype=np.int64)
    )
    plan = SegmentReducePlan(
        name=name,
        n_targets=int(n_targets),
        _targets=targets,
        _order=order,
        _starts=starts,
        _uts=np.ascontiguousarray(st[starts]),
    )
    s = _stat(name)
    s["engine"] = "reduceat"
    s["builds"] += 1
    s["build_seconds"] += time.perf_counter() - t0
    s["entries"] = plan.n_entries
    s["targets"] = plan.n_targets
    return plan


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def build_scatter_plan(
    terms: list[ScatterTerm] | tuple[ScatterTerm, ...],
    n_targets: int,
    n_sources: int | None = None,
    engine: str | None = None,
    name: str = "scatter",
) -> ScatterPlan:
    """Compile the reference statement sequence ``terms`` into a plan.

    Entry order inside each CSR row is (term index, source position) —
    precisely the order the ``np.add.at`` statements touch that target —
    which is what makes every engine bitwise-exact.
    """
    engine = engine or default_engine()
    if engine not in ENGINES:
        raise ValueError(f"unknown scatter engine {engine!r}")
    if engine == "csr" and not _HAVE_CSR:
        engine = "bincount"
    terms = tuple(
        t if isinstance(t, ScatterTerm) else ScatterTerm(*t) for t in terms
    )
    t0 = time.perf_counter()

    tgt_cat = (
        np.concatenate([t.targets for t in terms])
        if terms
        else np.zeros(0, dtype=np.int64)
    )
    col_cat = (
        np.concatenate(
            [
                np.arange(
                    t.src_start,
                    t.src_start + t.targets.shape[0],
                    dtype=np.int64,
                )
                for t in terms
            ]
        )
        if terms
        else np.zeros(0, dtype=np.int64)
    )
    sign_cat = (
        np.concatenate(
            [np.full(t.targets.shape[0], t.sign) for t in terms]
        )
        if terms
        else np.zeros(0)
    )
    if n_sources is None:
        n_sources = int(col_cat.max()) + 1 if col_cat.shape[0] else 0
    if tgt_cat.shape[0] and (
        tgt_cat.min() < 0 or tgt_cat.max() >= n_targets
    ):
        raise ValueError("scatter targets out of range")

    indptr = indices = data = None
    if engine == "csr":
        term_cat = (
            np.concatenate(
                [
                    np.full(t.targets.shape[0], i, dtype=np.int64)
                    for i, t in enumerate(terms)
                ]
            )
            if terms
            else np.zeros(0, dtype=np.int64)
        )
        # rows ascending; within a row: term-major, then source position
        # (col_cat is monotone within a term, so it doubles as the
        # position key)
        order = np.lexsort((col_cat, term_cat, tgt_cat))
        indptr = np.zeros(n_targets + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(tgt_cat, minlength=n_targets), out=indptr[1:]
        )
        indices = np.ascontiguousarray(col_cat[order])
        data = np.ascontiguousarray(sign_cat[order])

    plan = ScatterPlan(
        name=name,
        engine=engine,
        n_targets=int(n_targets),
        n_sources=int(n_sources),
        terms=terms,
        _tgt_cat=tgt_cat,
        _col_cat=col_cat,
        _sign_cat=sign_cat,
        _indptr=indptr,
        _indices=indices,
        _data=data,
    )
    t1 = time.perf_counter()
    s = _stat(name)
    s["engine"] = engine
    s["builds"] += 1
    s["build_seconds"] += t1 - t0
    s["entries"] = plan.n_entries
    s["targets"] = plan.n_targets
    # one-off per pattern: the compile lands in the obs trace tree (only
    # under an open span — plans built outside any traced region must not
    # inject roots into e.g. the solver's trace)
    from ..obs.span import get_tracer

    tracer = get_tracer()
    if tracer.active and getattr(tracer, "_open", None):
        tracer.add_complete(
            f"scatter.build.{name}",
            t0,
            t1,
            engine=engine,
            entries=plan.n_entries,
            targets=plan.n_targets,
        )
    return plan


def scatter_plan(
    idx: np.ndarray,
    n_targets: int,
    sign: float = 1.0,
    engine: str | None = None,
    name: str = "scatter",
) -> ScatterPlan:
    """Plan for the single statement ``out[idx] += sign * x``."""
    return build_scatter_plan(
        [ScatterTerm(idx, 0, sign)], n_targets, engine=engine, name=name
    )


def edge_difference_plan(
    e0: np.ndarray,
    e1: np.ndarray,
    n_targets: int,
    engine: str | None = None,
    name: str = "edge.diff",
) -> ScatterPlan:
    """Edge write-out ``out[e0] += x; out[e1] -= x`` (flux residuals)."""
    return build_scatter_plan(
        [ScatterTerm(e0, 0, 1.0), ScatterTerm(e1, 0, -1.0)],
        n_targets,
        n_sources=e0.shape[0],
        engine=engine,
        name=name,
    )


def edge_sum_plan(
    e0: np.ndarray,
    e1: np.ndarray,
    n_targets: int,
    engine: str | None = None,
    name: str = "edge.sum",
) -> ScatterPlan:
    """Edge write-out ``out[e0] += x; out[e1] += x`` (gradients, dt sums)."""
    return build_scatter_plan(
        [ScatterTerm(e0, 0, 1.0), ScatterTerm(e1, 0, 1.0)],
        n_targets,
        n_sources=e0.shape[0],
        engine=engine,
        name=name,
    )


def jacobian_edge_plan(
    diag_e0: np.ndarray,
    idx_ij: np.ndarray,
    diag_e1: np.ndarray,
    idx_ji: np.ndarray,
    nnzb: int,
    engine: str | None = None,
    name: str = "jacobian.edge",
) -> ScatterPlan:
    """The four edge-block statements of first-order Jacobian assembly.

    Expects ``x = concatenate([dFdqi, dFdqj])`` and reproduces::

        vals[diag_e0] += dFdqi;  vals[idx_ij] += dFdqj
        vals[diag_e1] -= dFdqj;  vals[idx_ji] -= dFdqi
    """
    ne = diag_e0.shape[0]
    return build_scatter_plan(
        [
            ScatterTerm(diag_e0, 0, 1.0),
            ScatterTerm(idx_ij, ne, 1.0),
            ScatterTerm(diag_e1, ne, -1.0),
            ScatterTerm(idx_ji, 0, -1.0),
        ],
        nnzb,
        n_sources=2 * ne,
        engine=engine,
        name=name,
    )


def scatter_add(
    idx: np.ndarray, values: np.ndarray, n_targets: int
) -> np.ndarray:
    """One-shot ``out = zeros(...); np.add.at(out, idx, values)``.

    For construction-time scatters that run once per mesh (metrics, LSQ
    normal matrices, closure checks) where compiling a plan buys nothing.
    Bitwise-identical to the reference because ``np.bincount`` accumulates
    in the same strict sequential order.
    """
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    block = values.shape[1:]
    out = np.zeros((n_targets, *block), dtype=np.float64)
    if values.dtype != np.float64:
        np.add.at(out, idx, values)
        return out
    k = 1
    for d in block:
        k *= int(d)
    v2 = values.reshape(values.shape[0], k)
    out2 = out.reshape(n_targets, k)
    for j in range(v2.shape[1]):
        out2[:, j] = np.bincount(
            idx, weights=v2[:, j], minlength=n_targets
        )
    return out
