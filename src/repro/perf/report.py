"""Plain-text table/series formatting for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; these helpers keep the output format uniform.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """A figure rendered as a table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
