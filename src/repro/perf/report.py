"""Plain-text table/series formatting for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; these helpers keep the output format uniform.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series", "format_profile"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns.

    Degenerate inputs format cleanly: an empty ``rows`` yields just the
    header and rule lines, and rows shorter than ``headers`` are padded
    with blanks instead of raising.
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row[: len(headers)]):
            widths[i] = max(widths[i], len(cell))
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        padded = list(row[: len(headers)]) + [""] * (len(headers) - len(row))
        out.append("  ".join(c.rjust(w) for c, w in zip(padded, widths)))
    return "\n".join(out)


def format_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """A figure rendered as a table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def format_profile(
    roots: Sequence[Any],
    title: str | None = None,
    model: bool = False,
    min_share: float = 0.0005,
) -> str:
    """Indented span-tree profile (text flame graph, root time = 100%).

    ``roots`` are span-like nodes (``name``, ``seconds``, ``model_seconds``,
    ``children`` attributes — see :class:`repro.obs.Span`); this module only
    duck-types them so ``repro.perf`` stays import-free of ``repro.obs``.
    Subtrees below ``min_share`` of the total are pruned from the listing.
    """

    def secs(node: Any) -> float:
        return node.model_seconds if model else node.seconds

    total = sum(secs(r) for r in roots) or 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'span':<44}{'seconds':>12}{'share':>8}")
    lines.append(f"{'-' * 44}{'-' * 12:>12}{'-' * 7:>8}")

    def walk(node: Any, depth: int) -> None:
        s = secs(node)
        if s / total < min_share and depth > 0:
            return
        label = "  " * depth + node.name
        lines.append(f"{label:<44}{s:>12.4f}{100 * s / total:>7.1f}%")
        for c in node.children:
            walk(c, depth + 1)

    for r in roots:
        walk(r, 0)
    lines.append(f"{'TOTAL':<44}{total:>12.4f}{100.0:>7.1f}%")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
