"""Kernel timing/accounting registry.

Reproducing Fig. 5 (the baseline execution profile: flux 42%, TRSV 17%,
ILU 16%, gradient 13%, Jacobian 7%) needs per-kernel accounting across the
whole application.  Every layer reports into a :class:`PerfRegistry`:
wall-clock seconds of the NumPy implementation, plus the *modeled* seconds
from the shared-memory machine model, plus flop/byte tallies when known.

Registries are explicit objects (the global default can be swapped with
``use_registry``), so nested experiments don't pollute each other.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["KernelRecord", "PerfRegistry", "get_registry", "use_registry"]


@dataclass
class KernelRecord:
    """Accumulated statistics of one named kernel."""

    calls: int = 0
    seconds: float = 0.0
    model_seconds: float = 0.0
    flops: float = 0.0
    bytes: float = 0.0

    def merge(self, other: "KernelRecord") -> None:
        self.calls += other.calls
        self.seconds += other.seconds
        self.model_seconds += other.model_seconds
        self.flops += other.flops
        self.bytes += other.bytes


@dataclass
class PerfRegistry:
    """Named kernel records plus helpers for profile reports."""

    records: dict[str, KernelRecord] = field(default_factory=dict)

    def record(self, name: str) -> KernelRecord:
        if name not in self.records:
            self.records[name] = KernelRecord()
        return self.records[name]

    def add(
        self,
        name: str,
        seconds: float = 0.0,
        model_seconds: float = 0.0,
        flops: float = 0.0,
        nbytes: float = 0.0,
        calls: int = 1,
    ) -> None:
        r = self.record(name)
        r.calls += calls
        r.seconds += seconds
        r.model_seconds += model_seconds
        r.flops += flops
        r.bytes += nbytes

    @contextmanager
    def timer(self, name: str, flops: float = 0.0, nbytes: float = 0.0):
        """Time a block of code and accumulate it under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(
                name,
                seconds=time.perf_counter() - t0,
                flops=flops,
                nbytes=nbytes,
            )

    def total_seconds(self, model: bool = False) -> float:
        key = "model_seconds" if model else "seconds"
        return sum(getattr(r, key) for r in self.records.values())

    def fractions(self, model: bool = False) -> dict[str, float]:
        """Per-kernel share of total time (the Fig. 5 pie)."""
        total = self.total_seconds(model=model) or 1.0
        key = "model_seconds" if model else "seconds"
        return {
            name: getattr(r, key) / total for name, r in self.records.items()
        }

    def report(self, model: bool = False) -> str:
        """Human-readable profile table sorted by time share."""
        key = "model_seconds" if model else "seconds"
        total = self.total_seconds(model=model) or 1.0
        rows = sorted(
            self.records.items(), key=lambda kv: -getattr(kv[1], key)
        )
        lines = [f"{'kernel':<24}{'calls':>8}{'seconds':>12}{'share':>8}"]
        for name, r in rows:
            secs = getattr(r, key)
            lines.append(
                f"{name:<24}{r.calls:>8}{secs:>12.4f}{100 * secs / total:>7.1f}%"
            )
        lines.append(f"{'TOTAL':<24}{'':>8}{total:>12.4f}{100.0:>7.1f}%")
        return "\n".join(lines)

    def clear(self) -> None:
        self.records.clear()

    def merged_into(self, other: "PerfRegistry") -> None:
        for name, r in self.records.items():
            other.record(name).merge(r)


_global = PerfRegistry()
_stack: list[PerfRegistry] = []


def get_registry() -> PerfRegistry:
    """The currently active registry (innermost ``use_registry`` or global)."""
    return _stack[-1] if _stack else _global


@contextmanager
def use_registry(registry: PerfRegistry):
    """Route all accounting inside the block to ``registry``.

    Exception-safe and reentrancy-safe: on exit the stack is truncated back
    to its depth at entry, so the previously active registry is restored
    even if code inside the block raised, or pushed registries it never
    popped (a bare ``_stack.pop()`` would hand the leak to the wrong
    scope).
    """
    depth = len(_stack)
    _stack.append(registry)
    try:
        yield registry
    finally:
        del _stack[depth:]
