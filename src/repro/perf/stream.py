"""Host STREAM-style bandwidth measurement.

The machine models are calibrated to the paper's platforms, but it is
useful to know what the *host* actually sustains (e.g. to interpret the
wall-clock times the NumPy kernels produce).  This measures the classic
triad ``a = b + s * c`` over arrays far larger than any cache.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["measure_stream_triad"]


def measure_stream_triad(
    n_doubles: int = 8_000_000, repeats: int = 5
) -> float:
    """Best-of-``repeats`` STREAM triad bandwidth of this host, in B/s.

    Counts 3 arrays x 8 bytes of traffic per element (two reads, one
    write; write-allocate traffic is ignored, as STREAM does).
    """
    b = np.random.default_rng(0).random(n_doubles)
    c = np.random.default_rng(1).random(n_doubles)
    a = np.empty_like(b)
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.multiply(c, 3.0, out=a)
        a += b
        dt = time.perf_counter() - t0
        bw = 3.0 * 8.0 * n_doubles / dt
        best = max(best, bw)
    return best
