"""Fused-program edge backend.

:class:`FusedEdgeBackend` plugs the kernel-graph programs into the
standard :func:`repro.smp.use_edge_backend` slot.  It adds one optional
member to the backend protocol — ``residual_pipeline(q, config)`` — which
:func:`repro.cfd.residual.compute_residual` probes for: when present, the
whole interior second-order pipeline (gradients, limiter, flux) runs as
one fused program instead of four backend calls.

Two execution modes:

* ``inner=None`` — the fused :class:`~repro.kgir.programs.ResidualProgram`
  runs serially in-process;
* ``inner=ProcessEdgeBackend`` — the fused pipeline is dispatched to the
  worker fleet (:meth:`repro.smp.parallel.ProcessEdgeBackend\
.fused_pipeline`), and the classic per-kernel entry points
  (``flux_residual`` / ``gradients``) delegate to the same fleet so
  Jacobian assembly and first-order preconditioner residuals keep their
  parallel path.
"""

from __future__ import annotations

import numpy as np

from ..cfd.state import FlowConfig, FlowField
from ..smp.backend import use_edge_backend
from .programs import residual_program

__all__ = ["FusedEdgeBackend"]


class FusedEdgeBackend:
    """Edge backend that routes the residual through fused programs."""

    def __init__(self, field: FlowField, inner=None):
        self.field = field
        self.inner = inner
        # build (and cache on the field) the fused program up front so the
        # first residual evaluation doesn't pay plan compilation
        self.program = residual_program(field, fuse=True)

    # -- backend protocol ------------------------------------------------
    def handles(self, field: FlowField) -> bool:
        if self.inner is not None and not self.inner.handles(field):
            return False
        return field is self.field

    def flux_residual(
        self,
        q: np.ndarray,
        beta: float,
        grad: np.ndarray | None = None,
        limiter: np.ndarray | None = None,
        scheme: str = "rusanov",
    ) -> np.ndarray:
        if self.inner is not None:
            return self.inner.flux_residual(
                q, beta, grad=grad, limiter=limiter, scheme=scheme
            )
        from ..cfd.flux import interior_flux_residual

        with use_edge_backend(None):
            return interior_flux_residual(
                self.field, q, beta, grad, limiter, scheme=scheme
            )

    def gradients(self, q: np.ndarray) -> np.ndarray:
        if self.inner is not None:
            return self.inner.gradients(q)
        from ..cfd.gradient import lsq_gradients

        with use_edge_backend(None):
            return lsq_gradients(self.field, q)

    # -- fused extension -------------------------------------------------
    def residual_pipeline(self, q: np.ndarray, config: FlowConfig):
        """Interior ``(res, grad, phi)`` via the fused program."""
        if self.inner is not None:
            return self.inner.fused_pipeline(q, config)
        return self.program.run(q, config)

    def run_batch(self, q_batch: np.ndarray, configs):
        """Trailing-axis multi-case interior evaluation (serve path)."""
        return self.program.run_batch(q_batch, configs)

    def fleet_stats(self) -> dict:
        out = {"fused": True}
        if self.inner is not None:
            out.update(self.inner.fleet_stats())
        return out

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()
