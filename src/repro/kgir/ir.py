"""Operator-DAG IR over edge gather-compute-scatter stages.

A pipeline is a :class:`Graph` of two node kinds:

* :class:`EdgeStage` — one pass over an edge index set: gather the declared
  ``reads`` at both endpoints, run a per-edge ``compute``, scatter the
  named outputs through precompiled plans (:class:`ScatterSpec`).
* :class:`PointStage` — per-vertex work between edge sweeps (the LSQ 3x3
  solve, array initialization).  Point stages never fuse and act as
  barriers in the rewrite pass.

The fusion rewrite (:func:`fuse_graph`) merges maximal runs of *adjacent*
edge stages into :class:`FusedStage` groups when it can prove the merge is
exact:

1. **matching index sets** — both stages sweep the identical edge set
   (same :class:`EdgeIndexSet` identity), so one shared gather serves all
   member computes;
2. **no scatter→gather hazard** — no member reads a vertex array an
   earlier member writes (the written array is only complete after the
   full sweep, so reading it mid-group would change the numerics);
3. **disjoint writes** — members scatter into distinct arrays, keeping
   each target's accumulation order exactly the reference order.

:func:`fuse_stages` is the same legality check as a public API: it raises
:class:`FusionError` instead of declining, which is what the rewrite-pass
unit tests exercise (e.g. stages over mismatched index sets must refuse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "EdgeIndexSet",
    "ScatterSpec",
    "EdgeStage",
    "PointStage",
    "FusedStage",
    "FusionError",
    "FusionReport",
    "Graph",
    "fuse_stages",
    "fuse_graph",
]


class FusionError(ValueError):
    """A requested stage merge is not provably exact."""


@dataclass(frozen=True)
class EdgeIndexSet:
    """Identity of one edge iteration set (endpoints into vertex arrays).

    Fusion keys on *identity*: two stages fuse only when they sweep the
    same :class:`EdgeIndexSet` object (or an equal-by-construction one
    sharing the same endpoint arrays) — a different subset of edges, a
    boundary corner set, or another mesh never matches.
    """

    name: str
    e0: np.ndarray = field(repr=False)
    e1: np.ndarray = field(repr=False)

    @property
    def n_edges(self) -> int:
        return int(self.e0.shape[0])

    def same_as(self, other: "EdgeIndexSet") -> bool:
        if self is other:
            return True
        return (
            self.name == other.name
            and self.e0 is other.e0
            and self.e1 is other.e1
        )


@dataclass(frozen=True)
class ScatterSpec:
    """One write-out of an edge stage: ``target <- op(target, plan(src))``.

    ``op == "add"`` runs a :class:`~repro.perf.scatter.ScatterPlan`
    (reference statement order, order-sensitive); ``"min"``/``"max"`` run a
    :class:`~repro.perf.scatter.SegmentReducePlan` (order-free, exact).
    The compute's ``src`` output must be aligned with the plan's source
    rows (additive) or target entries (min/max).
    """

    src: str
    target: str
    op: str  # "add" | "min" | "max"
    plan: object = field(repr=False)

    def __post_init__(self) -> None:
        if self.op not in ("add", "min", "max"):
            raise ValueError(f"unknown scatter op {self.op!r}")


@dataclass(frozen=True)
class EdgeStage:
    """One gather-compute-scatter pass over ``index_set``.

    ``compute(cfg, gathered) -> {src: edge_array}`` receives the declared
    ``reads`` pre-gathered at both endpoints (``gathered[name] = (at_e0,
    at_e1)``, contiguous) and returns the scatter sources.  It must be a
    pure per-edge function of its gathers — that's what makes sharing the
    gather across fused members exact.

    ``carries`` names compute outputs that are *edge-carried
    intermediates*: per-edge arrays kept alive for later stages over the
    same index set, which declare them in ``edge_reads`` and receive them
    verbatim (``gathered[name] = edge_array``, no endpoint tuple).  A
    carried value is the exact array the producer computed, so a consumer
    reusing it is bitwise equal to recomputing it from its own gather —
    redundant-projection elimination across stages the scatter->gather
    hazard keeps unfused.
    """

    name: str
    index_set: EdgeIndexSet
    reads: tuple[str, ...]
    scatters: tuple[ScatterSpec, ...]
    compute: Callable = field(repr=False)
    edge_reads: tuple[str, ...] = ()
    carries: tuple[str, ...] = ()

    @property
    def writes(self) -> tuple[str, ...]:
        return tuple(s.target for s in self.scatters)


@dataclass(frozen=True)
class PointStage:
    """Per-vertex stage: ``compute(cfg, env_view) -> {name: vertex_array}``.

    ``env_view`` maps each declared read to its current vertex array.
    Point stages are fusion barriers (different iteration space).
    """

    name: str
    reads: tuple[str, ...]
    writes: tuple[str, ...]
    compute: Callable = field(repr=False)


@dataclass(frozen=True)
class FusedStage:
    """A maximal run of edge stages executing as one single-pass sweep:
    one shared gather of the union of member reads, member computes
    pipelined back-to-back on the gathered data (edge intermediates flow
    directly, never round-tripping through vertex arrays), then every
    member's scatters in stage order."""

    members: tuple[EdgeStage, ...]

    @property
    def name(self) -> str:
        return "+".join(m.name for m in self.members)

    @property
    def index_set(self) -> EdgeIndexSet:
        return self.members[0].index_set

    @property
    def reads(self) -> tuple[str, ...]:
        seen: list[str] = []
        for m in self.members:
            for r in m.reads:
                if r not in seen:
                    seen.append(r)
        return tuple(seen)

    @property
    def writes(self) -> tuple[str, ...]:
        return tuple(w for m in self.members for w in m.writes)

    @property
    def carries(self) -> tuple[str, ...]:
        return tuple(c for m in self.members for c in m.carries)

    @property
    def edge_reads(self) -> tuple[str, ...]:
        """Carried inputs the group needs from *outside* (earlier-member
        carries resolve within the shared sweep)."""
        produced: set[str] = set()
        out: list[str] = []
        for m in self.members:
            for r in m.edge_reads:
                if r not in produced and r not in out:
                    out.append(r)
            produced.update(m.carries)
        return tuple(out)


def _refuse(a: EdgeStage, b: EdgeStage) -> str | None:
    """Why ``b`` cannot join a group ending in ``a`` (None = legal)."""
    if not isinstance(a, EdgeStage) or not isinstance(b, EdgeStage):
        return "only edge stages fuse"
    if not a.index_set.same_as(b.index_set):
        return (
            f"index sets differ ({a.index_set.name!r} vs "
            f"{b.index_set.name!r})"
        )
    if set(a.writes) & set(b.reads):
        clash = sorted(set(a.writes) & set(b.reads))
        return f"scatter->gather hazard on {clash}"
    if set(a.writes) & set(b.writes):
        clash = sorted(set(a.writes) & set(b.writes))
        return f"write-write overlap on {clash}"
    return None


def fuse_stages(stages: list) -> FusedStage:
    """Merge ``stages`` into one :class:`FusedStage` or raise
    :class:`FusionError` explaining the first illegal pair."""
    if len(stages) < 1:
        raise FusionError("nothing to fuse")
    members: list[EdgeStage] = []
    for st in stages:
        if not isinstance(st, EdgeStage):
            raise FusionError(
                f"stage {getattr(st, 'name', st)!r} is not an edge stage"
            )
        for prev in members:
            reason = _refuse(prev, st)
            if reason is not None:
                raise FusionError(
                    f"cannot fuse {prev.name!r} with {st.name!r}: {reason}"
                )
        members.append(st)
    return FusedStage(members=tuple(members))


@dataclass(frozen=True)
class FusionReport:
    """What the rewrite pass bought: the ``repro profile`` fusion report."""

    stages_before: int
    stages_after: int
    groups: tuple[tuple[str, ...], ...]  # member names of each fused group
    #: edge-length intermediates no longer materialized per evaluation
    intermediates_eliminated: tuple[str, ...]
    #: estimated bytes of edge gather+intermediate traffic saved per eval
    bytes_saved: int

    def text(self) -> str:
        lines = [
            f"kgir fusion: {self.stages_before} stages -> "
            f"{self.stages_after} "
            f"({len(self.groups)} fused group(s))"
        ]
        for g in self.groups:
            lines.append(f"  fused [{' + '.join(g)}] -> one pass")
        if self.intermediates_eliminated:
            lines.append(
                "  intermediates eliminated: "
                + ", ".join(self.intermediates_eliminated)
            )
        lines.append(
            f"  est. edge traffic saved: {self.bytes_saved / 1e6:.2f} MB "
            "per residual evaluation"
        )
        return "\n".join(lines)


class Graph:
    """An ordered stage list plus the rewrite pass over it.

    ``widths`` maps vertex-array names to their per-vertex component count
    (``q -> 4``, ``grad -> 12``, ...), used only for the byte estimates in
    the :class:`FusionReport`.
    """

    def __init__(self, stages: list, widths: dict[str, int] | None = None):
        self.stages = list(stages)
        self.widths = dict(widths or {})

    def fused(self) -> "Graph":
        """Greedy left-to-right fusion of adjacent legal edge stages."""
        out: list = []
        group: list[EdgeStage] = []

        def flush() -> None:
            if not group:
                return
            out.append(
                group[0] if len(group) == 1 else FusedStage(tuple(group))
            )
            group.clear()

        for st in self.stages:
            if isinstance(st, EdgeStage):
                if group and any(
                    _refuse(prev, st) is not None for prev in group
                ):
                    flush()
                group.append(st)
            else:
                flush()
                out.append(st)
        flush()
        g = Graph(out, widths=self.widths)
        return g

    def report(self, fused: "Graph" | None = None) -> FusionReport:
        fused = fused if fused is not None else self.fused()
        groups: list[tuple[str, ...]] = []
        eliminated: list[str] = []
        nbytes = 0
        for node in fused.stages:
            if not isinstance(node, FusedStage):
                continue
            groups.append(tuple(m.name for m in node.members))
            ne = node.index_set.n_edges
            # every read a later member repeats was a separate gather pass
            # (and a separate (ne, width) edge intermediate) before fusion
            seen: set[str] = set()
            for m in node.members:
                for r in m.reads:
                    if r in seen:
                        w = self.widths.get(r, 1)
                        eliminated.append(f"{r}[e0],{r}[e1] ({m.name})")
                        nbytes += 2 * ne * w * 8
                    seen.add(r)
        return FusionReport(
            stages_before=len(self.stages),
            stages_after=len(fused.stages),
            groups=tuple(groups),
            intermediates_eliminated=tuple(eliminated),
            bytes_saved=int(nbytes),
        )


def fuse_graph(graph: Graph) -> tuple[Graph, FusionReport]:
    """The rewrite pass: ``(fused graph, report)``."""
    fused = graph.fused()
    return fused, graph.report(fused)
