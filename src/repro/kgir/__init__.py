"""Kernel-graph IR: fuse the edge pipeline into single-pass programs.

The paper's lesson is that the edge loops are memory-bound: once scatter
conflicts are handled, wins come from cutting traffic per edge, not from
more threads.  The unfused residual pipeline pays the edge-gather tax four
times per evaluation (gradient accumulation, neighbor min/max, limiter
values, flux), each pass materializing full edge-length intermediates.

This package represents that pipeline as a small operator DAG over the
existing precompiled scatter plans (:mod:`repro.perf.scatter`):

* :mod:`.ir` — gather/compute/scatter stage nodes with declared
  reads/writes and an edge-index-set identity, plus the rewrite pass that
  fuses adjacent stages with matching index sets into single-pass fused
  groups (one shared gather, pipelined arithmetic, scatters at the end).
* :mod:`.programs` — the residual pipeline lowered onto the IR:
  :class:`ResidualProgram` (single-state and trailing-axis batched
  multi-case evaluation) and the :func:`fusion_report` the CLI prints.
* :mod:`.backend` — :class:`FusedEdgeBackend`, installed through
  :func:`repro.smp.use_edge_backend`, which reroutes
  :func:`repro.cfd.residual.compute_residual` through the fused program,
  serially or on :class:`~repro.smp.parallel.ProcessEdgeBackend` workers.

Numerics contract: fused execution is **bitwise identical** to the unfused
oracle (property-tested in ``tests/test_kgir.py``).  Additive scatters go
through the same :class:`~repro.perf.scatter.ScatterPlan` objects in the
same statement order; min/max scatters are IEEE-exact in any order, which
is what lets the fused pass replace the reference ``ufunc.at`` loops with
precompiled segment reductions; all remaining arithmetic reuses the very
same NumPy calls (including ``einsum``, whose per-row results are verified
stable under chunking/gathering) on identically laid-out inputs.
"""

from .backend import FusedEdgeBackend
from .ir import (
    EdgeIndexSet,
    EdgeStage,
    FusedStage,
    FusionError,
    FusionReport,
    Graph,
    PointStage,
    ScatterSpec,
    fuse_graph,
    fuse_stages,
)
from .programs import (
    ResidualProgram,
    batched_residual,
    fusion_report,
    residual_program,
)

__all__ = [
    "EdgeIndexSet",
    "EdgeStage",
    "PointStage",
    "ScatterSpec",
    "FusedStage",
    "FusionError",
    "FusionReport",
    "Graph",
    "fuse_graph",
    "fuse_stages",
    "ResidualProgram",
    "residual_program",
    "batched_residual",
    "fusion_report",
    "FusedEdgeBackend",
]
