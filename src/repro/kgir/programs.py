"""The residual pipeline lowered onto the kernel-graph IR.

Stage layout (interior edges only; boundary closures live on separate
corner index sets and stay outside the graph):

.. code-block:: text

    P0 init         zero rhs/res, qmin=qmax=q, phi=1
    E1 grad.rhs     gather q        -> scatter-add  dx*dq outer into rhs
    E2 limit.minmax gather q        -> scatter-min/max neighbor q
    P1 grad.solve   grad = lsq_inv @ rhs;  eps2 = k^3 V;
                    dmax/dmin = qmax/qmin - q
    E3 limit.phi    gather grad,dmax,dmin,eps2 -> scatter-min phi;
                    carries dproj (the per-edge gradient projections)
    E4 flux         gather q,phi + carried dproj -> scatter-add into res

The rewrite pass fuses ``E1+E2`` (same interior index set, disjoint
writes): one shared gather of ``q`` feeds both the gradient accumulation
and the neighbor min/max, the paper's single-pass write-out argument
applied across kernels.  ``E3`` cannot join ``E4`` — ``E3`` scatters
``phi`` and ``E4`` gathers it, a scatter->gather hazard the pass refuses —
but ``E3`` *carries* its gradient projections forward as edge
intermediates, so ``E4`` neither gathers ``grad`` (12 doubles per
endpoint) nor recomputes the projection: reusing the exact array the
producer computed is bitwise free.

Every stage's arithmetic is copied verbatim from the oracle kernels in
:mod:`repro.cfd.gradient` / :mod:`repro.cfd.flux` (same NumPy calls on
identically laid-out inputs), additive scatters run through the field's
own :class:`~repro.perf.scatter.ScatterPlan` objects, and the reference
``ufunc.at`` min/max loops are replaced by the order-free (hence exactly
equal) :class:`~repro.perf.scatter.SegmentReducePlan` — together that is
what makes fused output bitwise-identical to the unfused pipeline.

Batched evaluation (:meth:`ResidualProgram.run_batch`) stacks states on a
trailing axis: each edge sweep gathers and scatters the whole batch once,
while the per-edge arithmetic loops over contiguous per-case slices so
every case reproduces its single-state result bitwise even with
heterogeneous per-case configs.
"""

from __future__ import annotations

import numpy as np

from ..cfd.state import FlowConfig, FlowField
from ..obs.span import kernel_span
from ..perf.scatter import segment_reduce_plan
from .ir import (
    EdgeIndexSet,
    EdgeStage,
    FusedStage,
    FusionReport,
    Graph,
    PointStage,
    ScatterSpec,
    fuse_graph,
)

__all__ = [
    "ResidualProgram",
    "residual_program",
    "batched_residual",
    "fusion_report",
]

#: per-vertex component counts, for the report's byte estimates
_WIDTHS = {
    "q": 4,
    "grad": 12,
    "qmin": 4,
    "qmax": 4,
    "eps2": 1,
    "phi": 4,
    "rhs": 12,
    "res": 4,
    "dmax": 4,
    "dmin": 4,
}


def _interior_index_set(field: FlowField) -> EdgeIndexSet:
    return field.plan(
        "kgir.index",
        lambda: EdgeIndexSet(name="interior", e0=field.e0, e1=field.e1),
    )


def _end_plans(field: FlowField):
    """Per-endpoint segment min/max plans (targets ``e0`` and ``e1``).

    min/max are order-free, so scattering each endpoint's contributions
    through its own plan is bitwise equal to one pass over
    ``concat(e0, e1)`` — and skips materializing the ``(2 ne, 4)``
    concatenated value array every evaluation.
    """
    return field.plan(
        "kgir.minmax",
        lambda: (
            segment_reduce_plan(
                field.e0, field.n_vertices, name="kgir.minmax.e0"
            ),
            segment_reduce_plan(
                field.e1, field.n_vertices, name="kgir.minmax.e1"
            ),
        ),
    )


def build_residual_graph(field: FlowField) -> Graph:
    """Lower the second-order interior residual pipeline onto the IR."""
    nv = field.n_vertices
    idx = _interior_index_set(field)
    mm0, mm1 = _end_plans(field)
    dx = field.emid_d0 * 2.0  # x[e1] - x[e0], as in lsq_gradients

    def init(cfg, env):
        q = env["q"]
        return {
            "rhs": np.zeros((nv, 4, 3)),
            "res": np.zeros((nv, 4)),
            "qmin": q.copy(),
            "qmax": q.copy(),
            "phi": np.ones((nv, 4)),
        }

    def grad_rhs(cfg, g):
        q0, q1 = g["q"]
        dq = q1 - q0
        return {"rhs_contrib": dq[:, :, None] * dx[:, None, :]}

    def limit_minmax(cfg, g):
        q0, q1 = g["q"]
        # each endpoint sees the opposite endpoint's value
        return {"nbr_at_e0": q1, "nbr_at_e1": q0}

    def grad_solve(cfg, env):
        # dmax/dmin are per-vertex differences; gathering them is bitwise
        # equal to gathering qmax/qmin/q and subtracting per edge, and
        # gathers two arrays instead of three
        return {
            "grad": np.einsum("nij,nvj->nvi", field.lsq_inv, env["rhs"]),
            "eps2": (cfg.limiter_k**3) * field.volumes,
            "dmax": env["qmax"] - env["q"],
            "dmin": env["qmin"] - env["q"],
        }

    def limit_phi(cfg, g):
        out = {}
        for end, disp, tag in (
            (0, field.emid_d0, "e0"), (1, field.emid_d1, "e1"),
        ):
            d2 = np.einsum("nvi,ni->nv", g["grad"][end], disp)
            d1 = np.where(d2 > 0.0, g["dmax"][end], g["dmin"][end])
            e2 = g["eps2"][end][:, None]
            num = (d1 * d1 + e2) * d2 + 2.0 * d2 * d2 * d1
            den = d2 * (d1 * d1 + 2.0 * d2 * d2 + d1 * d2 + e2)
            with np.errstate(divide="ignore", invalid="ignore"):
                val = np.where(np.abs(d2) > 1e-14, num / den, 1.0)
            out[f"phival_{tag}"] = np.clip(val, 0.0, 1.0)
            out[f"dproj_{tag}"] = d2  # carried to the flux stage
        return out

    def flux(cfg, g):
        from ..cfd.flux import numerical_edge_flux

        # dproj_* are the carried gradient projections limit.phi computed —
        # the exact arrays the unfused flux kernel would recompute from a
        # fresh gather of grad
        ql = g["q"][0] + g["dproj_e0"] * g["phi"][0]
        qr = g["q"][1] + g["dproj_e1"] * g["phi"][1]
        return {
            "flux": numerical_edge_flux(
                ql, qr, field.enormals, cfg.beta, cfg.dissipation
            )
        }

    stages = [
        PointStage(
            name="init",
            reads=("q",),
            writes=("rhs", "res", "qmin", "qmax", "phi"),
            compute=init,
        ),
        EdgeStage(
            name="grad.rhs",
            index_set=idx,
            reads=("q",),
            scatters=(
                ScatterSpec("rhs_contrib", "rhs", "add", field.edge_sum_plan),
            ),
            compute=grad_rhs,
        ),
        EdgeStage(
            name="limit.minmax",
            index_set=idx,
            reads=("q",),
            scatters=(
                ScatterSpec("nbr_at_e0", "qmin", "min", mm0),
                ScatterSpec("nbr_at_e1", "qmin", "min", mm1),
                ScatterSpec("nbr_at_e0", "qmax", "max", mm0),
                ScatterSpec("nbr_at_e1", "qmax", "max", mm1),
            ),
            compute=limit_minmax,
        ),
        PointStage(
            name="grad.solve",
            reads=("rhs", "qmin", "qmax", "q"),
            writes=("grad", "eps2", "dmax", "dmin"),
            compute=grad_solve,
        ),
        EdgeStage(
            name="limit.phi",
            index_set=idx,
            reads=("grad", "dmax", "dmin", "eps2"),
            scatters=(
                ScatterSpec("phival_e0", "phi", "min", mm0),
                ScatterSpec("phival_e1", "phi", "min", mm1),
            ),
            compute=limit_phi,
            carries=("dproj_e0", "dproj_e1"),
        ),
        EdgeStage(
            name="flux",
            index_set=idx,
            reads=("q", "phi"),
            scatters=(
                ScatterSpec("flux", "res", "add", field.edge_diff_plan),
            ),
            compute=flux,
            edge_reads=("dproj_e0", "dproj_e1"),
        ),
    ]
    return Graph(stages, widths=_WIDTHS)


def _apply_scatter(spec: ScatterSpec, values: np.ndarray, env: dict) -> None:
    if spec.op == "add":
        spec.plan.apply(values, out=env[spec.target], accumulate=True)
    else:
        spec.plan.apply(values, env[spec.target], op=spec.op)


class ResidualProgram:
    """Executable (optionally fused) interior residual program.

    :meth:`run` evaluates one state; :meth:`run_batch` evaluates a
    trailing-axis stack of states in shared sweeps.  Both return
    ``(res, grad, phi)`` — the *interior* residual plus the
    reconstruction byproducts the caller needs for Jacobians and
    diagnostics.  Boundary closures are separate index sets and are added
    by :func:`repro.cfd.residual.compute_residual` /
    :func:`batched_residual`.
    """

    def __init__(self, field: FlowField, fuse: bool = True):
        self.field = field
        self.fuse = bool(fuse)
        self.graph = build_residual_graph(field)
        if self.fuse:
            self.exec_graph, self.report = fuse_graph(self.graph)
        else:
            self.exec_graph = self.graph
            self.report = self.graph.report(self.graph)

    # ------------------------------------------------------------------
    def run(self, q: np.ndarray, config: FlowConfig):
        env: dict[str, np.ndarray] = {"q": q}
        edge_env: dict[str, np.ndarray] = {}
        for node in self.exec_graph.stages:
            with kernel_span(f"kgir.{node.name}"):
                self._run_node(node, env, config, edge_env)
        return env["res"], env["grad"], env["phi"]

    def _run_node(self, node, env: dict, cfg: FlowConfig, edge_env) -> None:
        if isinstance(node, PointStage):
            env.update(node.compute(cfg, {r: env[r] for r in node.reads}))
            return
        members = node.members if isinstance(node, FusedStage) else (node,)
        idx = node.index_set
        gathered = {
            name: (env[name][idx.e0], env[name][idx.e1])
            for name in node.reads
        }
        for m in members:
            g = {r: gathered[r] for r in m.reads}
            for r in m.edge_reads:
                g[r] = edge_env[r]
            outs = m.compute(cfg, g)
            for spec in m.scatters:
                _apply_scatter(spec, outs[spec.src], env)
            for name in m.carries:
                edge_env[name] = outs[name]

    # ------------------------------------------------------------------
    def run_batch(self, q_batch: np.ndarray, configs):
        """Evaluate ``q_batch`` of shape ``(n_vertices, 4, n_cases)``.

        Each edge sweep gathers and scatters the full batch once; the
        per-edge arithmetic runs per case on contiguous slices with that
        case's :class:`FlowConfig`, so case ``b``'s outputs are bitwise
        equal to ``run(q_batch[..., b], configs[b])``.
        """
        n_cases = q_batch.shape[-1]
        if len(configs) != n_cases:
            raise ValueError("one FlowConfig per batched case required")
        env: dict[str, np.ndarray] = {"q": np.ascontiguousarray(q_batch)}
        edge_env: dict[str, list] = {}  # name -> per-case edge arrays
        for node in self.exec_graph.stages:
            with kernel_span(f"kgir.{node.name}", cases=float(n_cases)):
                self._run_node_batch(node, env, configs, n_cases, edge_env)
        return env["res"], env["grad"], env["phi"]

    def _run_node_batch(self, node, env, configs, n_cases, edge_env) -> None:
        def contig(a):
            return np.ascontiguousarray(a)

        if isinstance(node, PointStage):
            per_case = []
            for b in range(n_cases):
                view = {r: contig(env[r][..., b]) for r in node.reads}
                per_case.append(node.compute(configs[b], view))
            for name in per_case[0]:
                env[name] = np.stack(
                    [out[name] for out in per_case], axis=-1
                )
            return
        members = node.members if isinstance(node, FusedStage) else (node,)
        idx = node.index_set
        # one gather of the whole batch per read array
        gathered = {
            name: (env[name][idx.e0], env[name][idx.e1])
            for name in node.reads
        }
        for m in members:
            per_case = []
            for b in range(n_cases):
                g = {
                    r: (
                        contig(gathered[r][0][..., b]),
                        contig(gathered[r][1][..., b]),
                    )
                    for r in m.reads
                }
                for r in m.edge_reads:
                    g[r] = edge_env[r][b]
                per_case.append(m.compute(configs[b], g))
            for spec in m.scatters:
                stacked = np.stack(
                    [out[spec.src] for out in per_case], axis=-1
                )
                _apply_scatter(spec, stacked, env)
            for name in m.carries:
                edge_env[name] = [out[name] for out in per_case]


def residual_program(field: FlowField, fuse: bool = True) -> ResidualProgram:
    """Cached :class:`ResidualProgram` for ``field``."""
    return field.plan(
        f"kgir.program.fuse={bool(fuse)}",
        lambda: ResidualProgram(field, fuse=fuse),
    )


def fusion_report(field: FlowField) -> FusionReport:
    """What fusing the residual pipeline on ``field`` eliminates."""
    return residual_program(field, fuse=True).report


def batched_residual(field: FlowField, q_batch: np.ndarray, configs):
    """Full residual (interior + boundary) for a trailing-axis case batch.

    Returns ``(res, grad, phi)`` stacks of shape ``(nv, 4, B)``,
    ``(nv, 4, 3, B)``, ``(nv, 4, B)``.  Case ``b`` is bitwise equal to the
    serial ``compute_residual(field, q_batch[..., b], configs[b])``:
    interior comes from the shared fused sweep, then each case adds its
    boundary closures in the oracle's order.
    """
    from ..cfd.boundary import farfield_residual, wall_residual
    from ..cfd.state import freestream_state

    if not all(cfg.second_order for cfg in configs):
        raise ValueError(
            "batched_residual lowers the second-order pipeline; "
            "first-order cases must go through compute_residual"
        )
    prog = residual_program(field, fuse=True)
    res, grad, phi = prog.run_batch(q_batch, configs)
    full = np.empty_like(res)
    for b, cfg in enumerate(configs):
        qb = np.ascontiguousarray(q_batch[..., b])
        rb = np.ascontiguousarray(res[..., b])
        rb += wall_residual(field, qb, "wall")
        rb += wall_residual(field, qb, "sym")
        rb += farfield_residual(
            field, qb, freestream_state(cfg), cfg.beta,
            scheme=cfg.dissipation,
        )
        if cfg.mu > 0.0:
            from ..cfd.viscous import viscous_residual

            rb += viscous_residual(field, qb, cfg.mu, field.visc_coeffs)
        full[..., b] = rb
    return full, grad, phi
