"""Vertex/edge ordering algorithms (RCM, edge coloring, locality metrics)."""

from .coloring import color_groups, greedy_edge_coloring, verify_edge_coloring
from .metrics import bandwidth, edge_span, ordering_report, profile
from .rcm import cuthill_mckee, pseudo_peripheral_vertex, reverse_cuthill_mckee

__all__ = [
    "color_groups",
    "greedy_edge_coloring",
    "verify_edge_coloring",
    "bandwidth",
    "edge_span",
    "ordering_report",
    "profile",
    "cuthill_mckee",
    "pseudo_peripheral_vertex",
    "reverse_cuthill_mckee",
    "rcm_relabel",
]


def rcm_relabel(mesh):
    """Return a copy of ``mesh`` relabeled by RCM (paper Section V.A).

    Convenience wrapper: computes RCM on the vertex adjacency and applies the
    inverse permutation so that position ``p`` in the new numbering holds the
    RCM-chosen vertex.
    """
    import numpy as np

    rowptr, cols = mesh.adjacency
    order = reverse_cuthill_mckee(rowptr, cols)
    perm = np.empty_like(order)
    perm[order] = np.arange(order.shape[0])
    return mesh.relabeled(perm)
