"""Reverse Cuthill-McKee vertex reordering.

The paper reorders vertex numbering with RCM "to improve locality" before
threading the edge loops: RCM clusters each vertex's neighbors into a narrow
index band, so the gathers in the edge-based kernels hit nearby cache lines
and the Jacobian's BCSR profile narrows (which also shortens ILU/TRSV level
structures).  Implemented from scratch on the CSR adjacency.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["cuthill_mckee", "reverse_cuthill_mckee", "pseudo_peripheral_vertex"]


def pseudo_peripheral_vertex(
    rowptr: np.ndarray, cols: np.ndarray, start: int = 0
) -> int:
    """Find a pseudo-peripheral vertex by repeated BFS (George-Liu).

    Starting from ``start``, walk to a vertex of maximal BFS eccentricity;
    such vertices make good RCM roots because they stretch the level
    structure, minimizing its width (and hence the reordered bandwidth).
    """
    n = rowptr.shape[0] - 1
    if n == 0:
        raise ValueError("empty graph")
    current = start
    last_ecc = -1
    for _ in range(n):
        levels = _bfs_levels(rowptr, cols, current)
        reached = levels >= 0
        ecc = int(levels[reached].max())
        if ecc <= last_ecc:
            return current
        last_ecc = ecc
        far = np.where(levels == ecc)[0]
        # lowest-degree vertex in the last level
        degs = rowptr[far + 1] - rowptr[far]
        current = int(far[np.argmin(degs)])
    return current


def _bfs_levels(rowptr: np.ndarray, cols: np.ndarray, root: int) -> np.ndarray:
    n = rowptr.shape[0] - 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    lvl = 0
    while frontier.size:
        lvl += 1
        nbrs = _neighbors_of(rowptr, cols, frontier)
        nbrs = nbrs[levels[nbrs] < 0]
        nbrs = np.unique(nbrs)
        levels[nbrs] = lvl
        frontier = nbrs
    return levels


def _neighbors_of(rowptr: np.ndarray, cols: np.ndarray, verts: np.ndarray) -> np.ndarray:
    if verts.size == 0:
        return verts
    counts = rowptr[verts + 1] - rowptr[verts]
    out = np.empty(int(counts.sum()), dtype=np.int64)
    pos = 0
    for v, c in zip(verts, counts):
        out[pos : pos + c] = cols[rowptr[v] : rowptr[v] + c]
        pos += c
    return out


def cuthill_mckee(
    rowptr: np.ndarray, cols: np.ndarray, root: int | None = None
) -> np.ndarray:
    """Cuthill-McKee ordering: BFS visiting neighbors by increasing degree.

    Returns ``order`` such that ``order[p]`` is the original index of the
    vertex placed at position ``p``.  Disconnected components are handled by
    restarting from a fresh pseudo-peripheral vertex.
    """
    n = rowptr.shape[0] - 1
    degree = (rowptr[1:] - rowptr[:-1]).astype(np.int64)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        if root is None or pos > 0:
            unvisited = np.where(~visited)[0]
            sub_start = int(unvisited[np.argmin(degree[unvisited])])
            r = _component_peripheral(rowptr, cols, sub_start, visited)
        else:
            r = root
        queue: deque[int] = deque([r])
        visited[r] = True
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            nbrs = cols[rowptr[v] : rowptr[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                fresh = np.unique(fresh)
                fresh = fresh[np.argsort(degree[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(u) for u in fresh)
        root = None
    return order


def _component_peripheral(
    rowptr: np.ndarray, cols: np.ndarray, start: int, visited: np.ndarray
) -> int:
    """Pseudo-peripheral search restricted to the unvisited component."""
    current = start
    last_ecc = -1
    for _ in range(64):
        levels = _bfs_levels_masked(rowptr, cols, current, visited)
        reached = levels >= 0
        ecc = int(levels[reached].max())
        if ecc <= last_ecc:
            return current
        last_ecc = ecc
        far = np.where(levels == ecc)[0]
        degs = rowptr[far + 1] - rowptr[far]
        current = int(far[np.argmin(degs)])
    return current


def _bfs_levels_masked(
    rowptr: np.ndarray, cols: np.ndarray, root: int, blocked: np.ndarray
) -> np.ndarray:
    n = rowptr.shape[0] - 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    lvl = 0
    while frontier.size:
        lvl += 1
        nbrs = _neighbors_of(rowptr, cols, frontier)
        nbrs = nbrs[(levels[nbrs] < 0) & ~blocked[nbrs]]
        nbrs = np.unique(nbrs)
        levels[nbrs] = lvl
        frontier = nbrs
    return levels


def reverse_cuthill_mckee(
    rowptr: np.ndarray, cols: np.ndarray, root: int | None = None
) -> np.ndarray:
    """RCM ordering (Cuthill-McKee reversed); see :func:`cuthill_mckee`.

    The returned ``order`` maps position -> original vertex.  To relabel a
    mesh, pass the inverse permutation (``perm[order] = arange(n)``) to
    :meth:`UnstructuredMesh.relabeled`.
    """
    return cuthill_mckee(rowptr, cols, root)[::-1].copy()
