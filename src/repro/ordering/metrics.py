"""Locality metrics for vertex orderings.

Used to quantify what RCM buys: matrix bandwidth/profile (which bounds the
ILU/TRSV working set) and an edge-span statistic (which models the cache
footprint of the gathers in edge-based loops).
"""

from __future__ import annotations

import numpy as np

__all__ = ["bandwidth", "profile", "edge_span", "ordering_report"]


def bandwidth(edges: np.ndarray) -> int:
    """Maximum |i - j| over edges — the matrix half-bandwidth."""
    if edges.shape[0] == 0:
        return 0
    return int(np.abs(edges[:, 1] - edges[:, 0]).max())


def profile(rowptr: np.ndarray, cols: np.ndarray) -> int:
    """Sum over rows of (row index - smallest column index), the envelope size."""
    n = rowptr.shape[0] - 1
    total = 0
    for i in range(n):
        row = cols[rowptr[i] : rowptr[i + 1]]
        if row.size:
            lo = min(int(row.min()), i)
            total += i - lo
    return total


def edge_span(edges: np.ndarray) -> float:
    """Mean |i - j| over edges — the average gather distance in edge loops."""
    if edges.shape[0] == 0:
        return 0.0
    return float(np.abs(edges[:, 1] - edges[:, 0]).mean())


def ordering_report(edges: np.ndarray, n_vertices: int) -> dict[str, float]:
    """Summary statistics of an ordering's locality."""
    return {
        "bandwidth": float(bandwidth(edges)),
        "edge_span": edge_span(edges),
        "relative_bandwidth": float(bandwidth(edges)) / max(n_vertices, 1),
    }
