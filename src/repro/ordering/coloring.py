"""Greedy edge coloring for conflict-free edge-loop concurrency.

The paper notes edge-based loops have "color-wise concurrency" — edges that
share no vertex can be processed in parallel — but rejects coloring in favor
of domain decomposition because coloring destroys spatial locality among
concurrently processed edges.  We implement it anyway: it is one of the
evaluated parallelization strategies (worst locality baseline) and is also
used by tests to double-check the conflict structure that the atomics /
replication strategies must respect.
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_edge_coloring", "verify_edge_coloring", "color_groups"]


def greedy_edge_coloring(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Greedy edge coloring: no two edges of a color share a vertex.

    Processes edges in their given (natural) order and assigns the smallest
    color not already used at either endpoint.  By Vizing-type bounds the
    color count is at most ``2 * max_degree - 1``; in practice for meshes it
    is close to ``max_degree``.

    Returns ``(n_edges,)`` int64 color ids starting at 0.
    """
    n_edges = edges.shape[0]
    colors = np.full(n_edges, -1, dtype=np.int64)
    # bitmask of colors used at each vertex, in python ints (arbitrary width)
    used: list[int] = [0] * n_vertices
    for e in range(n_edges):
        a, b = int(edges[e, 0]), int(edges[e, 1])
        taken = used[a] | used[b]
        # lowest zero bit
        c = (~taken & (taken + 1)).bit_length() - 1
        colors[e] = c
        bit = 1 << c
        used[a] |= bit
        used[b] |= bit
    return colors


def verify_edge_coloring(
    edges: np.ndarray, colors: np.ndarray, n_vertices: int
) -> bool:
    """Check that no vertex sees the same color on two incident edges."""
    for c in np.unique(colors):
        sel = edges[colors == c]
        verts = sel.ravel()
        if np.unique(verts).shape[0] != verts.shape[0]:
            return False
    return True


def color_groups(colors: np.ndarray) -> list[np.ndarray]:
    """Edge index arrays per color, ordered by color id."""
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.searchsorted(
        sorted_colors, np.arange(sorted_colors.max() + 2)
    )
    return [
        order[boundaries[c] : boundaries[c + 1]]
        for c in range(int(sorted_colors.max()) + 1)
    ]
