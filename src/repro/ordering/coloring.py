"""Greedy edge coloring for conflict-free edge-loop concurrency.

The paper notes edge-based loops have "color-wise concurrency" — edges that
share no vertex can be processed in parallel — but rejects coloring in favor
of domain decomposition because coloring destroys spatial locality among
concurrently processed edges.  We implement it anyway: it is one of the
evaluated parallelization strategies (worst locality baseline) and is also
used by tests to double-check the conflict structure that the atomics /
replication strategies must respect.
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_edge_coloring", "verify_edge_coloring", "color_groups"]


def greedy_edge_coloring(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Greedy edge coloring: no two edges of a color share a vertex.

    Processes edges in their given (natural) order and assigns the smallest
    color not already used at either endpoint.  By Vizing-type bounds the
    color count is at most ``2 * max_degree - 1``; in practice for meshes it
    is close to ``max_degree``.

    The implementation is wave-based but *exactly* reproduces the sequential
    greedy scan (:func:`_greedy_edge_coloring_reference`): an edge is
    *ready* once it is the lowest-numbered uncolored edge at both its
    endpoints — at that point every earlier incident edge is colored, no
    later incident edge can have been, so its greedy color is already
    determined.  Ready edges are vertex-disjoint by construction, so each
    wave is colored with batched array ops.  Wave count is bounded by the
    color count (~max degree) rather than the edge count.

    Returns ``(n_edges,)`` int64 color ids starting at 0.
    """
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    n_edges = edges.shape[0]
    colors = np.full(n_edges, -1, dtype=np.int64)
    if n_edges == 0:
        return colors

    # CSR incidence vertex -> incident edge ids, ascending (stable sort of
    # the interleaved endpoint list preserves edge order per vertex)
    vv = edges.reshape(-1)
    eid = np.repeat(np.arange(n_edges, dtype=np.int64), 2)
    inc = eid[np.argsort(vv, kind="stable")]
    start = np.zeros(n_vertices + 1, dtype=np.int64)
    start[1:] = np.bincount(vv, minlength=n_vertices)
    np.cumsum(start, out=start)
    ptr, end = start[:-1].copy(), start[1:]

    used = np.zeros((n_vertices, 8), dtype=bool)  # vertex x color occupancy
    remaining = n_edges
    while remaining:
        # advance each vertex's cursor past already-colored incident edges
        live = np.where(ptr < end)[0]
        while live.size:
            live = live[colors[inc[ptr[live]]] >= 0]
            ptr[live] += 1
            live = live[ptr[live] < end[live]]

        vs = np.where(ptr < end)[0]
        cand = np.full(n_vertices, -1, dtype=np.int64)
        cand[vs] = inc[ptr[vs]]
        ce = np.unique(cand[vs])
        ready = ce[
            (cand[edges[ce, 0]] == ce) & (cand[edges[ce, 1]] == ce)
        ]
        a, b = edges[ready, 0], edges[ready, 1]
        mask = used[a] | used[b]
        # first free color per ready edge (the padded False column catches
        # fully-occupied rows, after which the table is widened)
        c = np.argmin(
            np.concatenate(
                [mask, np.zeros((mask.shape[0], 1), dtype=bool)], axis=1
            ),
            axis=1,
        )
        if c.max() >= used.shape[1]:
            used = np.concatenate(
                [used, np.zeros_like(used)], axis=1
            )
        colors[ready] = c
        used[a, c] = True
        used[b, c] = True
        remaining -= ready.shape[0]
    return colors


def _greedy_edge_coloring_reference(
    edges: np.ndarray, n_vertices: int
) -> np.ndarray:
    """The plain sequential greedy scan (regression oracle for the
    wave-based :func:`greedy_edge_coloring`)."""
    n_edges = edges.shape[0]
    colors = np.full(n_edges, -1, dtype=np.int64)
    # bitmask of colors used at each vertex, in python ints (arbitrary width)
    used: list[int] = [0] * n_vertices
    for e in range(n_edges):
        a, b = int(edges[e, 0]), int(edges[e, 1])
        taken = used[a] | used[b]
        # lowest zero bit
        c = (~taken & (taken + 1)).bit_length() - 1
        colors[e] = c
        bit = 1 << c
        used[a] |= bit
        used[b] |= bit
    return colors


def verify_edge_coloring(
    edges: np.ndarray, colors: np.ndarray, n_vertices: int
) -> bool:
    """Check that no vertex sees the same color on two incident edges."""
    for c in np.unique(colors):
        sel = edges[colors == c]
        verts = sel.ravel()
        if np.unique(verts).shape[0] != verts.shape[0]:
            return False
    return True


def color_groups(colors: np.ndarray) -> list[np.ndarray]:
    """Edge index arrays per color, ordered by color id."""
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.searchsorted(
        sorted_colors, np.arange(sorted_colors.max() + 2)
    )
    return [
        order[boundaries[c] : boundaries[c + 1]]
        for c in range(int(sorted_colors.max()) + 1)
    ]
