"""Symbolic ILU(k): level-of-fill pattern computation.

The paper compares ILU-0 (no fill) and ILU-1 (fill level 1) preconditioners:
fill-in speeds convergence (383 vs 777 linear iterations on Mesh-C) but
shrinks the available parallelism (60x vs 248x) because the factor pattern
densifies and the dependency chains lengthen — Table II.

The classic level-of-fill rule: original nonzeros have level 0; a fill entry
(i, j) created through pivot k gets ``lev(i,j) = lev(i,k) + lev(k,j) + 1``
and is kept iff its level is <= the fill level.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ilu_symbolic"]


def ilu_symbolic(
    rowptr: np.ndarray, cols: np.ndarray, fill_level: int
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the ILU(k) pattern of a sorted-CSR matrix.

    Returns a new sorted CSR ``(rowptr, cols)`` including fill entries up to
    ``fill_level``.  ``fill_level=0`` returns (a copy of) the input pattern.
    """
    n = rowptr.shape[0] - 1
    if fill_level < 0:
        raise ValueError("fill_level must be >= 0")
    if fill_level == 0:
        return rowptr.copy(), cols.copy()

    # Per-row dict: column -> level.  Rows are processed in order; when
    # processing row i we only read finalized rows k < i.
    row_cols: list[np.ndarray] = []
    row_levs: list[np.ndarray] = []
    out_cols: list[np.ndarray] = []
    new_rowptr = np.zeros(n + 1, dtype=np.int64)

    for i in range(n):
        lo, hi = rowptr[i], rowptr[i + 1]
        work: dict[int, int] = {int(j): 0 for j in cols[lo:hi]}
        # process pivots in ascending column order, including fill pivots
        # discovered along the way (IKJ order)
        pivots = sorted(j for j in work if j < i)
        pi = 0
        while pi < len(pivots):
            k = pivots[pi]
            pi += 1
            lev_ik = work[k]
            kcols = row_cols[k]
            klevs = row_levs[k]
            # entries of row k beyond column k
            start = np.searchsorted(kcols, k + 1)
            for j, lev_kj in zip(kcols[start:], klevs[start:]):
                lev = lev_ik + int(lev_kj) + 1
                if lev > fill_level:
                    continue
                j = int(j)
                if j in work:
                    if lev < work[j]:
                        work[j] = lev
                else:
                    work[j] = lev
                    if j < i:
                        # maintain sorted pivot processing order
                        ins = pi
                        while ins < len(pivots) and pivots[ins] < j:
                            ins += 1
                        pivots.insert(ins, j)
        cols_i = np.fromiter(sorted(work), dtype=np.int64, count=len(work))
        levs_i = np.fromiter(
            (work[int(j)] for j in cols_i), dtype=np.int64, count=len(work)
        )
        row_cols.append(cols_i)
        row_levs.append(levs_i)
        out_cols.append(cols_i)
        new_rowptr[i + 1] = new_rowptr[i] + cols_i.shape[0]

    return new_rowptr, (
        np.concatenate(out_cols) if out_cols else np.zeros(0, dtype=np.int64)
    )
