"""Level scheduling of sparse triangular dependency graphs.

The sparse recurrences (ILU factorization, forward/backward substitution)
have limited parallelism: row i depends on every row k < i with a nonzero
L(i, k).  Level scheduling [Anderson & Saad 1989; Naumov 2011] groups rows
into *wavefronts* — all rows of a level depend only on earlier levels and can
run concurrently, with a barrier between levels.

This module builds level structures and computes the paper's *available
parallelism* metric: the ratio of total floating-point work to the work along
the longest dependency path (Table II reports 248x for ILU-0 vs 60x for
ILU-1 on Mesh-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LevelSchedule",
    "build_levels",
    "row_flops",
    "available_parallelism",
]


@dataclass
class LevelSchedule:
    """Rows grouped into dependency wavefronts.

    ``level_of[i]`` is row i's level; ``levels[l]`` lists the rows of level
    ``l`` in ascending order.
    """

    level_of: np.ndarray
    levels: list[np.ndarray]

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def widths(self) -> np.ndarray:
        return np.array([lvl.shape[0] for lvl in self.levels], dtype=np.int64)

    @property
    def max_level_width(self) -> int:
        """Rows in the widest wavefront — the hard cap on useful workers."""
        return int(self.widths().max()) if self.levels else 0

    def width_histogram(self) -> list[tuple[int, int, int]]:
        """Level counts bucketed by power-of-two width.

        Returns ``(lo, hi, count)`` rows — ``count`` levels have between
        ``lo`` and ``hi`` rows (inclusive).  Sanity-checks a worker count:
        levels narrower than the worker pool serialize into sync overhead.
        """
        widths = self.widths()
        if widths.shape[0] == 0:
            return []
        buckets = np.floor(np.log2(np.maximum(widths, 1))).astype(np.int64)
        out = []
        for bkt in np.unique(buckets):
            lo, hi = 2**int(bkt), 2 ** (int(bkt) + 1) - 1
            out.append((lo, hi, int((buckets == bkt).sum())))
        return out


def build_levels(rowptr: np.ndarray, cols: np.ndarray) -> LevelSchedule:
    """Level schedule of the lower-triangular part of a sorted-CSR pattern.

    ``level_of[i] = 1 + max(level_of[k] for k in lower(i))`` (0 if no lower
    neighbors).  Because ``cols`` are sorted and dependencies point strictly
    downward in index, a single forward sweep suffices.
    """
    n = rowptr.shape[0] - 1
    level_of = np.zeros(n, dtype=np.int64)
    for i in range(n):
        lo, hi = rowptr[i], rowptr[i + 1]
        row = cols[lo:hi]
        nlower = np.searchsorted(row, i)
        if nlower:
            level_of[i] = level_of[row[:nlower]].max() + 1
    order = np.argsort(level_of, kind="stable")
    sorted_lv = level_of[order]
    n_levels = int(level_of.max()) + 1 if n else 0
    bounds = np.searchsorted(sorted_lv, np.arange(n_levels + 1))
    levels = [order[bounds[l] : bounds[l + 1]] for l in range(n_levels)]
    return LevelSchedule(level_of=level_of, levels=levels)


def row_flops(rowptr: np.ndarray, cols: np.ndarray, b: int = 4) -> np.ndarray:
    """Estimated flops to factor/solve each row with ``b x b`` blocks.

    Uses the ILU row-update cost: each strictly-lower block triggers one
    block-by-inverse multiply plus one rank-update per remaining pattern
    entry of the pivot row; approximated as ``2 b^3`` per lower block times
    the average row it touches, plus a diagonal inversion.  The metric only
    needs relative weights, so the approximation is shared by numerator and
    denominator.
    """
    n = rowptr.shape[0] - 1
    flops = np.empty(n)
    for i in range(n):
        lo, hi = rowptr[i], rowptr[i + 1]
        row = cols[lo:hi]
        nlower = np.searchsorted(row, i)
        rowlen = hi - lo
        flops[i] = 2.0 * b**3 * (nlower * max(rowlen - 1, 1) + 1)
    return flops


def available_parallelism(
    rowptr: np.ndarray, cols: np.ndarray, b: int = 4
) -> float:
    """Total work / longest-dependency-path work (the paper's metric).

    ``path[i] = flops[i] + max(path[k] for k in lower(i))``; parallelism =
    ``sum(flops) / max(path)``.  Falls to 1.0 for a dense lower triangle and
    approaches n for a diagonal matrix.
    """
    n = rowptr.shape[0] - 1
    if n == 0:
        return 1.0
    flops = row_flops(rowptr, cols, b)
    path = np.zeros(n)
    for i in range(n):
        lo, hi = rowptr[i], rowptr[i + 1]
        row = cols[lo:hi]
        nlower = np.searchsorted(row, i)
        longest = path[row[:nlower]].max() if nlower else 0.0
        path[i] = flops[i] + longest
    return float(flops.sum() / path.max())
