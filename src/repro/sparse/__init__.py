"""Block sparse linear algebra: BCSR, ILU(k), TRSV, level scheduling, P2P."""

from .bcsr import BCSRMatrix, bcsr_pattern_from_edges
from .dispatch import get_sparse_backend, use_sparse_backend
from .fill import ilu_symbolic
from .ilu import ILUFactor, ILUPlan, build_ilu_plan, ilu_factorize
from .levels import (
    LevelSchedule,
    available_parallelism,
    build_levels,
    row_flops,
)
from .p2p import (
    DependencyGraph,
    build_dependency_graph,
    cross_thread_syncs,
    sparsify_transitive,
)
from .trsv import TrsvWorkspace, trsv_solve, trsv_solve_sequential
from .wplan import SparseExecPlan, WorkerPlan, build_worker_plans

__all__ = [
    "BCSRMatrix",
    "bcsr_pattern_from_edges",
    "get_sparse_backend",
    "use_sparse_backend",
    "ilu_symbolic",
    "ILUFactor",
    "ILUPlan",
    "build_ilu_plan",
    "ilu_factorize",
    "LevelSchedule",
    "available_parallelism",
    "build_levels",
    "row_flops",
    "DependencyGraph",
    "build_dependency_graph",
    "cross_thread_syncs",
    "sparsify_transitive",
    "TrsvWorkspace",
    "trsv_solve",
    "trsv_solve_sequential",
    "SparseExecPlan",
    "WorkerPlan",
    "build_worker_plans",
]
