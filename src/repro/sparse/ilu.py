"""Block ILU(k) factorization with a precomputed, vectorized execution plan.

The paper's two "sparse, narrow-band recurrence" kernels are the incomplete
LU factorization of the block Jacobian and the triangular solves that apply
it as a preconditioner.  Both are re-executed constantly (ILU once per
pseudo-time step, TRSV every Krylov iteration), so, exactly like PETSc does
[Smith & Zhang 2011], we split the work:

* **symbolic phase** (:func:`build_ilu_plan`, once per sparsity pattern):
  computes the fill pattern, the dependency level schedule, and — the NumPy
  twist of this reproduction — *flat index arrays* for every batched block
  operation of the numeric phase, so that factorization and solves run as a
  short sequence of large ``einsum`` calls instead of per-row Python loops.
* **numeric phase** (:func:`ilu_factorize`): batched block arithmetic only.

Storage follows the paper: factors overwrite a copy of the matrix in BCSR;
diagonal blocks are inverted once inside the factorization and stored
(so the solve multiplies instead of solving 4x4 systems).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_metrics
from .bcsr import BCSRMatrix
from .dispatch import get_sparse_backend
from .fill import ilu_symbolic
from .levels import LevelSchedule, build_levels

__all__ = ["ILUPlan", "ILUFactor", "build_ilu_plan", "ilu_factorize"]


@dataclass
class _StepBatch:
    """One position-p step over all rows of one level.

    For every entry m: finalize block ``L = vals[lik_idx[m]] @ diag_inv[krow[m]]``
    then apply updates ``vals[t_dest] -= L[t_entry] @ vals[t_ukj]``.
    """

    lik_idx: np.ndarray
    krow: np.ndarray
    t_entry: np.ndarray
    t_dest: np.ndarray
    t_ukj: np.ndarray


@dataclass
class _LevelPairs:
    """Flattened (row, block, col) triples of one level's off-diagonal part,
    used by the vectorized triangular solves."""

    rows: np.ndarray  # level's rows
    pair_row: np.ndarray  # row index per off-diagonal block
    pair_blk: np.ndarray  # block value index
    pair_col: np.ndarray  # column (the already-solved unknown)
    pair_slot: np.ndarray  # position of pair_row within rows (local slot)
    _scatter: object = field(default=None, repr=False)

    def scatter(self):
        """Precompiled ``acc[pair_slot] += contrib`` plan (lazy, cached)."""
        if self._scatter is None:
            from ..perf.scatter import scatter_plan

            self._scatter = scatter_plan(
                self.pair_slot, self.rows.shape[0], name="trsv.level"
            )
        return self._scatter


@dataclass
class ILUPlan:
    """Symbolic factorization plan for a fixed sparsity pattern."""

    n: int
    b: int
    fill_level: int
    rowptr: np.ndarray
    cols: np.ndarray
    diag_idx: np.ndarray
    orig_map: np.ndarray  # factor-val index of each original nonzero
    schedule: LevelSchedule  # forward (lower) dependency levels
    schedule_back: LevelSchedule  # backward (upper) dependency levels
    steps: list[list[_StepBatch]]
    fwd_pairs: list[_LevelPairs]
    bwd_pairs: list[_LevelPairs]
    factor_nnzb: int = field(init=False)
    _wplans: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.factor_nnzb = int(self.cols.shape[0])

    def worker_plans(self, n_workers: int):
        """Per-worker execution programs (cached per worker count).

        Extends the symbolic phase for the process backend; see
        :func:`repro.sparse.wplan.build_worker_plans`.
        """
        key = int(n_workers)
        if key not in self._wplans:
            from .wplan import build_worker_plans

            self._wplans[key] = build_worker_plans(self, key)
        return self._wplans[key]

    def max_level_rows(self) -> int:
        """Widest wavefront across both sweeps (sizes solve scratch)."""
        widths = [lp.rows.shape[0] for lp in self.fwd_pairs]
        widths += [lp.rows.shape[0] for lp in self.bwd_pairs]
        return max(widths, default=1)

    # work accounting used by the machine model
    def factor_block_ops(self) -> int:
        """Total block-level multiply ops in the numeric factorization."""
        total = 0
        for level in self.steps:
            for sb in level:
                total += sb.lik_idx.shape[0] + sb.t_dest.shape[0]
        return total + self.n  # + diagonal inversions

    def solve_block_ops(self) -> int:
        """Block multiplies in one forward+backward solve."""
        off = sum(lp.pair_blk.shape[0] for lp in self.fwd_pairs)
        off += sum(lp.pair_blk.shape[0] for lp in self.bwd_pairs)
        return off + self.n  # + diagonal multiplies


@dataclass
class ILUFactor:
    """Numeric ILU factors: L (unit lower) and U share ``vals``; the
    diagonal blocks of U are additionally stored inverted."""

    plan: ILUPlan
    vals: np.ndarray  # (factor_nnzb, b, b)
    diag_inv: np.ndarray  # (n, b, b)


def build_ilu_plan(
    rowptr: np.ndarray,
    cols: np.ndarray,
    b: int = 4,
    fill_level: int = 0,
) -> ILUPlan:
    """Build the symbolic plan for ILU(``fill_level``) on a sorted pattern."""
    f_rowptr, f_cols = ilu_symbolic(rowptr, cols, fill_level)
    n = rowptr.shape[0] - 1

    # map original nonzeros into the (superset) factor pattern
    orig_map = np.empty(cols.shape[0], dtype=np.int64)
    diag_idx = np.empty(n, dtype=np.int64)
    row_lower: list[np.ndarray] = []  # strictly-lower cols per row
    row_upper_start: list[int] = []
    for i in range(n):
        flo, fhi = f_rowptr[i], f_rowptr[i + 1]
        frow = f_cols[flo:fhi]
        olo, ohi = rowptr[i], rowptr[i + 1]
        pos = np.searchsorted(frow, cols[olo:ohi])
        orig_map[olo:ohi] = flo + pos
        d = np.searchsorted(frow, i)
        if d == fhi - flo or frow[d] != i:
            raise ValueError(f"factor row {i} lost its diagonal")
        diag_idx[i] = flo + d
        row_lower.append(frow[:d])
        row_upper_start.append(int(d))

    schedule = build_levels(f_rowptr, f_cols)

    # Backward (upper) dependency levels: row i depends on rows j > i that
    # appear in its upper part.  Build by scanning rows in reverse.
    level_back = np.zeros(n, dtype=np.int64)
    for i in range(n - 1, -1, -1):
        flo, fhi = f_rowptr[i], f_rowptr[i + 1]
        upper = f_cols[flo + row_upper_start[i] + 1 : fhi]
        if upper.shape[0]:
            level_back[i] = level_back[upper].max() + 1
    order = np.argsort(level_back, kind="stable")
    nb_lv = int(level_back.max()) + 1 if n else 0
    bounds = np.searchsorted(level_back[order], np.arange(nb_lv + 1))
    schedule_back = LevelSchedule(
        level_of=level_back,
        levels=[order[bounds[l] : bounds[l + 1]] for l in range(nb_lv)],
    )

    # ---- numeric-factorization step batches --------------------------------
    steps: list[list[_StepBatch]] = []
    for rows in schedule.levels:
        max_low = max((row_lower[i].shape[0] for i in rows), default=0)
        level_steps: list[_StepBatch] = []
        for p in range(max_low):
            lik_idx, krow = [], []
            t_entry, t_dest, t_ukj = [], [], []
            for i in rows:
                low = row_lower[i]
                if p >= low.shape[0]:
                    continue
                k = int(low[p])
                flo, fhi = f_rowptr[i], f_rowptr[i + 1]
                frow = f_cols[flo:fhi]
                lik = flo + p  # lower entries are the row prefix
                entry = len(lik_idx)
                lik_idx.append(lik)
                krow.append(k)
                # update A_ij -= L_ik * U_kj for j in (row k beyond k) ∩ row i
                klo, khi = f_rowptr[k], f_rowptr[k + 1]
                kcols = f_cols[klo:khi]
                kstart = np.searchsorted(kcols, k + 1)
                kj = kcols[kstart:]
                pos_i = np.searchsorted(frow, kj)
                valid = (pos_i < frow.shape[0]) & (frow[np.minimum(pos_i, frow.shape[0] - 1)] == kj)
                # also only columns j > k matter; all kj satisfy that
                for q in np.where(valid)[0]:
                    t_entry.append(entry)
                    t_dest.append(flo + pos_i[q])
                    t_ukj.append(klo + kstart + q)
            level_steps.append(
                _StepBatch(
                    lik_idx=np.asarray(lik_idx, dtype=np.int64),
                    krow=np.asarray(krow, dtype=np.int64),
                    t_entry=np.asarray(t_entry, dtype=np.int64),
                    t_dest=np.asarray(t_dest, dtype=np.int64),
                    t_ukj=np.asarray(t_ukj, dtype=np.int64),
                )
            )
        steps.append(level_steps)

    # ---- triangular-solve pair lists ---------------------------------------
    fwd_pairs: list[_LevelPairs] = []
    for rows in schedule.levels:
        pr, pb, pc = [], [], []
        for i in rows:
            flo = f_rowptr[i]
            low = row_lower[i]
            for p in range(low.shape[0]):
                pr.append(i)
                pb.append(flo + p)
                pc.append(int(low[p]))
        lrows = np.asarray(rows, dtype=np.int64)
        lpr = np.asarray(pr, dtype=np.int64)
        fwd_pairs.append(
            _LevelPairs(
                rows=lrows,
                pair_row=lpr,
                pair_blk=np.asarray(pb, dtype=np.int64),
                pair_col=np.asarray(pc, dtype=np.int64),
                pair_slot=np.searchsorted(lrows, lpr),
            )
        )
    bwd_pairs: list[_LevelPairs] = []
    for rows in schedule_back.levels:
        pr, pb, pc = [], [], []
        for i in rows:
            flo, fhi = f_rowptr[i], f_rowptr[i + 1]
            start = row_upper_start[i] + 1
            for p in range(start, fhi - flo):
                pr.append(i)
                pb.append(flo + p)
                pc.append(int(f_cols[flo + p]))
        lrows = np.asarray(rows, dtype=np.int64)
        lpr = np.asarray(pr, dtype=np.int64)
        bwd_pairs.append(
            _LevelPairs(
                rows=lrows,
                pair_row=lpr,
                pair_blk=np.asarray(pb, dtype=np.int64),
                pair_col=np.asarray(pc, dtype=np.int64),
                pair_slot=np.searchsorted(lrows, lpr),
            )
        )

    return ILUPlan(
        n=n,
        b=b,
        fill_level=fill_level,
        rowptr=f_rowptr,
        cols=f_cols,
        diag_idx=diag_idx,
        orig_map=orig_map,
        schedule=schedule,
        schedule_back=schedule_back,
        steps=steps,
        fwd_pairs=fwd_pairs,
        bwd_pairs=bwd_pairs,
    )


def ilu_factorize(matrix: BCSRMatrix, plan: ILUPlan) -> ILUFactor:
    """Numeric block ILU factorization following ``plan``.

    Row updates run level by level; within a level, position-p batches are
    sequential but each batch is one set of batched 4x4 multiplies.  The
    factored values overwrite a scattered copy of the matrix; diagonal
    blocks are inverted and stored (multiplicative application in TRSV).
    """
    if matrix.vals.shape[1] != plan.b:
        raise ValueError("block size mismatch between matrix and plan")
    met = get_metrics()
    met.counter("ilu.factorizations").inc()
    met.gauge("ilu.factor_nnzb").set(plan.factor_nnzb)
    met.gauge("ilu.fwd_levels").set(len(plan.schedule.levels))
    backend = get_sparse_backend()
    if backend is not None and backend.handles_plan(plan):
        return backend.factorize(matrix, plan)
    vals = np.zeros((plan.factor_nnzb, plan.b, plan.b))
    vals[plan.orig_map] = matrix.vals
    diag_inv = np.zeros((plan.n, plan.b, plan.b))

    for rows, level_steps in zip(plan.schedule.levels, plan.steps):
        for sb in level_steps:
            if sb.lik_idx.shape[0] == 0:
                continue
            lik = np.einsum(
                "nij,njk->nik", vals[sb.lik_idx], diag_inv[sb.krow]
            )
            vals[sb.lik_idx] = lik
            if sb.t_dest.shape[0]:
                upd = np.einsum(
                    "nij,njk->nik", lik[sb.t_entry], vals[sb.t_ukj]
                )
                # destinations are unique within a batch (one row can only
                # be touched via its own (i,k) pair, and each pair hits
                # distinct columns), so in-place subtract is exact.
                vals[sb.t_dest] -= upd
        dblocks = vals[plan.diag_idx[rows]]
        diag_inv[rows] = np.linalg.inv(dblocks)

    return ILUFactor(plan=plan, vals=vals, diag_inv=diag_inv)
