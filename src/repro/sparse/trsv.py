"""Blocked sparse triangular solves (the paper's TRSV / MatSolve kernel).

Applies ILU factors: forward substitution on unit-lower L, then backward
substitution on U using the stored *inverted* diagonal blocks — per nonzero
block the kernel is a 4x4 matrix times 4-vector multiply with streaming
access and no reuse across blocks, which is why the paper measures it
reaching 94% of STREAM bandwidth.

Two implementations:

* :func:`trsv_solve` — level-scheduled and fully vectorized (one gather /
  einsum / scatter per wavefront), numerically identical to sequential.
* :func:`trsv_solve_sequential` — the plain row loop, kept as the reference
  the vectorized path is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import get_metrics
from .dispatch import get_sparse_backend
from .ilu import ILUFactor, ILUPlan

__all__ = ["TrsvWorkspace", "trsv_solve", "trsv_solve_sequential"]


@dataclass
class TrsvWorkspace:
    """Reusable scratch for :func:`trsv_solve`.

    The solve runs every Krylov iteration; without this it allocated two
    ``(n, b)`` vectors plus an ``(n, b)`` accumulator per wavefront.  A
    workspace pins those once and the per-level accumulator shrinks to the
    widest wavefront.  Never holds the *result* — callers own that (Krylov
    methods keep each preconditioned vector in the flexible basis).
    """

    y: np.ndarray  # (n, b) forward-substitution result
    x: np.ndarray  # (n, b) backward-substitution result
    acc: np.ndarray  # (max level width, b) per-level accumulator

    @classmethod
    def for_plan(cls, plan: ILUPlan) -> "TrsvWorkspace":
        return cls(
            y=np.zeros((plan.n, plan.b)),
            x=np.zeros((plan.n, plan.b)),
            acc=np.zeros((plan.max_level_rows(), plan.b)),
        )

    def fits(self, plan: ILUPlan) -> bool:
        return (
            self.y.shape == (plan.n, plan.b)
            and self.acc.shape[0] >= plan.max_level_rows()
        )


def trsv_solve(
    factor: ILUFactor,
    rhs: np.ndarray,
    out: np.ndarray | None = None,
    work: TrsvWorkspace | None = None,
) -> np.ndarray:
    """Solve ``L U x = rhs`` with level-scheduled batched block ops.

    ``rhs`` may be ``(n, b)`` or flat ``(n*b,)``; the result matches.
    ``out`` (same shape as ``rhs``) receives the solution when given —
    otherwise a fresh array is returned.  ``work`` supplies reusable
    scratch (:class:`TrsvWorkspace`) so repeated solves stop allocating.
    """
    plan = factor.plan
    flat = rhs.ndim == 1
    b = rhs.reshape(plan.n, plan.b)
    met = get_metrics()
    met.counter("trsv.solves").inc()
    met.counter("trsv.block_ops").inc(plan.solve_block_ops())

    backend = get_sparse_backend()
    if backend is not None and backend.handles_factor(factor):
        return backend.solve(factor, rhs, out=out)

    vals, diag_inv = factor.vals, factor.diag_inv
    if work is None or not work.fits(plan):
        work = TrsvWorkspace.for_plan(plan)
    y, x = work.y, work.x

    # forward: y_i = b_i - sum_k L_ik y_k (pair-slot accumulation runs
    # through each level's precompiled scatter plan, bitwise-identical to
    # the np.add.at reference)
    for lp in plan.fwd_pairs:
        if lp.pair_blk.shape[0]:
            contrib = np.einsum(
                "nij,nj->ni", vals[lp.pair_blk], y[lp.pair_col]
            )
            acc = lp.scatter().apply(contrib, out=work.acc[: lp.rows.shape[0]])
            y[lp.rows] = b[lp.rows] - acc
        else:
            y[lp.rows] = b[lp.rows]

    # backward: x_i = inv(U_ii) (y_i - sum_{j>i} U_ij x_j)
    for lp in plan.bwd_pairs:
        rows = lp.rows
        if lp.pair_blk.shape[0]:
            contrib = np.einsum(
                "nij,nj->ni", vals[lp.pair_blk], x[lp.pair_col]
            )
            acc = lp.scatter().apply(contrib, out=work.acc[: rows.shape[0]])
            x[rows] = np.einsum(
                "nij,nj->ni", diag_inv[rows], y[rows] - acc
            )
        else:
            x[rows] = np.einsum("nij,nj->ni", diag_inv[rows], y[rows])

    if out is not None:
        np.copyto(out.reshape(plan.n, plan.b), x)
        return out
    return x.reshape(-1).copy() if flat else x.copy()


def trsv_solve_sequential(factor: ILUFactor, rhs: np.ndarray) -> np.ndarray:
    """Plain sequential forward/backward substitution (reference)."""
    plan = factor.plan
    flat = rhs.ndim == 1
    bvec = rhs.reshape(plan.n, plan.b)
    vals, diag_inv = factor.vals, factor.diag_inv
    rowptr, cols, diag_idx = plan.rowptr, plan.cols, plan.diag_idx

    y = np.zeros_like(bvec)
    for i in range(plan.n):
        lo = rowptr[i]
        d = diag_idx[i]
        acc = bvec[i].copy()
        for p in range(lo, d):
            acc -= vals[p] @ y[cols[p]]
        y[i] = acc
    x = np.zeros_like(bvec)
    for i in range(plan.n - 1, -1, -1):
        hi = rowptr[i + 1]
        d = diag_idx[i]
        acc = y[i].copy()
        for p in range(d + 1, hi):
            acc -= vals[p] @ x[cols[p]]
        x[i] = diag_inv[i] @ acc
    return x.reshape(-1) if flat else x
