"""Blocked sparse triangular solves (the paper's TRSV / MatSolve kernel).

Applies ILU factors: forward substitution on unit-lower L, then backward
substitution on U using the stored *inverted* diagonal blocks — per nonzero
block the kernel is a 4x4 matrix times 4-vector multiply with streaming
access and no reuse across blocks, which is why the paper measures it
reaching 94% of STREAM bandwidth.

Two implementations:

* :func:`trsv_solve` — level-scheduled and fully vectorized (one gather /
  einsum / scatter per wavefront), numerically identical to sequential.
* :func:`trsv_solve_sequential` — the plain row loop, kept as the reference
  the vectorized path is tested against.
"""

from __future__ import annotations

import numpy as np

from ..obs.metrics import get_metrics
from .ilu import ILUFactor

__all__ = ["trsv_solve", "trsv_solve_sequential"]


def trsv_solve(factor: ILUFactor, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L U x = rhs`` with level-scheduled batched block ops.

    ``rhs`` may be ``(n, b)`` or flat ``(n*b,)``; the result matches.
    """
    plan = factor.plan
    flat = rhs.ndim == 1
    b = rhs.reshape(plan.n, plan.b)
    vals, diag_inv = factor.vals, factor.diag_inv
    met = get_metrics()
    met.counter("trsv.solves").inc()
    met.counter("trsv.block_ops").inc(plan.solve_block_ops())

    # forward: y_i = b_i - sum_k L_ik y_k
    y = np.zeros_like(b)
    for lp in plan.fwd_pairs:
        if lp.pair_blk.shape[0]:
            contrib = np.einsum(
                "nij,nj->ni", vals[lp.pair_blk], y[lp.pair_col]
            )
            acc = np.zeros_like(b)
            np.add.at(acc, lp.pair_row, contrib)
            y[lp.rows] = b[lp.rows] - acc[lp.rows]
        else:
            y[lp.rows] = b[lp.rows]

    # backward: x_i = inv(U_ii) (y_i - sum_{j>i} U_ij x_j)
    x = np.zeros_like(b)
    for lp in plan.bwd_pairs:
        if lp.pair_blk.shape[0]:
            contrib = np.einsum(
                "nij,nj->ni", vals[lp.pair_blk], x[lp.pair_col]
            )
            acc = np.zeros_like(b)
            np.add.at(acc, lp.pair_row, contrib)
            rows = lp.rows
            x[rows] = np.einsum(
                "nij,nj->ni", diag_inv[rows], y[rows] - acc[rows]
            )
        else:
            rows = lp.rows
            x[rows] = np.einsum("nij,nj->ni", diag_inv[rows], y[rows])

    return x.reshape(-1) if flat else x


def trsv_solve_sequential(factor: ILUFactor, rhs: np.ndarray) -> np.ndarray:
    """Plain sequential forward/backward substitution (reference)."""
    plan = factor.plan
    flat = rhs.ndim == 1
    bvec = rhs.reshape(plan.n, plan.b)
    vals, diag_inv = factor.vals, factor.diag_inv
    rowptr, cols, diag_idx = plan.rowptr, plan.cols, plan.diag_idx

    y = np.zeros_like(bvec)
    for i in range(plan.n):
        lo = rowptr[i]
        d = diag_idx[i]
        acc = bvec[i].copy()
        for p in range(lo, d):
            acc -= vals[p] @ y[cols[p]]
        y[i] = acc
    x = np.zeros_like(bvec)
    for i in range(plan.n - 1, -1, -1):
        hi = rowptr[i + 1]
        d = diag_idx[i]
        acc = y[i].copy()
        for p in range(d + 1, hi):
            acc -= vals[p] @ x[cols[p]]
        x[i] = diag_inv[i] @ acc
    return x.reshape(-1) if flat else x
