"""Per-worker execution plans for process-parallel ILU / TRSV.

This extends the symbolic phase of :func:`repro.sparse.ilu.build_ilu_plan`
for the process backend: given a plan and a worker count, every wavefront is
split into contiguous per-worker row chunks, and each worker gets a fully
precomputed program — remapped step batches for the numeric factorization,
pair slices (with local accumulation slots) for both triangular sweeps, and
cross-worker wait lists derived from the P2P-sparsified dependency graph —
so the numeric phase stays batched-einsum over shared views with zero
symbolic work at run time.

Two synchronization disciplines consume the same chunks:

* **level-barrier**: workers execute their chunk of wavefront ``l`` and meet
  at a barrier before wavefront ``l+1`` (the classic level-scheduled walk).
  Wait lists are ignored.
* **P2P**: each worker publishes a per-row generation counter after
  finishing a chunk and spin-waits only on ``chunk.wait`` — the union of its
  rows' *retained* dependencies (after the 2-hop transitive reduction of
  Park et al. [ISC'14]) owned by other workers.  Removed dependencies need
  no wait because their ordering is enforced transitively: the retained
  predecessor itself waited on them (directly or through its own chain)
  before publishing.

Determinism: chunks are contiguous slices of each wavefront's ascending row
list and pairs/steps are filtered order-preservingly, so every per-row
accumulation runs in exactly the serial order regardless of worker count or
strategy — results are bitwise-identical to the sequential kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from ..perf.scatter import scatter_plan
from .ilu import ILUPlan, _StepBatch
from .p2p import (
    DependencyGraph,
    build_dependency_graph,
    cross_thread_syncs,
    sparsify_transitive,
)

__all__ = [
    "TrsvChunk",
    "ILUChunk",
    "WorkerPlan",
    "SparseExecPlan",
    "build_worker_plans",
]


@dataclass
class TrsvChunk:
    """One worker's slice of one triangular-sweep wavefront.

    ``slot[m]`` is the local accumulation row (index into ``rows``) of pair
    ``m`` — the worker scatters into a ``(len(rows), b)`` scratch instead of
    an ``(n, b)`` array.  ``wait`` lists same-pass rows (P2P), ``wait_prev``
    previous-pass rows (backward sweep reading forward-sweep values).
    ``scatter`` is the chunk's precompiled slot-accumulation plan
    (:class:`~repro.perf.scatter.ScatterPlan`), built in the parent before
    the fleet forks so every worker inherits it.
    """

    rows: np.ndarray
    slot: np.ndarray
    pair_blk: np.ndarray
    pair_col: np.ndarray
    wait: np.ndarray
    wait_prev: np.ndarray
    scatter: object = None


@dataclass
class ILUChunk:
    """One worker's slice of one factorization wavefront."""

    rows: np.ndarray
    diag_idx: np.ndarray  # plan.diag_idx[rows], pre-gathered
    steps: list[_StepBatch]
    wait: np.ndarray


@dataclass
class WorkerPlan:
    """The complete per-worker program (one entry per wavefront)."""

    wid: int
    ilu: list[ILUChunk]
    fwd: list[TrsvChunk]
    bwd: list[TrsvChunk]
    max_rows: int  # widest chunk, sizes the local accumulation scratch

    def wait_rows(self) -> dict[str, int]:
        """Static P2P wait volume of this worker's program.

        Total rows across all chunk wait lists per phase — the number of
        generation-flag reads one pass must satisfy.  The telemetry plane
        publishes these next to the measured spin counters so a high live
        spin fraction can be attributed to plan shape vs. load imbalance.
        """
        return {
            "ilu": sum(int(c.wait.shape[0]) for c in self.ilu),
            "fwd": sum(int(c.wait.shape[0]) for c in self.fwd),
            "bwd": sum(
                int(c.wait.shape[0]) + int(c.wait_prev.shape[0])
                for c in self.bwd
            ),
        }


@dataclass
class SparseExecPlan:
    """Worker partition + programs for one (plan, n_workers) pair."""

    n: int
    b: int
    n_workers: int
    owner_fwd: np.ndarray  # row -> worker in the forward/ILU wavefronts
    owner_bwd: np.ndarray  # row -> worker in the backward wavefronts
    workers: list[WorkerPlan]
    cross_deps_fwd: int  # retained cross-worker deps, forward graph
    cross_deps_bwd: int
    n_levels_fwd: int = dc_field(init=False)
    n_levels_bwd: int = dc_field(init=False)

    def __post_init__(self) -> None:
        self.n_levels_fwd = len(self.workers[0].fwd) if self.workers else 0
        self.n_levels_bwd = len(self.workers[0].bwd) if self.workers else 0

    def cross_deps(self) -> int:
        """Total retained cross-worker synchronizations of one solve."""
        return self.cross_deps_fwd + self.cross_deps_bwd

    def sync_stats(self) -> dict[int, dict[str, int]]:
        """Per-worker static wait volume (see :meth:`WorkerPlan.wait_rows`)."""
        return {w.wid: w.wait_rows() for w in self.workers}


def _level_owner(levels: list[np.ndarray], n: int, w: int) -> np.ndarray:
    """Row -> worker by contiguous chunks of each (ascending) wavefront."""
    owner = np.zeros(n, dtype=np.int64)
    for rows in levels:
        bounds = np.linspace(0, rows.shape[0], w + 1).astype(np.int64)
        for s in range(w):
            owner[rows[bounds[s] : bounds[s + 1]]] = s
    return owner


def _bwd_dependency_graph(plan: ILUPlan) -> DependencyGraph:
    """Sparsified dependency graph of the backward (upper) sweep.

    Row ``i`` waits on rows ``j > i`` in its upper pattern.  Reversing the
    indices (``r = n-1-i``) turns this into a lower-triangular graph, so the
    forward machinery (CSR preds + 2-hop reduction) applies unchanged; the
    result stays in reversed index space (callers map back with ``n-1-p``).
    """
    n = plan.n
    rowptr, cols, diag_idx = plan.rowptr, plan.cols, plan.diag_idx
    ptr = np.zeros(n + 1, dtype=np.int64)
    pred_lists: list[np.ndarray] = []
    for r in range(n):
        i = n - 1 - r
        upper = cols[diag_idx[i] + 1 : rowptr[i + 1]]
        rev = (n - 1 - upper)[::-1]  # ascending reversed preds, all < r
        pred_lists.append(rev)
        ptr[r + 1] = ptr[r] + rev.shape[0]
    preds = (
        np.concatenate(pred_lists) if pred_lists else np.zeros(0, np.int64)
    )
    graph = DependencyGraph(
        pred_ptr=ptr, preds=preds, retained=np.ones(preds.shape[0], bool)
    )
    return sparsify_transitive(graph)


def _chunk_wait(
    graph: DependencyGraph,
    rows: np.ndarray,
    owner: np.ndarray,
    wid: int,
    reverse_n: int | None = None,
) -> np.ndarray:
    """Unique cross-worker retained-dependency rows of one chunk.

    With ``reverse_n`` set, ``rows``/``owner`` live in original index space
    while ``graph`` is in reversed space (the backward sweep).
    """
    waits: list[np.ndarray] = []
    for i in rows:
        g = (reverse_n - 1 - int(i)) if reverse_n is not None else int(i)
        preds = graph.retained_preds(g)
        if reverse_n is not None:
            preds = reverse_n - 1 - preds
        waits.append(preds[owner[preds] != wid])
    if not waits:
        return np.zeros(0, dtype=np.int64)
    return np.unique(np.concatenate(waits)).astype(np.int64)


def _split_steps(
    plan: ILUPlan, level_steps: list[_StepBatch], rows: np.ndarray
) -> list[_StepBatch]:
    """Restrict one wavefront's step batches to ``rows`` (order-preserving).

    Every ``lik`` entry belongs to the row containing that factor value
    (recovered from ``plan.rowptr``); its trailing updates follow it via the
    ``t_entry`` back-pointers, which are remapped to the filtered batch.
    """
    out: list[_StepBatch] = []
    for sb in level_steps:
        if sb.lik_idx.shape[0] == 0:
            out.append(sb)
            continue
        lik_rows = np.searchsorted(plan.rowptr, sb.lik_idx, side="right") - 1
        mask = np.isin(lik_rows, rows)
        new_pos = np.cumsum(mask) - 1
        t_mask = mask[sb.t_entry] if sb.t_entry.shape[0] else np.zeros(0, bool)
        out.append(
            _StepBatch(
                lik_idx=sb.lik_idx[mask],
                krow=sb.krow[mask],
                t_entry=new_pos[sb.t_entry[t_mask]].astype(np.int64),
                t_dest=sb.t_dest[t_mask],
                t_ukj=sb.t_ukj[t_mask],
            )
        )
    return out


def build_worker_plans(plan: ILUPlan, n_workers: int) -> SparseExecPlan:
    """Partition ``plan`` into per-worker execution programs.

    Symbolic-phase work (run once per pattern/worker-count); the returned
    programs drive the numeric phase with batched einsum over shared views.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    n, w = plan.n, int(n_workers)

    owner_fwd = _level_owner(plan.schedule.levels, n, w)
    owner_bwd = _level_owner(plan.schedule_back.levels, n, w)

    dep_fwd = sparsify_transitive(
        build_dependency_graph(plan.rowptr, plan.cols)
    )
    dep_bwd = _bwd_dependency_graph(plan)

    workers: list[WorkerPlan] = []
    for s in range(w):
        ilu_chunks: list[ILUChunk] = []
        fwd_chunks: list[TrsvChunk] = []
        max_rows = 1
        for rows, level_steps, lp in zip(
            plan.schedule.levels, plan.steps, plan.fwd_pairs
        ):
            bounds = np.linspace(0, rows.shape[0], w + 1).astype(np.int64)
            mine = rows[bounds[s] : bounds[s + 1]]
            max_rows = max(max_rows, mine.shape[0])
            wait = _chunk_wait(dep_fwd, mine, owner_fwd, s)
            ilu_chunks.append(
                ILUChunk(
                    rows=mine,
                    diag_idx=plan.diag_idx[mine],
                    steps=_split_steps(plan, level_steps, mine),
                    wait=wait,
                )
            )
            # pairs of a wavefront are grouped by ascending row, so a
            # contiguous row chunk owns a contiguous pair slice
            if mine.shape[0] and lp.pair_row.shape[0]:
                p0 = np.searchsorted(lp.pair_row, mine[0], side="left")
                p1 = np.searchsorted(lp.pair_row, mine[-1], side="right")
            else:
                p0 = p1 = 0
            slot = lp.pair_slot[p0:p1] - bounds[s]
            fwd_chunks.append(
                TrsvChunk(
                    rows=mine,
                    slot=slot,
                    pair_blk=lp.pair_blk[p0:p1],
                    pair_col=lp.pair_col[p0:p1],
                    wait=wait,
                    wait_prev=np.zeros(0, dtype=np.int64),
                    scatter=scatter_plan(
                        slot, mine.shape[0], name="trsv.chunk"
                    ),
                )
            )
        bwd_chunks: list[TrsvChunk] = []
        for rows, lp in zip(plan.schedule_back.levels, plan.bwd_pairs):
            bounds = np.linspace(0, rows.shape[0], w + 1).astype(np.int64)
            mine = rows[bounds[s] : bounds[s + 1]]
            max_rows = max(max_rows, mine.shape[0])
            if mine.shape[0] and lp.pair_row.shape[0]:
                p0 = np.searchsorted(lp.pair_row, mine[0], side="left")
                p1 = np.searchsorted(lp.pair_row, mine[-1], side="right")
            else:
                p0 = p1 = 0
            slot = lp.pair_slot[p0:p1] - bounds[s]
            bwd_chunks.append(
                TrsvChunk(
                    rows=mine,
                    slot=slot,
                    pair_blk=lp.pair_blk[p0:p1],
                    pair_col=lp.pair_col[p0:p1],
                    wait=_chunk_wait(dep_bwd, mine, owner_bwd, s, reverse_n=n),
                    # the backward sweep reads the forward result y at its
                    # own rows; rows another worker produced need a
                    # previous-pass wait
                    wait_prev=mine[owner_fwd[mine] != s],
                    scatter=scatter_plan(
                        slot, mine.shape[0], name="trsv.chunk"
                    ),
                )
            )
        workers.append(
            WorkerPlan(
                wid=s,
                ilu=ilu_chunks,
                fwd=fwd_chunks,
                bwd=bwd_chunks,
                max_rows=max_rows,
            )
        )

    return SparseExecPlan(
        n=n,
        b=plan.b,
        n_workers=w,
        owner_fwd=owner_fwd,
        owner_bwd=owner_bwd,
        workers=workers,
        cross_deps_fwd=cross_thread_syncs(dep_fwd, owner_fwd),
        cross_deps_bwd=cross_thread_syncs(dep_bwd, owner_bwd[::-1]),
    )
