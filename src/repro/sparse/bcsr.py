"""Block compressed sparse row (BCSR) matrices with small dense blocks.

The paper stores the Jacobian in BCSR with 4x4 blocks (one block per vertex
pair, 4 unknowns per vertex): "it allows for coalesced loads (2 cache lines
per block), reduces the index computation, and also alleviates the memory
bandwidth pressure".  This module implements that storage from scratch:
construction from a mesh adjacency, batched block algebra, SpMV, and
conversion to SciPy BSR for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BCSRMatrix", "bcsr_pattern_from_edges"]


def bcsr_pattern_from_edges(
    edges: np.ndarray, n_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Block sparsity pattern of a mesh Jacobian: adjacency plus diagonal.

    Returns CSR ``(rowptr, cols)`` with the columns of every row sorted
    ascending (so the diagonal is locatable by binary search and the
    lower/upper split used by ILU/TRSV is a simple partition point).
    """
    src = np.concatenate(
        [edges[:, 0], edges[:, 1], np.arange(n_vertices, dtype=np.int64)]
    )
    dst = np.concatenate(
        [edges[:, 1], edges[:, 0], np.arange(n_vertices, dtype=np.int64)]
    )
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    rowptr = np.zeros(n_vertices + 1, dtype=np.int64)
    rowptr[1:] = np.bincount(src, minlength=n_vertices)
    np.cumsum(rowptr, out=rowptr)
    return rowptr, dst


@dataclass
class BCSRMatrix:
    """Sparse matrix of ``n x n`` blocks, each ``b x b`` dense.

    Attributes
    ----------
    rowptr, cols:
        CSR structure over *blocks*; ``cols`` sorted ascending within rows.
    vals:
        ``(nnzb, b, b)`` block values, aligned with ``cols``.
    """

    rowptr: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    _diag_idx: np.ndarray | None = field(default=None, repr=False)
    _mv_plan: object | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_pattern(
        cls, rowptr: np.ndarray, cols: np.ndarray, b: int
    ) -> "BCSRMatrix":
        """Zero matrix with the given block pattern."""
        vals = np.zeros((cols.shape[0], b, b))
        return cls(rowptr=np.asarray(rowptr), cols=np.asarray(cols), vals=vals)

    @classmethod
    def from_mesh_edges(
        cls, edges: np.ndarray, n_vertices: int, b: int = 4
    ) -> "BCSRMatrix":
        rowptr, cols = bcsr_pattern_from_edges(edges, n_vertices)
        return cls.from_pattern(rowptr, cols, b)

    # ------------------------------------------------------------------
    @property
    def n_brows(self) -> int:
        return self.rowptr.shape[0] - 1

    @property
    def b(self) -> int:
        return self.vals.shape[1]

    @property
    def nnzb(self) -> int:
        return self.cols.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        n = self.n_brows * self.b
        return (n, n)

    @property
    def diag_idx(self) -> np.ndarray:
        """Index into ``vals`` of each row's diagonal block."""
        if self._diag_idx is None:
            idx = np.empty(self.n_brows, dtype=np.int64)
            for i in range(self.n_brows):
                lo, hi = self.rowptr[i], self.rowptr[i + 1]
                j = np.searchsorted(self.cols[lo:hi], i)
                if j == hi - lo or self.cols[lo + j] != i:
                    raise ValueError(f"row {i} has no diagonal block")
                idx[i] = lo + j
            self._diag_idx = idx
        return self._diag_idx

    def block_index(self, i: int, j: int) -> int:
        """Index into ``vals`` of block (i, j); raises KeyError if absent."""
        lo, hi = self.rowptr[i], self.rowptr[i + 1]
        p = np.searchsorted(self.cols[lo:hi], j)
        if p == hi - lo or self.cols[lo + p] != j:
            raise KeyError(f"block ({i}, {j}) not in pattern")
        return int(lo + p)

    # ------------------------------------------------------------------
    def set_zero(self) -> None:
        self.vals[:] = 0.0

    def add_to_diagonal(self, blocks: np.ndarray) -> None:
        """Add ``blocks`` — ``(n_brows, b, b)`` or scalar diag shift — to the
        diagonal blocks."""
        if np.ndim(blocks) == 0:
            self.vals[self.diag_idx] += float(blocks) * np.eye(self.b)
        else:
            self.vals[self.diag_idx] += blocks

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Block SpMV: ``y = A @ x`` with ``x`` of shape ``(n_brows, b)`` or
        flat ``(n_brows * b,)``; output matches the input's shape.

        The per-entry row scatter runs through a precompiled
        :class:`~repro.perf.scatter.ScatterPlan` cached on the matrix
        (pattern-static), bitwise-identical to the ``np.add.at``
        reference.
        """
        flat = x.ndim == 1
        xb = x.reshape(self.n_brows, self.b)
        if self._mv_plan is None:
            from ..perf.scatter import scatter_plan

            src = np.repeat(
                np.arange(self.n_brows, dtype=np.int64),
                np.diff(self.rowptr),
            )
            self._mv_plan = scatter_plan(
                src, self.n_brows, name="bcsr.matvec"
            )
        contrib = np.einsum("nij,nj->ni", self.vals, xb[self.cols])
        y = self._mv_plan.apply(contrib)
        return y.reshape(-1) if flat else y

    def to_scipy(self):
        """Convert to ``scipy.sparse.bsr_matrix`` (for cross-checks and fast
        repeated matvecs)."""
        import scipy.sparse as sp

        return sp.bsr_matrix(
            (self.vals.copy(), self.cols.copy(), self.rowptr.copy()),
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Dense ``(n, n)`` array; for tiny test systems only."""
        n, b = self.n_brows, self.b
        out = np.zeros((n * b, n * b))
        for i in range(n):
            for p in range(self.rowptr[i], self.rowptr[i + 1]):
                j = self.cols[p]
                out[i * b : (i + 1) * b, j * b : (j + 1) * b] = self.vals[p]
        return out

    def copy(self) -> "BCSRMatrix":
        return BCSRMatrix(
            rowptr=self.rowptr.copy(),
            cols=self.cols.copy(),
            vals=self.vals.copy(),
        )

    # ------------------------------------------------------------------
    def lower_counts(self) -> np.ndarray:
        """Number of strictly-lower blocks per row (cols sorted => prefix)."""
        counts = np.empty(self.n_brows, dtype=np.int64)
        for i in range(self.n_brows):
            lo, hi = self.rowptr[i], self.rowptr[i + 1]
            counts[i] = np.searchsorted(self.cols[lo:hi], i)
        return counts

    def __repr__(self) -> str:  # noqa: D105
        return (
            f"BCSRMatrix(n_brows={self.n_brows}, b={self.b}, nnzb={self.nnzb})"
        )
