"""Active sparse-kernel backend registry.

The numeric sparse kernels (:func:`repro.sparse.ilu.ilu_factorize`,
:func:`repro.sparse.trsv.trsv_solve`) stay written as plain sequential
NumPy; installing a backend here reroutes them to an alternate executor —
today :class:`repro.smp.sparse_parallel.SparseProcessBackend` — without the
kernels or their callers changing signature.  Mirrors the edge-kernel
registry in :mod:`repro.smp.backend`: a stack, truncation-on-exit
reentrancy, and a cheap ``None`` default when nothing is installed.

The registry lives in :mod:`repro.sparse` (not :mod:`repro.smp`) so the
kernels can import it without pulling in the whole shared-memory package;
:mod:`repro.smp` re-exports both names.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["get_sparse_backend", "use_sparse_backend"]

_stack: list = []


def get_sparse_backend():
    """The innermost installed sparse backend, or ``None``."""
    return _stack[-1] if _stack else None


@contextmanager
def use_sparse_backend(backend):
    """Route ILU/TRSV execution inside the block through ``backend``.

    A backend must provide ``handles_plan(plan) -> bool``,
    ``handles_factor(factor) -> bool``, ``factorize(matrix, plan)`` and
    ``solve(factor, rhs, out=)``; the kernels fall back to their sequential
    paths whenever ``handles_*`` declines (unknown plan, backend closed or
    broken, fleet capacity reached).
    """
    depth = len(_stack)
    _stack.append(backend)
    try:
        yield backend
    finally:
        # truncate instead of pop: restores the outer backend even if
        # inner code leaked pushes (same contract as use_edge_backend)
        del _stack[depth:]
