"""Synchronization sparsification for sparse triangular recurrences.

Level scheduling with barriers pays one global barrier per wavefront and
suffers load imbalance as level widths shrink.  Park et al. [ISC'14] instead
synchronize point-to-point along the *dependency edges* of the task graph,
after removing redundant dependencies with an approximate transitive edge
reduction ("P2P-Sparse" in the paper, the winning strategy of Fig. 7).

We implement the dependency analysis: extraction of the task dependency
graph from a triangular pattern, the 2-hop approximate transitive reduction,
and counts/statistics consumed by the shared-memory cost model (each
retained dependency crossing a thread boundary costs one point-to-point
synchronization instead of a barrier).

:func:`wait_generation` is the runtime half: the generation-flag spin-wait
the process backend's workers execute for every retained cross-worker
dependency.  It accumulates spin-iteration and wait-time counters
(:class:`SpinStats`) so the live telemetry plane can report per-worker
spin fractions — the P2P-sync overhead the paper discusses — while a
solve is running, and it heartbeats periodically so a *hung* wait is
distinguishable from a busy one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DependencyGraph",
    "build_dependency_graph",
    "sparsify_transitive",
    "cross_thread_syncs",
    "SpinStats",
    "wait_generation",
]


@dataclass
class DependencyGraph:
    """Task dependency graph of a lower-triangular solve.

    ``pred_ptr/preds`` is CSR over rows: the strictly-lower columns each row
    must wait for.  ``retained`` marks dependencies kept after
    sparsification (all True before sparsification).
    """

    pred_ptr: np.ndarray
    preds: np.ndarray
    retained: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.pred_ptr.shape[0] - 1

    @property
    def n_deps(self) -> int:
        return int(self.preds.shape[0])

    @property
    def n_retained(self) -> int:
        return int(self.retained.sum())

    def retained_preds(self, i: int) -> np.ndarray:
        lo, hi = self.pred_ptr[i], self.pred_ptr[i + 1]
        return self.preds[lo:hi][self.retained[lo:hi]]


def build_dependency_graph(rowptr: np.ndarray, cols: np.ndarray) -> DependencyGraph:
    """Extract the forward-solve dependency graph from a sorted CSR pattern."""
    n = rowptr.shape[0] - 1
    pred_ptr = np.zeros(n + 1, dtype=np.int64)
    preds_list = []
    for i in range(n):
        lo, hi = rowptr[i], rowptr[i + 1]
        row = cols[lo:hi]
        nlower = np.searchsorted(row, i)
        preds_list.append(row[:nlower])
        pred_ptr[i + 1] = pred_ptr[i] + nlower
    preds = (
        np.concatenate(preds_list) if preds_list else np.zeros(0, dtype=np.int64)
    )
    return DependencyGraph(
        pred_ptr=pred_ptr,
        preds=preds,
        retained=np.ones(preds.shape[0], dtype=bool),
    )


def sparsify_transitive(graph: DependencyGraph) -> DependencyGraph:
    """Approximate transitive edge reduction (2-hop rule).

    Dependency k -> i is redundant if some other predecessor m of i (m > k)
    itself depends on k: the chain k -> m -> i already enforces the order.
    This is the cheap approximation of full transitive reduction used in
    practice — it only inspects length-2 paths through direct predecessors,
    and it can only *remove* edges whose ordering remains guaranteed, so
    correctness of the solve is preserved (property-tested).
    """
    n = graph.n_rows
    pred_sets: list[set[int]] = [
        set(int(p) for p in graph.preds[graph.pred_ptr[i] : graph.pred_ptr[i + 1]])
        for i in range(n)
    ]
    retained = graph.retained.copy()
    for i in range(n):
        lo, hi = graph.pred_ptr[i], graph.pred_ptr[i + 1]
        row_preds = graph.preds[lo:hi]
        if row_preds.shape[0] < 2:
            continue
        pset = pred_sets[i]
        for idx in range(row_preds.shape[0]):
            k = int(row_preds[idx])
            # covered if any other (larger) predecessor m of i has k among
            # its own predecessors
            for m in pset:
                if m > k and k in pred_sets[m]:
                    retained[lo + idx] = False
                    break
    return DependencyGraph(
        pred_ptr=graph.pred_ptr, preds=graph.preds, retained=retained
    )


@dataclass
class SpinStats:
    """Accumulated spin-wait cost of one worker's generation-flag waits."""

    waits: int = 0  # wait calls issued (incl. immediately-satisfied ones)
    iters: int = 0  # spin-loop iterations actually executed
    seconds: float = 0.0  # wall time spent spinning

    def merge(self, other: "SpinStats") -> None:
        self.waits += other.waits
        self.iters += other.iters
        self.seconds += other.seconds


def wait_generation(
    flags: np.ndarray,
    idx: np.ndarray,
    gen: int,
    deadline: float,
    stats: SpinStats | None = None,
    heartbeat=None,
    hb_every: int = 256,
) -> None:
    """Spin until every row in ``idx`` has published generation ``gen``.

    ``sleep(0)`` yields the GIL-free core so sibling workers make progress
    even when oversubscribed (the CI runners have 2 cores).  ``stats``
    accumulates iteration/wall-time counters; ``heartbeat`` (a no-arg
    callable) fires every ``hb_every`` iterations so a stalled wait keeps a
    live pulse for the health monitor right up to the timeout.
    """
    if idx.shape[0] == 0:
        return
    if stats is not None:
        stats.waits += 1
    if (flags[idx] >= gen).all():
        return
    t0 = time.monotonic()
    iters = 0
    while True:
        iters += 1
        if heartbeat is not None and iters % hb_every == 0:
            heartbeat()
        if time.monotonic() > deadline:
            if stats is not None:
                stats.iters += iters
                stats.seconds += time.monotonic() - t0
            missing = idx[flags[idx] < gen]
            raise RuntimeError(
                f"p2p wait timed out; rows {missing[:8].tolist()} "
                f"never reached generation {gen}"
            )
        time.sleep(0)
        if (flags[idx] >= gen).all():
            break
    if stats is not None:
        stats.iters += iters
        stats.seconds += time.monotonic() - t0


def cross_thread_syncs(graph: DependencyGraph, owner: np.ndarray) -> int:
    """Count retained dependencies whose endpoints live on different threads.

    ``owner[i]`` is the thread executing task i; only cross-thread retained
    dependencies require a point-to-point synchronization at run time.
    """
    src = graph.preds[graph.retained]
    dst_rows = np.repeat(
        np.arange(graph.n_rows, dtype=np.int64),
        np.diff(graph.pred_ptr),
    )[graph.retained]
    return int((owner[src] != owner[dst_rows]).sum())
