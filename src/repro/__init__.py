"""PyFUN3D — reproduction of "Exploring Shared-memory Optimizations for an
Unstructured Mesh CFD Application on Modern Parallel Systems" (IPDPS 2015).

A from-scratch Python implementation of the PETSc-FUN3D incompressible Euler
solver (vertex-centered unstructured meshes, pseudo-transient
Newton-Krylov-Schwarz with block-ILU preconditioned GMRES) together with the
paper's entire optimization study: edge-loop threading strategies, data
layout / SIMD / prefetch models, level-scheduled and P2P-sparsified sparse
triangular kernels, a calibrated shared-memory machine model, and a
multi-node strong-scaling model of TACC Stampede.

Quick start::

    from repro import Fun3dApp, OptimizationConfig, mesh_c_prime

    app = Fun3dApp(mesh_c_prime(scale=0.12))
    result = app.run(OptimizationConfig.baseline())
    print(result.solve.converged, result.fractions())
    print(app.speedup(result.counts, OptimizationConfig.optimized()))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .apps import Fun3dApp, Fun3dRunResult, OptimizationConfig
from .cfd import FlowConfig, FlowField
from .dist import (
    MESH_C_PAPER,
    MESH_D_PAPER,
    DomainDecomposition,
    MultiNodeModel,
    NodeConfig,
)
from .mesh import (
    UnstructuredMesh,
    box_mesh,
    load_mesh,
    mesh_c_prime,
    mesh_d_prime,
    save_mesh,
    validate_mesh,
    wing_mesh,
)
from .obs import (
    MetricsRegistry,
    Span,
    Tracer,
    use_metrics,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from .smp import XEON_E5_2690_V2, MachineModel
from .solver import SolveResult, SolverOptions, solve_steady

__version__ = "1.0.0"

__all__ = [
    "Fun3dApp",
    "Fun3dRunResult",
    "OptimizationConfig",
    "FlowConfig",
    "FlowField",
    "MESH_C_PAPER",
    "MESH_D_PAPER",
    "DomainDecomposition",
    "MultiNodeModel",
    "NodeConfig",
    "UnstructuredMesh",
    "box_mesh",
    "load_mesh",
    "mesh_c_prime",
    "mesh_d_prime",
    "save_mesh",
    "validate_mesh",
    "wing_mesh",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "use_metrics",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
    "XEON_E5_2690_V2",
    "MachineModel",
    "SolveResult",
    "SolverOptions",
    "solve_steady",
    "__version__",
]
