"""Unstructured tetrahedral mesh substrate (FUN3D's geometric layer)."""

from .core import (
    TAG_FARFIELD,
    TAG_SYMMETRY,
    TAG_WALL,
    UnstructuredMesh,
    build_vertex_adjacency,
    extract_edges,
    tet_volumes,
)
from .generator import (
    box_mesh,
    dataset_mesh,
    delaunay_cloud_mesh,
    mesh_c_prime,
    mesh_d_prime,
    wing_mesh,
)
from .io import load_mesh, save_mesh
from .quality import MeshReport, closure_residual, validate_mesh
from .refine import refine_mesh

__all__ = [
    "TAG_FARFIELD",
    "TAG_SYMMETRY",
    "TAG_WALL",
    "UnstructuredMesh",
    "build_vertex_adjacency",
    "extract_edges",
    "tet_volumes",
    "box_mesh",
    "dataset_mesh",
    "delaunay_cloud_mesh",
    "mesh_c_prime",
    "mesh_d_prime",
    "wing_mesh",
    "load_mesh",
    "save_mesh",
    "MeshReport",
    "refine_mesh",
    "closure_residual",
    "validate_mesh",
]
