"""Mesh persistence.

A minimal container format (NumPy ``.npz``) so generated datasets — the
Mesh-C'/Mesh-D' analogues — can be produced once and reused across benchmark
runs, mirroring how the paper's meshes were fixed inputs.
"""

from __future__ import annotations

import os

import numpy as np

from .core import UnstructuredMesh

__all__ = ["save_mesh", "load_mesh"]

_FORMAT_VERSION = 1


def save_mesh(mesh: UnstructuredMesh, path: str | os.PathLike) -> None:
    """Write a mesh to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        name=np.array(mesh.name),
        coords=mesh.coords,
        tets=mesh.tets,
        bfaces=mesh.bfaces,
        btags=mesh.btags,
    )


def load_mesh(path: str | os.PathLike) -> UnstructuredMesh:
    """Read a mesh written by :func:`save_mesh`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported mesh format version {version}")
        return UnstructuredMesh(
            coords=data["coords"],
            tets=data["tets"],
            bfaces=data["bfaces"],
            btags=data["btags"],
            name=str(data["name"]),
        )
