"""Mesh validation: the invariants the CFD discretization relies on.

The flux and gradient kernels silently produce garbage on a broken mesh, so
every generated dataset is run through :func:`validate_mesh` (and the same
checks back the hypothesis property tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.scatter import ScatterTerm, build_scatter_plan
from .core import UnstructuredMesh, tet_volumes

__all__ = ["MeshReport", "validate_mesh", "closure_residual"]


@dataclass
class MeshReport:
    """Outcome of :func:`validate_mesh`."""

    n_vertices: int
    n_tets: int
    n_edges: int
    n_bfaces: int
    min_tet_volume: float
    volume_mismatch: float
    max_closure_residual: float
    euler_characteristic: int
    ok: bool

    def __str__(self) -> str:  # noqa: D105
        status = "OK" if self.ok else "FAILED"
        return (
            f"MeshReport[{status}] nv={self.n_vertices} nt={self.n_tets} "
            f"ne={self.n_edges} nb={self.n_bfaces} minvol={self.min_tet_volume:.3e} "
            f"dV={self.volume_mismatch:.3e} closure={self.max_closure_residual:.3e} "
            f"chi={self.euler_characteristic}"
        )


def closure_residual(mesh: UnstructuredMesh) -> np.ndarray:
    """Per-vertex control-volume closure defect, ``(n_vertices, 3)``.

    For every vertex the dual-face normals of its edges (outgoing positive)
    plus its shares of boundary-face normals must sum to zero — a closed
    control volume.  The return value should be ~machine epsilon relative to
    the face areas.
    """
    m = mesh.metrics
    ne = mesh.n_edges
    terms = [
        ScatterTerm(mesh.edges[:, 0], 0, 1.0),
        ScatterTerm(mesh.edges[:, 1], 0, -1.0),
    ]
    values = [m.edge_normals]
    if mesh.n_bfaces:
        for c in range(3):
            terms.append(ScatterTerm(mesh.bfaces[:, c], ne + c * mesh.n_bfaces))
            values.append(m.bvertex_normals)
    plan = build_scatter_plan(terms, mesh.n_vertices, name="mesh.closure")
    return plan.apply(np.concatenate(values))


def validate_mesh(mesh: UnstructuredMesh, tol: float = 1e-9) -> MeshReport:
    """Run all structural invariants; ``report.ok`` aggregates them.

    Checks: positive tet volumes, control volumes summing to the primal
    volume, per-vertex closure, and that every vertex is referenced.
    """
    vols = tet_volumes(mesh.coords, mesh.tets)
    min_vol = float(vols.min())

    total = float(vols.sum())
    dual_total = float(mesh.volumes.sum())
    vol_mismatch = abs(total - dual_total) / max(abs(total), 1e-300)

    res = closure_residual(mesh)
    area_scale = float(np.abs(mesh.edge_normals).max()) or 1.0
    closure = float(np.abs(res).max()) / area_scale

    used = np.zeros(mesh.n_vertices, dtype=bool)
    used[mesh.tets.ravel()] = True
    all_used = bool(used.all())

    chi = mesh.n_vertices - mesh.n_edges + _count_faces(mesh) - mesh.n_tets

    ok = (
        min_vol > 0.0
        and vol_mismatch < tol
        and closure < max(tol, 1e-12) * 1e3
        and all_used
    )
    return MeshReport(
        n_vertices=mesh.n_vertices,
        n_tets=mesh.n_tets,
        n_edges=mesh.n_edges,
        n_bfaces=mesh.n_bfaces,
        min_tet_volume=min_vol,
        volume_mismatch=vol_mismatch,
        max_closure_residual=closure,
        euler_characteristic=chi,
        ok=ok,
    )


def _count_faces(mesh: UnstructuredMesh) -> int:
    """Number of unique triangular faces in the tet mesh."""
    from .generator import _TET_FACES

    faces = mesh.tets[:, _TET_FACES].reshape(-1, 3)
    key = np.sort(faces, axis=1)
    nv = np.int64(mesh.n_vertices)
    keys = (key[:, 0] * nv + key[:, 1]) * nv + key[:, 2]
    return int(np.unique(keys).shape[0])
