"""Synthetic unstructured tetrahedral mesh generators.

The paper evaluates on NASA's ONERA M6 wing meshes (Mesh-C: 3.58e5 vertices /
2.40e6 edges, Mesh-D: 2.76e6 / 1.89e7) which are not publicly distributable.
This module builds structural analogues from scratch:

* :func:`wing_mesh` — an O-grid wrapped around a swept, tapered wing with an
  elliptic section, extruded spanwise between two symmetry planes, split into
  tetrahedra with the Kuhn subdivision and jittered so vertex degrees and
  orderings behave like output of an advancing-front generator.  Boundary
  triangles carry WALL / FARFIELD / SYMMETRY tags used by the CFD boundary
  conditions.
* :func:`box_mesh` — a jittered tetrahedralized box, the workhorse for unit
  and property tests.
* :func:`delaunay_cloud_mesh` — a Delaunay tetrahedralization of a random
  point cloud, used to property-test structure code on genuinely irregular
  connectivity.
* :func:`mesh_c_prime` / :func:`mesh_d_prime` — laptop-scale stand-ins for
  the paper's Mesh-C and Mesh-D, with the same roles (single-node dataset /
  multi-node dataset).

What must carry over from the real meshes for the reproduction to be
meaningful is purely structural: tetrahedral vertex-centered connectivity,
average degree ~13-14 (edge/vertex ratio ~6.7), surface clustering, and a
"natural" vertex order with partial locality.  All generators deliver that.
"""

from __future__ import annotations

import numpy as np

from .core import TAG_FARFIELD, TAG_SYMMETRY, TAG_WALL, UnstructuredMesh, tet_volumes

__all__ = [
    "box_mesh",
    "wing_mesh",
    "delaunay_cloud_mesh",
    "mesh_c_prime",
    "mesh_d_prime",
    "structured_to_tets",
]

# Kuhn subdivision of a hexahedron into six tetrahedra.  Corners are numbered
# by the binary encoding c = ix + 2*iy + 4*iz of their local offsets; every
# tet runs from corner 0 to corner 7 along one of the 3! axis orders, which
# guarantees matching face diagonals between neighboring hexes (including
# periodic wraparound, because the rule depends only on local corner labels).
_KUHN_TETS = np.array(
    [
        (0, 1, 3, 7),  # x, y, z
        (0, 1, 5, 7),  # x, z, y
        (0, 2, 3, 7),  # y, x, z
        (0, 2, 6, 7),  # y, z, x
        (0, 4, 5, 7),  # z, x, y
        (0, 4, 6, 7),  # z, y, x
    ],
    dtype=np.int64,
)

# Outward-oriented faces of a positively oriented tet (v0, v1, v2, v3).
_TET_FACES = np.array(
    [(1, 2, 3), (0, 3, 2), (0, 1, 3), (0, 2, 1)],
    dtype=np.int64,
)


def _fix_orientation(coords: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Swap two vertices of every negatively oriented tet."""
    vols = tet_volumes(coords, tets)
    flip = vols < 0.0
    if np.any(flip):
        tets = tets.copy()
        tets[flip, 0], tets[flip, 1] = tets[flip, 1].copy(), tets[flip, 0].copy()
    return tets


def boundary_faces_from_tets(tets: np.ndarray, n_vertices: int) -> np.ndarray:
    """Outward-oriented boundary triangles: tet faces that occur exactly once.

    Because each face row of ``_TET_FACES`` is outward for a positively
    oriented tet, the surviving faces are already correctly oriented.
    """
    faces = tets[:, _TET_FACES].reshape(-1, 3)
    key = np.sort(faces, axis=1)
    nv = np.int64(n_vertices)
    keys = (key[:, 0] * nv + key[:, 1]) * nv + key[:, 2]
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    # boundaries of runs of equal keys
    is_start = np.empty(sk.shape[0], dtype=bool)
    is_start[0] = True
    np.not_equal(sk[1:], sk[:-1], out=is_start[1:])
    run_id = np.cumsum(is_start) - 1
    counts = np.bincount(run_id)
    once = counts[run_id] == 1
    return faces[order[once]]


def structured_to_tets(
    shape: tuple[int, int, int],
    periodic_i: bool = False,
) -> np.ndarray:
    """Tetrahedra of a structured ``(ni, nj, nk)`` vertex grid (Kuhn split).

    Vertex (i, j, k) has index ``(i % ni) * nj * nk + j * nk + k``.  With
    ``periodic_i`` the i direction wraps around (O-grid topology).
    """
    ni, nj, nk = shape
    ci = ni if periodic_i else ni - 1
    ii, jj, kk = np.meshgrid(
        np.arange(ci), np.arange(nj - 1), np.arange(nk - 1), indexing="ij"
    )
    ii, jj, kk = ii.ravel(), jj.ravel(), kk.ravel()

    def vid(di: int, dj: int, dk: int) -> np.ndarray:
        return ((ii + di) % ni) * (nj * nk) + (jj + dj) * nk + (kk + dk)

    corners = np.stack(
        [vid(b & 1, (b >> 1) & 1, (b >> 2) & 1) for b in range(8)], axis=1
    )
    return corners[:, _KUHN_TETS].reshape(-1, 4)


def _jitter(
    coords: np.ndarray,
    interior: np.ndarray,
    spacing: np.ndarray,
    amplitude: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Displace interior vertices by ``amplitude * local spacing``."""
    out = coords.copy()
    noise = rng.uniform(-1.0, 1.0, size=(int(interior.sum()), 3))
    out[interior] += amplitude * spacing[interior, None] * noise
    return out


def box_mesh(
    shape: tuple[int, int, int] = (6, 6, 6),
    bounds: tuple[float, float] = (0.0, 1.0),
    jitter: float = 0.0,
    seed: int = 0,
    name: str = "box",
) -> UnstructuredMesh:
    """Tetrahedralized box on a jittered structured grid.

    ``shape`` counts vertices per axis.  All boundary faces are tagged
    FARFIELD; the CFD tests re-tag as needed.
    """
    ni, nj, nk = shape
    if min(shape) < 2:
        raise ValueError("box_mesh needs at least 2 vertices per axis")
    lo, hi = bounds
    xs = np.linspace(lo, hi, ni)
    ys = np.linspace(lo, hi, nj)
    zs = np.linspace(lo, hi, nk)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    coords = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)

    if jitter > 0.0:
        ii, jj, kk = np.meshgrid(
            np.arange(ni), np.arange(nj), np.arange(nk), indexing="ij"
        )
        interior = (
            (ii.ravel() > 0)
            & (ii.ravel() < ni - 1)
            & (jj.ravel() > 0)
            & (jj.ravel() < nj - 1)
            & (kk.ravel() > 0)
            & (kk.ravel() < nk - 1)
        )
        h = (hi - lo) / max(ni - 1, nj - 1, nk - 1)
        rng = np.random.default_rng(seed)
        coords = _jitter(coords, interior, np.full(coords.shape[0], h), jitter, rng)

    tets = structured_to_tets(shape, periodic_i=False)
    tets = _fix_orientation(coords, tets)
    bfaces = boundary_faces_from_tets(tets, coords.shape[0])
    btags = np.full(bfaces.shape[0], TAG_FARFIELD, dtype=np.int64)
    return UnstructuredMesh(coords, tets, bfaces, btags, name=name)


def wing_mesh(
    n_around: int = 48,
    n_radial: int = 16,
    n_span: int = 12,
    chord: float = 1.0,
    span: float = 1.2,
    thickness: float = 0.10,
    taper: float = 0.56,
    sweep_deg: float = 30.0,
    farfield_radius: float = 6.0,
    radial_stretch: float = 1.25,
    jitter: float = 0.12,
    seed: int = 7,
    ordering: str = "frontal",
    name: str = "wing",
) -> UnstructuredMesh:
    """O-grid tetrahedral mesh around a swept, tapered elliptic-section wing.

    The planform mimics the ONERA M6 (taper ratio 0.56, ~30 degrees leading
    edge sweep); the section is an ellipse of relative ``thickness`` so the
    O-grid closes smoothly at the trailing edge (an inviscid-friendly
    simplification of the M6's sharp airfoil, documented in DESIGN.md).

    Topology per span station: ``n_around`` points wrap the section
    (periodic), ``n_radial`` rings stretch geometrically to a circular far
    field.  Boundary tags: inner ring WALL, outer ring FARFIELD, root and tip
    planes SYMMETRY (full-span wing between symmetry planes).

    ``ordering`` sets the "natural" vertex numbering the mesh ships with:

    * ``"frontal"`` (default) mimics an advancing-front generator: vertices
      are numbered ring by ring outward from the wing surface, shuffled
      within each ring.  This reproduces the partial-locality natural
      orderings of real FUN3D meshes — the baseline against which RCM
      reordering and METIS thread-partitioning pay off in the paper.
    * ``"structured"`` keeps the raw (i, j, k) sweep (high locality).
    * ``"random"`` scrambles completely (worst case, for ablations).
    """
    if n_around < 8 or n_radial < 3 or n_span < 2:
        raise ValueError("wing_mesh resolution too small")
    rng = np.random.default_rng(seed)

    theta = np.linspace(0.0, 2.0 * np.pi, n_around, endpoint=False)
    # Geometric radial distribution in [0, 1]: clustered at the wall.
    t = np.empty(n_radial)
    step = 1.0
    acc = 0.0
    levels = [0.0]
    for _ in range(n_radial - 1):
        acc += step
        levels.append(acc)
        step *= radial_stretch
    t[:] = np.asarray(levels) / acc

    zs = np.linspace(0.0, span, n_span)
    sweep = np.tan(np.deg2rad(sweep_deg))

    # Build coordinates on the (i, j, k) = (around, radial, span) grid.
    grid = np.empty((n_around, n_radial, n_span, 3))
    for k, z in enumerate(zs):
        frac = z / span
        c = chord * (1.0 + (taper - 1.0) * frac)  # local chord
        x_le = sweep * z  # leading-edge offset
        # Section curve: ellipse centered mid-chord.
        xs_section = x_le + 0.5 * c * (1.0 + np.cos(theta))
        ys_section = 0.5 * thickness * c * np.sin(theta)
        # Far-field ring: circle around the local mid-chord.
        xc = x_le + 0.5 * c
        xf = xc + farfield_radius * chord * np.cos(theta)
        yf = farfield_radius * chord * np.sin(theta)
        for j in range(n_radial):
            w = t[j]
            grid[:, j, k, 0] = (1.0 - w) * xs_section + w * xf
            grid[:, j, k, 1] = (1.0 - w) * ys_section + w * yf
            grid[:, j, k, 2] = z

    # Per-vertex spacing: minimum distance to the six structured neighbors
    # (periodic in i).  This keeps the jitter fold-free even near the
    # trailing edge where the O-grid cells are tiny.
    def _neighbor_dist(shifted: np.ndarray) -> np.ndarray:
        return np.linalg.norm(shifted - grid, axis=-1)

    dists = [
        _neighbor_dist(np.roll(grid, 1, axis=0)),
        _neighbor_dist(np.roll(grid, -1, axis=0)),
    ]
    dj = np.full(grid.shape[:3], np.inf)
    dj[:, 1:, :] = np.minimum(
        dj[:, 1:, :], np.linalg.norm(grid[:, 1:] - grid[:, :-1], axis=-1)
    )
    dj[:, :-1, :] = np.minimum(
        dj[:, :-1, :], np.linalg.norm(grid[:, 1:] - grid[:, :-1], axis=-1)
    )
    dk = np.full(grid.shape[:3], np.inf)
    dk[:, :, 1:] = np.minimum(
        dk[:, :, 1:], np.linalg.norm(grid[:, :, 1:] - grid[:, :, :-1], axis=-1)
    )
    dk[:, :, :-1] = np.minimum(
        dk[:, :, :-1], np.linalg.norm(grid[:, :, 1:] - grid[:, :, :-1], axis=-1)
    )
    spacing = np.minimum(np.minimum(dists[0], dists[1]), np.minimum(dj, dk))
    coords = grid.reshape(-1, 3)
    spacing = spacing.reshape(-1)

    shape = (n_around, n_radial, n_span)
    tets = structured_to_tets(shape, periodic_i=True)
    tets = _fix_orientation(coords, tets)

    if jitter > 0.0:
        jj = (np.arange(coords.shape[0]) // n_span) % n_radial
        kk = np.arange(coords.shape[0]) % n_span
        interior = (jj > 0) & (jj < n_radial - 1) & (kk > 0) & (kk < n_span - 1)
        # Retry with halved amplitude until no tet folds; the structured
        # mesh itself is fold-free, so this terminates.
        base = coords
        amp = jitter
        for _ in range(8):
            coords = _jitter(base, interior, spacing, amp, rng)
            if tet_volumes(coords, tets).min() > 0.0:
                break
            amp *= 0.5
        else:
            coords = base

    vols = tet_volumes(coords, tets)
    if np.any(vols <= 0.0):
        raise RuntimeError(
            "wing_mesh produced degenerate tets; reduce jitter or resolution"
        )

    bfaces = boundary_faces_from_tets(tets, coords.shape[0])
    # Tag by the structured indices of the face vertices.
    j_of = (bfaces // n_span) % n_radial
    k_of = bfaces % n_span
    btags = np.full(bfaces.shape[0], -1, dtype=np.int64)
    btags[np.all(j_of == 0, axis=1)] = TAG_WALL
    btags[np.all(j_of == n_radial - 1, axis=1)] = TAG_FARFIELD
    on_sym = np.all(k_of == 0, axis=1) | np.all(k_of == n_span - 1, axis=1)
    btags[(btags == -1) & on_sym] = TAG_SYMMETRY
    if np.any(btags == -1):
        raise RuntimeError("wing_mesh boundary tagging incomplete")
    mesh = UnstructuredMesh(coords, tets, bfaces, btags, name=name)

    if ordering == "structured":
        return mesh
    nv = coords.shape[0]
    if ordering == "random":
        perm = rng.permutation(nv).astype(np.int64)
    elif ordering == "frontal":
        jj = (np.arange(nv) // n_span) % n_radial
        order = np.argsort(jj, kind="stable")
        # shuffle within each ring (equal-j block)
        ring = n_around * n_span
        for j in range(n_radial):
            block = order[j * ring : (j + 1) * ring]
            rng.shuffle(block)
        perm = np.empty(nv, dtype=np.int64)
        perm[order] = np.arange(nv)
    else:
        raise ValueError(f"unknown ordering {ordering!r}")
    return mesh.relabeled(perm)


def delaunay_cloud_mesh(
    n_points: int = 200,
    seed: int = 0,
    name: str = "cloud",
) -> UnstructuredMesh:
    """Delaunay tetrahedralization of a uniform random cloud in a unit ball.

    Used by property tests that need genuinely irregular connectivity.  The
    tetrahedra can be poorly shaped (slivers), so this mesh exercises
    structural code paths, not flow solves.
    """
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n_points, 3))
    pts /= np.linalg.norm(pts, axis=1, keepdims=True)
    pts *= rng.uniform(0.2, 1.0, size=(n_points, 1)) ** (1.0 / 3.0)
    tri = Delaunay(pts)
    tets = tri.simplices.astype(np.int64)
    # Drop near-degenerate slivers which would make dual volumes collapse.
    vols = tet_volumes(pts, tets)
    tets = np.where(vols[:, None] < 0, tets[:, [1, 0, 2, 3]], tets)
    vols = np.abs(vols)
    keep = vols > vols.max() * 1e-9
    tets = tets[keep]
    # Keep only vertices referenced by surviving tets.
    used = np.unique(tets)
    remap = -np.ones(n_points, dtype=np.int64)
    remap[used] = np.arange(used.shape[0])
    tets = remap[tets]
    pts = pts[used]
    bfaces = boundary_faces_from_tets(tets, pts.shape[0])
    btags = np.full(bfaces.shape[0], TAG_FARFIELD, dtype=np.int64)
    return UnstructuredMesh(pts, tets, bfaces, btags, name=name)


def mesh_c_prime(scale: float = 1.0, seed: int = 7) -> UnstructuredMesh:
    """Laptop-scale analogue of the paper's Mesh-C (single-node dataset).

    At ``scale=1`` this yields ~25k vertices / ~170k edges — the same
    edge-per-vertex ratio as Mesh-C (6.7) at roughly 1/14 the size, sized so
    a NumPy flux evaluation takes milliseconds rather than minutes.
    """
    f = float(scale) ** (1.0 / 3.0)
    return wing_mesh(
        n_around=max(12, int(round(64 * f))),
        n_radial=max(6, int(round(24 * f))),
        n_span=max(4, int(round(16 * f))),
        seed=seed,
        name=f"mesh-c-prime(x{scale:g})",
    )


def mesh_d_prime(scale: float = 1.0, seed: int = 11) -> UnstructuredMesh:
    """Laptop-scale analogue of the paper's Mesh-D (multi-node dataset).

    ~3.5x the vertices of :func:`mesh_c_prime`, preserving the Mesh-D /
    Mesh-C size ratio's role: the mesh that still has enough work per rank
    at high rank counts.
    """
    f = float(scale) ** (1.0 / 3.0)
    return wing_mesh(
        n_around=max(16, int(round(96 * f))),
        n_radial=max(8, int(round(32 * f))),
        n_span=max(6, int(round(28 * f))),
        seed=seed,
        name=f"mesh-d-prime(x{scale:g})",
    )


def dataset_mesh(
    dataset: str,
    scale: float = 0.12,
    seed: int = 7,
    ordering: str = "natural",
) -> UnstructuredMesh:
    """Named-dataset factory shared by the CLI and the serve daemon.

    ``dataset`` is ``mesh-c`` / ``mesh-d`` / ``wing``; ``ordering`` is
    ``natural`` or ``rcm``.  Both entry points must build bit-identical
    meshes for the same spec — the serve smoke test compares daemon-solved
    forces against a one-shot ``repro solve`` at 1e-10.
    """
    if dataset == "mesh-c":
        mesh = mesh_c_prime(scale=scale, seed=seed)
    elif dataset == "mesh-d":
        mesh = mesh_d_prime(scale=scale, seed=seed)
    elif dataset == "wing":
        f = max(0.2, float(scale) ** (1.0 / 3.0))
        mesh = wing_mesh(
            n_around=max(12, int(48 * f)),
            n_radial=max(5, int(16 * f)),
            n_span=max(4, int(12 * f)),
            seed=seed,
        )
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    if ordering == "rcm":
        from ..ordering import rcm_relabel

        mesh = rcm_relabel(mesh)
    elif ordering != "natural":
        raise ValueError(f"unknown ordering {ordering!r}")
    return mesh
