"""Uniform (red) refinement of tetrahedral meshes.

Each tetrahedron splits into eight children through its six edge midpoints
(Bey's red refinement): four corner tets plus four tets from the interior
octahedron, split along the ``m_ab - m_cd`` diagonal.  Boundary triangles
split into four, inheriting their tags.  Refinement underpins the grid-
convergence studies (the paper's conclusions point at "adaptively refined
domains" as the target workload class) and gives the benches a cheap way
to scale any dataset by 8x in elements.
"""

from __future__ import annotations

import numpy as np

from .core import UnstructuredMesh
from .generator import _fix_orientation

__all__ = ["refine_mesh"]


def _midpoint_ids(
    pairs_lo: np.ndarray, pairs_hi: np.ndarray, edges: np.ndarray, nv: int
) -> np.ndarray:
    """Index of the midpoint vertex of each (lo, hi) pair: ``nv + edge_id``."""
    keys = pairs_lo * np.int64(nv) + pairs_hi
    edge_keys = edges[:, 0] * np.int64(nv) + edges[:, 1]
    idx = np.searchsorted(edge_keys, keys)
    return nv + idx


def refine_mesh(mesh: UnstructuredMesh) -> UnstructuredMesh:
    """Return the uniformly refined mesh (8x tets, 4x boundary faces)."""
    nv = mesh.n_vertices
    edges = mesh.edges
    mid_coords = 0.5 * (
        mesh.coords[edges[:, 0]] + mesh.coords[edges[:, 1]]
    )
    coords = np.vstack([mesh.coords, mid_coords])

    t = mesh.tets
    a, b, c, d = t[:, 0], t[:, 1], t[:, 2], t[:, 3]

    def mid(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        return _midpoint_ids(lo, hi, edges, nv)

    mab, mac, mad = mid(a, b), mid(a, c), mid(a, d)
    mbc, mbd, mcd = mid(b, c), mid(b, d), mid(c, d)

    children = [
        # corner tets
        (a, mab, mac, mad),
        (mab, b, mbc, mbd),
        (mac, mbc, c, mcd),
        (mad, mbd, mcd, d),
        # octahedron split along the (mab, mcd) diagonal; the equator cycle
        # is mac - mad - mbd - mbc
        (mab, mcd, mac, mad),
        (mab, mcd, mad, mbd),
        (mab, mcd, mbd, mbc),
        (mab, mcd, mbc, mac),
    ]
    tets = np.concatenate(
        [np.stack(ch, axis=1) for ch in children], axis=0
    )
    tets = _fix_orientation(coords, tets)

    # boundary triangles split into four, preserving orientation and tags
    f = mesh.bfaces
    fa, fb, fc = f[:, 0], f[:, 1], f[:, 2]
    fmab, fmbc, fmac = mid(fa, fb), mid(fb, fc), mid(fa, fc)
    bfaces = np.concatenate(
        [
            np.stack((fa, fmab, fmac), axis=1),
            np.stack((fmab, fb, fmbc), axis=1),
            np.stack((fmac, fmbc, fc), axis=1),
            np.stack((fmab, fmbc, fmac), axis=1),
        ],
        axis=0,
    )
    btags = np.tile(mesh.btags, 4)

    return UnstructuredMesh(
        coords=coords,
        tets=tets,
        bfaces=bfaces,
        btags=btags,
        name=f"{mesh.name}+refined",
    )
