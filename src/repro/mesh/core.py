"""Unstructured tetrahedral mesh with vertex-centered median-dual metrics.

This is the geometric substrate of the reproduction: FUN3D is a tetrahedral,
vertex-centered code whose spatial discretization lives on the *median dual*
of the tetrahedral mesh.  Control volumes are centered on vertices; their
boundaries are formed by dual faces that bisect the edges between vertices.

The class :class:`UnstructuredMesh` stores the primal mesh (vertex
coordinates, tetrahedra, tagged boundary triangles) and computes, fully
vectorized:

* the unique edge list (``edges[:, 0] < edges[:, 1]``, as in the paper where
  "the vertices at one end of each edge are sorted in an increasing order"),
* directed dual-face area vectors per edge (pointing from ``edges[:, 0]``
  toward ``edges[:, 1]``),
* median-dual control-volume volumes per vertex,
* boundary-face area vectors and their per-vertex thirds.

The metrics satisfy the closed-control-volume invariant

    sum_j S_ij + sum_b S_b,i = 0        for every vertex i,

which is property-tested in ``tests/test_mesh_core.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perf.scatter import scatter_add

__all__ = [
    "UnstructuredMesh",
    "TET_EDGES_EVEN",
    "tet_volumes",
    "extract_edges",
    "build_vertex_adjacency",
]

# The six edges of a tetrahedron (i, j) together with their complement
# (k, l) such that (i, j, k, l) is an EVEN permutation of (0, 1, 2, 3).
# With this parity convention the median-dual face-piece area vector
#   S = 0.5 * (G_tet - M_ij) x (G_ijl - G_ijk)
# points from vertex i toward vertex j for a positively oriented tet
# (see the derivation in DESIGN.md and the tests).
TET_EDGES_EVEN = np.array(
    [
        (0, 1, 2, 3),
        (0, 2, 3, 1),
        (0, 3, 1, 2),
        (1, 2, 0, 3),
        (1, 3, 2, 0),
        (2, 3, 0, 1),
    ],
    dtype=np.int64,
)

# Boundary tags used by the generators and the CFD boundary conditions.
TAG_WALL = 1
TAG_FARFIELD = 2
TAG_SYMMETRY = 3


def tet_volumes(coords: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Signed volumes of tetrahedra, positive for right-handed ordering."""
    a = coords[tets[:, 0]]
    d1 = coords[tets[:, 1]] - a
    d2 = coords[tets[:, 2]] - a
    d3 = coords[tets[:, 3]] - a
    return np.einsum("ij,ij->i", np.cross(d1, d2), d3) / 6.0


def extract_edges(tets: np.ndarray, n_vertices: int) -> np.ndarray:
    """Unique undirected edges of a tet mesh, each stored as (lo, hi).

    Returns an ``(n_edges, 2)`` int64 array sorted lexicographically, which
    makes the "natural" edge order follow the vertex numbering — the ordering
    assumption behind the paper's natural-order partitioning baseline.
    """
    pairs = tets[:, TET_EDGES_EVEN[:, :2]].reshape(-1, 2).astype(np.int64)
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    keys = lo * np.int64(n_vertices) + hi
    uniq = np.unique(keys)
    edges = np.empty((uniq.shape[0], 2), dtype=np.int64)
    edges[:, 0] = uniq // n_vertices
    edges[:, 1] = uniq % n_vertices
    return edges


def build_vertex_adjacency(
    edges: np.ndarray, n_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR vertex adjacency (rowptr, cols) from an undirected edge list.

    Neighbor lists are sorted ascending, matching the layout PETSc's AIJ/BAIJ
    assembly produces and what RCM / the partitioner expect.
    """
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    rowptr = np.zeros(n_vertices + 1, dtype=np.int64)
    rowptr[1:] = np.bincount(src, minlength=n_vertices)
    np.cumsum(rowptr, out=rowptr)
    return rowptr, dst


@dataclass
class DualMetrics:
    """Median-dual metrics of a tetrahedral mesh.

    Attributes
    ----------
    edge_normals:
        ``(n_edges, 3)`` directed dual-face area vectors; ``edge_normals[e]``
        points from ``edges[e, 0]`` toward ``edges[e, 1]``.
    volumes:
        ``(n_vertices,)`` median-dual control-volume volumes.
    bface_normals:
        ``(n_bfaces, 3)`` outward area vectors of the boundary triangles.
    bvertex_normals:
        ``(n_bfaces, 3)`` = ``bface_normals / 3``; the contribution of a
        boundary face to each of its three vertices' control-volume surfaces.
    """

    edge_normals: np.ndarray
    volumes: np.ndarray
    bface_normals: np.ndarray
    bvertex_normals: np.ndarray


@dataclass
class UnstructuredMesh:
    """Tetrahedral mesh with lazily computed median-dual metrics.

    Parameters
    ----------
    coords:
        ``(n_vertices, 3)`` float64 vertex coordinates.
    tets:
        ``(n_tets, 4)`` int vertex indices, positively oriented
        (``tet_volumes(...) > 0``).
    bfaces:
        ``(n_bfaces, 3)`` boundary triangles, oriented so the right-hand
        normal points out of the domain.
    btags:
        ``(n_bfaces,)`` integer tags (``TAG_WALL``, ``TAG_FARFIELD``, ...).
    name:
        Human-readable dataset label (e.g. ``"mesh-c-prime"``).
    """

    coords: np.ndarray
    tets: np.ndarray
    bfaces: np.ndarray
    btags: np.ndarray
    name: str = "mesh"
    _edges: np.ndarray | None = field(default=None, repr=False)
    _metrics: DualMetrics | None = field(default=None, repr=False)
    _adjacency: tuple[np.ndarray, np.ndarray] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.coords = np.ascontiguousarray(self.coords, dtype=np.float64)
        self.tets = np.ascontiguousarray(self.tets, dtype=np.int64)
        self.bfaces = np.ascontiguousarray(self.bfaces, dtype=np.int64)
        self.btags = np.ascontiguousarray(self.btags, dtype=np.int64)
        if self.coords.ndim != 2 or self.coords.shape[1] != 3:
            raise ValueError("coords must be (n_vertices, 3)")
        if self.tets.ndim != 2 or self.tets.shape[1] != 4:
            raise ValueError("tets must be (n_tets, 4)")
        if self.bfaces.shape[0] != self.btags.shape[0]:
            raise ValueError("bfaces and btags must have matching lengths")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.coords.shape[0]

    @property
    def n_tets(self) -> int:
        return self.tets.shape[0]

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    @property
    def n_bfaces(self) -> int:
        return self.bfaces.shape[0]

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def edges(self) -> np.ndarray:
        """Unique undirected edges, ``(n_edges, 2)`` with lo < hi."""
        if self._edges is None:
            self._edges = extract_edges(self.tets, self.n_vertices)
        return self._edges

    @property
    def metrics(self) -> DualMetrics:
        """Median-dual metrics, computed on first access."""
        if self._metrics is None:
            self._metrics = self._compute_metrics()
        return self._metrics

    @property
    def adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR vertex adjacency ``(rowptr, cols)``."""
        if self._adjacency is None:
            self._adjacency = build_vertex_adjacency(self.edges, self.n_vertices)
        return self._adjacency

    @property
    def edge_normals(self) -> np.ndarray:
        return self.metrics.edge_normals

    @property
    def volumes(self) -> np.ndarray:
        return self.metrics.volumes

    @property
    def bface_normals(self) -> np.ndarray:
        return self.metrics.bface_normals

    @property
    def bvertex_normals(self) -> np.ndarray:
        return self.metrics.bvertex_normals

    # ------------------------------------------------------------------
    # Metric construction
    # ------------------------------------------------------------------
    def _compute_metrics(self) -> DualMetrics:
        coords, tets = self.coords, self.tets
        nv = self.n_vertices
        edges = self.edges

        # Median-dual volumes: the barycentric subdivision assigns exactly a
        # quarter of every tet to each of its vertices.
        vols = tet_volumes(coords, tets)
        if np.any(vols <= 0.0):
            bad = int(np.sum(vols <= 0.0))
            raise ValueError(f"{bad} tetrahedra are inverted or degenerate")
        volumes = scatter_add(
            tets.reshape(-1), np.repeat(vols / 4.0, 4), nv
        )

        # Dual-face area vectors, accumulated per unique edge.  For each tet
        # and each of its six (i, j, k, l) even-parity edges:
        #   S = 0.5 * (G_tet - M_ij) x (G_ijl - G_ijk)
        # points i -> j.  We accumulate into the canonical (lo, hi) edge with
        # a sign flip when i > j.
        g_tet = coords[tets].mean(axis=1)  # (nt, 3)

        vi = tets[:, TET_EDGES_EVEN[:, 0]]  # (nt, 6)
        vj = tets[:, TET_EDGES_EVEN[:, 1]]
        vk = tets[:, TET_EDGES_EVEN[:, 2]]
        vl = tets[:, TET_EDGES_EVEN[:, 3]]

        ci = coords[vi]  # (nt, 6, 3)
        cj = coords[vj]
        mid = 0.5 * (ci + cj)
        g_ijk = (ci + cj + coords[vk]) / 3.0
        g_ijl = (ci + cj + coords[vl]) / 3.0
        s = 0.5 * np.cross(g_tet[:, None, :] - mid, g_ijl - g_ijk)  # (nt, 6, 3)

        flip = vi > vj
        s = np.where(flip[..., None], -s, s)
        lo = np.where(flip, vj, vi).ravel()
        hi = np.where(flip, vi, vj).ravel()
        keys = lo * np.int64(nv) + hi
        edge_keys = edges[:, 0] * np.int64(nv) + edges[:, 1]
        idx = np.searchsorted(edge_keys, keys)
        edge_normals = scatter_add(idx, s.reshape(-1, 3), edges.shape[0])

        # Boundary triangles: outward area vector and the third belonging to
        # each vertex's control-volume surface (the median dual splits a
        # triangle into three equal-area quads).
        if self.bfaces.shape[0]:
            a = coords[self.bfaces[:, 0]]
            b = coords[self.bfaces[:, 1]]
            c = coords[self.bfaces[:, 2]]
            bface_normals = 0.5 * np.cross(b - a, c - a)
        else:
            bface_normals = np.zeros((0, 3))
        bvertex_normals = bface_normals / 3.0

        return DualMetrics(
            edge_normals=edge_normals,
            volumes=volumes,
            bface_normals=bface_normals,
            bvertex_normals=bvertex_normals,
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def relabeled(self, perm: np.ndarray) -> "UnstructuredMesh":
        """Return a new mesh with vertex i renamed to ``perm[i]``.

        ``perm`` must be a permutation of ``range(n_vertices)``.  Used to
        apply RCM orderings or to scramble locality for ablation studies.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.n_vertices,):
            raise ValueError("perm must have one entry per vertex")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(self.n_vertices, dtype=np.int64)
        new_coords = np.empty_like(self.coords)
        new_coords[perm] = self.coords
        return UnstructuredMesh(
            coords=new_coords,
            tets=perm[self.tets],
            bfaces=perm[self.bfaces],
            btags=self.btags.copy(),
            name=self.name,
        )

    def total_volume(self) -> float:
        """Total mesh volume (= sum of control volumes)."""
        return float(tet_volumes(self.coords, self.tets).sum())

    def stats(self) -> dict[str, float]:
        """Structural statistics mirroring Table I's mesh description."""
        rowptr, _ = self.adjacency
        deg = np.diff(rowptr)
        return {
            "vertices": float(self.n_vertices),
            "edges": float(self.n_edges),
            "tets": float(self.n_tets),
            "bfaces": float(self.n_bfaces),
            "avg_degree": float(deg.mean()),
            "max_degree": float(deg.max()),
        }

    def __repr__(self) -> str:  # noqa: D105
        return (
            f"UnstructuredMesh(name={self.name!r}, vertices={self.n_vertices}, "
            f"tets={self.n_tets}, bfaces={self.n_bfaces})"
        )
