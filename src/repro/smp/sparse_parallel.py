"""Process-parallel ILU factorization and triangular solves over shm.

:mod:`repro.smp.parallel` parallelized the paper's *edge* kernels; this
module does the same for its other pair of hot kernels — the sparse,
narrow-band recurrences (Fig. 7 / Table II): numeric block-ILU
factorization and the blocked triangular solves that apply it.  A
:class:`SparseProcessBackend` forks persistent workers per
:class:`~repro.sparse.ilu.ILUPlan`; factors, right-hand sides and
solutions live in a :class:`~repro.smp.shm.SharedArrayPool`, and each
worker executes the per-worker program emitted by
:func:`repro.sparse.wplan.build_worker_plans` with one of the paper's two
synchronization strategies:

``levels``
    Barrier-per-wavefront level scheduling [Anderson & Saad 1989]: workers
    own contiguous row chunks of every wavefront and meet at a
    ``multiprocessing`` barrier between levels.  Sync cost scales with
    ``n_levels * workers`` regardless of the dependency structure.
``p2p``
    Point-to-point sparsified synchronization [Park et al., ISC'14]: a
    shared per-row *generation* array replaces the barrier.  A worker
    publishes ``flags[rows] = gen`` after finishing a chunk and spin-waits
    only on the rows its chunk actually depends on — and of those only the
    dependencies *retained* by the 2-hop transitive reduction
    (:func:`repro.sparse.p2p.sparsify_transitive`).  Removed edges are
    safe: the retained predecessor itself (transitively) waited on them
    before publishing.

Generations make the flags monotone — no reset pass between calls.  The
parent hands out ``gen+1`` for a factorization, ``gen+1``/``gen+2`` for
the forward/backward sweeps of a solve; every pass publishes every row, so
a flag from an older pass can never satisfy a newer wait.

Numerics contract: both strategies are *bitwise identical* to the serial
kernels for any worker count — chunks are contiguous slices of each
wavefront and all batched operations preserve the serial accumulation
order (property-tested in ``tests/test_sparse_parallel.py``).

Install with :func:`repro.sparse.use_sparse_backend` (re-exported here):
``ilu_factorize`` / ``trsv_solve`` then dispatch automatically, which is
how the Newton–Krylov driver and the per-rank preconditioners of the
distributed runtime pick it up.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import multiprocessing.connection as mp_conn
import os
import time
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

import numpy as np

from ..obs.live.recorder import crash_dump, reap_dead
from ..obs.live.ring import STATE_BUSY, STATE_IDLE, STATE_SPIN
from ..obs.metrics import get_metrics
from ..obs.span import get_tracer
from ..sparse.bcsr import BCSRMatrix
from ..sparse.ilu import ILUFactor, ILUPlan
from ..sparse.p2p import SpinStats, wait_generation
from ..sparse.wplan import SparseExecPlan, WorkerPlan
from .shm import SharedArrayPool

__all__ = ["SparseProcessBackend", "SPARSE_STRATEGIES", "SPARSE_WORKER_SLOTS"]

SPARSE_STRATEGIES = ("levels", "p2p")

#: Telemetry slots every sparse worker publishes (see repro.obs.live).
SPARSE_WORKER_SLOTS = (
    "tasks",
    "ilu_calls",
    "trsv_calls",
    "busy_seconds",
    "spin_waits",
    "spin_iters",
    "spin_seconds",
    "wait_rows",  # static P2P wait volume of the worker's program
)


@dataclass
class _SparseSpec:
    """One worker's view of a fleet (inherited through fork)."""

    wid: int
    strategy: str
    timeout: float
    wplan: WorkerPlan
    vals: np.ndarray
    diag_inv: np.ndarray
    rhs: np.ndarray
    y: np.ndarray
    x: np.ndarray
    flags: np.ndarray
    telem: Any = None  # TelemetryWriter | None


def _run_ilu(
    spec: _SparseSpec, barrier, gen: int, stats=None, spin_hb=None
) -> None:
    vals, diag_inv, flags = spec.vals, spec.diag_inv, spec.flags
    p2p = spec.strategy == "p2p"
    deadline = time.monotonic() + spec.timeout
    for chunk in spec.wplan.ilu:
        if p2p:
            wait_generation(
                flags, chunk.wait, gen, deadline, stats, spin_hb
            )
        for sb in chunk.steps:
            if sb.lik_idx.shape[0] == 0:
                continue
            lik = np.einsum(
                "nij,njk->nik", vals[sb.lik_idx], diag_inv[sb.krow]
            )
            vals[sb.lik_idx] = lik
            if sb.t_dest.shape[0]:
                upd = np.einsum(
                    "nij,njk->nik", lik[sb.t_entry], vals[sb.t_ukj]
                )
                vals[sb.t_dest] -= upd
        if chunk.rows.shape[0]:
            diag_inv[chunk.rows] = np.linalg.inv(vals[chunk.diag_idx])
        if p2p:
            flags[chunk.rows] = gen
        else:
            barrier.wait(spec.timeout)


def _run_trsv(
    spec: _SparseSpec,
    barrier,
    acc: np.ndarray,
    gf: int,
    gb: int,
    stats=None,
    spin_hb=None,
) -> None:
    vals, diag_inv, flags = spec.vals, spec.diag_inv, spec.flags
    b, y, x = spec.rhs, spec.y, spec.x
    p2p = spec.strategy == "p2p"
    deadline = time.monotonic() + spec.timeout

    # forward: y_i = b_i - sum_k L_ik y_k
    for ch in spec.wplan.fwd:
        if p2p:
            wait_generation(flags, ch.wait, gf, deadline, stats, spin_hb)
        rows = ch.rows
        if rows.shape[0]:
            if ch.pair_blk.shape[0]:
                contrib = np.einsum(
                    "nij,nj->ni", vals[ch.pair_blk], y[ch.pair_col]
                )
                a = acc[: rows.shape[0]]
                if ch.scatter is not None:
                    ch.scatter.apply(contrib, out=a)
                else:
                    a[:] = 0.0
                    np.add.at(a, ch.slot, contrib)
                y[rows] = b[rows] - a
            else:
                y[rows] = b[rows]
        if p2p:
            flags[rows] = gf
        else:
            barrier.wait(spec.timeout)

    # backward: x_i = inv(U_ii) (y_i - sum_{j>i} U_ij x_j)
    for ch in spec.wplan.bwd:
        if p2p:
            wait_generation(
                flags, ch.wait_prev, gf, deadline, stats, spin_hb
            )
            wait_generation(flags, ch.wait, gb, deadline, stats, spin_hb)
        rows = ch.rows
        if rows.shape[0]:
            if ch.pair_blk.shape[0]:
                contrib = np.einsum(
                    "nij,nj->ni", vals[ch.pair_blk], x[ch.pair_col]
                )
                a = acc[: rows.shape[0]]
                if ch.scatter is not None:
                    ch.scatter.apply(contrib, out=a)
                else:
                    a[:] = 0.0
                    np.add.at(a, ch.slot, contrib)
                x[rows] = np.einsum(
                    "nij,nj->ni", diag_inv[rows], y[rows] - a
                )
            else:
                x[rows] = np.einsum("nij,nj->ni", diag_inv[rows], y[rows])
        if p2p:
            flags[rows] = gb
        else:
            barrier.wait(spec.timeout)


def _sparse_worker_loop(wid: int, spec: _SparseSpec, conn, barrier) -> None:
    """Worker main: serve tasks off the duplex pipe until ``None`` arrives."""
    acc = np.zeros((spec.wplan.max_rows, spec.rhs.shape[1]))
    telem = spec.telem
    if telem is not None:
        telem.hello()
    spin_hb = (
        (lambda: telem.heartbeat(STATE_SPIN)) if telem is not None else None
    )
    while True:
        try:
            task = conn.recv()
        except EOFError:  # parent is gone
            break
        if task is None:
            break
        kind, seq = task[0], task[1]
        if telem is not None:
            telem.heartbeat(STATE_BUSY)
        stats = SpinStats()
        t0 = time.perf_counter()
        err = None
        try:
            if kind == "ilu":
                _run_ilu(spec, barrier, task[2], stats, spin_hb)
            elif kind == "trsv":
                _run_trsv(spec, barrier, acc, task[2], task[3], stats, spin_hb)
            elif kind == "sleep":  # test/diagnostic hook
                time.sleep(task[2])
            else:
                raise ValueError(f"unknown task kind {kind!r}")
        except Exception as exc:  # surfaced to the parent, never swallowed
            err = f"{type(exc).__name__}: {exc}"
        t1 = time.perf_counter()
        conn.send((wid, seq, t0, t1, err))
        if telem is not None:
            calls = {"ilu": "ilu_calls", "trsv": "trsv_calls"}.get(kind)
            telem.add(
                tasks=1.0,
                busy_seconds=t1 - t0,
                spin_waits=float(stats.waits),
                spin_iters=float(stats.iters),
                spin_seconds=stats.seconds,
                **({calls: 1.0} if calls else {}),
            )
            if err is None:
                telem.push_event("task_done", a=float(seq), b=t1 - t0)
            else:
                telem.push_event("task_error", a=float(seq))
            telem.heartbeat(STATE_IDLE)


@dataclass
class _Fleet:
    """Workers + shared arrays serving one ILU plan."""

    plan: ILUPlan
    exec_plan: SparseExecPlan
    pool: SharedArrayPool
    vals: np.ndarray
    diag_inv: np.ndarray
    rhs: np.ndarray
    y: np.ndarray
    x: np.ndarray
    flags: np.ndarray
    barrier: Any
    conns: list
    workers: list
    factor: ILUFactor
    gen: int = dc_field(default=0)
    plane: Any = None  # TelemetryPlane | None
    proc_names: list = dc_field(default_factory=list)


class SparseProcessBackend:
    """Multiprocess executor of ILU factorization and triangular solves.

    Install with :func:`repro.sparse.use_sparse_backend`; the sequential
    kernels then dispatch here whenever ``handles_plan``/``handles_factor``
    accepts.  One persistent worker *fleet* is forked per distinct
    :class:`ILUPlan` (capped at ``max_plans``), so the solver's repeated
    factorize/solve cycle reuses warm processes and shared segments.

    Parameters
    ----------
    n_workers:
        worker process count (the paper's "threads").
    strategy:
        ``levels`` (barrier per wavefront) or ``p2p`` (sparsified
        point-to-point done-flags); see the module docstring.
    timeout:
        seconds to wait for a worker round (and for intra-round barrier /
        flag waits) before declaring the fleet dead.
    span_sink:
        optional ``(name, t0, t1, **attrs)`` callable receiving per-worker
        ``ilu.w<i>`` / ``trsv.w<i>`` spans.  Defaults to the active
        :mod:`repro.obs` tracer; distributed ranks pass their
        ``SpanRecorder.add`` so the spans land in the rank's trace.
    max_plans:
        distinct plans served before ``handles_plan`` starts declining
        (callers then fall back to the sequential kernels).
    telemetry:
        allocate a live telemetry plane per fleet (default on): every
        worker publishes heartbeat/state plus task, busy-time and P2P
        spin counters into shared slots (:mod:`repro.obs.live`), readable
        from this process while the fleet runs.
    """

    def __init__(
        self,
        n_workers: int = 2,
        strategy: str = "p2p",
        timeout: float = 120.0,
        span_sink: Callable[..., None] | None = None,
        max_plans: int = 8,
        telemetry: bool = True,
    ) -> None:
        if strategy not in SPARSE_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; pick one of "
                f"{SPARSE_STRATEGIES}"
            )
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "SparseProcessBackend needs the 'fork' start method "
                "(POSIX only); use the serial kernels on this platform"
            )
        self.n_workers = int(n_workers)
        self.strategy = strategy
        self.timeout = float(timeout)
        self.max_plans = int(max_plans)
        self._span_sink = span_sink
        self._telemetry = bool(telemetry)
        self._fleet_seq = 0
        self._fleets: dict[int, _Fleet] = {}
        self._owner_pid = os.getpid()
        self._closed = False
        self._broken = False
        self._seq = 0
        self._factorizations = 0
        self._trsv_solves = 0
        atexit.register(self.close)

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def handles_plan(self, plan: ILUPlan) -> bool:
        """True iff ``ilu_factorize(plan)`` should be routed here."""
        if self._closed or self._broken:
            return False
        return id(plan) in self._fleets or len(self._fleets) < self.max_plans

    def handles_factor(self, factor: ILUFactor) -> bool:
        """True iff ``factor`` came out of this backend's ``factorize``."""
        if self._closed or self._broken:
            return False
        fleet = self._fleets.get(id(factor.plan))
        return fleet is not None and factor.vals is fleet.vals

    def segment_names(self) -> dict[str, str]:
        out: dict[str, str] = {}
        for fid, fleet in self._fleets.items():
            for key, name in fleet.pool.segment_names().items():
                out[f"{fid}.{key}"] = name
        return out

    def fleet_stats(self) -> dict:
        """Reuse counters of this backend's fleets, since fork.

        ``factorizations``/``trsv_solves`` keep growing while a warm
        backend is held across solves (one fleet per ILU plan, never
        reforked) — the serve daemon's ``stats`` exposes these so fleet
        reuse is verifiable, not inferred from timings.
        """
        return {
            "workers": self.n_workers,
            "strategy": self.strategy,
            "plans_resident": len(self._fleets),
            "rounds": self._seq,
            "factorizations": self._factorizations,
            "trsv_solves": self._trsv_solves,
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    def _require_usable(self) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._broken:
            raise RuntimeError(
                "backend is unusable after a worker failure; create a new one"
            )

    def _fleet_for(self, plan: ILUPlan) -> _Fleet:
        fleet = self._fleets.get(id(plan))
        if fleet is not None:
            return fleet
        exec_plan = plan.worker_plans(self.n_workers)
        pool = SharedArrayPool()
        vals = pool.zeros("vals", (plan.factor_nnzb, plan.b, plan.b))
        diag_inv = pool.zeros("diag_inv", (plan.n, plan.b, plan.b))
        rhs = pool.zeros("rhs", (plan.n, plan.b))
        y = pool.zeros("y", (plan.n, plan.b))
        x = pool.zeros("x", (plan.n, plan.b))
        flags = pool.zeros("flags", (plan.n,), dtype=np.int64)
        plane = None
        writers: list[Any] = [None] * self.n_workers
        proc_names: list[str] = []
        if self._telemetry:
            from ..obs.live import TelemetryPlane

            prefix = (
                "sparse" if self._fleet_seq == 0
                else f"sparse.f{self._fleet_seq}"
            )
            self._fleet_seq += 1
            proc_names = [
                f"{prefix}.w{s}" for s in range(self.n_workers)
            ]
            # plane arrays live in the fleet pool: forked workers inherit
            # the views and the /dev/shm leak tests cover them for free
            plane = TelemetryPlane(
                {name: SPARSE_WORKER_SLOTS for name in proc_names},
                pool=pool,
            )
            sync = exec_plan.sync_stats()
            for s, name in enumerate(proc_names):
                writers[s] = plane.writer(name)
                # static plan-shape counter, stamped before the fork; the
                # worker is the only writer afterwards
                writers[s].update(wait_rows=float(sum(sync[s].values())))
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(self.n_workers)
        conns, workers = [], []
        for s in range(self.n_workers):
            spec = _SparseSpec(
                wid=s,
                strategy=self.strategy,
                timeout=self.timeout,
                wplan=exec_plan.workers[s],
                vals=vals,
                diag_inv=diag_inv,
                rhs=rhs,
                y=y,
                x=x,
                flags=flags,
                telem=writers[s],
            )
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            p = ctx.Process(
                target=_sparse_worker_loop,
                args=(s, spec, child_conn, barrier),
                daemon=True,
                name=f"repro-sparse-w{s}",
            )
            p.start()
            child_conn.close()  # parent keeps only its end
            conns.append(parent_conn)
            workers.append(p)
        fleet = _Fleet(
            plan=plan,
            exec_plan=exec_plan,
            pool=pool,
            vals=vals,
            diag_inv=diag_inv,
            rhs=rhs,
            y=y,
            x=x,
            flags=flags,
            barrier=barrier,
            conns=conns,
            workers=workers,
            factor=ILUFactor(plan=plan, vals=vals, diag_inv=diag_inv),
            plane=plane,
            proc_names=proc_names,
        )
        self._fleets[id(plan)] = fleet
        met = get_metrics()
        met.counter("sparse_parallel.fleets").inc()
        met.gauge("sparse_parallel.cross_deps").set(exec_plan.cross_deps())
        return fleet

    def _dispatch_collect(
        self, fleet: _Fleet, task_tail: tuple, span_prefix: str | None = None
    ) -> list[tuple[int, float, float]]:
        """Send one task to every fleet worker, wait for all results."""
        self._require_usable()
        self._seq += 1
        seq = self._seq
        task = (task_tail[0], seq) + tuple(task_tail[1:])
        for conn in fleet.conns:
            try:
                conn.send(task)
            except OSError:  # a dead worker's pipe rejects the send
                self._broken = True
                dead = reap_dead(fleet.workers)
                crash_dump("sparse-worker-death (send failed)",
                           dead=tuple(dead))
                raise RuntimeError(
                    f"sparse worker process(es) died mid-solve: {dead}"
                ) from None
        results: list[tuple[int, float, float]] = []
        pending = dict(enumerate(fleet.conns))
        deadline = time.monotonic() + self.timeout
        while pending:
            ready = mp_conn.wait(list(pending.values()), timeout=0.2)
            if not ready:
                dead = [
                    fleet.workers[i].name
                    for i in pending
                    if not fleet.workers[i].is_alive()
                ]
                if dead:
                    self._broken = True
                    crash_dump("sparse-worker-death", dead=tuple(dead))
                    raise RuntimeError(
                        f"sparse worker process(es) died mid-solve: {dead}"
                    )
                if time.monotonic() > deadline:
                    self._broken = True
                    crash_dump("sparse-worker-timeout")
                    raise RuntimeError(
                        f"timed out after {self.timeout}s waiting for workers"
                    )
                continue
            for conn in ready:
                try:
                    wid, rseq, t0, t1, err = conn.recv()
                except EOFError:
                    self._broken = True
                    dead = reap_dead(fleet.workers)
                    crash_dump(
                        "sparse-worker-death (pipe closed)",
                        dead=tuple(dead),
                    )
                    raise RuntimeError(
                        "sparse worker died mid-solve (pipe closed)"
                    ) from None
                if rseq != seq:
                    continue  # stale result from an aborted round
                if err is not None:
                    self._broken = True
                    raise RuntimeError(f"sparse worker {wid} failed: {err}")
                results.append((wid, t0, t1))
                del pending[wid]
        if span_prefix is not None:
            self._emit_spans(span_prefix, results)
        return results

    def _emit_spans(
        self, prefix: str, results: list[tuple[int, float, float]]
    ) -> None:
        sink = self._span_sink
        if sink is None:
            tracer = get_tracer()
            if not tracer.active:
                return
            sink = tracer.add_complete
        for wid, t0, t1 in results:
            sink(
                f"{prefix}.w{wid}",
                t0,
                t1,
                strategy=self.strategy,
                workers=self.n_workers,
            )

    # ------------------------------------------------------------------
    def factorize(self, matrix: BCSRMatrix, plan: ILUPlan) -> ILUFactor:
        """Parallel counterpart of :func:`repro.sparse.ilu.ilu_factorize`.

        The returned factor's ``vals`` / ``diag_inv`` are views of the
        fleet's shared segments; a later ``factorize`` on the same plan
        overwrites them in place (the solver always applies the newest
        factorization, exactly as with the serial kernel's fresh arrays).
        """
        self._require_usable()
        fleet = self._fleet_for(plan)
        fleet.vals.fill(0.0)
        fleet.vals[plan.orig_map] = matrix.vals
        fleet.gen += 1
        self._dispatch_collect(fleet, ("ilu", fleet.gen), span_prefix="ilu")
        get_metrics().counter("sparse_parallel.factorizations").inc()
        self._factorizations += 1
        return fleet.factor

    def solve(
        self,
        factor: ILUFactor,
        rhs: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Parallel counterpart of :func:`repro.sparse.trsv.trsv_solve`.

        Always materializes the solution *outside* the shared segments
        (into ``out`` or a fresh array): Krylov callers keep every
        preconditioned vector in their flexible basis, so handing out a
        view of ``x`` that the next solve overwrites would corrupt it.
        """
        self._require_usable()
        fleet = self._fleets.get(id(factor.plan))
        if fleet is None or factor.vals is not fleet.vals:
            raise ValueError("factor was not produced by this backend")
        plan = factor.plan
        flat = rhs.ndim == 1
        fleet.rhs[...] = rhs.reshape(plan.n, plan.b)
        gf, gb = fleet.gen + 1, fleet.gen + 2
        fleet.gen = gb
        self._dispatch_collect(fleet, ("trsv", gf, gb), span_prefix="trsv")
        get_metrics().counter("sparse_parallel.solves").inc()
        self._trsv_solves += 1
        if out is not None:
            np.copyto(out.reshape(plan.n, plan.b), fleet.x)
            return out
        x = fleet.x.copy()
        return x.reshape(-1) if flat else x

    def _debug_sleep(self, plan: ILUPlan, seconds: float) -> None:
        """Park a fleet's workers in a sleep task (test hook for kills)."""
        fleet = self._fleet_for(plan)
        self._dispatch_collect(fleet, ("sleep", float(seconds)))

    # ------------------------------------------------------------------
    def telemetry_planes(self) -> list:
        """Live telemetry planes of all fleets (empty when disabled)."""
        return [f.plane for f in self._fleets.values() if f.plane is not None]

    def worker_telemetry_totals(self) -> dict[int, dict[str, float]]:
        """Per-wid slot totals summed across fleets.

        Ranks of the distributed runtime fold these into their own rank
        slots each Newton step, because the top-level parent cannot see a
        grandchild fleet's shared plane.
        """
        totals: dict[int, dict[str, float]] = {}
        for fleet in self._fleets.values():
            if fleet.plane is None:
                continue
            for name, snap in fleet.plane.snapshot_all().items():
                wid = int(name.rsplit(".w", 1)[1])
                t = totals.setdefault(wid, {})
                for k, v in snap.slots.items():
                    t[k] = t.get(k, 0.0) + v
        return totals

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop all fleets and unlink their shared segments.  Idempotent."""
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        for fleet in self._fleets.values():
            for i, p in enumerate(fleet.workers):
                if p.is_alive():
                    try:
                        fleet.conns[i].send(None)
                    except Exception:
                        pass
            for p in fleet.workers:
                p.join(timeout=2.0)
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=2.0)
                if p.is_alive():
                    p.kill()
                    p.join(timeout=1.0)
            for conn in fleet.conns:
                try:
                    conn.close()
                except Exception:
                    pass
            if fleet.plane is not None:
                fleet.plane.close()  # unregister before the pool unlinks
            fleet.pool.close()
        self._fleets.clear()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "SparseProcessBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
