"""Active edge-kernel backend registry.

The CFD kernels (:func:`repro.cfd.flux.interior_flux_residual`,
:func:`repro.cfd.gradient.lsq_gradients`) stay written as plain sequential
NumPy; installing a backend here reroutes their edge loops to an alternate
executor — today :class:`repro.smp.parallel.ProcessEdgeBackend` — without
the kernels or their callers changing signature.  Mirrors the
``use_registry``/``use_tracer`` contract from :mod:`repro.perf` /
:mod:`repro.obs`: a stack, truncation-on-exit reentrancy, and a cheap
``None`` default when nothing is installed.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["get_edge_backend", "use_edge_backend"]

_stack: list = []


def get_edge_backend():
    """The innermost installed edge backend, or ``None``."""
    return _stack[-1] if _stack else None


@contextmanager
def use_edge_backend(backend):
    """Route edge-kernel execution inside the block through ``backend``.

    A backend must provide ``handles(field) -> bool``,
    ``flux_residual(q, beta, grad=, limiter=, scheme=)`` and
    ``gradients(q)``; kernels fall back to their sequential path whenever
    ``handles`` declines (different field, unsupported configuration).
    A backend may additionally provide
    ``residual_pipeline(q, config) -> (res, grad, phi)`` — when present,
    :func:`repro.cfd.residual.compute_residual` runs the whole interior
    second-order pipeline through it as one fused kernel-graph program
    (see :mod:`repro.kgir`) instead of separate per-kernel calls.
    """
    depth = len(_stack)
    _stack.append(backend)
    try:
        yield backend
    finally:
        # truncate instead of pop: restores the outer backend even if
        # inner code leaked pushes (same contract as use_tracer)
        del _stack[depth:]
