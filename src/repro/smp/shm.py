"""Shared-memory array allocation with deterministic cleanup.

``multiprocessing.shared_memory`` segments live in ``/dev/shm`` (on Linux)
and outlive the process that created them unless somebody calls
``unlink()``.  A crashed run that allocated a few hundred MB of flow state
per worker therefore leaks host memory until reboot — the classic failure
mode of shm-based solvers.  :class:`SharedArrayPool` centralizes every
allocation of the process backend so there is exactly one cleanup path,
reached from all of: explicit ``close()``, ``with`` blocks, and an
``atexit`` hook for interpreter shutdown after an uncaught exception.

Only the *owning* process unlinks: the pool records its creator's PID and
``close()`` is a no-op in forked children, so a worker exiting (or dying)
can never tear the segments out from under its siblings.
"""

from __future__ import annotations

import atexit
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayPool", "live_pools", "total_shm_bytes"]

#: Every pool this process created or attached, for telemetry: the
#: Prometheus exporter reports ``repro_shm_bytes`` from here.  WeakSet so
#: the registry never extends a pool's lifetime.
_pools: "weakref.WeakSet[SharedArrayPool]" = weakref.WeakSet()


def live_pools() -> list["SharedArrayPool"]:
    """Open pools owned by this process (snapshot, unordered)."""
    return [
        p
        for p in _pools
        if not p.closed and not p._attached and p._owner_pid == os.getpid()
    ]


def total_shm_bytes() -> int:
    """Bytes currently allocated in /dev/shm by this process's pools."""
    return sum(p.nbytes for p in live_pools())


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment by OS name without tracker side effects.

    Attaching must never let *this* process's ``resource_tracker`` claim the
    segment: the tracker would unlink it at interpreter shutdown, tearing a
    still-live mapping out from under the owning process (the well-known
    CPython gh-82300 hazard).  Python 3.13 grew ``track=False`` for exactly
    this; on older versions the registration is undone by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        # suppress (rather than undo) the registration: an unregister
        # message would race with other attached processes sharing the
        # tracker and spam KeyErrors in the tracker process
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig


class SharedArrayPool:
    """Allocator of named shared-memory NumPy arrays.

    Every array is backed by its own ``SharedMemory`` segment, keyed by a
    caller-chosen name.  The pool owns the segments: ``close()`` unlinks
    them all (idempotent), and is registered with ``atexit`` so segments
    cannot leak past interpreter exit even when user code never reaches its
    own cleanup.  Worker processes created by ``fork`` inherit the mappings
    and need no handles of their own.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self._owner_pid = os.getpid()
        self._closed = False
        self._attached = False
        _pools.add(self)
        atexit.register(self.close)

    @classmethod
    def attach(
        cls,
        name_map: dict[str, tuple[str, tuple[int, ...], np.dtype | str]],
    ) -> "SharedArrayPool":
        """Attach to segments another process created, without ownership.

        ``name_map`` maps pool key -> ``(os_segment_name, shape, dtype)``
        (the owning side produces it with :meth:`export_spec`).  The
        returned pool opens new handles onto the existing ``/dev/shm``
        entries; its ``close()`` only unmaps — it never unlinks, so an
        attached child (or its crash-teardown path) cannot destroy segments
        the owner still uses.  Typical use: a worker process of the
        distributed runtime re-attaching the rank-shared arrays by name.
        """
        pool = cls()
        pool._attached = True
        try:
            for key, (name, shape, dtype) in name_map.items():
                seg = _attach_segment(name)
                pool._segments[key] = seg
                pool._arrays[key] = np.ndarray(
                    tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf
                )
        except BaseException:
            pool.close()
            raise
        return pool

    def export_spec(self) -> dict[str, tuple[str, tuple[int, ...], str]]:
        """Attachment spec for :meth:`attach`: key -> (name, shape, dtype)."""
        return {
            k: (seg.name, self._arrays[k].shape, self._arrays[k].dtype.str)
            for k, seg in self._segments.items()
        }

    # ------------------------------------------------------------------
    def zeros(
        self, key: str, shape: tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """Allocate a zero-filled shared array under ``key``."""
        if self._closed:
            raise RuntimeError("SharedArrayPool is closed")
        if self._attached:
            raise RuntimeError("attached pools cannot allocate new segments")
        if key in self._segments:
            raise ValueError(f"array {key!r} already allocated")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dt.itemsize)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        arr.fill(0)
        self._segments[key] = seg
        self._arrays[key] = arr
        return arr

    def from_array(self, key: str, src: np.ndarray) -> np.ndarray:
        """Allocate a shared copy of ``src`` under ``key``."""
        arr = self.zeros(key, src.shape, src.dtype)
        arr[...] = src
        return arr

    def array(self, key: str) -> np.ndarray:
        """The shared array registered under ``key``."""
        return self._arrays[key]

    def segment_names(self) -> dict[str, str]:
        """Map of pool key -> OS-level segment name (for diagnostics/tests)."""
        return {k: seg.name for k, seg in self._segments.items()}

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        """Total bytes currently allocated across all segments."""
        return sum(seg.size for seg in self._segments.values())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment.  Idempotent; no-op in forked children.

        Unlink (removing the ``/dev/shm`` entry — the part that can leak)
        always runs; unmapping is best-effort because NumPy views handed
        out earlier may still hold exported buffers.  Those mappings are
        reclaimed by the OS at process exit either way.  Attached pools
        (:meth:`attach`) never unlink: they close only their own mappings
        and leave the segments to the owner.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        self._arrays.clear()
        for seg in self._segments.values():
            if not self._attached:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
            try:
                seg.close()
            except BufferError:
                pass  # a view is still alive; mapping dies with the process
        self._segments.clear()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort safety net
        try:
            self.close()
        except Exception:
            pass
