"""Shared-memory array allocation with deterministic cleanup.

``multiprocessing.shared_memory`` segments live in ``/dev/shm`` (on Linux)
and outlive the process that created them unless somebody calls
``unlink()``.  A crashed run that allocated a few hundred MB of flow state
per worker therefore leaks host memory until reboot — the classic failure
mode of shm-based solvers.  :class:`SharedArrayPool` centralizes every
allocation of the process backend so there is exactly one cleanup path,
reached from all of: explicit ``close()``, ``with`` blocks, and an
``atexit`` hook for interpreter shutdown after an uncaught exception.

Only the *owning* process unlinks: the pool records its creator's PID and
``close()`` is a no-op in forked children, so a worker exiting (or dying)
can never tear the segments out from under its siblings.
"""

from __future__ import annotations

import atexit
import os
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayPool"]


class SharedArrayPool:
    """Allocator of named shared-memory NumPy arrays.

    Every array is backed by its own ``SharedMemory`` segment, keyed by a
    caller-chosen name.  The pool owns the segments: ``close()`` unlinks
    them all (idempotent), and is registered with ``atexit`` so segments
    cannot leak past interpreter exit even when user code never reaches its
    own cleanup.  Worker processes created by ``fork`` inherit the mappings
    and need no handles of their own.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self._owner_pid = os.getpid()
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def zeros(
        self, key: str, shape: tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """Allocate a zero-filled shared array under ``key``."""
        if self._closed:
            raise RuntimeError("SharedArrayPool is closed")
        if key in self._segments:
            raise ValueError(f"array {key!r} already allocated")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dt.itemsize)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        arr.fill(0)
        self._segments[key] = seg
        self._arrays[key] = arr
        return arr

    def from_array(self, key: str, src: np.ndarray) -> np.ndarray:
        """Allocate a shared copy of ``src`` under ``key``."""
        arr = self.zeros(key, src.shape, src.dtype)
        arr[...] = src
        return arr

    def array(self, key: str) -> np.ndarray:
        """The shared array registered under ``key``."""
        return self._arrays[key]

    def segment_names(self) -> dict[str, str]:
        """Map of pool key -> OS-level segment name (for diagnostics/tests)."""
        return {k: seg.name for k, seg in self._segments.items()}

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        """Total bytes currently allocated across all segments."""
        return sum(seg.size for seg in self._segments.values())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment.  Idempotent; no-op in forked children.

        Unlink (removing the ``/dev/shm`` entry — the part that can leak)
        always runs; unmapping is best-effort because NumPy views handed
        out earlier may still hold exported buffers.  Those mappings are
        reclaimed by the OS at process exit either way.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        self._arrays.clear()
        for seg in self._segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            try:
                seg.close()
            except BufferError:
                pass  # a view is still alive; mapping dies with the process
        self._segments.clear()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort safety net
        try:
            self.close()
        except Exception:
            pass
