"""Analytic shared-memory machine model.

Pure Python cannot execute SIMD intrinsics, software prefetch, or contended
atomics, so — per the substitution rule in DESIGN.md — the paper's testbed
is replaced by an explicit machine model.  Kernels run their numerics in
NumPy (bit-identical across strategies); their *performance* is predicted by
this model from counted work (flops, bytes, partition statistics, level
structures) and a small set of microarchitectural constants calibrated to
the paper's platform:

    Intel Xeon E5-2690 v2 (single socket of the test workstation):
    10 cores @ 3.0 GHz, 2-way SMT (20 threads), 4-wide DP AVX with separate
    mul/add pipes (8 flop/cycle/core, 240 Gflop/s), 32 KB L1 / 256 KB L2
    per core, 24 MB shared L3, 42.2 GB/s peak / 34.8 GB/s STREAM DRAM
    bandwidth.

The calibration constants that are *not* spec-sheet numbers (per-load stall
cycles, atomic penalties, sync costs) are documented at their definitions;
EXPERIMENTS.md reports how well the calibrated model tracks each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["MachineModel", "XEON_E5_2690_V2", "STAMPEDE_E5_2680", "XEON_PHI_KNC"]


@dataclass(frozen=True)
class MachineModel:
    """Core counts, rates and penalty constants of one shared-memory node."""

    name: str
    n_cores: int
    smt: int  # hardware threads per core
    freq_hz: float
    simd_width: int  # DP lanes
    flops_per_cycle_scalar: float  # dual-issue mul+add
    flops_per_cycle_simd: float  # full AVX throughput
    l1_bytes: int
    l2_bytes: int
    llc_bytes: int
    stream_bw: float  # measured STREAM bandwidth, B/s
    core_bw: float  # single-core sustainable bandwidth, B/s
    # --- calibrated penalty constants -----------------------------------
    #: effective stall cycles per irregular (gather) load after out-of-order
    #: overlap, with hardware prefetchers but no software prefetch
    stall_per_load: float = 3.8
    #: multiplier on gather stalls when the vertex numbering has poor
    #: locality (no RCM): gathers leave L2 and pay L3/DRAM latency
    unordered_latency_factor: float = 1.29
    #: software prefetch hides this fraction of remaining gather stalls
    #: (calibrated to the paper's 15% flux gain)
    prefetch_stall_factor: float = 0.82
    #: SIMD lanes each need their own gather; vectorized gathers cost this
    #: much more than the scalar loop's loads (calibrated: SIMD nets +40%)
    simd_gather_factor: float = 2.24
    #: cycles per contended atomic read-modify-write on a shared line
    atomic_cycles: float = 18.0
    #: centralized barrier latency for t threads: barrier_base * log2(t) ns
    barrier_base_ns: float = 450.0
    #: one point-to-point flag spin/set pair
    p2p_sync_ns: float = 90.0
    #: throughput contributed by each SMT thread beyond one per core
    #: (out-of-order cores: ~0.10; in-order many-core: much higher because
    #: SMT is the latency-hiding mechanism)
    smt_yield: float = 0.10
    #: coloring destroys spatial locality among concurrently processed
    #: edges (the paper's reason for rejecting it): edges of one color are
    #: scattered across the mesh, so both the streaming edge data and the
    #: vertex gathers lose cache/prefetcher friendliness
    coloring_stall_factor: float = 1.9
    #: threads need ~this many times their count in dependency-graph
    #: parallelism before a recurrence reaches its bandwidth bound
    #: (calibrated to Table II: ILU-1 with 60x parallelism runs its solves
    #: ~2.6x slower per nonzero than ILU-0 with 248x at 20 threads)
    recurrence_balance_factor: float = 5.0
    #: small-block kernels cannot fill AVX pipelines; manual vectorization
    #: of 4x4 multiplies buys ~17% (the paper: "performance benefits with
    #: vectorization are not very significant" for these kernels)
    block_simd_boost: float = 1.17
    #: extra factor traffic without access-ordered storage (PETSc's layout
    #: optimization): the triangular sweeps re-walk rows out of order
    unordered_traffic_factor: float = 1.35
    #: residual serialization of the P2P TRSV's dependency-graph tail
    trsv_p2p_tail_factor: float = 1.06
    #: ILU numeric factorization achieves this fraction of its block-op
    #: rate (calibrated vs the paper's 9.4x ILU speedup at 10 cores)
    ilu_rate_factor: float = 0.55
    #: ILU's irregular pivot-row walks achieve this fraction of STREAM
    #: (the paper: "achieved bandwidth efficiency is not as high as TRSV")
    ilu_bw_efficiency: float = 0.80
    #: access-ordered storage + sparsified sync let the threaded
    #: factorization stream better than the level-barrier walk
    ilu_p2p_rate_factor: float = 1.12
    #: residual serialization of the P2P factorization's tail
    ilu_p2p_tail_factor: float = 1.08
    #: extra factor-traffic fraction *per thread* without the compressed
    #: temporary buffer (the paper's algorithmic optimization)
    ilu_buffer_traffic_per_thread: float = 0.15
    #: per parallel-section dispatch cost (fork/enqueue + result collection
    #: round trip of a worker fleet).  The paper's OpenMP regions pay ~a
    #: barrier; the process backends here pay pipe dispatch, which host
    #: calibration measures.  0 keeps the analytic model's idealized view.
    dispatch_ns: float = 0.0

    # ------------------------------------------------------------------
    @property
    def n_threads_max(self) -> int:
        return self.n_cores * self.smt

    def threads_to_cores(self, n_threads: int) -> float:
        """Core-equivalents exercised by ``n_threads`` (SMT shares pipes)."""
        if n_threads <= self.n_cores:
            return float(n_threads)
        extra = min(n_threads - self.n_cores, self.n_cores * (self.smt - 1))
        return self.n_cores + self.smt_yield * extra

    def bandwidth(self, n_threads: int) -> float:
        """Aggregate DRAM bandwidth achievable by ``n_threads`` threads.

        A single core cannot saturate the socket (limited line-fill
        buffers); bandwidth grows until the STREAM limit — the paper's
        TRSV saturates "beyond 4 cores" exactly because
        ``4 * core_bw > stream_bw``.
        """
        cores = self.threads_to_cores(n_threads)
        return min(self.stream_bw, cores * self.core_bw)

    def flop_rate(self, n_threads: int, simd: bool) -> float:
        """Aggregate flop/s for the given thread count and vector mode."""
        cores = self.threads_to_cores(n_threads)
        per_cycle = self.flops_per_cycle_simd if simd else self.flops_per_cycle_scalar
        return cores * self.freq_hz * per_cycle

    def barrier_seconds(self, n_threads: int) -> float:
        if n_threads <= 1:
            return 0.0
        import math

        return self.barrier_base_ns * 1e-9 * math.log2(n_threads) * 2.0

    def p2p_seconds(self) -> float:
        return self.p2p_sync_ns * 1e-9

    def dispatch_seconds(self) -> float:
        return self.dispatch_ns * 1e-9

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All fields as JSON-ready scalars (calibration-file payload)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "MachineModel":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so newer
        calibration files load on older models and vice versa."""
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in d.items() if k in known}
        for f in fields(cls):
            if f.name in kw and f.type in ("int", int):
                kw[f.name] = int(kw[f.name])
        return cls(**kw)

    def with_overrides(self, **kw: float) -> "MachineModel":
        return replace(self, **kw)


#: The paper's single-node platform (one socket; the experiments pin to it).
XEON_E5_2690_V2 = MachineModel(
    name="Xeon E5-2690 v2",
    n_cores=10,
    smt=2,
    freq_hz=3.0e9,
    simd_width=4,
    flops_per_cycle_scalar=2.0,
    flops_per_cycle_simd=8.0,
    l1_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    llc_bytes=24 * 1024 * 1024,
    stream_bw=34.8e9,
    core_bw=10.5e9,
)

#: One socket of a TACC Stampede node (Xeon E5-2680, 8 cores @ 2.7 GHz,
#: HT disabled) — the multi-node experiments' building block.
STAMPEDE_E5_2680 = MachineModel(
    name="Xeon E5-2680 (Stampede)",
    n_cores=8,
    smt=1,
    freq_hz=2.7e9,
    simd_width=4,
    flops_per_cycle_scalar=2.0,
    flops_per_cycle_simd=8.0,
    l1_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    llc_bytes=20 * 1024 * 1024,
    stream_bw=38.0e9 / 2,  # per-socket share of the node's STREAM
    core_bw=9.5e9,
)

#: An Intel Xeon Phi (Knights Corner) coprocessor — the paper's stated
#: future-work target ("most of our shared-memory optimizations are
#: expected to extend to modern many-core architectures such as Intel Xeon
#: Phi"; its initial experiments at 240 threads saw replication overhead
#: rise to 15%).  In-order cores make gather stalls costlier and give SMT
#: a much larger role (the ablation benches use this model for the
#: many-core projections).
XEON_PHI_KNC = MachineModel(
    name="Xeon Phi 7120 (KNC)",
    n_cores=60,
    smt=4,
    freq_hz=1.24e9,
    simd_width=8,
    flops_per_cycle_scalar=1.0,  # in-order, no dual issue for scalar code
    flops_per_cycle_simd=16.0,  # 8-wide FMA
    l1_bytes=32 * 1024,
    l2_bytes=512 * 1024,
    llc_bytes=0,
    stream_bw=150.0e9,
    core_bw=5.5e9,
    stall_per_load=6.5,  # in-order core: little latency hiding
    simd_gather_factor=1.6,  # hardware gather support
    barrier_base_ns=900.0,  # 240-thread barriers are expensive
    smt_yield=0.30,  # SMT is KNC's latency-hiding mechanism
)
