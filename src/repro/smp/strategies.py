"""Executable shared-memory parallelization strategies.

The paper's rule for every optimization: numerics must not change.  Each
strategy here really *executes* (partitioned NumPy, one chunk per simulated
thread) and is property-tested to reproduce the sequential kernel to
round-off; the timing comes from the cost models with structural inputs
(per-thread edge counts, replication overhead, level widths, cross-thread
dependencies) measured on the actual data.

Edge-loop strategies (paper Section V.A):

* ``atomic``      — "Basic partitioning with atomics": edges split in natural
  order, conflicting vertex updates are atomic.
* ``replicate`` + natural labels — "Basic partitioning with replication":
  vertices split in natural order; a thread processes every edge touching
  its vertices but writes only its own ("owner-only writes"); cut edges are
  computed twice.
* ``replicate`` + METIS labels — "METIS based partitioning": same owner-only
  writes with multilevel-partitioned vertices.

Triangular-solve strategies (paper Section V.B): ``level`` (barriers) and
``p2p`` (sparsified point-to-point synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from ..partition.metrics import replication_overhead
from ..partition.multilevel import partition_graph
from ..partition.simple import natural_partition
from ..sparse.ilu import ILUPlan
from ..sparse.p2p import build_dependency_graph, cross_thread_syncs, sparsify_transitive
from .cost import EdgeLoopOptions, TriSolveOptions

__all__ = [
    "EdgeLoopExecutor",
    "make_edge_loop_options",
    "tri_solve_options_from_plan",
]


@dataclass
class EdgeLoopExecutor:
    """Partitioned execution of an edge kernel across simulated threads.

    Parameters
    ----------
    edges:
        ``(ne, 2)`` edge endpoints.
    n_vertices:
        vertex count.
    n_threads:
        simulated thread count (1 = sequential).
    strategy:
        ``sequential`` | ``atomic`` | ``replicate``.
    labels:
        vertex -> owning thread (required for ``replicate``); natural-order
        contiguous labels model the paper's basic replication, multilevel
        labels model METIS.
    """

    edges: np.ndarray
    n_vertices: int
    n_threads: int = 1
    strategy: str = "sequential"
    labels: np.ndarray | None = None
    _thread_edges: list[np.ndarray] = dc_field(default_factory=list, repr=False)
    _write_masks: list[np.ndarray] = dc_field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        ne = self.edges.shape[0]
        t = self.n_threads
        if self.strategy == "sequential" or t == 1:
            self._thread_edges = [np.arange(ne, dtype=np.int64)]
            return
        if self.strategy == "atomic":
            # natural-order split of the edge list
            bounds = np.linspace(0, ne, t + 1).astype(np.int64)
            self._thread_edges = [
                np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
                for i in range(t)
            ]
            return
        if self.strategy == "coloring":
            # conflict-free colors; each color's edges are split among
            # threads and processed between barriers
            from ..ordering.coloring import color_groups, greedy_edge_coloring

            colors = greedy_edge_coloring(self.edges, self.n_vertices)
            self._color_groups = color_groups(colors)
            self.n_colors = len(self._color_groups)
            bounds = np.linspace(0, ne, t + 1).astype(np.int64)
            order = np.concatenate(self._color_groups)
            self._thread_edges = [
                order[bounds[i] : bounds[i + 1]] for i in range(t)
            ]
            return
        if self.strategy == "replicate":
            if self.labels is None:
                raise ValueError("replicate strategy needs vertex labels")
            l0 = self.labels[self.edges[:, 0]]
            l1 = self.labels[self.edges[:, 1]]
            for s in range(t):
                sel = np.where((l0 == s) | (l1 == s))[0]
                self._thread_edges.append(sel)
                # owner-only writes: endpoint written iff owned by thread s
                mask0 = l0[sel] == s
                mask1 = l1[sel] == s
                self._write_masks.append(np.stack([mask0, mask1], axis=1))
            return
        raise ValueError(f"unknown strategy {self.strategy!r}")

    # ------------------------------------------------------------------
    def edges_per_thread(self) -> np.ndarray:
        """Edges processed per simulated thread (incl. replication)."""
        return np.array([e.shape[0] for e in self._thread_edges], dtype=np.int64)

    def replication(self) -> float:
        """Redundant-compute fraction of this strategy's partition."""
        if self.strategy != "replicate":
            return 0.0
        return replication_overhead(self.edges, self.labels)

    # ------------------------------------------------------------------
    def execute(
        self,
        edge_compute,
        n_out: int = 4,
    ) -> np.ndarray:
        """Run ``edge_compute(edge_idx) -> (m, n_out)`` per thread and
        accumulate into a vertex array, honoring the strategy's write rule.

        Returns the accumulated ``(n_vertices, n_out)`` residual, which must
        match the sequential result to round-off.
        """
        res = np.zeros((self.n_vertices, n_out))
        for s, eidx in enumerate(self._thread_edges):
            if eidx.shape[0] == 0:
                continue
            flux = edge_compute(eidx)
            e0 = self.edges[eidx, 0]
            e1 = self.edges[eidx, 1]
            if self.strategy == "replicate":
                w = self._write_masks[s]
                np.add.at(res, e0[w[:, 0]], flux[w[:, 0]])
                np.subtract.at(res, e1[w[:, 1]], flux[w[:, 1]])
            else:
                np.add.at(res, e0, flux)
                np.subtract.at(res, e1, flux)
        return res


def make_edge_loop_options(
    executor: EdgeLoopExecutor,
    layout: str = "aos",
    simd: bool = True,
    prefetch: bool = True,
    rcm: bool = True,
) -> EdgeLoopOptions:
    """Cost-model options with structural inputs taken from the executor."""
    return EdgeLoopOptions(
        n_threads=executor.n_threads,
        strategy=executor.strategy,
        layout=layout,
        simd=simd,
        prefetch=prefetch,
        rcm=rcm,
        edges_per_thread=executor.edges_per_thread()
        if executor.strategy != "sequential"
        else None,
        n_colors=getattr(executor, "n_colors", 0),
    )


def metis_thread_labels(
    edges: np.ndarray, n_vertices: int, n_threads: int, seed: int = 0
) -> np.ndarray:
    """Vertex -> thread assignment via the multilevel partitioner."""
    return partition_graph(edges, n_vertices, n_threads, seed=seed)


def natural_thread_labels(n_vertices: int, n_threads: int) -> np.ndarray:
    """Vertex -> thread assignment by contiguous natural-order chunks."""
    return natural_partition(n_vertices, n_threads)


def tri_solve_options_from_plan(
    plan: ILUPlan,
    strategy: str,
    n_threads: int,
    simd: bool = True,
) -> TriSolveOptions:
    """Build cost-model options for TRSV/ILU from a real ILU plan.

    Level widths/blocks come from the plan's forward+backward schedules;
    the P2P cross-thread dependency count comes from the sparsified task
    graph with rows assigned to threads in natural contiguous chunks
    (rows are processed in wavefront order, so contiguous ownership is the
    locality-preserving assignment the paper uses).
    """
    fwd_w = plan.schedule.widths()
    bwd_w = plan.schedule_back.widths()
    widths = np.concatenate([fwd_w, bwd_w])
    blocks = np.array(
        [lp.pair_blk.shape[0] for lp in plan.fwd_pairs]
        + [lp.pair_blk.shape[0] for lp in plan.bwd_pairs],
        dtype=np.int64,
    )
    cross = 0
    if strategy == "p2p":
        dep = sparsify_transitive(
            build_dependency_graph(plan.rowptr, plan.cols)
        )
        owner = natural_partition(plan.n, max(n_threads, 1))
        cross = cross_thread_syncs(dep, owner)
    from ..sparse.levels import available_parallelism

    par = available_parallelism(plan.rowptr, plan.cols, b=plan.b)
    return TriSolveOptions(
        n_threads=n_threads,
        strategy=strategy,
        simd=simd,
        level_widths=widths,
        level_blocks=blocks,
        cross_deps=cross,
        available_parallelism=par,
    )
