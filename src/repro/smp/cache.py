"""Trace-driven cache simulation for the edge-loop access patterns.

The paper justifies the AoS node-data layout with a "detailed cache
analysis indicat[ing] ... a 20% better reuse across L1 and L2 caches".
This module makes that analysis reproducible: a set-associative LRU cache
model is driven by the *actual* memory-access trace of the flux kernel on
the actual mesh — vertex gathers under SoA or AoS layout, streaming edge
data — for any vertex ordering (natural vs. RCM).  The measured miss rates
both validate the claim and ground the ``dram_bytes_per_edge`` constants
in the analytic cost model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheSim", "CacheStats", "edge_loop_trace", "simulate_edge_loop"]


@dataclass
class CacheStats:
    """Outcome of one simulated trace."""

    accesses: int
    misses: int

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.misses / max(self.accesses, 1)

    @property
    def miss_rate(self) -> float:
        return self.misses / max(self.accesses, 1)


class CacheSim:
    """Set-associative LRU cache over 64-byte lines."""

    def __init__(self, size_bytes: int, line_bytes: int = 64, assoc: int = 8):
        if size_bytes % (line_bytes * assoc):
            raise ValueError("cache size must be a multiple of line*assoc")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = size_bytes // (line_bytes * assoc)
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.accesses = 0
        self.misses = 0

    def access_lines(self, lines: np.ndarray) -> None:
        """Feed a sequence of line addresses through the cache."""
        n_sets = self.n_sets
        assoc = self.assoc
        sets = self._sets
        self.accesses += lines.shape[0]
        misses = 0
        for line in lines:
            line = int(line)
            s = sets[line % n_sets]
            if line in s:
                s.move_to_end(line)
            else:
                misses += 1
                s[line] = True
                if len(s) > assoc:
                    s.popitem(last=False)
        self.misses += misses

    def stats(self) -> CacheStats:
        return CacheStats(accesses=self.accesses, misses=self.misses)


# vertex record: 4 states + 12 gradient + 3 geometry doubles = 152 B
_VERTEX_FIELDS = 19
_VERTEX_BYTES = _VERTEX_FIELDS * 8


def edge_loop_trace(
    edges: np.ndarray,
    n_vertices: int,
    layout: str = "aos",
    line_bytes: int = 64,
) -> np.ndarray:
    """Line-address trace of one flux-kernel sweep.

    * ``aos``: each vertex's 19 fields live contiguously (152 B -> 3 lines);
      gathering a vertex touches those lines.
    * ``soa``: each field is its own array of length ``n_vertices``;
      gathering a vertex touches one line in each of the 19 arrays.

    Streaming edge data (normal + indices, 40 B/edge) is appended per edge
    in both layouts.  Returns int64 line addresses.
    """
    ne = edges.shape[0]
    verts = edges.reshape(-1)  # e0, e1 interleaved per edge
    if layout == "aos":
        base = verts * _VERTEX_BYTES
        offsets = np.arange(0, _VERTEX_BYTES, line_bytes)
        vlines = (base[:, None] + offsets[None, :]) // line_bytes
        vlines = vlines.reshape(ne, -1)
    elif layout == "soa":
        array_stride = n_vertices * 8
        field_base = np.arange(_VERTEX_FIELDS) * array_stride
        vlines = (verts[:, None] * 8 + field_base[None, :]) // line_bytes
        vlines = vlines.reshape(ne, -1)
    else:
        raise ValueError(f"unknown layout {layout!r}")

    # edge data streams from a separate region, after the vertex data
    region = (
        n_vertices * _VERTEX_BYTES
        if layout == "aos"
        else _VERTEX_FIELDS * n_vertices * 8
    )
    region = (region // line_bytes + 1) * line_bytes
    edata = (region + np.arange(ne) * 40) // line_bytes

    return np.concatenate([vlines, edata[:, None]], axis=1).reshape(-1)


def simulate_edge_loop(
    edges: np.ndarray,
    n_vertices: int,
    layout: str,
    cache_bytes: int,
    assoc: int = 8,
) -> CacheStats:
    """Run one flux sweep's trace through a cache of ``cache_bytes``."""
    sim = CacheSim(cache_bytes, assoc=assoc)
    sim.access_lines(edge_loop_trace(edges, n_vertices, layout))
    return sim.stats()
