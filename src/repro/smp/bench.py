"""Measured flux-kernel scaling: the wall-clock counterpart of Fig 6b.

Everything in ``benchmarks/`` prices strategies with the calibrated cost
models; this module *times* the real :class:`ProcessEdgeBackend` against
the real sequential kernel and emits ``BENCH_flux_scaling.json`` so the
model curves finally sit next to measured points.  Document schema
(``repro.bench.flux_scaling/v1``)::

    {
      "schema": "repro.bench.flux_scaling/v1",
      "dataset": "mesh-c", "scale": 0.12, "seed": 7,
      "n_vertices": ..., "n_edges": ..., "repeats": 5, "beta": 4.0,
      "serial": {"wall_seconds": ...},
      "results": [
        {"strategy": "owner-metis",       # locked | replicate |
                                          # owner-natural | owner-metis
         "workers": 4,
         "wall_seconds": ...,             # best of `repeats` timed calls
         "speedup": ...,                  # serial wall / this wall
         "redundant_edge_fraction": ...,  # cut edges computed twice
         "max_abs_dev": ...,              # vs the serial residual
         "model_seconds": ...}            # cost-model prediction (or null)
      ]
    }

The paper's Fig 6 ordering (owner-only METIS writes beating the atomics
stand-in) and the strategy-independence of the numerics are what the CI
``bench-smoke`` job gates on — see :func:`gate_failures`.
"""

from __future__ import annotations

import json
import time

import numpy as np

from ..obs.live.fingerprint import host_fingerprint, same_host
from .cost import edge_loop_time, flux_kernel_work
from .machine import XEON_E5_2690_V2, MachineModel
from .parallel import ProcessEdgeBackend
from .strategies import (
    EdgeLoopExecutor,
    make_edge_loop_options,
    metis_thread_labels,
    natural_thread_labels,
)

__all__ = [
    "SCHEMA",
    "TRSV_SCHEMA",
    "SCATTER_SCHEMA",
    "FUSION_SCHEMA",
    "HISTORY_SCHEMA",
    "DEFAULT_STRATEGIES",
    "SCATTER_KERNELS",
    "run_flux_scaling",
    "run_trsv_scaling",
    "run_scatter_kernels",
    "run_fusion",
    "run_dist_breakdown",
    "run_rank_worker_sweep",
    "gate_failures",
    "trsv_gate_failures",
    "scatter_gate_failures",
    "fusion_gate_failures",
    "rolling_gate_failures",
    "rolling_trsv_gate_failures",
    "rolling_scatter_gate_failures",
    "rolling_fusion_gate_failures",
    "load_history",
    "append_history",
    "summarize_history",
    "write_bench_json",
]

SCHEMA = "repro.bench.flux_scaling/v1"
TRSV_SCHEMA = "repro.bench.trsv_scaling/v1"
SCATTER_SCHEMA = "repro.bench.scatter_kernels/v1"
FUSION_SCHEMA = "repro.bench.fusion/v1"
HISTORY_SCHEMA = "repro.bench.history/v1"
DEFAULT_STRATEGIES = ("locked", "replicate", "owner-natural", "owner-metis")
SCATTER_KERNELS = ("flux-edge", "grad-edge", "jacobian-edge", "bcsr-matvec")


def _split(label: str) -> tuple[str, str | None]:
    """``owner-metis`` -> ``("owner", "metis")``; plain labels pass through."""
    if label.startswith("owner-"):
        return "owner", label.split("-", 1)[1]
    return label, None


def _bench_state(field, seed: int) -> np.ndarray:
    """A mildly perturbed freestream-like state (deterministic)."""
    rng = np.random.default_rng(seed)
    q = np.tile(np.array([0.0, 1.0, 0.05, 0.0]), (field.n_vertices, 1))
    return q + 0.05 * rng.normal(size=q.shape)


def _time_call(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds (min is the stable estimator)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rel_error(model: float | None, wall: float) -> float | None:
    """Measured-vs-predicted relative error every BENCH record reports."""
    if model is None or wall <= 0.0:
        return None
    return abs(model - wall) / wall


def _model_info(machine: MachineModel, calibrated: bool) -> dict:
    """Which machine model priced this document's predictions."""
    return {"machine": machine.name, "calibrated": bool(calibrated)}


def _model_seconds(mesh_edges, n_vertices, label: str, workers: int,
                   seed: int,
                   machine: MachineModel = XEON_E5_2690_V2) -> float | None:
    """Cost-model prediction for one measured configuration.

    ``locked`` maps to the model's ``atomic`` strategy, ``owner-*`` to the
    model's owner-writes ``replicate`` strategy with the matching labels.
    The per-worker-accumulator ``replicate`` strategy has no counterpart in
    the paper's model set, so it gets no prediction.  ``machine`` defaults
    to the paper's Xeon; the CLI passes the host-calibrated model when a
    valid ``.repro_calibration.json`` exists.
    """
    strategy, partitioner = _split(label)
    if workers <= 1:
        ex = EdgeLoopExecutor(mesh_edges, n_vertices, 1, "sequential")
    elif strategy == "locked":
        ex = EdgeLoopExecutor(mesh_edges, n_vertices, workers, "atomic")
    elif strategy == "owner":
        labels = (
            metis_thread_labels(mesh_edges, n_vertices, workers, seed=seed)
            if partitioner == "metis"
            else natural_thread_labels(n_vertices, workers)
        )
        ex = EdgeLoopExecutor(
            mesh_edges, n_vertices, workers, "replicate", labels
        )
    else:
        return None
    work = flux_kernel_work(mesh_edges.shape[0])
    return edge_loop_time(machine, work, make_edge_loop_options(ex))


def run_flux_scaling(
    mesh,
    workers: tuple[int, ...] = (1, 2, 4),
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    repeats: int = 5,
    beta: float = 4.0,
    seed: int = 7,
    dataset: str = "?",
    scale: float = 0.0,
    machine: MachineModel = XEON_E5_2690_V2,
    calibrated: bool = False,
) -> dict:
    """Sweep workers x strategies over the real flux edge loop.

    Returns the JSON-ready document described in the module docstring.
    ``machine`` prices the ``model_seconds`` column (pass the
    host-calibrated model to make ``model_rel_error`` meaningful);
    ``calibrated`` is recorded in ``doc["model"]`` so readers know which
    constants produced the predictions.
    """
    from ..cfd.flux import interior_flux_residual
    from ..cfd.state import FlowField

    field = FlowField(mesh)
    q = _bench_state(field, seed)

    ref = interior_flux_residual(field, q, beta)
    serial_wall = _time_call(
        lambda: interior_flux_residual(field, q, beta), repeats
    )

    results = []
    for w in workers:
        for label in strategies:
            strategy, partitioner = _split(label)
            with ProcessEdgeBackend(
                field,
                n_workers=w,
                strategy=strategy,
                partitioner=partitioner or "metis",
                seed=seed,
            ) as be:
                res = be.flux_residual(q, beta)  # warm-up + correctness
                dev = float(np.max(np.abs(res - ref)))
                wall = _time_call(lambda: be.flux_residual(q, beta), repeats)
                redundant = float(be.redundant_edge_fraction)
            model = _model_seconds(
                mesh.edges, mesh.n_vertices, label, w, seed, machine
            )
            results.append({
                "strategy": label,
                "workers": int(w),
                "wall_seconds": wall,
                "speedup": serial_wall / wall,
                "redundant_edge_fraction": redundant,
                "max_abs_dev": dev,
                "model_seconds": model,
                "model_rel_error": _rel_error(model, wall),
            })

    # telemetry overhead: the reference configuration once with the live
    # plane enabled and once disabled (the ISSUE acceptance bound is <= 2%
    # on this document; record the measurement, let CI/readers gate it).
    # The per-call wall is a few ms of pipe-dispatch latency, so a 2%
    # signal needs more samples than the sweep's quick-mode repeats —
    # floor the pair at 15 (≲0.2 s extra) to keep it out of the noise.
    label = "owner-metis" if "owner-metis" in strategies else strategies[-1]
    strategy, partitioner = _split(label)
    w = max(workers)
    pair_repeats = max(int(repeats), 15)
    walls = {}
    for flag in (True, False):
        with ProcessEdgeBackend(
            field,
            n_workers=w,
            strategy=strategy,
            partitioner=partitioner or "metis",
            seed=seed,
            telemetry=flag,
        ) as be:
            be.flux_residual(q, beta)  # warm-up
            walls[flag] = _time_call(
                lambda: be.flux_residual(q, beta), pair_repeats
            )
    telemetry = {
        "strategy": label,
        "workers": int(w),
        "wall_on_seconds": walls[True],
        "wall_off_seconds": walls[False],
        "overhead_fraction": walls[True] / walls[False] - 1.0,
    }

    serial_model = _model_seconds(
        mesh.edges, mesh.n_vertices, "sequential", 1, seed, machine
    )
    return {
        "schema": SCHEMA,
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "n_vertices": int(mesh.n_vertices),
        "n_edges": int(mesh.n_edges),
        "repeats": int(repeats),
        "beta": beta,
        "host": host_fingerprint(),
        "model": _model_info(machine, calibrated),
        "serial": {
            "wall_seconds": serial_wall,
            "model_seconds": serial_model,
            "model_rel_error": _rel_error(serial_model, serial_wall),
        },
        "telemetry": telemetry,
        "results": results,
    }


def _trsv_matrix(mesh, seed: int, b: int = 4):
    """Deterministic diagonally dominant BCSR on the mesh Jacobian pattern.

    A synthetic stand-in for the first-order Jacobian: same sparsity (so the
    level structure and P2P graph are the real ones), random off-diagonal
    blocks, dominant diagonal so ILU stays well conditioned.
    """
    from ..sparse.bcsr import BCSRMatrix, bcsr_pattern_from_edges

    rowptr, cols = bcsr_pattern_from_edges(mesh.edges, mesh.n_vertices)
    rng = np.random.default_rng(seed)
    vals = 0.1 * rng.normal(size=(cols.shape[0], b, b))
    rows = np.repeat(
        np.arange(mesh.n_vertices, dtype=np.int64), np.diff(rowptr)
    )
    vals[rows == cols] += 4.0 * np.eye(b)
    return BCSRMatrix(rowptr=rowptr, cols=cols, vals=vals)


def _trsv_model_seconds(
    plan, strategy: str, workers: int,
    machine: MachineModel = XEON_E5_2690_V2,
) -> tuple[float, float, int]:
    """Cost-model (trsv_seconds, ilu_seconds, cross_deps) for one cell.

    The generic ``tri_solve_options_from_plan`` prices P2P synchronization
    from a natural row partition; the process backend assigns contiguous
    chunks of each *wavefront*, so its retained cross-worker count (from the
    actual execution plan) replaces the estimate.
    """
    from .cost import ilu_time, trsv_time
    from .strategies import tri_solve_options_from_plan

    model_strategy = {
        "levels": "level", "p2p": "p2p", "sequential": "sequential"
    }[strategy]
    opts = tri_solve_options_from_plan(plan, model_strategy, workers)
    cross = 0
    if workers > 1:
        cross = plan.worker_plans(workers).cross_deps()
        if model_strategy == "p2p":
            opts.cross_deps = cross
    nnzb = plan.cols.shape[0]
    return (
        trsv_time(machine, nnzb, plan.n, plan.b, opts),
        ilu_time(
            machine, plan.factor_block_ops(), nnzb, plan.n, plan.b,
            opts,
        ),
        int(cross),
    )


def run_trsv_scaling(
    mesh,
    workers: tuple[int, ...] = (1, 2, 4),
    strategies: tuple[str, ...] = ("levels", "p2p"),
    repeats: int = 5,
    fill_level: int = 0,
    seed: int = 7,
    dataset: str = "?",
    scale: float = 0.0,
    machine: MachineModel = XEON_E5_2690_V2,
    calibrated: bool = False,
) -> dict:
    """Sweep workers x sync strategies over process-parallel ILU+TRSV.

    Times the real :class:`~repro.smp.sparse_parallel.SparseProcessBackend`
    (barrier-per-level vs P2P-sparsified flags) against the serial kernels
    on the mesh's Jacobian pattern, and prices every cell with the Table II
    cost models so measured points sit next to the model curves.  Document
    schema ``repro.bench.trsv_scaling/v1`` mirrors the flux document:
    ``serial`` holds ``trsv_wall_seconds``/``ilu_wall_seconds``, each result
    row adds ``cross_deps`` and ``trsv_model_seconds``/``ilu_model_seconds``.
    """
    from ..sparse.ilu import build_ilu_plan, ilu_factorize
    from ..sparse.trsv import trsv_solve
    from .sparse_parallel import SparseProcessBackend

    matrix = _trsv_matrix(mesh, seed)
    plan = build_ilu_plan(
        matrix.rowptr, matrix.cols, b=matrix.b, fill_level=fill_level
    )
    rng = np.random.default_rng(seed + 1)
    rhs = rng.normal(size=(plan.n, plan.b))

    factor = ilu_factorize(matrix, plan)
    x_ref = trsv_solve(factor, rhs)
    serial_ilu = _time_call(lambda: ilu_factorize(matrix, plan), repeats)
    serial_trsv = _time_call(lambda: trsv_solve(factor, rhs), repeats)

    results = []
    for w in workers:
        for strategy in strategies:
            with SparseProcessBackend(n_workers=w, strategy=strategy) as be:
                pf = be.factorize(matrix, plan)  # warm-up + correctness
                x = be.solve(pf, rhs)
                dev = float(np.max(np.abs(x - x_ref)))
                ilu_wall = _time_call(
                    lambda: be.factorize(matrix, plan), repeats
                )
                trsv_wall = _time_call(lambda: be.solve(pf, rhs), repeats)
            trsv_model, ilu_model, cross = _trsv_model_seconds(
                plan, strategy, w, machine
            )
            results.append({
                "strategy": strategy,
                "workers": int(w),
                "wall_seconds": trsv_wall,  # gate/history cell (TRSV)
                "trsv_wall_seconds": trsv_wall,
                "ilu_wall_seconds": ilu_wall,
                "trsv_speedup": serial_trsv / trsv_wall,
                "ilu_speedup": serial_ilu / ilu_wall,
                "max_abs_dev": dev,
                "cross_deps": cross,
                "trsv_model_seconds": trsv_model,
                "ilu_model_seconds": ilu_model,
                "model_rel_error": _rel_error(trsv_model, trsv_wall),
                "ilu_model_rel_error": _rel_error(ilu_model, ilu_wall),
            })
    sched = plan.schedule
    serial_trsv_model, serial_ilu_model, _ = _trsv_model_seconds(
        plan, "sequential", 1, machine
    )
    return {
        "schema": TRSV_SCHEMA,
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "fill_level": int(fill_level),
        "n_vertices": int(mesh.n_vertices),
        "nnzb": int(plan.cols.shape[0]),
        "repeats": int(repeats),
        "host": host_fingerprint(),
        "model": _model_info(machine, calibrated),
        "n_levels": len(sched.levels),
        "max_level_width": int(sched.max_level_width),
        "serial": {
            "wall_seconds": serial_trsv,
            "trsv_wall_seconds": serial_trsv,
            "ilu_wall_seconds": serial_ilu,
            "model_seconds": serial_trsv_model,
            "model_rel_error": _rel_error(serial_trsv_model, serial_trsv),
            "ilu_model_seconds": serial_ilu_model,
            "ilu_model_rel_error": _rel_error(serial_ilu_model, serial_ilu),
        },
        "results": results,
    }


def _scatter_cases(mesh, seed: int, engine: str | None = None):
    """The four hot scatter structures of one mesh + deterministic values.

    Yields ``(kernel, plan, x)`` where ``plan`` is the compiled
    :class:`~repro.perf.scatter.ScatterPlan` of that kernel's write-out and
    ``x`` a value array of the kernel's real block shape: edge fluxes
    ``(ne, 4)``, LSQ gradient contributions ``(ne, 4, 3)``, Jacobian edge
    blocks ``(2 ne, 4, 4)``, and BCSR SpMV row contributions ``(nnzb, 4)``.
    """
    from ..perf.scatter import (
        edge_difference_plan,
        edge_sum_plan,
        jacobian_edge_plan,
        scatter_plan,
    )
    from ..sparse.bcsr import bcsr_pattern_from_edges

    rng = np.random.default_rng(seed)
    e0, e1 = mesh.edges[:, 0], mesh.edges[:, 1]
    nv, ne = mesh.n_vertices, mesh.n_edges

    yield (
        "flux-edge",
        edge_difference_plan(e0, e1, nv, engine=engine, name="bench.flux"),
        rng.standard_normal((ne, 4)),
    )
    yield (
        "grad-edge",
        edge_sum_plan(e0, e1, nv, engine=engine, name="bench.grad"),
        rng.standard_normal((ne, 4, 3)),
    )

    rowptr, cols = bcsr_pattern_from_edges(mesh.edges, nv)
    rows = np.repeat(np.arange(nv, dtype=np.int64), np.diff(rowptr))
    keys = rows * np.int64(nv) + cols
    diag_idx = np.searchsorted(
        keys, np.arange(nv, dtype=np.int64) * nv + np.arange(nv)
    )
    idx_ij = np.searchsorted(keys, e0 * np.int64(nv) + e1)
    idx_ji = np.searchsorted(keys, e1 * np.int64(nv) + e0)
    yield (
        "jacobian-edge",
        jacobian_edge_plan(
            diag_idx[e0],
            idx_ij,
            diag_idx[e1],
            idx_ji,
            cols.shape[0],
            engine=engine,
            name="bench.jacobian",
        ),
        rng.standard_normal((2 * ne, 4, 4)),
    )
    yield (
        "bcsr-matvec",
        scatter_plan(rows, nv, engine=engine, name="bench.matvec"),
        rng.standard_normal((cols.shape[0], 4)),
    )


def run_scatter_kernels(
    meshes,
    repeats: int = 5,
    seed: int = 7,
    dataset: str = "?",
    scale: float = 0.0,
    engine: str | None = None,
) -> dict:
    """Time precompiled scatter plans against the ``np.add.at`` reference.

    ``meshes`` is a sequence of meshes (typically one dataset at several
    scales); for every mesh the four hot write-out structures of the solver
    (edge-flux difference, LSQ gradient sum, 4-term Jacobian assembly, BCSR
    SpMV row scatter) are compiled once and both execution paths are timed
    on identical values.  Document schema
    ``repro.bench.scatter_kernels/v1``: each result row carries the kernel
    name in ``strategy``, the mesh size in ``workers``/``n_vertices`` (so
    the shared gate/history machinery keys on the largest mesh), the plan
    wall in ``wall_seconds``, the reference wall in ``addat_seconds``, and
    ``max_abs_dev`` — which must be exactly ``0.0``: plans are
    bitwise-identical to the reference by contract, not approximately.
    """
    if not isinstance(meshes, (list, tuple)):
        meshes = [meshes]

    results = []
    gate_serial = None
    for mesh in meshes:
        for kernel, plan, x in _scatter_cases(mesh, seed, engine):
            out_plan = plan.out_like(x)
            out_ref = plan.out_like(x)

            def run_ref():
                out_ref[...] = 0.0
                plan.apply_reference(x, out_ref)

            run_ref()
            plan.apply(x, out=out_plan)
            dev = float(np.max(np.abs(out_plan - out_ref))) if out_ref.size else 0.0
            addat_wall = _time_call(run_ref, repeats)
            plan_wall = _time_call(
                lambda: plan.apply(x, out=out_plan), repeats
            )
            if kernel == "flux-edge":
                gate_serial = addat_wall  # largest mesh wins (meshes ascend)
            results.append({
                "strategy": kernel,
                "workers": int(mesh.n_vertices),
                "mesh_vertices": int(mesh.n_vertices),
                "mesh_edges": int(mesh.n_edges),
                "engine": plan.engine,
                "entries": int(plan.n_entries),
                "wall_seconds": plan_wall,
                "addat_seconds": addat_wall,
                "speedup": addat_wall / plan_wall,
                "max_abs_dev": dev,
            })
    return {
        "schema": SCATTER_SCHEMA,
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "engine": engine or (results[0]["engine"] if results else ""),
        "n_vertices": int(meshes[-1].n_vertices),
        "n_edges": int(meshes[-1].n_edges),
        "repeats": int(repeats),
        "host": host_fingerprint(),
        "serial": {"wall_seconds": gate_serial},
        "results": results,
    }


def _graph_gather_bytes(graph) -> int:
    """Estimated per-evaluation edge gather traffic of one kgir graph.

    Every edge stage reads its declared vertex arrays at both endpoints —
    ``2 * n_edges * width * 8`` bytes per read.  Fused stages gather the
    union of member reads once, which is exactly where the saving shows up.
    """
    total = 0
    for st in graph.stages:
        idx = getattr(st, "index_set", None)
        if idx is None:
            continue
        total += sum(
            2 * idx.n_edges * graph.widths.get(r, 1) * 8 for r in st.reads
        )
    return int(total)


def run_fusion(
    meshes,
    repeats: int = 5,
    seed: int = 7,
    dataset: str = "?",
    scale: float = 0.0,
) -> dict:
    """Fused kernel-graph pipeline vs the unfused kernel sequence.

    For each mesh (ascending sizes) times the interior second-order
    residual pipeline both ways on the same perturbed state: ``unfused``
    is the classic three-kernel sequence (LSQ gradients, Venkatakrishnan
    limiter, interior flux) exactly as :func:`~repro.cfd.residual.\
compute_residual` runs it without a fused backend; ``fused`` is the
    :class:`~repro.kgir.programs.ResidualProgram` the rewrite pass
    produced.  Document schema ``repro.bench.fusion/v1``: each row carries
    ``strategy="fused"``, the mesh size in ``workers`` (so the shared
    gate/history machinery keys on the largest mesh), the fused wall in
    ``wall_seconds``, the unfused wall in ``unfused_seconds``, and
    ``max_abs_dev`` — which must be exactly ``0.0``: fusion is bitwise by
    contract, not approximately.  ``doc["serial"]`` holds the largest
    mesh's unfused wall, and each row adds the rewrite-pass accounting
    (stages before/after, estimated gather bytes both ways).
    """
    from ..cfd.flux import interior_flux_residual
    from ..cfd.gradient import lsq_gradients, venkat_limiter
    from ..cfd.state import FlowConfig, FlowField
    from ..kgir import fusion_report, residual_program

    if not isinstance(meshes, (list, tuple)):
        meshes = [meshes]

    config = FlowConfig()
    results = []
    gate_serial = None
    for mesh in meshes:
        field = FlowField(mesh)
        q = _bench_state(field, seed)
        prog = residual_program(field, fuse=True)
        report = fusion_report(field)

        def unfused():
            grad = lsq_gradients(field, q)
            phi = venkat_limiter(field, q, grad, config.limiter_k)
            return interior_flux_residual(
                field, q, config.beta, grad, phi,
                scheme=config.dissipation,
            )

        ref = unfused()
        res, _grad, _phi = prog.run(q, config)
        dev = float(np.max(np.abs(res - ref)))
        unfused_wall = _time_call(unfused, repeats)
        fused_wall = _time_call(lambda: prog.run(q, config), repeats)
        gate_serial = unfused_wall  # largest mesh wins (meshes ascend)
        results.append({
            "strategy": "fused",
            "workers": int(mesh.n_vertices),
            "mesh_vertices": int(mesh.n_vertices),
            "mesh_edges": int(mesh.n_edges),
            "wall_seconds": fused_wall,
            "unfused_seconds": unfused_wall,
            "speedup": unfused_wall / fused_wall,
            "max_abs_dev": dev,
            "stages_before": int(report.stages_before),
            "stages_after": int(report.stages_after),
            "intermediates_eliminated": len(report.intermediates_eliminated),
            "bytes_saved": int(report.bytes_saved),
            "gather_bytes_unfused": _graph_gather_bytes(prog.graph),
            "gather_bytes_fused": _graph_gather_bytes(prog.exec_graph),
        })
    return {
        "schema": FUSION_SCHEMA,
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "n_vertices": int(meshes[-1].n_vertices),
        "n_edges": int(meshes[-1].n_edges),
        "repeats": int(repeats),
        "host": host_fingerprint(),
        "serial": {"wall_seconds": gate_serial},
        "results": results,
    }


def run_dist_breakdown(
    mesh,
    n_ranks: int = 4,
    pipelined: bool = True,
    max_steps: int = 3,
    seed: int = 7,
    fabric=None,
) -> dict:
    """Measured comm/compute breakdown of a short distributed solve.

    Runs ``max_steps`` Newton steps of the rank runtime and returns the
    critical-path (max over ranks) halo / allreduce / interior seconds and
    fractions — the measured data point next to the Fig 10 model.  With a
    ``fabric`` (a :class:`~repro.dist.network.FatTreeNetwork`, e.g. the
    host-calibrated local one), the record also carries the comm model's
    predicted allreduce wall and its relative error.
    """
    from ..cfd.state import FlowConfig, FlowField
    from ..dist.runtime import distributed_solve
    from ..solver.newton import SolverOptions

    field = FlowField(mesh)
    opts = SolverOptions(
        max_steps=max_steps, steady_rtol=1e-14, steady_atol=1e-15
    )
    dres = distributed_solve(
        field,
        FlowConfig(),
        opts,
        n_ranks=n_ranks,
        pipelined=pipelined,
        seed=seed,
    )
    doc = {
        "n_ranks": int(dres.n_ranks),
        "pipelined": bool(pipelined),
        "steps": int(dres.result.steps),
        **dres.comm_breakdown(),
    }
    allreduces = max(
        (int(rs.get("allreduces", 0)) for rs in dres.rank_stats), default=0
    )
    doc["allreduces"] = allreduces
    if fabric is not None and allreduces > 0:
        # each solver reduction moves one scalar (8 B) per rank; the
        # measured wall is the critical-path allreduce_seconds
        model = allreduces * fabric.allreduce_time(8.0, dres.n_ranks)
        doc["allreduce_model_seconds"] = model
        doc["allreduce_model_rel_error"] = _rel_error(
            model, doc.get("allreduce_seconds", 0.0)
        )
    return doc


def run_rank_worker_sweep(
    mesh,
    rank_worker_pairs,
    max_steps: int = 2,
    seed: int = 7,
    fabric=None,
) -> list[dict]:
    """Measured ranks x sparse-workers splits of a short distributed solve.

    The Fig 11 question — how to split a core budget between ranks and
    threads — measured on the real runtime: each ``(ranks, sparse_workers)``
    pair runs ``max_steps`` Newton steps with the sparse fleet nested
    inside every rank.  Rows land in ``BENCH_trsv_scaling.json`` under
    ``dist_sweep`` and double as validation data for the tuner's
    ranks-vs-workers pricing (``allreduce_model_*`` when a fabric is
    given).
    """
    from ..cfd.state import FlowConfig, FlowField
    from ..dist.runtime import distributed_solve
    from ..solver.newton import SolverOptions

    rows = []
    for n_ranks, sparse_workers in rank_worker_pairs:
        field = FlowField(mesh)
        opts = SolverOptions(
            max_steps=max_steps, steady_rtol=1e-14, steady_atol=1e-15,
            sparse_backend="process" if sparse_workers > 1 else "serial",
            sparse_strategy="p2p",
            sparse_workers=int(sparse_workers),
        )
        dres = distributed_solve(
            field, FlowConfig(), opts, n_ranks=int(n_ranks), seed=seed
        )
        bd = dres.comm_breakdown()
        wall = max(
            (float(rs.get("elapsed", 0.0)) for rs in dres.rank_stats),
            default=0.0,
        )
        allreduces = max(
            (int(rs.get("allreduces", 0)) for rs in dres.rank_stats),
            default=0,
        )
        row = {
            "n_ranks": int(dres.n_ranks),
            "sparse_workers": int(sparse_workers),
            "wall_seconds": wall,
            "steps": int(dres.result.steps),
            "allreduces": allreduces,
            **bd,
        }
        if fabric is not None and allreduces > 0:
            model = allreduces * fabric.allreduce_time(8.0, dres.n_ranks)
            row["allreduce_model_seconds"] = model
            row["allreduce_model_rel_error"] = _rel_error(
                model, bd.get("allreduce_seconds", 0.0)
            )
        rows.append(row)
    return rows


def _residual_failures(doc: dict, tol: float) -> list[str]:
    """Check (1): every configuration reproduced the serial residual."""
    return [
        f"{r['strategy']} @ {r['workers']}w deviates from serial by "
        f"{r['max_abs_dev']:.3e} (tolerance {tol:.0e})"
        for r in doc["results"]
        if not (r["max_abs_dev"] <= tol)
    ]


def _gate_row(doc: dict, gate_strategy: str) -> dict | None:
    gated = [r for r in doc["results"] if r["strategy"] == gate_strategy]
    return max(gated, key=lambda r: r["workers"]) if gated else None


def gate_failures(
    doc: dict,
    tol: float = 1e-12,
    max_slowdown: float = 1.25,
    gate_strategy: str = "owner-metis",
) -> list[str]:
    """Benchmark-regression gate for CI.  Returns failure messages.

    Two checks: (1) every strategy/worker combination reproduced the serial
    residual within ``tol`` (the paper's numerics-must-not-change rule);
    (2) the owner-writes backend at the largest measured worker count is
    not slower than serial by more than ``max_slowdown``x.
    """
    failures = _residual_failures(doc, tol)
    r = _gate_row(doc, gate_strategy)
    if r is None:
        failures.append(f"gate strategy {gate_strategy!r} was not measured")
    else:
        slowdown = r["wall_seconds"] / doc["serial"]["wall_seconds"]
        if slowdown > max_slowdown:
            failures.append(
                f"{r['strategy']} @ {r['workers']}w is {slowdown:.2f}x the "
                f"serial wall time (gate {max_slowdown:.2f}x)"
            )
    return failures


def trsv_gate_failures(
    doc: dict,
    tol: float = 1e-12,
    max_slowdown: float = 1.25,
    gate_strategy: str = "p2p",
) -> list[str]:
    """CI gate for the TRSV sweep; same two checks as :func:`gate_failures`.

    (1) Both sync strategies reproduced the serial solve bitwise-tight
    (``max_abs_dev <= tol`` for every cell); (2) the P2P backend's solve at
    the largest measured worker count is within ``max_slowdown``x of the
    serial TRSV wall.  Speedup > 1 is reported in the document but not
    gated — single- and dual-core CI runners cannot promise it.
    """
    return gate_failures(
        doc, tol=tol, max_slowdown=max_slowdown, gate_strategy=gate_strategy
    )


def scatter_gate_failures(
    doc: dict,
    tol: float = 0.0,
    max_slowdown: float = 1.25,
    gate_strategy: str = "flux-edge",
) -> list[str]:
    """CI gate for the scatter-kernel sweep.

    (1) Every (kernel, mesh) cell must be **bitwise** identical to the
    ``np.add.at`` replay (``max_abs_dev <= 0.0`` — the determinism contract
    admits no tolerance); (2) the edge-flux plan on the largest measured
    mesh must not exceed ``max_slowdown`` times its own ``add.at`` wall
    (``doc["serial"]`` carries that reference wall, so the shared
    serial-relative check prices plan-vs-reference directly).
    """
    return gate_failures(
        doc, tol=tol, max_slowdown=max_slowdown, gate_strategy=gate_strategy
    )


def fusion_gate_failures(
    doc: dict,
    tol: float = 0.0,
    min_speedup: float = 1.2,
) -> list[str]:
    """CI gate for the fusion sweep.

    (1) Every mesh's fused residual must be **bitwise** identical to the
    unfused kernel sequence (``max_abs_dev <= 0.0`` — the fusion contract
    admits no tolerance); (2) on the largest benched mesh the fused
    pipeline must be at least ``min_speedup``x faster than the unfused
    wall.
    """
    failures = _residual_failures(doc, tol)
    r = _gate_row(doc, "fused")
    if r is None:
        failures.append("gate strategy 'fused' was not measured")
    elif r["speedup"] < min_speedup:
        failures.append(
            f"fused pipeline on the {r['mesh_vertices']}-vertex mesh is "
            f"only {r['speedup']:.2f}x the unfused wall "
            f"(gate {min_speedup:.2f}x)"
        )
    return failures


def rolling_fusion_gate_failures(
    doc: dict,
    history: list[dict],
    window: int = 5,
    max_regression: float = 1.25,
    tol: float = 0.0,
    min_speedup: float = 1.2,
) -> list[str]:
    """Trend-aware fusion gate.

    The absolute checks of :func:`fusion_gate_failures` always apply
    (bitwise equivalence and the minimum fused-over-unfused speedup);
    with comparable history the fused wall on the largest mesh must also
    stay within ``max_regression``x the rolling median.
    """
    failures = fusion_gate_failures(doc, tol=tol, min_speedup=min_speedup)
    r = _gate_row(doc, "fused")
    if r is None:
        return failures
    prior = _comparable_history(doc, history)
    cell = f"{r['strategy']}@{r['workers']}"
    walls = [
        h["walls"][cell] for h in prior[-window:] if cell in h.get("walls", {})
    ]
    if walls:
        median = float(np.median(walls))
        if r["wall_seconds"] > max_regression * median:
            failures.append(
                f"{cell} wall {1e3 * r['wall_seconds']:.2f} ms exceeds "
                f"{max_regression:.2f}x the rolling median of the last "
                f"{len(walls)} run(s) ({1e3 * median:.2f} ms)"
            )
    return failures


def rolling_scatter_gate_failures(
    doc: dict,
    history: list[dict],
    window: int = 5,
    max_regression: float = 1.25,
    tol: float = 0.0,
    gate_strategy: str = "flux-edge",
) -> list[str]:
    """Trend-aware scatter gate (see :func:`rolling_gate_failures`)."""
    return rolling_gate_failures(
        doc, history, window=window, max_regression=max_regression, tol=tol,
        gate_strategy=gate_strategy,
    )


def rolling_trsv_gate_failures(
    doc: dict,
    history: list[dict],
    window: int = 5,
    max_regression: float = 1.25,
    tol: float = 1e-12,
    gate_strategy: str = "p2p",
) -> list[str]:
    """Trend-aware TRSV gate (see :func:`rolling_gate_failures`)."""
    return rolling_gate_failures(
        doc, history, window=window, max_regression=max_regression, tol=tol,
        gate_strategy=gate_strategy,
    )


# ---------------------------------------------------------------------------
# trend tracking: JSONL history + rolling-median regression gate
# ---------------------------------------------------------------------------

def _doc_kind(record: dict) -> str:
    """``trsv``/``scatter`` for those sweeps' documents, else ``flux``."""
    kind = record.get("kind")
    if kind is not None:
        return kind
    schema = record.get("schema")
    if schema == TRSV_SCHEMA:
        return "trsv"
    if schema == SCATTER_SCHEMA:
        return "scatter"
    if schema == FUSION_SCHEMA:
        return "fusion"
    return "flux"


def _history_key(record: dict) -> tuple:
    """Runs are only comparable on the same problem configuration.

    ``kind`` separates flux-loop and TRSV-sweep records sharing one history
    file; pre-existing records (written before the TRSV sweep existed) carry
    no kind and default to ``flux``, so old histories stay comparable.
    """
    return (
        _doc_kind(record),
        record.get("dataset"),
        record.get("scale"),
        record.get("seed"),
        record.get("fill_level"),
    )


def _comparable_history(doc: dict, history: list[dict]) -> list[dict]:
    """Prior records the rolling gates may compare ``doc`` against:
    same problem key *and* same stable host fingerprint.  Records written
    before fingerprints existed (no ``host``) are never comparable."""
    key = _history_key(doc)
    return [
        h for h in history
        if _history_key(h) == key and same_host(h.get("host"), doc.get("host"))
    ]


def append_history(doc: dict, path: str) -> dict:
    """Append one compact record of ``doc`` to the JSONL history at ``path``.

    Each line carries the configuration key plus the wall seconds of every
    measured (strategy, workers) cell — enough for the rolling-median gate
    without storing whole documents.  Returns the record written.
    """
    record = {
        "schema": HISTORY_SCHEMA,
        "timestamp": time.time(),
        "kind": _doc_kind(doc),
        "dataset": doc.get("dataset"),
        "scale": doc.get("scale"),
        "seed": doc.get("seed"),
        "fill_level": doc.get("fill_level"),
        "host": host_fingerprint(),
        "serial_wall_seconds": doc["serial"]["wall_seconds"],
        "walls": {
            f"{r['strategy']}@{r['workers']}": r["wall_seconds"]
            for r in doc["results"]
        },
    }
    if "dist" in doc:
        record["dist"] = {
            k: doc["dist"][k]
            for k in ("n_ranks", "pipelined", "comm_fraction")
            if k in doc["dist"]
        }
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
    return record


def load_history(path: str) -> list[dict]:
    """Parse a JSONL history file; missing file or bad lines are skipped."""
    records: list[dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if rec.get("schema") == HISTORY_SCHEMA:
                    records.append(rec)
    except OSError:
        return []
    return records


def rolling_gate_failures(
    doc: dict,
    history: list[dict],
    window: int = 5,
    max_regression: float = 1.25,
    tol: float = 1e-12,
    gate_strategy: str = "owner-metis",
) -> list[str]:
    """Trend-aware gate: current wall vs. the rolling median of history.

    The gated cell (``gate_strategy`` at its largest worker count) must not
    exceed ``max_regression`` times the median of the last ``window``
    comparable runs (same dataset/scale/seed **on the same host** — a
    stable-fingerprint match, so a shared or restored history file from
    another machine can't pollute the gate decision).  With no comparable
    history the fixed serial-relative gate applies instead, so a fresh
    cache, a configuration change, or a new runner degrades gracefully
    rather than passing blindly.  Residual equivalence is always checked.
    """
    r = _gate_row(doc, gate_strategy)
    prior = _comparable_history(doc, history)
    if r is None or not prior:
        return gate_failures(
            doc, tol=tol, max_slowdown=max_regression,
            gate_strategy=gate_strategy,
        )
    failures = _residual_failures(doc, tol)
    cell = f"{r['strategy']}@{r['workers']}"
    walls = [
        h["walls"][cell] for h in prior[-window:] if cell in h.get("walls", {})
    ]
    if not walls:
        return gate_failures(
            doc, tol=tol, max_slowdown=max_regression,
            gate_strategy=gate_strategy,
        )
    median = float(np.median(walls))
    if r["wall_seconds"] > max_regression * median:
        failures.append(
            f"{cell} wall {1e3 * r['wall_seconds']:.2f} ms exceeds "
            f"{max_regression:.2f}x the rolling median of the last "
            f"{len(walls)} run(s) ({1e3 * median:.2f} ms)"
        )
    return failures


def summarize_history(
    records: list[dict], window: int = 5, host: dict | None = None
) -> list[dict]:
    """Per-cell trend rows of a JSONL history (``repro bench report``).

    Groups records by configuration key (kind/dataset/scale/seed/fill),
    then for every measured ``strategy@workers`` cell reports the rolling
    median of the last ``window`` runs, the latest wall, the latest-vs-
    median delta, and the same 1.25x verdict the rolling gate applies.
    With ``host`` (a fingerprint dict), records from other machines are
    excluded first — medians across different hardware are meaningless.
    """
    if host is not None:
        records = [r for r in records if same_host(r.get("host"), host)]
    groups: dict[tuple, list[dict]] = {}
    for rec in records:
        groups.setdefault(_history_key(rec), []).append(rec)
    rows: list[dict] = []
    for key in sorted(groups, key=str):
        cells: dict[str, list[float]] = {}
        for rec in groups[key]:
            for cell, wall in rec.get("walls", {}).items():
                cells.setdefault(cell, []).append(float(wall))
        for cell, walls in sorted(cells.items()):
            median = float(np.median(walls[-window:]))
            last = walls[-1]
            rows.append({
                "kind": key[0],
                "dataset": key[1],
                "scale": key[2],
                "cell": cell,
                "runs": len(walls),
                "median_seconds": median,
                "last_seconds": last,
                "delta_fraction": last / median - 1.0 if median > 0 else 0.0,
                "verdict": "ok" if last <= 1.25 * median else "regressed",
            })
    return rows


def write_bench_json(doc: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
